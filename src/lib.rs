//! **mqdiv** — a full Rust reproduction of *Multi-Query Diversification in
//! Microblogging Posts* (Cheng, Arvanitis, Chrobak, Hristidis — EDBT 2014).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`] — problem model, coverage semantics, OPT / GreedySC / Scan /
//!   Scan+ solvers, the NP-hardness gadget, fixed & proportional lambda.
//! * [`stream`] — StreamScan(±), StreamGreedySC(±), instant output, and the
//!   event-driven simulator.
//! * [`setcover`] — generic greedy set-cover substrate.
//! * [`text`] — tokenizer, inverted index, SimHash dedup, sentiment scoring.
//! * [`topics`] — collapsed-Gibbs LDA and topic → query extraction.
//! * [`datagen`] — seeded synthetic corpora, tweet streams and profiles.
//! * [`geo`] — the spatiotemporal extension (Section 9 future work).
//!
//! The [`search`] module combines the index and the diversifier into the
//! paper's Figure 1 static pipeline.
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for
//! the system inventory.

pub mod search;

pub use mqd_core as core;
pub use mqd_datagen as datagen;
pub use mqd_geo as geo;
pub use mqd_setcover as setcover;
pub use mqd_stream as stream;
pub use mqd_text as text;
pub use mqd_topics as topics;
