//! The static (option 1) pipeline of the paper's Figure 1 as one API:
//! multi-query search against a time-partitioned inverted index, followed
//! by multi-query diversification of the matches.
//!
//! ```
//! use mqdiv::search::DiversifiedSearch;
//!
//! let mut engine = DiversifiedSearch::new(60_000); // 1-minute segments
//! engine.ingest("obama speaks on the economy", 1_000);
//! engine.ingest("obama repeats the speech", 2_000);
//! engine.ingest("senate votes on the budget", 150_000);
//!
//! let queries = vec![
//!     vec!["obama".to_string()],
//!     vec!["senate".to_string(), "budget".to_string()],
//! ];
//! let digest = engine.search(&queries, 0, 200_000, 30_000).unwrap();
//! // One representative for the two near-simultaneous obama posts, plus
//! // the senate post.
//! assert_eq!(digest.hits.len(), 2);
//! ```

use mqd_core::algorithms::solve_greedy_sc;
use mqd_core::{coverage, FixedLambda, Instance, LabelId, MqdError, Post, PostId};
use mqd_text::RtIndex;

/// One selected post in a search digest.
#[derive(Clone, Debug)]
pub struct SearchHit {
    /// Document id assigned at ingestion.
    pub doc: u32,
    /// Document timestamp.
    pub time: i64,
    /// Queries (by position in the `queries` argument) this hit matches.
    pub matched_queries: Vec<u16>,
    /// The document text.
    pub text: String,
}

/// A diversified multi-query search result.
#[derive(Clone, Debug)]
pub struct Digest {
    /// Selected representative posts, in time order.
    pub hits: Vec<SearchHit>,
    /// How many documents matched before diversification.
    pub matched: usize,
}

/// An ingest-and-search engine: time-partitioned inverted index + MQDP
/// diversifier (the paper's Figure 1, static option).
pub struct DiversifiedSearch {
    index: RtIndex,
    texts: Vec<String>,
}

impl DiversifiedSearch {
    /// Creates an engine whose index uses `segment_span` ms segments.
    pub fn new(segment_span: i64) -> Self {
        DiversifiedSearch {
            index: RtIndex::new(segment_span),
            texts: Vec::new(),
        }
    }

    /// Ingests a post; returns its doc id.
    pub fn ingest(&mut self, text: &str, time: i64) -> u32 {
        let id = self.index.add_document(text, time);
        debug_assert_eq!(id as usize, self.texts.len());
        self.texts.push(text.to_string());
        id
    }

    /// Number of ingested posts.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// Whether nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// Multi-query search in `[from, to]` diversified with threshold
    /// `lambda` (GreedySC). Each query is a keyword list; a post matches a
    /// query if it contains any of its keywords (the paper's matching
    /// rule).
    pub fn search(
        &self,
        queries: &[Vec<String>],
        from: i64,
        to: i64,
        lambda: i64,
    ) -> Result<Digest, MqdError> {
        if lambda < 0 {
            return Err(MqdError::NegativeLambda(lambda));
        }
        // Per-query matches -> per-doc label sets.
        let mut doc_labels: std::collections::BTreeMap<u32, Vec<LabelId>> =
            std::collections::BTreeMap::new();
        for (q, keywords) in queries.iter().enumerate() {
            for doc in self.index.search(keywords, from, to) {
                doc_labels.entry(doc).or_default().push(LabelId(q as u16));
            }
        }
        let matched = doc_labels.len();
        let posts: Vec<Post> = doc_labels
            .iter()
            .map(|(&doc, labels)| {
                Post::new(PostId(doc as u64), self.index.doc_time(doc), labels.clone())
            })
            .collect();
        let inst = Instance::from_posts(posts, queries.len().max(1))?;
        let lam = FixedLambda(lambda);
        let solution = solve_greedy_sc(&inst, &lam);
        debug_assert!(coverage::is_cover(&inst, &lam, &solution.selected));

        let hits = solution
            .selected
            .iter()
            .map(|&i| {
                let doc = inst.post(i).id().0 as u32;
                SearchHit {
                    doc,
                    time: inst.value(i),
                    matched_queries: inst.labels(i).iter().map(|l| l.0).collect(),
                    text: self.texts[doc as usize].clone(),
                }
            })
            .collect();
        Ok(Digest { hits, matched })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> DiversifiedSearch {
        let mut e = DiversifiedSearch::new(10_000);
        e.ingest("obama speaks on the economy today", 1_000);
        e.ingest("obama press conference continues", 2_000);
        e.ingest("obama wraps up remarks", 3_000);
        e.ingest("senate votes on the budget", 2_500);
        e.ingest("obama returns hours later", 500_000);
        e
    }

    fn queries() -> Vec<Vec<String>> {
        vec![
            vec!["obama".to_string()],
            vec!["senate".to_string(), "budget".to_string()],
        ]
    }

    #[test]
    fn digest_covers_and_compresses() {
        let e = engine();
        let d = e.search(&queries(), 0, 1_000_000, 10_000).unwrap();
        assert_eq!(d.matched, 5);
        // Three near-simultaneous obama posts collapse to one; the senate
        // post and the late obama post must each appear.
        assert_eq!(d.hits.len(), 3);
        let times: Vec<i64> = d.hits.iter().map(|h| h.time).collect();
        assert!(times.contains(&500_000));
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn time_range_restricts_matches() {
        let e = engine();
        let d = e.search(&queries(), 0, 10_000, 10_000).unwrap();
        assert_eq!(d.matched, 4); // the late obama post is out of range
        assert!(d.hits.iter().all(|h| h.time <= 10_000));
    }

    #[test]
    fn unmatched_queries_yield_empty_digest() {
        let e = engine();
        let d = e
            .search(&[vec!["unrelated".to_string()]], 0, 1_000_000, 10_000)
            .unwrap();
        assert_eq!(d.matched, 0);
        assert!(d.hits.is_empty());
    }

    #[test]
    fn multi_query_posts_carry_all_matched_labels() {
        let mut e = DiversifiedSearch::new(1_000);
        e.ingest("obama and the senate clash over the budget", 100);
        let d = e.search(&queries(), 0, 1_000, 50).unwrap();
        assert_eq!(d.hits.len(), 1);
        assert_eq!(d.hits[0].matched_queries, vec![0, 1]);
    }

    #[test]
    fn negative_lambda_is_an_error() {
        let e = engine();
        assert!(matches!(
            e.search(&queries(), 0, 10, -1),
            Err(MqdError::NegativeLambda(-1))
        ));
    }
}
