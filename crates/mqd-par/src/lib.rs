//! Zero-dependency parallel execution layer built on `std::thread::scope`.
//!
//! The workspace has no registry access, so instead of `rayon` this crate
//! provides the two primitives the MQDP algorithms actually need:
//!
//! * [`par_map`] / [`par_map_range`] — embarrassingly-parallel maps over a
//!   slice (or an index range) with **deterministic output order**: the
//!   input is split into one contiguous chunk per worker, workers run under
//!   [`std::thread::scope`], and results are concatenated in chunk order.
//!   The result is byte-identical to the sequential map regardless of the
//!   thread count or scheduling.
//! * [`par_for_each`] — the side-effect-free-aggregation variant used when
//!   each item produces its output into its own slot.
//!
//! Thread-count resolution (the `Threads` config):
//!
//! 1. an explicit [`set_threads`] call (the CLI's `--threads` flag),
//! 2. the `MQD_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! Every primitive also has a `*_threads` variant taking an explicit count,
//! which tests use to compare 1/2/8-thread runs without touching the global
//! (and which callers use to avoid nested parallelism).
//!
//! Work below [`SMALL_INPUT`] items, or with one thread, runs inline on the
//! caller's thread — no spawn overhead on tiny inputs, and `threads = 1`
//! is *exactly* the sequential code path.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Inputs smaller than this run inline even when more threads are allowed:
/// a thread spawn costs far more than mapping a handful of items.
pub const SMALL_INPUT: usize = 256;

/// 0 = unset (fall through to env / hardware).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets (or with `None` clears) the process-wide thread-count override.
/// The CLI's `--threads N` flag lands here.
pub fn set_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// Resolves the configured thread count: [`set_threads`] override, then the
/// `MQD_THREADS` environment variable, then the hardware parallelism.
/// Always at least 1.
pub fn configured_threads() -> usize {
    let explicit = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var("MQD_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Joins a worker, re-raising its panic (if any) on the caller's thread
/// with the **original** payload. Swallowing the payload behind a generic
/// `expect` message would hide the root cause from supervisors and test
/// harnesses sitting above this layer; `resume_unwind` preserves it.
fn join_propagating<U>(h: std::thread::ScopedJoinHandle<'_, U>) -> U {
    // lint:allow(blocking-call): every spawned closure is a bounded chunk of work with no inbound channel to wedge on
    match h.join() {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Splits `len` items into at most `threads` contiguous chunks of
/// near-equal size; returns `(start, end)` pairs covering `0..len`.
fn chunks(len: usize, threads: usize) -> Vec<(usize, usize)> {
    let workers = threads.max(1).min(len.max(1));
    let base = len / workers;
    let extra = len % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// Maps `f` over `items` with the configured thread count. Output order is
/// identical to the sequential `items.iter().map(f).collect()`.
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    par_map_threads(configured_threads(), items, f)
}

/// [`par_map`] with an explicit thread count.
pub fn par_map_threads<T: Sync, U: Send>(
    threads: usize,
    items: &[T],
    f: impl Fn(&T) -> U + Sync,
) -> Vec<U> {
    if threads <= 1 || items.len() < SMALL_INPUT {
        return items.iter().map(f).collect();
    }
    let parts = chunks(items.len(), threads);
    let mut results: Vec<Vec<U>> = Vec::with_capacity(parts.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .iter()
            .map(|&(lo, hi)| {
                let f = &f;
                s.spawn(move || items[lo..hi].iter().map(f).collect::<Vec<U>>())
            })
            .collect();
        for h in handles {
            results.push(join_propagating(h));
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for r in results {
        out.extend(r);
    }
    out
}

/// Maps `f` over the index range `0..n` with the configured thread count;
/// `out[i] == f(i)` exactly as in the sequential loop.
pub fn par_map_range<U: Send>(n: usize, f: impl Fn(usize) -> U + Sync) -> Vec<U> {
    par_map_range_threads(configured_threads(), n, f)
}

/// [`par_map_range`] with an explicit thread count.
pub fn par_map_range_threads<U: Send>(
    threads: usize,
    n: usize,
    f: impl Fn(usize) -> U + Sync,
) -> Vec<U> {
    if threads <= 1 || n < SMALL_INPUT {
        return (0..n).map(f).collect();
    }
    let parts = chunks(n, threads);
    let mut results: Vec<Vec<U>> = Vec::with_capacity(parts.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .iter()
            .map(|&(lo, hi)| {
                let f = &f;
                s.spawn(move || (lo..hi).map(f).collect::<Vec<U>>())
            })
            .collect();
        for h in handles {
            results.push(join_propagating(h));
        }
    });
    let mut out = Vec::with_capacity(n);
    for r in results {
        out.extend(r);
    }
    out
}

/// [`par_map_range`] for **coarse** items: parallelizes whenever there are
/// at least two items, ignoring the [`SMALL_INPUT`] cutoff. Use when each
/// item is a substantial unit of work (e.g. one label's whole posting
/// list), so spawn overhead is negligible even for a handful of items.
pub fn par_map_range_coarse<U: Send>(n: usize, f: impl Fn(usize) -> U + Sync) -> Vec<U> {
    par_map_range_coarse_threads(configured_threads(), n, f)
}

/// [`par_map_range_coarse`] with an explicit thread count.
pub fn par_map_range_coarse_threads<U: Send>(
    threads: usize,
    n: usize,
    f: impl Fn(usize) -> U + Sync,
) -> Vec<U> {
    if threads <= 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    let parts = chunks(n, threads);
    let mut results: Vec<Vec<U>> = Vec::with_capacity(parts.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .iter()
            .map(|&(lo, hi)| {
                let f = &f;
                s.spawn(move || (lo..hi).map(f).collect::<Vec<U>>())
            })
            .collect();
        for h in handles {
            results.push(join_propagating(h));
        }
    });
    let mut out = Vec::with_capacity(n);
    for r in results {
        out.extend(r);
    }
    out
}

/// Runs `f` over mutable output slots in parallel: `f(i, &mut slots[i])`.
/// Each worker owns a contiguous sub-slice, so no synchronization is needed
/// beyond the scope join.
pub fn par_for_each<U: Send>(slots: &mut [U], f: impl Fn(usize, &mut U) + Sync) {
    par_for_each_threads(configured_threads(), slots, f)
}

/// [`par_for_each`] with an explicit thread count.
pub fn par_for_each_threads<U: Send>(
    threads: usize,
    slots: &mut [U],
    f: impl Fn(usize, &mut U) + Sync,
) {
    let n = slots.len();
    if threads <= 1 || n < SMALL_INPUT {
        for (i, slot) in slots.iter_mut().enumerate() {
            f(i, slot);
        }
        return;
    }
    let parts = chunks(n, threads);
    std::thread::scope(|s| {
        let mut rest = slots;
        let mut consumed = 0;
        for &(lo, hi) in &parts {
            let (chunk, tail) = rest.split_at_mut(hi - consumed);
            rest = tail;
            let f = &f;
            let base = lo;
            s.spawn(move || {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    f(base + off, slot);
                }
            });
            consumed = hi;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_cover_and_balance() {
        for len in [0usize, 1, 7, 255, 256, 1000, 1001] {
            for threads in [1usize, 2, 3, 8, 64] {
                let parts = chunks(len, threads);
                assert!(!parts.is_empty());
                assert_eq!(parts[0].0, 0);
                assert_eq!(parts.last().unwrap().1, len);
                for w in parts.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "chunks must be contiguous");
                }
                let sizes: Vec<usize> = parts.iter().map(|&(a, b)| b - a).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "balanced within 1: {sizes:?}");
            }
        }
    }

    #[test]
    fn par_map_matches_sequential_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8] {
            let par = par_map_threads(threads, &items, |&x| x * 3 + 1);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn par_map_range_matches_sequential() {
        let seq: Vec<usize> = (0..5_000).map(|i| i * i % 97).collect();
        for threads in [1, 2, 8] {
            assert_eq!(par_map_range_threads(threads, 5_000, |i| i * i % 97), seq);
        }
    }

    #[test]
    fn par_for_each_fills_all_slots() {
        let mut slots = vec![0usize; 4_000];
        par_for_each_threads(4, &mut slots, |i, s| *s = i + 1);
        assert!(slots.iter().enumerate().all(|(i, &s)| s == i + 1));
    }

    #[test]
    fn small_inputs_run_inline() {
        // Below SMALL_INPUT the result must still be correct (inline path).
        let items: Vec<i32> = (0..10).collect();
        assert_eq!(
            par_map_threads(8, &items, |&x| x - 1),
            (-1..9).collect::<Vec<i32>>()
        );
        assert_eq!(par_map_range_threads(8, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn coarse_map_parallelizes_tiny_inputs() {
        // 5 items is far below SMALL_INPUT, but the coarse variant must
        // still produce the sequential result across thread counts.
        let seq: Vec<usize> = (0..5).map(|i| i * 11).collect();
        for threads in [1, 2, 8] {
            assert_eq!(par_map_range_coarse_threads(threads, 5, |i| i * 11), seq);
        }
        assert_eq!(
            par_map_range_coarse_threads(4, 0, |i| i),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn thread_override_resolution() {
        set_threads(Some(3));
        assert_eq!(configured_threads(), 3);
        set_threads(None);
        assert!(configured_threads() >= 1);
    }

    #[test]
    fn worker_panics_propagate_with_original_payload() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep the test log clean
        let res = std::panic::catch_unwind(|| {
            par_map_range_threads(4, 1000, |i| {
                if i == 700 {
                    std::panic::panic_any("original payload 700");
                }
                i
            })
        });
        std::panic::set_hook(prev);
        let payload = res.expect_err("panic must cross the join");
        assert_eq!(
            *payload.downcast_ref::<&str>().expect("payload type kept"),
            "original payload 700"
        );
    }

    #[test]
    fn non_send_closure_state_via_sync_ref() {
        // The mapped closure only needs Sync, so it can capture shared
        // lookup tables by reference.
        let table: Vec<u64> = (0..1000).map(|i| i * 7).collect();
        let out = par_map_range_threads(4, 1000, |i| table[i] + 1);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 7 + 1));
    }
}
