//! Durable persistence for [`mqd_store::Store`].
//!
//! The serving layer's store is memory-only; this crate gives it a
//! crash-safe on-disk life without touching its query semantics:
//!
//! * [`wal`] — an append-only, fsync'd write-ahead log. Every row is one
//!   independently-checksummed frame (no cross-frame delta coding), so a
//!   torn or truncated final frame is detected and cleanly truncated on
//!   replay — never a panic, never a phantom row.
//! * [`segment`] — sealed, immutable on-disk blocks of rows carrying their
//!   inverted label → posting index and per-label value summaries, so a
//!   recovered process re-indexes nothing and coverage slicing works off
//!   the same metadata the in-memory store would have built.
//! * [`durable`] — [`DurableStore`]: the orchestration layer. Appends go
//!   WAL-first (ack only after [`DurableStore::sync`]), the WAL is sealed
//!   into a block whenever a segment-sized window of rows completes,
//!   partial blocks from graceful shutdowns are compacted into full-window
//!   blocks, and retention GC drops whole windows that no live λ-window
//!   lease can ever touch again. Recovery replays blocks + WAL tail and
//!   restores the store byte-identically (rows, generation, stats) to the
//!   uninterrupted process at the same ingest prefix.
//! * [`fsio`] — the single sanctioned home of durable filesystem mutation
//!   (atomic tempfile+rename writes, deletes, truncation — each paired
//!   with the directory/file fsync that makes it actually durable). The
//!   `durability-path` lint rule keeps every other module out of the
//!   mutation business.
//!
//! All formats use the shared [`mqd_core::wire`] varint + FNV-1a framing;
//! the file magics (`WAL!`, `MQDS`) are minted in `mqd_core::wire` and
//! only aliased here, so the `wire-drift` lint stays authoritative.
//! Like the rest of the workspace, this crate depends only on `std`.

#![warn(missing_docs)]

pub mod durable;
pub mod fsio;
pub mod segment;
pub mod wal;

pub use durable::{DurableOptions, DurableStats, DurableStore};
pub use segment::{decode_segment, encode_segment, SegmentFile};
pub use wal::Wal;
