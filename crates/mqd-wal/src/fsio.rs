//! The sanctioned durable-mutation module.
//!
//! Every filesystem mutation that must survive a crash lives here, paired
//! with the fsync that makes it durable: an atomic write is tempfile +
//! `rename` + directory sync, a delete is `remove_file` + directory sync,
//! and a truncation is `set_len` + data sync. The `durability-path` lint
//! rule flags these primitives anywhere else in this crate, so a future
//! edit cannot quietly add a rename that is durable on the developer's
//! laptop and lost on the first production power cut.
//!
//! `fsync` is a parameter, not a constant: `--no-fsync` trades the
//! durability point for ingest throughput (the bench quantifies it), and
//! the *ordering* guarantees — tempfile before rename, WAL before ack —
//! hold either way.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use mqd_core::MqdError;

/// Distinguishes concurrent tempfiles. Checkpoint names may contain '.'
/// ("foo.bar" and "foo.baz"), so a stem-derived tmp like "foo.tmp" would
/// let two writers rename each other's half-written blob into place; a
/// per-process counter (plus the pid, against a restarted process racing
/// its predecessor's leftover) makes every tmp path unique.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Syncs a directory so a preceding rename/unlink in it is durable.
/// No-op when `fsync` is false.
pub fn sync_dir(dir: &Path, fsync: bool) -> Result<(), MqdError> {
    if fsync {
        File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Atomically replaces `path` with `bytes`: write to a uniquely-named
/// `.tmp` sibling, sync it, rename over `path`, sync the directory.
/// Readers see either the old file or the complete new one, never a torn
/// write; concurrent writers never share a tmp path.
pub fn write_atomic(path: &Path, bytes: &[u8], fsync: bool) -> Result<(), MqdError> {
    let mut tmp_name = path
        .file_name()
        .map_or_else(|| std::ffi::OsString::from("file"), |n| n.to_os_string());
    tmp_name.push(format!(
        ".{}-{}.tmp",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = path.with_file_name(tmp_name);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        if fsync {
            f.sync_all()?;
        }
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        sync_dir(dir, fsync)?;
    }
    Ok(())
}

/// Durably deletes `path` (remove + directory sync). Missing files are
/// fine — a crash between a previous remove and its directory sync must
/// be re-runnable.
pub fn remove_durable(path: &Path, fsync: bool) -> Result<(), MqdError> {
    match std::fs::remove_file(path) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e.into()),
    }
    if let Some(dir) = path.parent() {
        sync_dir(dir, fsync)?;
    }
    Ok(())
}

/// Truncates an open file to `len` bytes and syncs the new length. Used
/// by WAL recovery (drop a torn tail) and WAL reset after a seal.
pub fn truncate_file(file: &File, len: u64, fsync: bool) -> Result<(), MqdError> {
    file.set_len(len)?;
    if fsync {
        file.sync_all()?;
    }
    Ok(())
}

/// Opens (creating if absent) a file for append-style writing with read
/// access, without truncating existing contents.
pub fn open_rw(path: &Path) -> Result<File, MqdError> {
    Ok(OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)?)
}

/// Creates `dir` (and parents) if it does not exist yet.
pub fn ensure_dir(dir: &Path) -> Result<(), MqdError> {
    Ok(std::fs::create_dir_all(dir)?)
}
