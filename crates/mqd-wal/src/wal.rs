//! The write-ahead log: one independently-checksummed frame per row.
//!
//! ```text
//! file   := "WAL!" version:u8 frame*
//! frame  := len:varint body checksum:u64_be      (checksum = FNV-1a(body))
//! body   := seq:varint id:varint value:zigzag nlabels:varint label:varint*
//! ```
//!
//! Frames are self-delimiting and carry no cross-frame state (no delta
//! coding), so replay can stop cleanly at the first frame that is torn,
//! truncated, or fails its checksum: everything before it is intact by
//! checksum, everything at and after it was never acked with an fsync'd
//! ack and is dropped by truncating the file. `seq` is the global row
//! sequence number; it ties WAL frames to sealed segments so the
//! seal-then-reset crash window (both the block *and* the stale WAL
//! exist) deduplicates on recovery instead of double-applying.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use mqd_core::record::Record;
use mqd_core::wire::{fnv1a, put_varint, put_varint_i64, Cursor};
use mqd_core::MqdError;

use crate::fsio;

/// File magic — aliased from the sanctioned wire module.
pub const MAGIC: [u8; 4] = *mqd_core::wire::WAL_MAGIC;
/// Format version.
pub const VERSION: u8 = 1;
/// Bytes before the first frame.
pub const HEADER_LEN: u64 = 5;

/// Largest plausible frame body. A length prefix beyond this is treated
/// as tail corruption (truncate point), not an allocation request.
const MAX_FRAME_BODY: u64 = 1 << 20;

/// An open write-ahead log. Appends buffer in the OS; [`Wal::sync`] is
/// the durability point the server awaits before acking.
pub struct Wal {
    file: File,
    path: PathBuf,
    fsync: bool,
    /// Current file length (header + intact frames).
    bytes: u64,
}

/// The outcome of opening a WAL: the handle plus the replayable rows.
pub struct WalRecovery {
    /// The opened log, positioned for appends.
    pub wal: Wal,
    /// Intact frames in order: `(seq, row)`.
    pub rows: Vec<(u64, Record)>,
    /// Bytes of torn/corrupt tail that were truncated away (0 on a clean
    /// open).
    pub truncated_bytes: u64,
}

impl Wal {
    /// Opens (or creates) the log at `path`, replaying every intact frame
    /// and truncating a torn tail. A missing, empty, or sub-header-length
    /// file becomes a fresh log (a short file is a torn initial header —
    /// nothing was ever acked through it); a full-length header with the
    /// wrong magic or version is a typed error (the file is not a WAL).
    pub fn open(path: &Path, fsync: bool) -> Result<WalRecovery, MqdError> {
        let mut file = fsio::open_rw(path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;

        if data.len() < HEADER_LEN as usize {
            // Missing, empty, or shorter than the header: a fresh log, or
            // a kill between `write_header`'s two writes (or a power cut
            // before its sync). No frame — and therefore no acked row —
            // can precede a complete header, so a sub-header file is a
            // torn initial creation, not fatal corruption: rewrite the
            // header and serve an empty log.
            file.seek(SeekFrom::Start(0))?;
            fsio::truncate_file(&file, 0, fsync)?;
            let mut wal = Wal {
                file,
                path: path.to_path_buf(),
                fsync,
                bytes: 0,
            };
            wal.write_header()?;
            return Ok(WalRecovery {
                wal,
                rows: Vec::new(),
                truncated_bytes: data.len() as u64,
            });
        }
        if !data.starts_with(&MAGIC) {
            return Err(MqdError::Corrupt {
                offset: 0,
                reason: "not a WAL file (bad magic)".into(),
            });
        }
        let version = data[4]; // lint:allow(panic-path): length checked against HEADER_LEN above
        if version != VERSION {
            return Err(MqdError::Corrupt {
                offset: 4,
                reason: format!("unsupported WAL version {version}"),
            });
        }

        let mut rows = Vec::new();
        let mut good_end = HEADER_LEN as usize;
        let mut expected_seq: Option<u64> = None;
        while good_end < data.len() {
            match decode_frame(&data, good_end, expected_seq) {
                Some((next, seq, row)) => {
                    expected_seq = Some(seq + 1);
                    rows.push((seq, row));
                    good_end = next;
                }
                // Torn/corrupt tail: keep the intact prefix, drop the rest.
                None => break,
            }
        }
        let truncated_bytes = (data.len() - good_end) as u64;
        if truncated_bytes > 0 {
            fsio::truncate_file(&file, good_end as u64, fsync)?;
        }
        file.seek(SeekFrom::Start(good_end as u64))?;
        Ok(WalRecovery {
            wal: Wal {
                file,
                path: path.to_path_buf(),
                fsync,
                bytes: good_end as u64,
            },
            rows,
            truncated_bytes,
        })
    }

    fn write_header(&mut self) -> Result<(), MqdError> {
        self.file.write_all(&MAGIC)?;
        self.file.write_all(&[VERSION])?;
        if self.fsync {
            self.file.sync_all()?;
        }
        self.bytes = HEADER_LEN;
        Ok(())
    }

    /// Appends one frame (buffered — not durable until [`Wal::sync`]).
    pub fn append(&mut self, seq: u64, row: &Record) -> Result<(), MqdError> {
        let mut frame = Vec::with_capacity(28 + 2 * row.labels.len());
        put_frame(&mut frame, seq, row);
        self.file.write_all(&frame)?;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Atomically replaces the log's contents with exactly `rows`
    /// (contiguous seqs from `first_seq`): the new file is built aside and
    /// renamed over the old one through [`fsio::write_atomic`], so a crash
    /// mid-rewrite leaves either the old complete log or the new one —
    /// never a half-truncated file that loses acked rows. Used when the
    /// log must shrink to a *non-empty* suffix (recovery dedup, boundary
    /// seals that keep a pending tail); a shrink to empty can use the
    /// cheaper [`Wal::reset`] because no unsealed acked row remains.
    pub fn rewrite(&mut self, first_seq: u64, rows: &[Record]) -> Result<(), MqdError> {
        let mut buf = Vec::with_capacity(HEADER_LEN as usize + 32 * rows.len());
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        for (i, row) in rows.iter().enumerate() {
            put_frame(&mut buf, first_seq + i as u64, row);
        }
        fsio::write_atomic(&self.path, &buf, self.fsync)?;
        // The old handle points at the replaced inode; reopen the new file
        // positioned for appends.
        self.file = fsio::open_rw(&self.path)?;
        self.file.seek(SeekFrom::End(0))?;
        self.bytes = buf.len() as u64;
        Ok(())
    }

    /// The durability point: flushes appended frames to stable storage.
    /// The server acks `+OK` only after this returns. No-op without fsync.
    pub fn sync(&mut self) -> Result<(), MqdError> {
        if self.fsync {
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Empties the log back to a bare header, after its rows were sealed
    /// into a durable segment block. The block write (and its directory
    /// sync) must complete first: a crash between seal and reset leaves a
    /// stale WAL whose seqs the recovery path deduplicates.
    pub fn reset(&mut self) -> Result<(), MqdError> {
        fsio::truncate_file(&self.file, HEADER_LEN, self.fsync)?;
        self.file.seek(SeekFrom::Start(HEADER_LEN))?;
        self.bytes = HEADER_LEN;
        Ok(())
    }

    /// Current log size in bytes (header included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Encodes one frame (length-prefixed checksummed body) onto `buf`.
fn put_frame(buf: &mut Vec<u8>, seq: u64, row: &Record) {
    let mut body = Vec::with_capacity(16 + 2 * row.labels.len());
    put_varint(&mut body, seq);
    put_varint(&mut body, row.id);
    put_varint_i64(&mut body, row.value);
    put_varint(&mut body, row.labels.len() as u64);
    for &l in &row.labels {
        put_varint(&mut body, l as u64);
    }
    put_varint(buf, body.len() as u64);
    buf.extend_from_slice(&body);
    buf.extend_from_slice(&fnv1a(&body).to_be_bytes());
}

/// Decodes the frame at `at`. Returns `(end_offset, seq, row)` for an
/// intact frame whose seq continues `expected`, `None` for anything torn,
/// corrupt, or out of sequence — the caller truncates there.
fn decode_frame(data: &[u8], at: usize, expected: Option<u64>) -> Option<(usize, u64, Record)> {
    let mut c = Cursor::new(data.get(at..)?);
    let body_len = c.get_varint().ok()?;
    if body_len > MAX_FRAME_BODY {
        return None;
    }
    let body_start = at + c.position();
    let body_end = body_start.checked_add(body_len as usize)?;
    let frame_end = body_end.checked_add(8)?;
    if frame_end > data.len() {
        return None;
    }
    let body = data.get(body_start..body_end)?;
    let stored = u64::from_be_bytes(data.get(body_end..frame_end)?.try_into().ok()?);
    if fnv1a(body) != stored {
        return None;
    }
    let mut b = Cursor::new(body);
    let seq = b.get_varint().ok()?;
    if let Some(want) = expected {
        if seq != want {
            return None;
        }
    }
    let id = b.get_varint().ok()?;
    let value = b.get_varint_i64().ok()?;
    // Each label is at least one body byte, so a count past the cursor's
    // remaining bytes is torn/corrupt — and preallocating for it would let
    // a hostile frame request the allocation before validation runs.
    let nlabels = b.get_varint().ok()?;
    let mut labels = Vec::with_capacity(b.plausible_len(nlabels, 1, "label").ok()?);
    for _ in 0..nlabels {
        let l = b.get_varint().ok()?;
        labels.push(u16::try_from(l).ok()?);
    }
    if b.has_remaining() {
        return None;
    }
    Some((frame_end, seq, Record { id, value, labels }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: u64, value: i64, labels: &[u16]) -> Record {
        Record {
            id,
            value,
            labels: labels.to_vec(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mqd-wal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_sync_reopen_round_trips() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal");
        let mut rec = Wal::open(&path, true).unwrap();
        assert!(rec.rows.is_empty());
        for i in 0..10u64 {
            rec.wal
                .append(i, &row(i + 1, i as i64 * 7, &[0, (i % 3) as u16]))
                .unwrap();
        }
        rec.wal.sync().unwrap();
        let bytes = rec.wal.bytes();
        drop(rec);

        let rec2 = Wal::open(&path, true).unwrap();
        assert_eq!(rec2.truncated_bytes, 0);
        assert_eq!(rec2.wal.bytes(), bytes);
        assert_eq!(rec2.rows.len(), 10);
        assert_eq!(rec2.rows[3].0, 3);
        assert_eq!(rec2.rows[3].1, row(4, 21, &[0, 0]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmpdir("torn");
        let path = dir.join("wal");
        let mut rec = Wal::open(&path, false).unwrap();
        for i in 0..5u64 {
            rec.wal.append(i, &row(i, i as i64, &[1])).unwrap();
        }
        rec.wal.sync().unwrap();
        drop(rec);
        // Chop mid-frame: the last frame is torn.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();

        let rec = Wal::open(&path, false).unwrap();
        assert_eq!(rec.rows.len(), 4, "intact prefix survives");
        assert!(rec.truncated_bytes > 0);
        drop(rec);
        // After truncation the file reopens clean.
        let rec = Wal::open(&path, false).unwrap();
        assert_eq!(rec.rows.len(), 4);
        assert_eq!(rec.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_bitflip_truncates_from_the_flip() {
        let dir = tmpdir("flip");
        let path = dir.join("wal");
        let mut rec = Wal::open(&path, false).unwrap();
        for i in 0..8u64 {
            rec.wal.append(i, &row(i, i as i64, &[2])).unwrap();
        }
        rec.wal.sync().unwrap();
        drop(rec);
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x40;
        std::fs::write(&path, &data).unwrap();

        let rec = Wal::open(&path, false).unwrap();
        // Some prefix survives; nothing fabricated, order intact.
        assert!(rec.rows.len() < 8);
        for (i, (seq, r)) in rec.rows.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(r.id, i as u64);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_header_reopens_as_a_fresh_log() {
        let dir = tmpdir("torn-hdr");
        let path = dir.join("wal");
        // Every sub-header prefix — including garbage a torn write could
        // leave — recovers to an empty log instead of refusing to boot.
        for keep in 0..HEADER_LEN as usize {
            std::fs::write(&path, &b"WAL!\x01"[..keep]).unwrap();
            let rec = Wal::open(&path, false).unwrap();
            assert!(rec.rows.is_empty(), "torn to {keep} bytes");
            assert_eq!(rec.truncated_bytes, keep as u64);
            assert_eq!(rec.wal.bytes(), HEADER_LEN);
            drop(rec);
            let rec = Wal::open(&path, false).unwrap();
            assert_eq!(rec.truncated_bytes, 0, "rewritten header must be clean");
        }
        std::fs::write(&path, b"XY").unwrap();
        assert!(Wal::open(&path, false).is_ok(), "short garbage is torn too");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_replaces_contents_atomically() {
        let dir = tmpdir("rewrite");
        let path = dir.join("wal");
        let mut rec = Wal::open(&path, false).unwrap();
        for i in 0..6u64 {
            rec.wal.append(i, &row(i, i as i64, &[0])).unwrap();
        }
        // Shrink to the suffix [4, 6), as a boundary seal would.
        let tail: Vec<Record> = (4..6u64).map(|i| row(i, i as i64, &[0])).collect();
        rec.wal.rewrite(4, &tail).unwrap();
        // Appends continue seamlessly on the new file.
        rec.wal.append(6, &row(6, 6, &[0])).unwrap();
        rec.wal.sync().unwrap();
        drop(rec);
        let rec = Wal::open(&path, false).unwrap();
        assert_eq!(rec.truncated_bytes, 0);
        let seqs: Vec<u64> = rec.rows.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![4, 5, 6]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_header_is_a_typed_error() {
        let dir = tmpdir("hdr");
        let path = dir.join("wal");
        std::fs::write(&path, b"NOPE\x01junkjunkjunk").unwrap();
        let err = match Wal::open(&path, false) {
            Ok(_) => panic!("bad header accepted"),
            Err(e) => e,
        };
        assert!(matches!(err, MqdError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_empties_the_log() {
        let dir = tmpdir("reset");
        let path = dir.join("wal");
        let mut rec = Wal::open(&path, false).unwrap();
        for i in 0..4u64 {
            rec.wal.append(i, &row(i, 0, &[0])).unwrap();
        }
        rec.wal.reset().unwrap();
        assert_eq!(rec.wal.bytes(), HEADER_LEN);
        // Appends continue with later seqs after a reset.
        rec.wal.append(4, &row(4, 1, &[0])).unwrap();
        rec.wal.sync().unwrap();
        drop(rec);
        let rec = Wal::open(&path, false).unwrap();
        assert_eq!(rec.rows.len(), 1);
        assert_eq!(rec.rows[0].0, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
