//! [`DurableStore`]: an [`mqd_store::Store`] with a crash-safe disk life.
//!
//! ## Data layout
//!
//! A data directory holds one `wal` file (the [`crate::wal`] format) and
//! zero or more immutable `seg-<first_seq>.mqds` blocks (the
//! [`crate::segment`] format). The global row sequence number (`seq`,
//! 0-based, equal to the store generation after that row) partitions into
//! fixed *windows* of `segment_rows` rows — the same unit the in-memory
//! store uses for its segments, which is what keeps the recovered
//! process's segmentation (and therefore its `STATS`) byte-identical to
//! the uninterrupted one.
//!
//! ## Write path
//!
//! `append` validates the row against the store contract **first** (an
//! invalid row is never logged), writes the WAL frame, then applies the
//! row in memory. [`DurableStore::sync`] is the ack barrier: the server
//! calls it before answering `+OK`, so an acked row is always replayable.
//! When a window completes, the pending rows are sealed into one block
//! (atomic tempfile+rename, directory synced) and the WAL is reset — a
//! crash between those two steps leaves both the block and a stale WAL,
//! which recovery deduplicates by seq. A graceful shutdown may seal a
//! *partial* block mid-window ([`DurableStore::flush`]); compaction later
//! merges the partial blocks of a completed window into one full block.
//!
//! ## Retention GC
//!
//! With a `retain` span configured, [`DurableStore::run_gc`] drops leading
//! *complete* windows whose newest value lies below both the retention
//! horizon (`tip - retain`) and the caller-supplied live-lease horizon
//! (the smallest `from` / largest λ window any live cache entry,
//! subscription, or named checkpoint may still touch). Whole windows only,
//! never the newest one: the in-memory store drops exactly the same
//! segments, so a query can never observe a half-collected window, and a
//! restart replays exactly the retained suffix (cumulative counters are
//! re-seeded via [`mqd_store::Store::set_origin`]).

use std::path::{Path, PathBuf};

use mqd_core::record::Record;
use mqd_core::MqdError;
use mqd_store::{Store, StoreStats, SEGMENT_TARGET_ROWS};

use crate::fsio;
use crate::segment::{decode_segment, encode_segment};
use crate::wal::Wal;

/// Options for opening a durable store.
#[derive(Clone, Debug)]
pub struct DurableOptions {
    /// Fsync on the durability points (WAL ack barrier, block seal,
    /// directory mutations). Disabling trades crash safety for ingest
    /// throughput; ordering guarantees are kept either way.
    pub fsync: bool,
    /// Rows per window (= in-memory segment target = sealed block size).
    pub segment_rows: usize,
    /// Retention span in value units; windows whose values all lie more
    /// than this far behind the newest value become GC candidates. `None`
    /// retains everything.
    pub retain: Option<i64>,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            fsync: true,
            segment_rows: SEGMENT_TARGET_ROWS,
            retain: None,
        }
    }
}

/// Durability counters, as reported under `"durable"` in `STATS`.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct DurableStats {
    /// Current WAL size in bytes (0 for a memory-only store).
    pub wal_bytes: u64,
    /// Blocks sealed (full windows and partial flushes alike).
    pub segments_flushed: u64,
    /// Window compactions (partial blocks merged into one full block).
    pub compactions: u64,
    /// Rows replayed from disk when this process opened the store.
    pub recovered_rows: u64,
    /// Windows dropped by retention GC over this process's lifetime.
    pub gc_segments: u64,
}

/// One sealed block on disk.
struct BlockMeta {
    first_seq: u64,
    rows: u64,
    max_value: i64,
    path: PathBuf,
}

impl BlockMeta {
    fn window(&self, window: u64) -> u64 {
        self.first_seq / window
    }
}

/// The disk half of a durable store.
struct Disk {
    dir: PathBuf,
    wal: Wal,
    /// Sealed blocks, sorted by `first_seq`, contiguous.
    blocks: Vec<BlockMeta>,
    /// Rows appended since the last seal (mirrors the WAL frames).
    pending: Vec<Record>,
    /// Next global row sequence number.
    next_seq: u64,
    window: u64,
    fsync: bool,
    retain: Option<i64>,
}

/// An [`mqd_store::Store`] with optional WAL + sealed-segment persistence.
/// Memory-only mode ([`DurableStore::memory`]) behaves exactly like the
/// bare store, so the server has a single code path.
pub struct DurableStore {
    store: Store,
    disk: Option<Disk>,
    segments_flushed: u64,
    compactions: u64,
    recovered_rows: u64,
    gc_segments: u64,
}

impl DurableStore {
    /// A memory-only store (no data dir): nothing is persisted.
    pub fn memory() -> Self {
        Self::memory_with_target(SEGMENT_TARGET_ROWS)
    }

    /// Memory-only with a custom segment target (test hook).
    pub fn memory_with_target(target: usize) -> Self {
        DurableStore {
            store: Store::with_segment_target(target),
            disk: None,
            segments_flushed: 0,
            compactions: 0,
            recovered_rows: 0,
            gc_segments: 0,
        }
    }

    /// Opens (creating or recovering) the durable store in `dir`.
    ///
    /// Recovery order: leftover `.tmp` files are removed, sealed blocks
    /// are decoded and replayed in seq order (validating contiguity and
    /// window alignment; a block fully covered by its predecessors is a
    /// crashed compaction's leftover and is deleted, not fatal), then the
    /// WAL tail is replayed — tolerating a torn final frame (truncated,
    /// never a panic) and deduplicating frames whose seq a sealed block
    /// already covers. Complete windows the crash left pending are sealed
    /// before returning.
    pub fn open(dir: &Path, opts: &DurableOptions) -> Result<Self, MqdError> {
        let window = opts.segment_rows.max(1) as u64;
        fsio::ensure_dir(dir)?;
        let mut store = Store::with_segment_target(opts.segment_rows.max(1));

        // Crashed mid-write leftovers are not data: remove them first.
        let mut blocks: Vec<BlockMeta> = Vec::new();
        let mut names: Vec<(PathBuf, bool)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let is_tmp = name.ends_with(".tmp");
            if is_tmp || (name.starts_with("seg-") && name.ends_with(".mqds")) {
                names.push((entry.path(), is_tmp));
            }
        }
        names.sort();
        for (path, is_tmp) in names {
            if is_tmp {
                fsio::remove_durable(&path, opts.fsync)?;
                continue;
            }
            let seg = decode_segment(&std::fs::read(&path)?)?;
            blocks.push(BlockMeta {
                first_seq: seg.first_seq,
                rows: seg.rows.len() as u64,
                max_value: seg.max_value,
                path: path.clone(),
            });
        }
        blocks.sort_by_key(|b| b.first_seq);
        if let Some(first) = blocks.first() {
            if first.first_seq % window != 0 {
                return Err(MqdError::Corrupt {
                    offset: 0,
                    reason: format!(
                        "first block seq {} is not aligned to the {window}-row window",
                        first.first_seq
                    ),
                });
            }
            store.set_origin(first.first_seq);
        }
        let mut expected = blocks.first().map_or(0, |b| b.first_seq);
        let mut kept: Vec<BlockMeta> = Vec::with_capacity(blocks.len());
        for b in blocks {
            if b.first_seq.saturating_add(b.rows) <= expected {
                // Every row of this block is already covered by the kept
                // prefix: a compaction crashed between the merged block's
                // rename and this partial's removal. Finish the
                // interrupted delete instead of refusing to open.
                fsio::remove_durable(&b.path, opts.fsync)?;
                continue;
            }
            if b.first_seq != expected {
                return Err(MqdError::Corrupt {
                    offset: 0,
                    reason: format!(
                        "block {} starts at seq {}, expected {expected} (missing or overlapping block)",
                        b.path.display(),
                        b.first_seq
                    ),
                });
            }
            expected += b.rows;
            kept.push(b);
        }
        let blocks = kept;
        // Replay the blocks into memory (this re-derives the inverted
        // indexes the store keeps; the block's own index was validated on
        // decode). Decoding twice (meta pass above, rows here) keeps the
        // meta scan allocation-light; blocks are read at most twice.
        let mut recovered_rows = 0u64;
        for b in &blocks {
            let seg = decode_segment(&std::fs::read(&b.path)?)?;
            for row in seg.rows {
                store.append(row)?;
                recovered_rows += 1;
            }
        }

        // WAL tail: skip frames a sealed block already covers (the
        // seal-then-reset crash window), then replay the rest in order.
        let rec = Wal::open(&dir.join("wal"), opts.fsync)?;
        let mut wal = rec.wal;
        let mut pending: Vec<Record> = Vec::new();
        let mut skipped = 0usize;
        for (seq, row) in rec.rows {
            if seq < expected {
                skipped += 1;
                continue;
            }
            if seq != expected {
                return Err(MqdError::Corrupt {
                    offset: 0,
                    reason: format!("WAL frame seq {seq} leaves a gap (expected {expected})"),
                });
            }
            store.append(row.clone())?;
            recovered_rows += 1;
            pending.push(row);
            expected += 1;
        }
        if skipped > 0 {
            // Restore the invariant "WAL contents == pending rows". The
            // rewrite is atomic (build aside, rename over), so a crash
            // here leaves either the stale-but-complete old log or the
            // deduplicated new one — never a half-written file that loses
            // the acked tail.
            wal.rewrite(expected - pending.len() as u64, &pending)?;
        }

        let mut out = DurableStore {
            store,
            disk: Some(Disk {
                dir: dir.to_path_buf(),
                wal,
                blocks,
                pending,
                next_seq: expected,
                window,
                fsync: opts.fsync,
                retain: opts.retain,
            }),
            segments_flushed: 0,
            compactions: 0,
            recovered_rows,
            gc_segments: 0,
        };
        // A kill after the WAL write of a window's final row but before
        // its seal leaves one or more complete windows pending: seal them
        // now (window-aligned chunks, partial tail stays pending) so no
        // later seal emits a block crossing a window boundary — GC and
        // compaction group blocks strictly by window and would otherwise
        // skip the oversized leading group forever. Then catch up on
        // compactions a crash interrupted.
        out.seal(false)?;
        out.compact_complete_windows()?;
        Ok(out)
    }

    /// The wrapped store (all read paths go through this).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Current generation (bumps on every append).
    pub fn generation(&self) -> u64 {
        self.store.generation()
    }

    /// Store-wide counters.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Durability counters.
    pub fn durable_stats(&self) -> DurableStats {
        DurableStats {
            wal_bytes: self.disk.as_ref().map_or(0, |d| d.wal.bytes()),
            segments_flushed: self.segments_flushed,
            compactions: self.compactions,
            recovered_rows: self.recovered_rows,
            gc_segments: self.gc_segments,
        }
    }

    /// Whether a data dir backs this store.
    pub fn is_durable(&self) -> bool {
        self.disk.is_some()
    }

    /// The data directory, when durable.
    pub fn data_dir(&self) -> Option<&Path> {
        self.disk.as_ref().map(|d| d.dir.as_path())
    }

    /// Whether retention GC is configured.
    pub fn wants_gc(&self) -> bool {
        self.disk.as_ref().is_some_and(|d| d.retain.is_some())
    }

    /// Appends one row: validate, WAL, then memory. Not durable until
    /// [`DurableStore::sync`] — the server syncs once per ingest request,
    /// before acking.
    pub fn append(&mut self, row: &Record) -> Result<(), MqdError> {
        let normalized = self.store.check_append(row)?;
        if let Some(disk) = self.disk.as_mut() {
            disk.wal.append(disk.next_seq, &normalized)?;
            disk.pending.push(normalized.clone());
            disk.next_seq += 1;
        }
        self.store.append(normalized)?;
        if self
            .disk
            .as_ref()
            .is_some_and(|d| d.next_seq % d.window == 0 && !d.pending.is_empty())
        {
            self.seal(false)?;
            self.compact_complete_windows()?;
        }
        Ok(())
    }

    /// The ack barrier: fsyncs WAL appends since the last sync.
    pub fn sync(&mut self) -> Result<(), MqdError> {
        match self.disk.as_mut() {
            Some(disk) => disk.wal.sync(),
            None => Ok(()),
        }
    }

    /// Seals any pending rows into (possibly partial) blocks — the
    /// graceful-shutdown path, leaving an empty WAL behind.
    pub fn flush(&mut self) -> Result<(), MqdError> {
        self.seal(true)
    }

    /// Seals pending rows into immutable blocks, one chunk per window
    /// boundary crossed — a block never spans two windows, the invariant
    /// GC and compaction group by. With `partial_tail` the trailing
    /// sub-window rows seal too (graceful shutdown); without it they stay
    /// pending. Block writes are atomic and directory-synced *before* the
    /// WAL shrinks, so a crash in between only leaves benign duplicates;
    /// the shrink itself is a reset when nothing stays pending and an
    /// atomic rewrite otherwise.
    fn seal(&mut self, partial_tail: bool) -> Result<(), MqdError> {
        let Some(disk) = self.disk.as_mut() else {
            return Ok(());
        };
        let mut sealed = 0usize;
        loop {
            let left = disk.pending.len() - sealed;
            if left == 0 {
                break;
            }
            let first_seq = disk.next_seq - left as u64;
            let to_boundary = (disk.window - first_seq % disk.window) as usize;
            let take = if left >= to_boundary {
                to_boundary
            } else if partial_tail {
                left
            } else {
                break;
            };
            // lint:allow(panic-path): sealed + take <= pending.len() by the bounds above
            let chunk = &disk.pending[sealed..sealed + take];
            let blob = encode_segment(first_seq, chunk);
            let path = disk.dir.join(format!("seg-{first_seq:016}.mqds"));
            fsio::write_atomic(&path, &blob, disk.fsync)?;
            disk.blocks.push(BlockMeta {
                first_seq,
                rows: take as u64,
                max_value: chunk.last().map_or(0, |r| r.value),
                path,
            });
            sealed += take;
            self.segments_flushed += 1;
        }
        if sealed > 0 {
            disk.pending.drain(..sealed);
            if disk.pending.is_empty() {
                disk.wal.reset()?;
            } else {
                let tail_first = disk.next_seq - disk.pending.len() as u64;
                disk.wal.rewrite(tail_first, &disk.pending)?;
            }
        }
        Ok(())
    }

    /// Merges every *complete* window that is split across several blocks
    /// (partial seals from graceful shutdowns) into one full-window block.
    /// Runs after each window-completing seal and once at open, so a
    /// crash mid-compaction is retried, not lost. Pure bookkeeping: the
    /// row set, the in-memory store, and every query answer are unchanged.
    fn compact_complete_windows(&mut self) -> Result<(), MqdError> {
        let Some(disk) = self.disk.as_mut() else {
            return Ok(());
        };
        let window = disk.window;
        let mut at = 0usize;
        while at < disk.blocks.len() {
            let w = disk.blocks[at].window(window);
            let mut end = at;
            let mut rows = 0u64;
            while end < disk.blocks.len() && disk.blocks[end].window(window) == w {
                rows += disk.blocks[end].rows;
                end += 1;
            }
            let complete = rows == window;
            if !complete || end - at < 2 {
                at = end;
                continue;
            }
            // Merge blocks [at, end) into one full-window block.
            let mut merged: Vec<Record> = Vec::with_capacity(rows as usize);
            // lint:allow(panic-path): at < end <= blocks.len() by the scan loop above
            for b in &disk.blocks[at..end] {
                merged.extend(decode_segment(&std::fs::read(&b.path)?)?.rows);
            }
            let first_seq = disk.blocks[at].first_seq;
            let blob = encode_segment(first_seq, &merged);
            let path = disk.dir.join(format!("seg-{first_seq:016}.mqds"));
            fsio::write_atomic(&path, &blob, disk.fsync)?;
            // lint:allow(panic-path): same bound as the merge loop above
            let removed: Vec<PathBuf> = disk.blocks[at..end]
                .iter()
                .filter(|b| b.path != path)
                .map(|b| b.path.clone())
                .collect();
            for p in removed {
                fsio::remove_durable(&p, disk.fsync)?;
            }
            let max_value = merged.last().map_or(0, |r| r.value);
            disk.blocks.splice(
                at..end,
                [BlockMeta {
                    first_seq,
                    rows: window,
                    max_value,
                    path,
                }],
            );
            self.compactions += 1;
            at += 1;
        }
        Ok(())
    }

    /// Retention GC. `live_horizon` is the smallest value any live lease
    /// (cache entry slice, active subscription, named checkpoint — each
    /// widened by its λ window) may still touch; pass `i64::MAX` when no
    /// lease exists. Drops leading complete windows that are entirely
    /// below both horizons — whole windows only, never the newest — from
    /// disk *and* the in-memory store in lockstep. Returns the number of
    /// windows dropped.
    pub fn run_gc(&mut self, live_horizon: i64) -> Result<u64, MqdError> {
        let Some(disk) = self.disk.as_mut() else {
            return Ok(0);
        };
        let Some(retain) = disk.retain else {
            return Ok(0);
        };
        let Some(tip) = self.store.last_value() else {
            return Ok(0);
        };
        let horizon = tip.saturating_sub(retain).min(live_horizon);
        let window = disk.window;
        let last_window = (disk.next_seq.saturating_sub(1)) / window;
        let mut drop_windows = 0u64;
        let mut drop_blocks = 0usize;
        loop {
            let at = drop_blocks;
            let Some(first) = disk.blocks.get(at) else {
                break;
            };
            let w = first.window(window);
            if w >= last_window {
                break; // never the newest window
            }
            let mut end = at;
            let mut rows = 0u64;
            let mut max_value = i64::MIN;
            while end < disk.blocks.len() && disk.blocks[end].window(window) == w {
                rows += disk.blocks[end].rows;
                max_value = max_value.max(disk.blocks[end].max_value);
                end += 1;
            }
            if rows != window || max_value >= horizon {
                break; // incomplete window, or still inside a horizon
            }
            drop_windows += 1;
            drop_blocks = end;
        }
        if drop_windows == 0 {
            return Ok(0);
        }
        for b in disk.blocks.drain(..drop_blocks) {
            fsio::remove_durable(&b.path, disk.fsync)?;
        }
        self.store.drop_leading_segments(drop_windows as usize);
        self.gc_segments += drop_windows;
        Ok(drop_windows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: u64, value: i64, labels: &[u16]) -> Record {
        Record {
            id,
            value,
            labels: labels.to_vec(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mqd-durable-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts(window: usize) -> DurableOptions {
        DurableOptions {
            fsync: false, // tests exercise logic, not the disk cache
            segment_rows: window,
            retain: None,
        }
    }

    fn ingest(ds: &mut DurableStore, range: std::ops::Range<u64>) {
        for i in range {
            ds.append(&row(i, i as i64 * 10, &[(i % 3) as u16]))
                .unwrap();
        }
        ds.sync().unwrap();
    }

    #[test]
    fn recovery_matches_the_uninterrupted_store() {
        let dir = tmpdir("recover");
        // 10 rows over 4-row windows: 2 sealed blocks + 2 rows in the WAL.
        let mut ds = DurableStore::open(&dir, &opts(4)).unwrap();
        ingest(&mut ds, 0..10);
        let want_stats = ds.store_stats();
        assert_eq!(ds.durable_stats().segments_flushed, 2);
        drop(ds); // no flush: simulates a kill (WAL tail replay required)

        let ds2 = DurableStore::open(&dir, &opts(4)).unwrap();
        assert_eq!(ds2.store_stats(), want_stats);
        assert_eq!(ds2.durable_stats().recovered_rows, 10);
        // Same slices, byte for byte.
        let a = ds2.store().slice(&[0, 1, 2], i64::MIN, i64::MAX);
        assert_eq!(a.instance.len(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_continues_the_sequence_exactly() {
        let dir = tmpdir("continue");
        let mut ds = DurableStore::open(&dir, &opts(4)).unwrap();
        ingest(&mut ds, 0..6);
        drop(ds);
        let mut ds = DurableStore::open(&dir, &opts(4)).unwrap();
        assert_eq!(ds.generation(), 6);
        ingest(&mut ds, 6..9);
        assert_eq!(ds.generation(), 9);
        assert_eq!(ds.store_stats().segments, 3); // 4 + 4 + 1
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn graceful_flush_seals_partials_and_compaction_merges_them() {
        let dir = tmpdir("compact");
        let mut ds = DurableStore::open(&dir, &opts(4)).unwrap();
        ingest(&mut ds, 0..2);
        ds.flush().unwrap(); // partial block [0,2)
        drop(ds);
        let mut ds = DurableStore::open(&dir, &opts(4)).unwrap();
        assert_eq!(ds.durable_stats().recovered_rows, 2);
        ingest(&mut ds, 2..4); // completes window 0 -> seal [2,4) -> compact
        assert_eq!(ds.durable_stats().compactions, 1);
        let blocks: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".mqds"))
            .collect();
        assert_eq!(blocks.len(), 1, "{blocks:?}");
        drop(ds);
        let ds = DurableStore::open(&dir, &opts(4)).unwrap();
        assert_eq!(ds.store_stats().rows, 4);
        assert_eq!(ds.durable_stats().recovered_rows, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_leftover_after_crash_is_deleted_not_fatal() {
        let dir = tmpdir("leftover");
        let mut ds = DurableStore::open(&dir, &opts(4)).unwrap();
        ingest(&mut ds, 0..5); // merged-shape block [0,4) + WAL tail [4,5)
        drop(ds);
        // Re-create the crash window: a compaction renamed the merged
        // block into place but died before removing the partial [2,4) it
        // subsumed.
        let rows: Vec<Record> = (2..4u64)
            .map(|i| row(i, i as i64 * 10, &[(i % 3) as u16]))
            .collect();
        std::fs::write(
            dir.join("seg-0000000000000002.mqds"),
            encode_segment(2, &rows),
        )
        .unwrap();

        let ds = DurableStore::open(&dir, &opts(4)).unwrap();
        assert_eq!(ds.store_stats().rows, 5, "leftover must not block recovery");
        assert!(
            !dir.join("seg-0000000000000002.mqds").exists(),
            "the interrupted delete must be finished"
        );
        drop(ds);
        let ds = DurableStore::open(&dir, &opts(4)).unwrap();
        assert_eq!(ds.store_stats().rows, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn full_windows_left_pending_by_a_crash_are_sealed_at_open() {
        let dir = tmpdir("pending-window");
        let mut ds = DurableStore::open(&dir, &opts(4)).unwrap();
        ingest(&mut ds, 0..3);
        drop(ds);
        // Re-create the crash window: the WAL holds the final rows of
        // window 0 and all of window 1 (kill landed after the WAL writes
        // but before any seal).
        let rec = Wal::open(&dir.join("wal"), false).unwrap();
        let mut wal = rec.wal;
        for i in 3..9u64 {
            wal.append(i, &row(i, i as i64 * 10, &[(i % 3) as u16]))
                .unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        let ds = DurableStore::open(&dir, &opts(4)).unwrap();
        assert_eq!(ds.store_stats().rows, 9);
        // Windows 0 and 1 sealed as separate boundary-aligned blocks; the
        // tail row stays in the WAL.
        let mut blocks: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".mqds"))
            .collect();
        blocks.sort();
        assert_eq!(
            blocks,
            [
                "seg-0000000000000000.mqds".to_string(),
                "seg-0000000000000004.mqds".to_string()
            ]
        );
        // GC still walks the leading windows (no oversized group blocks it).
        let mut o = opts(4);
        o.retain = Some(0);
        drop(ds);
        let mut ds = DurableStore::open(&dir, &o).unwrap();
        assert_eq!(ds.run_gc(i64::MAX).unwrap(), 2);
        ingest(&mut ds, 9..10);
        assert_eq!(ds.store_stats().generation, 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_wal_after_seal_crash_is_deduplicated() {
        let dir = tmpdir("dedupe");
        let mut ds = DurableStore::open(&dir, &opts(4)).unwrap();
        ingest(&mut ds, 0..4); // sealed block, WAL reset
        drop(ds);
        // Re-create the crash window: a WAL that still carries the sealed
        // rows (seal completed, reset did not).
        let rec = Wal::open(&dir.join("wal"), false).unwrap();
        let mut wal = rec.wal;
        for i in 0..4u64 {
            wal.append(i, &row(i, i as i64 * 10, &[(i % 3) as u16]))
                .unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        let ds = DurableStore::open(&dir, &opts(4)).unwrap();
        assert_eq!(
            ds.store_stats().rows,
            4,
            "stale frames must not double-apply"
        );
        drop(ds);
        // And the rewritten WAL reopens clean.
        let ds = DurableStore::open(&dir, &opts(4)).unwrap();
        assert_eq!(ds.store_stats().rows, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_mode_is_the_plain_store() {
        let mut ds = DurableStore::memory_with_target(4);
        ingest(&mut ds, 0..10);
        assert!(!ds.is_durable());
        assert_eq!(ds.durable_stats(), DurableStats::default());
        assert_eq!(ds.store_stats().rows, 10);
    }

    #[test]
    fn invalid_rows_are_rejected_before_the_wal() {
        let dir = tmpdir("reject");
        let mut ds = DurableStore::open(&dir, &opts(4)).unwrap();
        ds.append(&row(1, 10, &[0])).unwrap();
        let wal_bytes = ds.durable_stats().wal_bytes;
        assert!(ds.append(&row(2, 5, &[0])).is_err()); // non-monotone
        assert!(ds.append(&row(3, 20, &[])).is_err()); // empty labels
        assert_eq!(
            ds.durable_stats().wal_bytes,
            wal_bytes,
            "rejected rows must never reach the WAL"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_drops_only_dead_complete_windows_in_lockstep() {
        let dir = tmpdir("gc");
        let mut o = opts(4);
        o.retain = Some(100);
        let mut ds = DurableStore::open(&dir, &o).unwrap();
        // Values 0,10,...,190: windows span 40 value units each.
        ingest(&mut ds, 0..20);
        let before = ds.store_stats();
        assert_eq!(before.segments, 5);

        // A live lease pinning everything: nothing may drop.
        assert_eq!(ds.run_gc(i64::MIN).unwrap(), 0);

        // No lease: horizon = 190 - 100 = 90 -> window 0 (max 30) and
        // window 1 (max 70) die; window 2 (max 110) survives.
        assert_eq!(ds.run_gc(i64::MAX).unwrap(), 2);
        let after = ds.store_stats();
        assert_eq!(after.segments, 3);
        assert_eq!(after.rows, 20, "cumulative counters survive GC");
        assert_eq!(after.generation, 20);
        assert_eq!(after.min_value, Some(80));
        assert_eq!(ds.durable_stats().gc_segments, 2);
        // GC is idempotent at the same tip.
        assert_eq!(ds.run_gc(i64::MAX).unwrap(), 0);

        // A restart replays only the retained suffix and reports the
        // exact same stats (set_origin seeds the cumulative counters).
        drop(ds);
        let ds = DurableStore::open(&dir, &o).unwrap();
        assert_eq!(ds.store_stats(), after);
        assert_eq!(ds.durable_stats().recovered_rows, 12);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_never_drops_the_newest_window() {
        let dir = tmpdir("gc-newest");
        let mut o = opts(4);
        o.retain = Some(0);
        let mut ds = DurableStore::open(&dir, &o).unwrap();
        ingest(&mut ds, 0..8); // exactly two sealed windows
                               // retain=0: horizon is the tip itself, both windows are "dead",
                               // but the newest must survive.
        assert_eq!(ds.run_gc(i64::MAX).unwrap(), 1);
        assert_eq!(ds.store_stats().segments, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
