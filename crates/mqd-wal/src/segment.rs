//! Sealed on-disk segment blocks: immutable row runs with their inverted
//! label index and value summaries.
//!
//! ```text
//! file   := body "END!" checksum:u64_be          (shared framed footer)
//! body   := "MQDS" version:varint first_seq:varint nrows:varint
//!           row*                                 (values delta-coded)
//!           nlabels:varint labelidx*             (sorted by label)
//!           min_value:zigzag max_value:zigzag
//! row    := id:varint dvalue:varint(first row: zigzag absolute)
//!           nlabels:varint label:varint*
//! labelidx := label:varint count:varint min:zigzag max:zigzag
//!             posting:varint*                    (delta-coded row indexes)
//! ```
//!
//! The index and summaries are exactly what [`mqd_store::Store`] would
//! rebuild from the rows — "Succinct Coverage Oracles" is the motivation:
//! recovery should not have to re-derive coverage metadata from raw posts.
//! The decoder bounds-checks every posting and re-verifies the per-label
//! counts against the rows, so a block that passes its checksum still
//! cannot smuggle an inconsistent index into the store.

use std::collections::HashMap;

use mqd_core::record::Record;
use mqd_core::wire::{check_framed, put_varint, put_varint_i64, seal_framed, Cursor};
use mqd_core::MqdError;

/// File magic — aliased from the sanctioned wire module.
pub const MAGIC: [u8; 4] = *mqd_core::wire::SEGMENT_MAGIC;
/// Shared framed footer magic.
const FOOTER: [u8; 4] = *mqd_core::wire::FRAME_FOOTER;
/// Format version.
const VERSION: u64 = 1;
/// Upper bound on rows in one block (sanity bound for decoders; real
/// blocks hold one store segment window, 4096 rows by default).
const MAX_ROWS: u64 = 1 << 22;

/// A decoded segment block.
#[derive(Debug)]
pub struct SegmentFile {
    /// Global sequence number of the first row.
    pub first_seq: u64,
    /// Rows in arrival order (values non-decreasing).
    pub rows: Vec<Record>,
    /// Smallest value in the block.
    pub min_value: i64,
    /// Largest value in the block.
    pub max_value: i64,
}

/// Encodes `rows` (which must be non-empty, label-normalized, and
/// value-monotone — the durable layer only seals rows the store already
/// accepted) into a sealed block.
pub fn encode_segment(first_seq: u64, rows: &[Record]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32 + rows.len() * 8);
    buf.extend_from_slice(&MAGIC);
    put_varint(&mut buf, VERSION);
    put_varint(&mut buf, first_seq);
    put_varint(&mut buf, rows.len() as u64);
    let mut prev_value = 0i64;
    let mut postings: Vec<(u16, Vec<u32>)> = Vec::new();
    let mut slot_of: HashMap<u16, usize> = HashMap::new();
    for (i, row) in rows.iter().enumerate() {
        put_varint(&mut buf, row.id);
        if i == 0 {
            put_varint_i64(&mut buf, row.value);
        } else {
            // Monotone within a block, so the true difference fits u64
            // even across the full i64 span (MIN -> MAX): compute it in
            // the wrapping u64 domain.
            put_varint(&mut buf, (row.value as u64).wrapping_sub(prev_value as u64));
        }
        prev_value = row.value;
        put_varint(&mut buf, row.labels.len() as u64);
        for &l in &row.labels {
            put_varint(&mut buf, l as u64);
            let slot = *slot_of.entry(l).or_insert_with(|| {
                postings.push((l, Vec::new()));
                postings.len() - 1
            });
            postings[slot].1.push(i as u32);
        }
    }
    postings.sort_unstable_by_key(|(l, _)| *l);
    put_varint(&mut buf, postings.len() as u64);
    for (label, list) in &postings {
        put_varint(&mut buf, *label as u64);
        put_varint(&mut buf, list.len() as u64);
        let (lo, hi) = match (list.first(), list.last()) {
            (Some(&a), Some(&b)) => (rows[a as usize].value, rows[b as usize].value),
            _ => (0, 0),
        };
        put_varint_i64(&mut buf, lo);
        put_varint_i64(&mut buf, hi);
        let mut prev = 0u32;
        for &p in list {
            put_varint(&mut buf, (p - prev) as u64);
            prev = p;
        }
    }
    let min_value = rows.first().map_or(0, |r| r.value);
    let max_value = rows.last().map_or(0, |r| r.value);
    put_varint_i64(&mut buf, min_value);
    put_varint_i64(&mut buf, max_value);
    seal_framed(&mut buf, &FOOTER);
    buf
}

/// Decodes and validates a sealed block. Every failure — bad checksum,
/// truncation, out-of-range posting, index/row disagreement — is a typed
/// [`MqdError::Corrupt`].
pub fn decode_segment(data: &[u8]) -> Result<SegmentFile, MqdError> {
    let body = check_framed(data, &FOOTER, MAGIC.len() + 3)?;
    let mut c = Cursor::new(body);
    let magic: [u8; 4] = c.get_array()?;
    if magic != MAGIC {
        return Err(c.corrupt("not a segment block (bad magic)"));
    }
    let version = c.get_varint()?;
    if version != VERSION {
        return Err(c.corrupt(format!("unsupported segment version {version}")));
    }
    let first_seq = c.get_varint()?;
    let nrows = c.get_varint()?;
    if nrows == 0 || nrows > MAX_ROWS {
        return Err(c.corrupt(format!("implausible row count {nrows}")));
    }
    // Each row occupies at least 4 bytes (id, value, label count, one
    // label), so a count past that bound cannot be satisfied by the
    // remaining body — reject before preallocating for it.
    let mut rows = Vec::with_capacity(c.plausible_len(nrows, 4, "row")?);
    let mut value = 0i64;
    let mut label_counts: HashMap<u16, u64> = HashMap::new();
    for i in 0..nrows {
        let id = c.get_varint()?;
        value = if i == 0 {
            c.get_varint_i64()?
        } else {
            // Deltas are non-negative (monotone values), so the true sum
            // is `value + delta` — compute it in i128 where it cannot
            // wrap, and reject anything past the i64 range instead of
            // folding it into a plausible-but-wrong value.
            let delta = c.get_varint()?;
            let next = value as i128 + delta as i128;
            if next > i64::MAX as i128 {
                return Err(c.corrupt("value delta overflow"));
            }
            next as i64
        };
        let nlabels = c.get_varint()?;
        if nlabels == 0 || nlabels > u16::MAX as u64 + 1 {
            return Err(c.corrupt(format!("implausible label count {nlabels}")));
        }
        let mut labels = Vec::with_capacity(c.plausible_len(nlabels, 1, "label")?);
        let mut prev: Option<u16> = None;
        for _ in 0..nlabels {
            let l = c.get_varint()?;
            let l = u16::try_from(l).map_err(|_| c.corrupt("label out of range"))?;
            if prev.is_some_and(|p| l <= p) {
                return Err(c.corrupt("row labels not sorted/deduped"));
            }
            prev = Some(l);
            labels.push(l);
            *label_counts.entry(l).or_insert(0) += 1;
        }
        rows.push(Record { id, value, labels });
    }
    // The inverted index: validated against the rows, not trusted.
    let nidx = c.get_varint()?;
    if nidx as usize != label_counts.len() {
        return Err(c.corrupt("label index count disagrees with rows"));
    }
    let mut prev_label: Option<u16> = None;
    for _ in 0..nidx {
        let label = c.get_varint()?;
        let label = u16::try_from(label).map_err(|_| c.corrupt("index label out of range"))?;
        if prev_label.is_some_and(|p| label <= p) {
            return Err(c.corrupt("label index not sorted"));
        }
        prev_label = Some(label);
        let count = c.get_varint()?;
        if label_counts.get(&label).copied() != Some(count) {
            return Err(c.corrupt("label index count disagrees with rows"));
        }
        let sum_min = c.get_varint_i64()?;
        let sum_max = c.get_varint_i64()?;
        let mut posting = 0u64;
        let mut span: Option<(i64, i64)> = None;
        for i in 0..count {
            let delta = c.get_varint()?;
            posting = if i == 0 {
                delta
            } else {
                posting
                    .checked_add(delta)
                    .ok_or_else(|| c.corrupt("posting delta overflow"))?
            };
            if posting >= nrows {
                return Err(c.corrupt("posting index out of range"));
            }
            let row = &rows[posting as usize];
            if !row.labels.contains(&label) {
                return Err(c.corrupt("posting points at a row without the label"));
            }
            span = match span {
                None => Some((row.value, row.value)),
                Some((lo, _)) => Some((lo, row.value)),
            };
        }
        if span.is_some_and(|(lo, hi)| (lo, hi) != (sum_min, sum_max)) {
            return Err(c.corrupt("per-label value summary disagrees with rows"));
        }
    }
    let min_value = c.get_varint_i64()?;
    let max_value = c.get_varint_i64()?;
    let (want_min, want_max) = (
        rows.first().map_or(0, |r| r.value),
        rows.last().map_or(0, |r| r.value),
    );
    if min_value != want_min || max_value != want_max {
        return Err(c.corrupt("value summary disagrees with rows"));
    }
    if c.has_remaining() {
        return Err(c.corrupt("trailing bytes after segment payload"));
    }
    Ok(SegmentFile {
        first_seq,
        rows,
        min_value,
        max_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: u64) -> Vec<Record> {
        (0..n)
            .map(|i| Record {
                id: 100 + i,
                value: (i as i64) * 3,
                labels: vec![(i % 4) as u16, 7],
            })
            .collect()
    }

    #[test]
    fn encode_decode_round_trips() {
        let rs = rows(50);
        let blob = encode_segment(4096, &rs);
        let seg = decode_segment(&blob).unwrap();
        assert_eq!(seg.first_seq, 4096);
        assert_eq!(seg.rows, rs);
        assert_eq!(seg.min_value, 0);
        assert_eq!(seg.max_value, 147);
    }

    #[test]
    fn every_bitflip_is_detected() {
        let rs = rows(20);
        let blob = encode_segment(0, &rs);
        for at in 0..blob.len() {
            let mut bad = blob.clone();
            bad[at] ^= 0x01;
            match decode_segment(&bad) {
                Err(MqdError::Corrupt { .. }) => {}
                Err(other) => panic!("flip at {at}: unexpected error kind {other:?}"),
                Ok(_) => panic!("flip at {at}: corruption accepted"),
            }
        }
    }

    #[test]
    fn truncations_are_detected() {
        let blob = encode_segment(0, &rows(20));
        for keep in 0..blob.len() {
            assert!(
                decode_segment(&blob[..keep]).is_err(),
                "truncation to {keep} bytes accepted"
            );
        }
    }

    /// Builds a correctly framed (valid checksum) body from raw parts, so
    /// the decoder — not the frame check — must reject it.
    fn sealed(body_tail: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        put_varint(&mut buf, VERSION);
        put_varint(&mut buf, 0); // first_seq
        buf.extend_from_slice(body_tail);
        seal_framed(&mut buf, &FOOTER);
        buf
    }

    #[test]
    fn corrupt_delta_is_a_typed_error_not_a_wrap() {
        // Two rows: the second one's delta pushes the value past i64::MAX.
        // The frame checksum is valid, so only the checked delta
        // arithmetic stands between this block and a plausible-but-wrong
        // value entering the store.
        let mut tail = Vec::new();
        put_varint(&mut tail, 2); // nrows
        put_varint(&mut tail, 1); // row 0: id
        put_varint_i64(&mut tail, i64::MAX - 1); // absolute value
        put_varint(&mut tail, 1); // nlabels
        put_varint(&mut tail, 0); // label
        put_varint(&mut tail, 2); // row 1: id
        put_varint(&mut tail, 3); // delta -> i64::MAX + 2, past the range
        let blob = sealed(&tail);
        match decode_segment(&blob) {
            Err(MqdError::Corrupt { reason, .. }) => {
                assert!(reason.contains("delta overflow"), "got: {reason}")
            }
            other => panic!("corrupt delta accepted: {other:?}"),
        }

        // Same shape but wrapping the whole u64 domain from a small value.
        let mut tail = Vec::new();
        put_varint(&mut tail, 2);
        put_varint(&mut tail, 1);
        put_varint_i64(&mut tail, 5);
        put_varint(&mut tail, 1);
        put_varint(&mut tail, 0);
        put_varint(&mut tail, 2);
        put_varint(&mut tail, u64::MAX - 3); // wraps to 1 under wrapping_add
        match decode_segment(&sealed(&tail)) {
            Err(MqdError::Corrupt { reason, .. }) => {
                assert!(reason.contains("delta overflow"), "got: {reason}")
            }
            other => panic!("wrapping delta accepted: {other:?}"),
        }
    }

    #[test]
    fn huge_length_fields_fail_before_allocating() {
        // nrows = MAX_ROWS passes the sanity bound but cannot fit in a
        // tiny body; the decoder must reject it without preallocating
        // MAX_ROWS row slots.
        let mut tail = Vec::new();
        put_varint(&mut tail, MAX_ROWS);
        match decode_segment(&sealed(&tail)) {
            Err(MqdError::Corrupt { reason, .. }) => {
                assert!(reason.contains("count"), "got: {reason}")
            }
            other => panic!("implausible nrows accepted: {other:?}"),
        }

        // A row claiming 65536 labels inside a few remaining bytes.
        let mut tail = Vec::new();
        put_varint(&mut tail, 1); // nrows
        put_varint(&mut tail, 7); // id
        put_varint_i64(&mut tail, 0); // value
        put_varint(&mut tail, u16::MAX as u64 + 1); // nlabels, passes the u16 bound
        match decode_segment(&sealed(&tail)) {
            Err(MqdError::Corrupt { reason, .. }) => {
                assert!(reason.contains("count"), "got: {reason}")
            }
            other => panic!("implausible nlabels accepted: {other:?}"),
        }
    }

    #[test]
    fn extreme_values_survive() {
        let rs = vec![
            Record {
                id: 1,
                value: i64::MIN,
                labels: vec![0],
            },
            Record {
                id: 2,
                value: i64::MAX,
                labels: vec![0, 1],
            },
        ];
        let blob = encode_segment(0, &rs);
        // The MIN -> MAX delta is exactly u64::MAX; the wrapping-domain
        // coding must carry it without overflow.
        match decode_segment(&blob) {
            Ok(seg) => assert_eq!(seg.rows, rs),
            Err(e) => panic!("extreme round trip failed: {e}"),
        }
    }
}
