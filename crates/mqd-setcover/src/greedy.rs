//! Greedy set cover over explicitly materialized sets.
//!
//! This is the classic `ln k`-approximate greedy used by the paper's
//! GreedySC (Section 4.2) and by the windowed streaming variant
//! (Section 5.2). Two selection strategies are provided:
//!
//! * [`greedy_cover`] — each round scans all sets for the one covering the
//!   most uncovered elements. This mirrors the paper's implementation note
//!   in Section 7.3 (they found a scan to beat a heap on their data).
//! * [`lazy_greedy_cover`] — the standard lazy-evaluation variant exploiting
//!   submodularity: set sizes only shrink, so a stale max-heap entry whose
//!   recomputed gain still tops the heap is safe to pick.
//!
//! Both produce identical covers when ties are broken identically; the
//! ablation benchmark `ablation_greedy_heap` compares their running times.

use crate::bitset::BitSet;

/// When the greedy loop may stop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Goal {
    /// Run until every element is covered (or no set makes progress).
    CoverAll,
    /// Run only until the given element is covered — used by
    /// StreamGreedySC+ which stops as soon as the oldest uncovered post is
    /// covered (Section 5.2).
    CoverElement(u32),
}

fn goal_met(goal: Goal, covered: &BitSet) -> bool {
    match goal {
        Goal::CoverAll => covered.all_set(),
        Goal::CoverElement(e) => covered.get(e),
    }
}

/// Greedy set cover, scan-max selection.
///
/// `sets[k]` lists the element ids covered by picking `k`; `covered` is the
/// initial coverage state (elements already covered by earlier decisions)
/// and is updated in place. Returns the picked set indices in pick order.
///
/// Sets that cover no new element are never picked; if the goal is
/// unreachable the loop stops when no set makes progress.
pub fn greedy_cover(sets: &[Vec<u32>], covered: &mut BitSet, goal: Goal) -> Vec<usize> {
    let mut picked = Vec::new();
    let mut gain: Vec<u32> = sets
        .iter()
        .map(|s| s.iter().filter(|&&e| !covered.get(e)).count() as u32)
        .collect();
    while !goal_met(goal, covered) {
        let (best, &best_gain) = match gain
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        {
            Some(m) => m,
            None => break,
        };
        if best_gain == 0 {
            break;
        }
        picked.push(best);
        for &e in &sets[best] {
            if covered.set(e) {
                // Decrement the gain of every other set containing e lazily:
                // gains are recomputed below instead, to keep this variant
                // faithful to the paper's "iterate all sets" loop.
            }
        }
        for (k, g) in gain.iter_mut().enumerate() {
            *g = sets[k].iter().filter(|&&e| !covered.get(e)).count() as u32;
        }
    }
    picked
}

/// Greedy set cover, lazy-evaluation (stale max-heap) selection. Produces a
/// cover with the same guarantee; typically far fewer gain recomputations.
pub fn lazy_greedy_cover(sets: &[Vec<u32>], covered: &mut BitSet, goal: Goal) -> Vec<usize> {
    use std::collections::BinaryHeap;
    let mut picked = Vec::new();
    let mut heap: BinaryHeap<(u32, std::cmp::Reverse<usize>)> = sets
        .iter()
        .enumerate()
        .map(|(k, s)| {
            (
                s.iter().filter(|&&e| !covered.get(e)).count() as u32,
                std::cmp::Reverse(k),
            )
        })
        .collect();
    while !goal_met(goal, covered) {
        let (stale_gain, std::cmp::Reverse(k)) = match heap.pop() {
            Some(top) => top,
            None => break,
        };
        if stale_gain == 0 {
            break;
        }
        let fresh: u32 = sets[k].iter().filter(|&&e| !covered.get(e)).count() as u32;
        if fresh < stale_gain {
            // Stale entry: push back with the corrected gain. Submodularity
            // guarantees gains never grow, so this converges.
            if fresh > 0 {
                heap.push((fresh, std::cmp::Reverse(k)));
            }
            continue;
        }
        picked.push(k);
        for &e in &sets[k] {
            covered.set(e);
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(sets: &[Vec<u32>], n: usize, goal: Goal) -> (Vec<usize>, Vec<usize>) {
        let mut c1 = BitSet::new(n);
        let mut c2 = BitSet::new(n);
        (
            greedy_cover(sets, &mut c1, goal),
            lazy_greedy_cover(sets, &mut c2, goal),
        )
    }

    #[test]
    fn covers_simple_universe() {
        let sets = vec![vec![0, 1, 2], vec![2, 3], vec![3, 4], vec![0, 4]];
        let (a, b) = run(&sets, 5, Goal::CoverAll);
        for picks in [&a, &b] {
            let mut cov = BitSet::new(5);
            for &k in picks.iter() {
                for &e in &sets[k] {
                    cov.set(e);
                }
            }
            assert!(cov.all_set(), "picks {picks:?} must cover");
        }
        // Greedy picks the size-3 set first.
        assert_eq!(a[0], 0);
        assert_eq!(b[0], 0);
    }

    #[test]
    fn identical_results_scan_vs_lazy() {
        // Deterministic pseudo-random instances; both variants break ties by
        // smallest set index, so they must agree exactly.
        let mut state = 12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..30 {
            let n = 30;
            let sets: Vec<Vec<u32>> = (0..12)
                .map(|_| {
                    let mut s: Vec<u32> = (0..n as u32).filter(|_| next() % 3 == 0).collect();
                    s.dedup();
                    s
                })
                .collect();
            let (a, b) = run(&sets, n, Goal::CoverAll);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn stops_at_target_element() {
        let sets = vec![vec![5], vec![0, 1], vec![2, 3, 4]];
        let (a, _) = run(&sets, 6, Goal::CoverElement(5));
        // Element 5 is only in set 0 (gain 1); greedy first picks set 2
        // (gain 3), then set 1 (gain 2)? No: goal check happens per round,
        // so it keeps picking until 5 is covered.
        let mut cov = BitSet::new(6);
        for &k in &a {
            for &e in &sets[k] {
                cov.set(e);
            }
        }
        assert!(cov.get(5));
    }

    #[test]
    fn unreachable_goal_terminates() {
        let sets = vec![vec![0]];
        let mut c = BitSet::new(2);
        let picks = greedy_cover(&sets, &mut c, Goal::CoverAll);
        assert_eq!(picks, vec![0]);
        assert!(!c.all_set());
        let mut c = BitSet::new(2);
        let picks = lazy_greedy_cover(&sets, &mut c, Goal::CoverAll);
        assert_eq!(picks, vec![0]);
    }

    #[test]
    fn respects_initial_coverage() {
        let sets = vec![vec![0, 1], vec![2]];
        let mut c = BitSet::new(3);
        c.set(0);
        c.set(1);
        let picks = greedy_cover(&sets, &mut c, Goal::CoverAll);
        assert_eq!(picks, vec![1]);
    }

    #[test]
    fn greedy_ln_bound_on_random_instances() {
        // |greedy| <= H(max set size) * |opt|; we check against a brute-force
        // optimum on small instances.
        let mut state = 99u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            state >> 33
        };
        for _ in 0..20 {
            let n = 10usize;
            let m = 6usize;
            let sets: Vec<Vec<u32>> = (0..m)
                .map(|_| (0..n as u32).filter(|_| next() % 2 == 0).collect())
                .collect();
            // ensure coverable
            let mut universe: Vec<u32> = Vec::new();
            for s in &sets {
                universe.extend(s);
            }
            universe.sort_unstable();
            universe.dedup();
            if universe.len() < n {
                continue;
            }
            // brute force optimum
            let mut opt = usize::MAX;
            for mask in 0u32..(1 << m) {
                let mut cov = BitSet::new(n);
                for (k, s) in sets.iter().enumerate() {
                    if mask & (1 << k) != 0 {
                        for &e in s {
                            cov.set(e);
                        }
                    }
                }
                if cov.all_set() {
                    opt = opt.min(mask.count_ones() as usize);
                }
            }
            let mut c = BitSet::new(n);
            let picks = greedy_cover(&sets, &mut c, Goal::CoverAll);
            let max_set = sets.iter().map(|s| s.len()).max().unwrap_or(1);
            let h: f64 = (1..=max_set).map(|i| 1.0 / i as f64).sum();
            assert!(
                picks.len() as f64 <= h * opt as f64 + 1e-9,
                "greedy {} vs opt {opt} (H={h})",
                picks.len()
            );
        }
    }
}
