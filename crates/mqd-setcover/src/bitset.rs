//! A minimal fixed-capacity bitset used for coverage bookkeeping.

/// Fixed-size bitset over `0..len`.
#[derive(Clone, Debug)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl BitSet {
    /// Creates a bitset of `len` zero bits.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
            ones: 0,
        }
    }

    /// Capacity in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the capacity is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Whether every bit is set.
    #[inline]
    pub fn all_set(&self) -> bool {
        self.ones == self.len
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: u32) -> bool {
        let i = i as usize;
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets bit `i`; returns `true` if it was previously clear.
    #[inline]
    pub fn set(&mut self, i: u32) -> bool {
        let i = i as usize;
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if *w & mask == 0 {
            *w |= mask;
            self.ones += 1;
            true
        } else {
            false
        }
    }

    /// Iterates the indices of clear bits.
    pub fn iter_zeros(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len as u32).filter(|&i| !self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut b = BitSet::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.get(0));
        assert!(b.set(0));
        assert!(!b.set(0));
        assert!(b.set(129));
        assert_eq!(b.count_ones(), 2);
        assert!(b.get(129));
        assert!(!b.get(64));
    }

    #[test]
    fn all_set_and_zeros() {
        let mut b = BitSet::new(3);
        b.set(0);
        b.set(2);
        assert!(!b.all_set());
        assert_eq!(b.iter_zeros().collect::<Vec<_>>(), vec![1]);
        b.set(1);
        assert!(b.all_set());
    }

    #[test]
    fn empty_bitset() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert!(b.all_set());
    }
}
