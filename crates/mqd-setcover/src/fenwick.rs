//! Fenwick (binary indexed) tree over `0/1` marks, used to count uncovered
//! `(post, label)` occurrences inside a value window in `O(log n)`.

/// A Fenwick tree specialised for presence counts: every position starts at
/// 1 ("uncovered") and can be cleared to 0 exactly once.
#[derive(Clone, Debug)]
pub struct PresenceFenwick {
    tree: Vec<u32>,
    present: Vec<bool>,
    remaining: usize,
}

impl PresenceFenwick {
    /// Creates a tree of `n` positions, all marked present.
    pub fn all_present(n: usize) -> Self {
        let mut tree = vec![0u32; n + 1];
        // Linear-time construction of an all-ones Fenwick tree.
        for i in 1..=n {
            tree[i] += 1;
            let j = i + (i & i.wrapping_neg());
            if j <= n {
                tree[j] += tree[i];
            }
        }
        PresenceFenwick {
            tree,
            present: vec![true; n],
            remaining: n,
        }
    }

    /// Number of positions.
    #[inline]
    pub fn len(&self) -> usize {
        self.present.len()
    }

    /// Whether the tree has zero positions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.present.is_empty()
    }

    /// Positions still marked present.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Whether position `i` is still present.
    #[inline]
    pub fn is_present(&self, i: usize) -> bool {
        self.present[i]
    }

    /// Clears position `i`; returns `true` if it was present.
    pub fn clear(&mut self, i: usize) -> bool {
        if !self.present[i] {
            return false;
        }
        self.present[i] = false;
        self.remaining -= 1;
        let mut j = i + 1;
        while j < self.tree.len() {
            self.tree[j] -= 1;
            j += j & j.wrapping_neg();
        }
        true
    }

    /// Count of present positions in `[0, end)`.
    fn prefix(&self, end: usize) -> u32 {
        let mut s = 0;
        let mut j = end;
        while j > 0 {
            s += self.tree[j];
            j -= j & j.wrapping_neg();
        }
        s
    }

    /// Count of present positions in `[lo, hi)`.
    pub fn count_range(&self, lo: usize, hi: usize) -> u32 {
        if lo >= hi {
            0
        } else {
            self.prefix(hi) - self.prefix(lo)
        }
    }

    /// First present position `>= from`, or `None`.
    pub fn first_present_at_or_after(&self, from: usize) -> Option<usize> {
        // Linear probe is fine: each cleared position is skipped at most once
        // per caller that maintains a moving frontier; for ad-hoc queries the
        // windows involved are small.
        (from..self.present.len()).find(|&i| self.present[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_clears() {
        let mut f = PresenceFenwick::all_present(10);
        assert_eq!(f.count_range(0, 10), 10);
        assert_eq!(f.remaining(), 10);
        assert!(f.clear(3));
        assert!(!f.clear(3));
        assert_eq!(f.count_range(0, 10), 9);
        assert_eq!(f.count_range(3, 4), 0);
        assert_eq!(f.count_range(0, 4), 3);
        assert_eq!(f.count_range(4, 10), 6);
        assert_eq!(f.remaining(), 9);
    }

    #[test]
    fn empty_and_degenerate_ranges() {
        let f = PresenceFenwick::all_present(0);
        assert!(f.is_empty());
        let f = PresenceFenwick::all_present(5);
        assert_eq!(f.count_range(3, 3), 0);
        assert_eq!(f.count_range(4, 2), 0);
    }

    #[test]
    fn first_present_scan() {
        let mut f = PresenceFenwick::all_present(5);
        f.clear(0);
        f.clear(1);
        assert_eq!(f.first_present_at_or_after(0), Some(2));
        assert_eq!(f.first_present_at_or_after(3), Some(3));
        f.clear(2);
        f.clear(3);
        f.clear(4);
        assert_eq!(f.first_present_at_or_after(0), None);
    }

    #[test]
    fn matches_naive_on_random_ops() {
        // deterministic pseudo-random without external crates
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 200;
        let mut f = PresenceFenwick::all_present(n);
        let mut naive = vec![true; n];
        for _ in 0..500 {
            let i = (next() % n as u64) as usize;
            assert_eq!(f.clear(i), std::mem::replace(&mut naive[i], false));
            let lo = (next() % n as u64) as usize;
            let hi = (next() % (n as u64 + 1)) as usize;
            let expect = naive[lo.min(hi)..hi.max(lo.min(hi))]
                .iter()
                .filter(|&&b| b)
                .count() as u32;
            assert_eq!(f.count_range(lo.min(hi), hi.max(lo.min(hi))), expect);
        }
    }
}
