//! Generic set-cover substrate for the MQDP algorithms.
//!
//! The paper reduces MQDP to set cover (Section 4.2) and reuses greedy set
//! cover inside the streaming window algorithm (Section 5.2). This crate
//! provides that machinery independent of posts and labels:
//!
//! * [`bitset::BitSet`] — flat coverage bitmaps,
//! * [`fenwick::PresenceFenwick`] — windowed uncovered-element counting for
//!   the implicit (non-materialized) greedy used on large instances,
//! * [`greedy`] — scan-max and lazy-heap greedy set cover over materialized
//!   sets.

#![warn(missing_docs)]

pub mod bitset;
pub mod fenwick;
pub mod greedy;

pub use bitset::BitSet;
pub use fenwick::PresenceFenwick;
pub use greedy::{greedy_cover, lazy_greedy_cover, Goal};
