//! Durable `SUBSCRIBE` sessions: the named-checkpoint file format and the
//! lease registry retention GC consults.
//!
//! A named subscription (`SUBSCRIBE ... NAME <id>`) is checkpointed after
//! every emission chunk into `<data-dir>/subs/<id>`, written atomically
//! through `mqd_wal::fsio`. The file wraps the engine checkpoint from
//! [`mqd_stream::checkpoint`] (which already carries the shard states,
//! emission log, and instance digest) with the subscription's own
//! parameters, so a resuming server can (a) reject a `SUBSCRIBE` whose
//! parameters drifted from the original session with a typed error, and
//! (b) know which store rows the session may still need — its GC lease —
//! without decoding the inner engine state.
//!
//! ```text
//! file   := body "END!" checksum:u64_be       (shared framed footer)
//! body   := "MQSB" version:varint
//!           lambda:zigzag tau:zigzag shards:varint engine:u8
//!           from:zigzag to:zigzag
//!           nlabels:varint label:varint*
//!           inner_len:varint inner_bytes      (mqd_stream checkpoint blob)
//! ```

use std::collections::HashMap;

use mqd_core::wire::{check_framed, put_varint, put_varint_i64, seal_framed, Cursor};
use mqd_core::MqdError;
use mqd_stream::ShardEngineKind;

use crate::protocol::SubscribeSpec;

/// File magic — aliased from the sanctioned wire module.
pub const MAGIC: [u8; 4] = *mqd_core::wire::SUBSCRIPTION_MAGIC;
/// Shared framed footer magic.
const FOOTER: [u8; 4] = *mqd_core::wire::FRAME_FOOTER;
/// Format version.
const VERSION: u64 = 1;
/// Sanity bound on the wrapped engine checkpoint.
const MAX_INNER_BYTES: u64 = 256 * 1024 * 1024;

/// `ShardEngineKind`'s wire tags are crate-private to `mqd-stream`, so the
/// wrapper maps them locally; the match is exhaustive, so a new engine kind
/// fails compilation here instead of silently colliding on a tag.
fn engine_tag(kind: ShardEngineKind) -> u8 {
    match kind {
        ShardEngineKind::Scan => 0,
        ShardEngineKind::ScanPlus => 1,
        ShardEngineKind::Greedy => 2,
        ShardEngineKind::GreedyPlus => 3,
    }
}

fn engine_from_tag(tag: u8) -> Option<ShardEngineKind> {
    Some(match tag {
        0 => ShardEngineKind::Scan,
        1 => ShardEngineKind::ScanPlus,
        2 => ShardEngineKind::Greedy,
        3 => ShardEngineKind::GreedyPlus,
        _ => return None,
    })
}

/// The parameters a checkpoint wrapper pins (everything in the spec except
/// the client-side `after` skip, which does not affect the run).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SubParams {
    /// Subscribed label ids (sorted, deduped).
    pub labels: Vec<u16>,
    /// Coverage threshold.
    pub lambda: i64,
    /// Delay budget.
    pub tau: i64,
    /// Streaming engine.
    pub engine: ShardEngineKind,
    /// Slice lower bound.
    pub from: i64,
    /// Slice upper bound.
    pub to: i64,
    /// Shard count.
    pub shards: usize,
}

impl SubParams {
    /// The wrapper-relevant projection of a `SUBSCRIBE` spec. Labels are
    /// normalized the same way the store slices them, so token order on
    /// the wire does not break resumption.
    pub fn of(spec: &SubscribeSpec) -> SubParams {
        let mut labels = spec.labels.clone();
        labels.sort_unstable();
        labels.dedup();
        SubParams {
            labels,
            lambda: spec.lambda,
            tau: spec.tau,
            engine: spec.engine,
            from: spec.from,
            to: spec.to,
            shards: spec.shards,
        }
    }

    /// Smallest store value this session may still need: the slice start,
    /// widened by λ (repair and coverage decisions look back at most one
    /// window). Full-range sessions lease everything.
    pub fn lease_floor(&self) -> i64 {
        self.from.saturating_sub(self.lambda)
    }
}

/// Wraps an engine checkpoint blob with the session parameters.
pub fn encode_wrapper(params: &SubParams, inner: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + inner.len());
    buf.extend_from_slice(&MAGIC);
    put_varint(&mut buf, VERSION);
    put_varint_i64(&mut buf, params.lambda);
    put_varint_i64(&mut buf, params.tau);
    put_varint(&mut buf, params.shards as u64);
    buf.push(engine_tag(params.engine));
    put_varint_i64(&mut buf, params.from);
    put_varint_i64(&mut buf, params.to);
    put_varint(&mut buf, params.labels.len() as u64);
    for &l in &params.labels {
        put_varint(&mut buf, l as u64);
    }
    put_varint(&mut buf, inner.len() as u64);
    buf.extend_from_slice(inner);
    seal_framed(&mut buf, &FOOTER);
    buf
}

/// Decodes a checkpoint wrapper into its parameters and the inner engine
/// blob. All corruption is a typed [`MqdError::Corrupt`].
pub fn decode_wrapper(data: &[u8]) -> Result<(SubParams, Vec<u8>), MqdError> {
    let body = check_framed(data, &FOOTER, MAGIC.len() + 1)?;
    let mut c = Cursor::new(body);
    let magic: [u8; 4] = c.get_array()?;
    if magic != MAGIC {
        return Err(c.corrupt("not a subscription checkpoint (bad magic)"));
    }
    let version = c.get_varint()?;
    if version != VERSION {
        return Err(c.corrupt(format!("unsupported subscription version {version}")));
    }
    let lambda = c.get_varint_i64()?;
    let tau = c.get_varint_i64()?;
    let shards = c.get_varint()?;
    if shards == 0 || shards > 64 {
        return Err(c.corrupt(format!("implausible shard count {shards}")));
    }
    let shards = shards as usize;
    let tag = c.get_u8()?;
    let engine =
        engine_from_tag(tag).ok_or_else(|| c.corrupt(format!("unknown engine tag {tag}")))?;
    let from = c.get_varint_i64()?;
    let to = c.get_varint_i64()?;
    let nlabels = c.get_varint()?;
    if nlabels == 0 || nlabels > u16::MAX as u64 + 1 {
        return Err(c.corrupt(format!("implausible label count {nlabels}")));
    }
    let mut labels = Vec::with_capacity(c.plausible_len(nlabels, 1, "label")?);
    let mut prev: Option<u16> = None;
    for _ in 0..nlabels {
        let l = c.get_varint()?;
        let l = u16::try_from(l).map_err(|_| c.corrupt("label out of range"))?;
        if prev.is_some_and(|p| l <= p) {
            return Err(c.corrupt("labels not sorted/deduped"));
        }
        prev = Some(l);
        labels.push(l);
    }
    let inner_len = c.get_varint()?;
    if inner_len > MAX_INNER_BYTES {
        return Err(c.corrupt(format!("implausible inner checkpoint size {inner_len}")));
    }
    // The inner blob is raw bytes: a claimed length beyond what remains is
    // corrupt, and preallocating for it first would hand a hostile frame a
    // 256 MiB allocation before validation. Clamp, then bulk-copy.
    let inner_len = c.plausible_len(inner_len, 1, "inner checkpoint byte")?;
    let mut inner = Vec::with_capacity(inner_len);
    for _ in 0..inner_len {
        inner.push(c.get_u8()?);
    }
    if c.has_remaining() {
        return Err(c.corrupt("trailing bytes after subscription checkpoint"));
    }
    Ok((
        SubParams {
            labels,
            lambda,
            tau,
            engine,
            from,
            to,
            shards,
        },
        inner,
    ))
}

/// Live GC leases: named durable subscriptions that may resume and re-read
/// old rows. Keyed by session name; a lease survives server restarts
/// because [`scan_leases`] re-registers every checkpoint file at boot.
#[derive(Default)]
pub struct LeaseRegistry {
    floors: HashMap<String, i64>,
}

impl LeaseRegistry {
    /// Registers (or refreshes) the lease for `name`.
    pub fn register(&mut self, name: &str, params: &SubParams) {
        self.floors.insert(name.to_string(), params.lease_floor());
    }

    /// Drops the lease once the session completed and its checkpoint file
    /// is gone.
    pub fn release(&mut self, name: &str) {
        self.floors.remove(name);
    }

    /// The smallest value any live lease may still need (`i64::MAX` when
    /// no lease exists — nothing constrains GC).
    pub fn floor(&self) -> i64 {
        self.floors.values().copied().min().unwrap_or(i64::MAX)
    }
}

/// Re-registers the lease of every checkpoint file under `subs_dir`.
/// Unreadable or corrupt files are conservative, not fatal: they register
/// an `i64::MIN` floor (blocking GC) rather than silently losing a lease —
/// a corrupt checkpoint still answers its eventual `SUBSCRIBE` with a
/// typed error instead of a hole in the store.
pub fn scan_leases(subs_dir: &std::path::Path, registry: &mut LeaseRegistry) {
    let Ok(entries) = std::fs::read_dir(subs_dir) else {
        return; // no subs dir yet: nothing to lease
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".tmp") {
            continue;
        }
        match std::fs::read(entry.path())
            .map_err(MqdError::from)
            .and_then(|b| decode_wrapper(&b))
        {
            Ok((params, _)) => registry.register(&name, &params),
            Err(_) => {
                registry.floors.insert(name, i64::MIN);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SubParams {
        SubParams {
            labels: vec![0, 3, 9],
            lambda: 50,
            tau: 20,
            engine: ShardEngineKind::GreedyPlus,
            from: -100,
            to: 1_000_000,
            shards: 4,
        }
    }

    #[test]
    fn wrapper_round_trips() {
        let inner = vec![7u8; 133];
        let blob = encode_wrapper(&params(), &inner);
        let (p, i) = decode_wrapper(&blob).unwrap();
        assert_eq!(p, params());
        assert_eq!(i, inner);
    }

    #[test]
    fn wrapper_corruption_is_typed() {
        let blob = encode_wrapper(&params(), &[1, 2, 3]);
        for at in 0..blob.len() {
            let mut bad = blob.clone();
            bad[at] ^= 0x01;
            match decode_wrapper(&bad) {
                Err(MqdError::Corrupt { .. }) => {}
                Err(other) => panic!("flip at {at}: unexpected error kind {other:?}"),
                Ok((p, i)) => {
                    // A flip that round-trips must be a no-op on content
                    // (impossible with a checksum over every byte).
                    panic!("flip at {at} accepted: {p:?} {}b", i.len());
                }
            }
        }
        for keep in 0..blob.len() {
            assert!(
                decode_wrapper(&blob[..keep]).is_err(),
                "truncated to {keep}"
            );
        }
    }

    #[test]
    fn huge_claimed_lengths_fail_before_allocating() {
        // Rewrite a valid wrapper's inner_len to claim MAX_INNER_BYTES and
        // reseal the checksum, so only the length validation stands
        // between the decoder and a 256 MiB preallocation.
        let blob = encode_wrapper(&params(), &[1, 2, 3]);
        let footer = FOOTER.len() + 8;
        let mut body = blob[..blob.len() - footer].to_vec();
        // inner_len is the varint right before the 3 inner bytes.
        let at = body.len() - 4;
        assert_eq!(body[at], 3);
        body.truncate(at);
        put_varint(&mut body, MAX_INNER_BYTES);
        body.extend_from_slice(&[1, 2, 3]);
        seal_framed(&mut body, &FOOTER);
        match decode_wrapper(&body) {
            Err(MqdError::Corrupt { reason, .. }) => {
                assert!(reason.contains("count"), "got: {reason}")
            }
            other => panic!("huge inner_len accepted: {other:?}"),
        }

        // Same attack on nlabels: claim 65536 labels in a tiny body. The
        // label list starts right after from/to; rebuild the prefix by
        // hand and reseal.
        let mut body = Vec::new();
        body.extend_from_slice(&MAGIC);
        put_varint(&mut body, VERSION);
        put_varint_i64(&mut body, 50); // lambda
        put_varint_i64(&mut body, 20); // tau
        put_varint(&mut body, 4); // shards
        body.push(engine_tag(ShardEngineKind::Scan));
        put_varint_i64(&mut body, 0); // from
        put_varint_i64(&mut body, 100); // to
        put_varint(&mut body, u16::MAX as u64 + 1); // nlabels, passes the u16 bound
        put_varint(&mut body, 0); // one actual label
        seal_framed(&mut body, &FOOTER);
        match decode_wrapper(&body) {
            Err(MqdError::Corrupt { reason, .. }) => {
                assert!(reason.contains("count"), "got: {reason}")
            }
            other => panic!("huge nlabels accepted: {other:?}"),
        }
    }

    #[test]
    fn engine_tags_round_trip() {
        for kind in [
            ShardEngineKind::Scan,
            ShardEngineKind::ScanPlus,
            ShardEngineKind::Greedy,
            ShardEngineKind::GreedyPlus,
        ] {
            assert_eq!(engine_from_tag(engine_tag(kind)), Some(kind));
        }
        assert_eq!(engine_from_tag(9), None);
    }

    #[test]
    fn lease_floor_widens_by_lambda_and_saturates() {
        let mut p = params();
        assert_eq!(p.lease_floor(), -150);
        p.from = i64::MIN;
        assert_eq!(p.lease_floor(), i64::MIN, "full-range lease blocks GC");
        let mut reg = LeaseRegistry::default();
        assert_eq!(reg.floor(), i64::MAX);
        reg.register("a", &params());
        reg.register("b", &p);
        assert_eq!(reg.floor(), i64::MIN);
        reg.release("b");
        assert_eq!(reg.floor(), -150);
        reg.release("a");
        assert_eq!(reg.floor(), i64::MAX);
    }
}
