//! Bounded, timeout-tolerant socket line reading, shared by the server's
//! connection handler and the router's frontend (`mqd-router`).
//!
//! The serving processes read request lines off sockets with a short read
//! timeout so a blocked read can observe the drain flag; [`LineReader`]
//! wraps that loop, enforces the request-line size limit, and keeps
//! partial bytes across timeouts so slow writers are never corrupted.

use std::io::{BufRead, Read};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use crate::protocol::MAX_LINE_BYTES;

/// How often a blocked read wakes up to check the drain flag.
pub const READ_TICK: Duration = Duration::from_millis(100);

/// Bounded, timeout-tolerant line reader. A read timeout between requests
/// just re-checks the drain flag; a timeout mid-line keeps the partial
/// bytes, so slow writers are never corrupted.
pub struct LineReader<R: BufRead> {
    inner: R,
    partial: Vec<u8>,
}

/// One read outcome from [`LineReader::next_line`].
pub enum LineEvent {
    /// A complete request line (lossy UTF-8; garbage parses to a typed
    /// protocol error downstream, never a panic).
    Line(String),
    /// Clean end of stream.
    Eof,
    /// The line outgrew [`MAX_LINE_BYTES`]; the connection cannot resync.
    Oversized,
    /// The server is draining and the connection was idle.
    Drained,
}

/// Whether an I/O error is a transient read-timeout-style condition the
/// read loop should retry rather than surface.
pub fn retryable(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::Interrupted
    )
}

impl<R: BufRead> LineReader<R> {
    /// Wraps a buffered reader (the socket should have a [`READ_TICK`]
    /// read timeout set so drain checks happen).
    pub fn new(inner: R) -> Self {
        LineReader {
            inner,
            partial: Vec::new(),
        }
    }

    fn take_line(&mut self) -> LineEvent {
        let mut bytes = std::mem::take(&mut self.partial);
        if bytes.last() == Some(&b'\n') {
            bytes.pop();
        }
        if bytes.last() == Some(&b'\r') {
            bytes.pop();
        }
        LineEvent::Line(String::from_utf8_lossy(&bytes).into_owned())
    }

    /// Reads the next request line, waking on read timeouts to observe
    /// `draining`.
    pub fn next_line(&mut self, draining: &AtomicBool) -> std::io::Result<LineEvent> {
        loop {
            if self.partial.len() > MAX_LINE_BYTES {
                return Ok(LineEvent::Oversized);
            }
            let budget = (MAX_LINE_BYTES + 1 - self.partial.len()) as u64;
            match self
                .inner
                .by_ref()
                .take(budget)
                .read_until(b'\n', &mut self.partial)
            {
                Ok(0) => {
                    // Peer EOF (possibly a half-closed socket mid-line).
                    if self.partial.is_empty() {
                        return Ok(LineEvent::Eof);
                    }
                    return Ok(self.take_line());
                }
                Ok(_) => {
                    if self.partial.last() == Some(&b'\n') {
                        return Ok(self.take_line());
                    }
                    // Hit the take budget without a newline: either the
                    // line is oversized (caught at loop top) or more bytes
                    // are coming.
                }
                Err(e) if retryable(&e) => {
                    if draining.load(Ordering::SeqCst) {
                        return Ok(LineEvent::Drained);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Swallows remaining peer input (briefly, bounded) before the caller
    /// abandons an unsyncable connection. Closing a socket with unread
    /// bytes makes the kernel send RST, which can destroy a typed error
    /// response the peer has not read yet; draining until the peer closes
    /// lets the `-ERR` frame arrive intact.
    pub fn drain_peer(&mut self) {
        let mut scratch = [0u8; 16 * 1024];
        // ~20 read-timeout ticks bounds a stalling peer to ~2 s.
        for _ in 0..20 {
            match self.inner.read(&mut scratch) {
                Ok(0) => return,
                Ok(_) => {}
                Err(e) if retryable(&e) => {}
                Err(_) => return,
            }
        }
    }

    /// Reads exactly `n` body bytes. `Ok(Err(got))` means the peer closed
    /// (or the server drained) after `got` bytes — a typed protocol error
    /// for the caller, not an I/O failure.
    pub fn read_exact_body(
        &mut self,
        n: usize,
        draining: &AtomicBool,
    ) -> std::io::Result<Result<Vec<u8>, usize>> {
        let mut buf = Vec::with_capacity(n.min(1 << 20));
        let mut chunk = [0u8; 16 * 1024];
        while buf.len() < n {
            let want = (n - buf.len()).min(chunk.len());
            // lint:allow(panic-path): want is clamped to chunk.len() on the line above
            match self.inner.read(&mut chunk[..want]) {
                Ok(0) => return Ok(Err(buf.len())),
                // lint:allow(panic-path): read contract gives k <= want <= chunk.len()
                Ok(k) => buf.extend_from_slice(&chunk[..k]),
                Err(e) if retryable(&e) => {
                    if draining.load(Ordering::SeqCst) {
                        return Ok(Err(buf.len()));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(Ok(buf))
    }
}
