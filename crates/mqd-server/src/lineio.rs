//! Bounded, timeout-tolerant socket line reading, shared by the server's
//! connection handler and the router's frontend (`mqd-router`).
//!
//! The serving processes read request lines off sockets with a short read
//! timeout so a blocked read can observe the drain flag; [`LineReader`]
//! wraps that loop, enforces the request-line size limit, and keeps
//! partial bytes across timeouts so slow writers are never corrupted.

use std::io::{BufRead, Read};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use crate::protocol::MAX_LINE_BYTES;

/// How often a blocked read wakes up to check the drain flag.
pub const READ_TICK: Duration = Duration::from_millis(100);

/// Converts an idle-timeout duration to a [`READ_TICK`] budget for
/// [`LineReader::set_idle_ticks`], rounding up so short timeouts still
/// get at least one full tick. `None` stays `None`: no budget.
pub fn idle_ticks_for(timeout: Option<Duration>) -> Option<u32> {
    timeout.map(|t| {
        let tick = READ_TICK.as_millis().max(1);
        t.as_millis().div_ceil(tick).clamp(1, u32::MAX as u128) as u32
    })
}

/// Bounded, timeout-tolerant line reader. A read timeout between requests
/// just re-checks the drain flag; a timeout mid-line keeps the partial
/// bytes, so slow writers are never corrupted.
pub struct LineReader<R: BufRead> {
    inner: R,
    partial: Vec<u8>,
    idle_ticks: Option<u32>,
}

/// One read outcome from [`LineReader::next_line`].
pub enum LineEvent {
    /// A complete request line (lossy UTF-8; garbage parses to a typed
    /// protocol error downstream, never a panic).
    Line(String),
    /// Clean end of stream.
    Eof,
    /// The line outgrew [`MAX_LINE_BYTES`]; the connection cannot resync.
    Oversized,
    /// The server is draining and the connection was idle.
    Drained,
    /// The idle-tick budget ran out before a line completed: the peer is
    /// half-open or dribbling slower than [`READ_TICK`]. The worker is
    /// reclaimed with a typed error instead of starving.
    IdleTimeout,
}

/// One read outcome from [`LineReader::read_exact_body`].
pub enum BodyEvent {
    /// The full body arrived.
    Body(Vec<u8>),
    /// The peer closed (or the server drained) after this many bytes — a
    /// typed protocol error for the caller, not an I/O failure.
    Truncated(usize),
    /// The idle-tick budget ran out mid-body after this many bytes.
    IdleTimeout(usize),
}

/// Whether an I/O error is a transient read-timeout-style condition the
/// read loop should retry rather than surface.
pub fn retryable(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::Interrupted
    )
}

impl<R: BufRead> LineReader<R> {
    /// Wraps a buffered reader (the socket should have a [`READ_TICK`]
    /// read timeout set so drain checks happen).
    pub fn new(inner: R) -> Self {
        LineReader {
            inner,
            partial: Vec::new(),
            idle_ticks: None,
        }
    }

    /// Arms the idle budget: a single request (line or body) may block for
    /// at most `ticks` read-timeout ticks (~`ticks` × [`READ_TICK`]) in
    /// total before the read reports a timeout event. `None` (the default)
    /// waits forever, preserving pre-timeout behavior. Only *blocked*
    /// ticks count, so bulk transfers that keep making progress are never
    /// penalized; a dribbler pacing bytes faster than the tick evades this
    /// budget but is bounded by [`MAX_LINE_BYTES`] instead.
    pub fn set_idle_ticks(&mut self, ticks: Option<u32>) {
        self.idle_ticks = ticks;
    }

    fn take_line(&mut self) -> LineEvent {
        let mut bytes = std::mem::take(&mut self.partial);
        if bytes.last() == Some(&b'\n') {
            bytes.pop();
        }
        if bytes.last() == Some(&b'\r') {
            bytes.pop();
        }
        LineEvent::Line(String::from_utf8_lossy(&bytes).into_owned())
    }

    /// Reads the next request line, waking on read timeouts to observe
    /// `draining`.
    pub fn next_line(&mut self, draining: &AtomicBool) -> std::io::Result<LineEvent> {
        let mut stalled: u32 = 0;
        loop {
            if self.partial.len() > MAX_LINE_BYTES {
                return Ok(LineEvent::Oversized);
            }
            let budget = (MAX_LINE_BYTES + 1 - self.partial.len()) as u64;
            match self
                .inner
                .by_ref()
                .take(budget)
                .read_until(b'\n', &mut self.partial)
            {
                Ok(0) => {
                    // Peer EOF (possibly a half-closed socket mid-line).
                    if self.partial.is_empty() {
                        return Ok(LineEvent::Eof);
                    }
                    return Ok(self.take_line());
                }
                Ok(_) => {
                    if self.partial.last() == Some(&b'\n') {
                        return Ok(self.take_line());
                    }
                    // Hit the take budget without a newline: either the
                    // line is oversized (caught at loop top) or more bytes
                    // are coming.
                }
                Err(e) if retryable(&e) => {
                    if draining.load(Ordering::SeqCst) {
                        return Ok(LineEvent::Drained);
                    }
                    stalled = stalled.saturating_add(1);
                    if let Some(budget) = self.idle_ticks {
                        if stalled >= budget.max(1) {
                            return Ok(LineEvent::IdleTimeout);
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Swallows remaining peer input (briefly, bounded) before the caller
    /// abandons an unsyncable connection. Closing a socket with unread
    /// bytes makes the kernel send RST, which can destroy a typed error
    /// response the peer has not read yet; draining until the peer closes
    /// lets the `-ERR` frame arrive intact.
    pub fn drain_peer(&mut self) {
        let mut scratch = [0u8; 16 * 1024];
        // ~20 read-timeout ticks bounds a stalling peer to ~2 s.
        for _ in 0..20 {
            match self.inner.read(&mut scratch) {
                Ok(0) => return,
                Ok(_) => {}
                Err(e) if retryable(&e) => {}
                Err(_) => return,
            }
        }
    }

    /// Reads exactly `n` body bytes. Truncation (peer closed or server
    /// drained mid-body) and idle timeout are typed [`BodyEvent`]s for the
    /// caller, not I/O failures.
    pub fn read_exact_body(
        &mut self,
        n: usize,
        draining: &AtomicBool,
    ) -> std::io::Result<BodyEvent> {
        let mut buf = Vec::with_capacity(n.min(1 << 20));
        let mut chunk = [0u8; 16 * 1024];
        let mut stalled: u32 = 0;
        while buf.len() < n {
            let want = (n - buf.len()).min(chunk.len());
            // lint:allow(panic-path): want is clamped to chunk.len() on the line above
            match self.inner.read(&mut chunk[..want]) {
                Ok(0) => return Ok(BodyEvent::Truncated(buf.len())),
                // lint:allow(panic-path): read contract gives k <= want <= chunk.len()
                Ok(k) => buf.extend_from_slice(&chunk[..k]),
                Err(e) if retryable(&e) => {
                    if draining.load(Ordering::SeqCst) {
                        return Ok(BodyEvent::Truncated(buf.len()));
                    }
                    stalled = stalled.saturating_add(1);
                    if let Some(budget) = self.idle_ticks {
                        if stalled >= budget.max(1) {
                            return Ok(BodyEvent::IdleTimeout(buf.len()));
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(BodyEvent::Body(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Yields queued chunks, then endless WouldBlock — a socket whose peer
    /// went quiet.
    struct StallReader {
        chunks: Vec<Vec<u8>>,
    }

    impl Read for StallReader {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            match self.chunks.first_mut() {
                Some(chunk) => {
                    let n = chunk.len().min(out.len());
                    out[..n].copy_from_slice(&chunk[..n]);
                    chunk.drain(..n);
                    if chunk.is_empty() {
                        self.chunks.remove(0);
                    }
                    Ok(n)
                }
                None => Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "stall")),
            }
        }
    }

    fn reader(chunks: &[&[u8]], ticks: Option<u32>) -> LineReader<std::io::BufReader<StallReader>> {
        let mut r = LineReader::new(std::io::BufReader::new(StallReader {
            chunks: chunks.iter().map(|c| c.to_vec()).collect(),
        }));
        r.set_idle_ticks(ticks);
        r
    }

    #[test]
    fn idle_ticks_round_up_and_preserve_none() {
        assert_eq!(idle_ticks_for(None), None);
        assert_eq!(idle_ticks_for(Some(Duration::from_millis(1))), Some(1));
        assert_eq!(idle_ticks_for(Some(Duration::from_millis(100))), Some(1));
        assert_eq!(idle_ticks_for(Some(Duration::from_millis(101))), Some(2));
        assert_eq!(idle_ticks_for(Some(Duration::from_millis(2000))), Some(20));
    }

    #[test]
    fn unbudgeted_reader_is_the_pre_timeout_loop() {
        // Without a budget a stall never times out; with data queued the
        // line completes regardless.
        let draining = AtomicBool::new(false);
        let mut r = reader(&[b"PING\n"], None);
        assert!(matches!(
            r.next_line(&draining).unwrap(),
            LineEvent::Line(l) if l == "PING"
        ));
    }

    #[test]
    fn stalled_line_hits_the_budget() {
        let draining = AtomicBool::new(false);
        // Half-open: no bytes at all.
        let mut r = reader(&[], Some(3));
        assert!(matches!(
            r.next_line(&draining).unwrap(),
            LineEvent::IdleTimeout
        ));
        // Mid-line stall: partial bytes then silence.
        let mut r = reader(&[b"QUERY 0,1"], Some(3));
        assert!(matches!(
            r.next_line(&draining).unwrap(),
            LineEvent::IdleTimeout
        ));
    }

    #[test]
    fn stalled_body_reports_progress() {
        let draining = AtomicBool::new(false);
        let mut r = reader(&[b"MQDL"], Some(2));
        match r.read_exact_body(4096, &draining).unwrap() {
            BodyEvent::IdleTimeout(got) => assert_eq!(got, 4),
            _ => panic!("expected an idle timeout"),
        }
        // A body that fully arrives is unaffected by the budget.
        let mut r = reader(&[b"abcd"], Some(2));
        match r.read_exact_body(4, &draining).unwrap() {
            BodyEvent::Body(b) => assert_eq!(b, b"abcd"),
            _ => panic!("expected the body"),
        }
    }

    #[test]
    fn drain_still_wins_over_the_budget() {
        let draining = AtomicBool::new(true);
        let mut r = reader(&[], Some(1000));
        assert!(matches!(
            r.next_line(&draining).unwrap(),
            LineEvent::Drained
        ));
    }
}
