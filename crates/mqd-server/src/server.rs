//! The server runtime: acceptor, bounded admission queue, worker pool,
//! per-connection request loop, and graceful drain.

use std::collections::HashSet;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use mqd_core::record::{decode_records, format_tsv, Record};
use mqd_core::wire::{decode_hello, shard_of_label, ShardIdentity};
use mqd_core::MqdError;
use mqd_store::{
    repair_state, run_query_cover, solve_slice, validate_spec, CacheStats, CoverCache, Lookup,
    QuerySpec, StoreStats,
};
use mqd_stream::{resume_supervised, FaultPlan, SupervisedRun, SupervisorConfig};
use mqd_wal::{fsio, DurableOptions, DurableStats, DurableStore};

use crate::lineio::{idle_ticks_for, BodyEvent, LineEvent, LineReader, READ_TICK};
use crate::subs::{self, LeaseRegistry, SubParams};

use crate::protocol::{
    parse_request, write_err, write_ok, write_overloaded, Request, SubscribeSpec, MAX_BATCH_ROWS,
    MAX_LINE_BYTES, TERMINATOR,
};

/// Pending background re-solve jobs; a full queue drops the job (the next
/// stale hit on the entry re-claims the refresh, so nothing is lost).
const REFRESH_QUEUE: usize = 256;

/// Arrivals delivered between emission flushes in a SUBSCRIBE session.
const SUBSCRIBE_CHUNK: usize = 256;

/// Server settings, as exposed by `mqdiv serve`.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads; 0 uses [`mqd_par::configured_threads`], floored at
    /// 4. A worker owns its connection for the connection's lifetime, and
    /// connection handling is blocking I/O, not CPU-bound — without the
    /// floor, a single-core host serves one connection at a time and an
    /// idle-but-open client starves everyone else.
    pub threads: usize,
    /// Admission queue depth: connections waiting for a worker beyond this
    /// are answered `-OVERLOADED` instead of queued.
    pub max_queue: usize,
    /// Data directory for the durable store. `None` serves memory-only
    /// (the pre-durability behavior); `Some` opens/recovers a WAL and
    /// sealed segments there and checkpoints named subscriptions under
    /// `<dir>/subs/`.
    pub data_dir: Option<PathBuf>,
    /// Fsync on the durability points (WAL ack barrier, seals, checkpoint
    /// writes). `--no-fsync` trades crash safety for ingest throughput.
    pub fsync: bool,
    /// Retention span in value units: sealed windows entirely older than
    /// `newest value - retain` (and not pinned by any live cache entry or
    /// named subscription lease) are garbage-collected. `None` keeps
    /// everything.
    pub retain: Option<i64>,
    /// This backend's position in a cluster shard map
    /// (`mqdiv serve --shard-id/--shard-count`). A sharded backend verifies
    /// router `HELLO` handshakes against it, rejects ingest rows owning
    /// none of its labels (a misrouted row would silently corrupt the
    /// cluster/single-node identity), and reports it in `STATS`. `None`
    /// serves standalone.
    pub shard: Option<ShardIdentity>,
    /// Per-request idle budget: a connection whose request line (or body)
    /// stalls longer than this — half-open sockets, byte dribblers — gets
    /// a typed `-ERR Timeout` and is closed, reclaiming the worker.
    /// `None` (the default) waits forever, the pre-timeout behavior.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            max_queue: 64,
            data_dir: None,
            fsync: true,
            retain: None,
            shard: None,
            idle_timeout: None,
        }
    }
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    queries: AtomicU64,
    ingested_rows: AtomicU64,
    subscribes: AtomicU64,
    errors: AtomicU64,
    overloads: AtomicU64,
    timeouts: AtomicU64,
}

struct State {
    /// Many queries read concurrently; only ingest takes the write half.
    store: RwLock<DurableStore>,
    cache: Mutex<CoverCache>,
    /// GC leases of named durable subscriptions. Lock order everywhere:
    /// store, then cache, then subs.
    subs: Mutex<LeaseRegistry>,
    /// `<data-dir>/subs` when durable; named `SUBSCRIBE` sessions need it.
    subs_dir: Option<PathBuf>,
    /// Whether checkpoint writes fsync (mirrors the store's setting).
    fsync: bool,
    /// Hands stale specs to the background refresher pool. `try_send`
    /// only: the request path never blocks on refresh scheduling.
    refresh_tx: SyncSender<QuerySpec>,
    counters: Counters,
    draining: AtomicBool,
    addr: SocketAddr,
    threads: usize,
    /// Cluster shard coordinates, when configured (see [`ServerConfig`]).
    shard: Option<ShardIdentity>,
    /// Idle budget in [`READ_TICK`]s for every connection's reads.
    idle_ticks: Option<u32>,
}

/// A bound, ready-to-run server. [`Server::run`] blocks until a `DRAIN`
/// request shuts it down.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
    max_queue: usize,
    refresh_rx: Receiver<QuerySpec>,
}

impl Server {
    /// Binds the listen socket and sizes the worker pool. With a data dir
    /// configured this also opens (or crash-recovers) the durable store
    /// and re-registers the GC leases of checkpointed subscriptions, so a
    /// `bind` that returns `Ok` is already fully recovered.
    pub fn bind(cfg: &ServerConfig) -> Result<Self, MqdError> {
        if let Some(s) = &cfg.shard {
            let max = mqd_core::wire::MAX_SHARD_COUNT;
            if s.shard_count == 0 || s.shard_count > max || s.shard_id >= s.shard_count {
                return Err(MqdError::Protocol {
                    msg: format!(
                        "shard {}/{} invalid (need 0 <= id < count <= {max})",
                        s.shard_id, s.shard_count
                    ),
                });
            }
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let threads = if cfg.threads == 0 {
            mqd_par::configured_threads().max(4)
        } else {
            cfg.threads
        };
        let store = match &cfg.data_dir {
            Some(dir) => DurableStore::open(
                dir,
                &DurableOptions {
                    fsync: cfg.fsync,
                    retain: cfg.retain,
                    ..DurableOptions::default()
                },
            )?,
            None => DurableStore::memory(),
        };
        let subs_dir = cfg.data_dir.as_ref().map(|d| d.join("subs"));
        let mut leases = LeaseRegistry::default();
        if let Some(dir) = &subs_dir {
            fsio::ensure_dir(dir)?;
            subs::scan_leases(dir, &mut leases);
        }
        let (refresh_tx, refresh_rx) = sync_channel::<QuerySpec>(REFRESH_QUEUE);
        Ok(Server {
            listener,
            state: Arc::new(State {
                store: RwLock::new(store),
                cache: Mutex::new(CoverCache::new()),
                subs: Mutex::new(leases),
                subs_dir,
                fsync: cfg.fsync,
                refresh_tx,
                counters: Counters::default(),
                draining: AtomicBool::new(false),
                addr,
                threads,
                shard: cfg.shard,
                idle_ticks: idle_ticks_for(cfg.idle_timeout),
            }),
            max_queue: cfg.max_queue.max(1),
            refresh_rx,
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serves until drained: the acceptor feeds a bounded channel, workers
    /// drain it, and a full channel is answered with a typed `-OVERLOADED`
    /// response — admission control, not a dropped connection. Returns once
    /// a `DRAIN` request has been honored and all in-flight work finished.
    pub fn run(self) -> Result<(), MqdError> {
        let (tx, rx) = sync_channel::<TcpStream>(self.max_queue);
        let rx = Arc::new(Mutex::new(rx));
        let state = self.state;
        let refresh_rx = Arc::new(Mutex::new(self.refresh_rx));
        std::thread::scope(|s| {
            for _ in 0..state.threads {
                let rx = Arc::clone(&rx);
                let st = Arc::clone(&state);
                s.spawn(move || worker_loop(&rx, &st));
            }
            // The refresher pool mirrors the worker pool's shape (shared
            // receiver behind a mutex, sized off the same thread budget):
            // re-solves are CPU work, so a fraction of the I/O pool is
            // enough and leaves cores for serving.
            for _ in 0..(state.threads / 4).max(1) {
                let rx = Arc::clone(&refresh_rx);
                let st = Arc::clone(&state);
                s.spawn(move || refresher_loop(&rx, &st));
            }
            for conn in self.listener.incoming() {
                if state.draining.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(conn) = conn else { continue };
                state.counters.connections.fetch_add(1, Ordering::Relaxed);
                match tx.try_send(conn) {
                    Ok(()) => {}
                    Err(TrySendError::Full(conn)) => {
                        state.counters.overloads.fetch_add(1, Ordering::Relaxed);
                        let mut w = BufWriter::new(conn);
                        let _ = write_overloaded(&mut w, "server at capacity, retry later");
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            drop(tx);
        });
        Ok(())
    }
}

/// Locks a shared mutex, mapping poisoning to a typed error. The
/// catch_unwind backstop in [`handle_conn`] makes poisoning reachable
/// without killing the process, so lock failures must flow to the client
/// as `-ERR`, not take down the worker with a second panic.
fn lock_or_poisoned<'a, T>(
    m: &'a Mutex<T>,
    what: &'static str,
) -> Result<std::sync::MutexGuard<'a, T>, MqdError> {
    m.lock().map_err(|_| MqdError::Poisoned { what })
}

/// Read-locks the store (see [`lock_or_poisoned`] for the poisoning story).
fn read_or_poisoned(
    m: &RwLock<DurableStore>,
) -> Result<std::sync::RwLockReadGuard<'_, DurableStore>, MqdError> {
    m.read().map_err(|_| MqdError::Poisoned { what: "store" })
}

/// Write-locks the store (see [`lock_or_poisoned`] for the poisoning story).
fn write_or_poisoned(
    m: &RwLock<DurableStore>,
) -> Result<std::sync::RwLockWriteGuard<'_, DurableStore>, MqdError> {
    m.write().map_err(|_| MqdError::Poisoned { what: "store" })
}

/// The background refresher: drains stale specs off the request path and
/// re-solves them. Wakes every [`READ_TICK`] to observe the drain flag.
fn refresher_loop(rx: &Mutex<Receiver<QuerySpec>>, state: &State) {
    loop {
        let job = {
            let Ok(guard) = rx.lock() else { return };
            guard.recv_timeout(READ_TICK)
        };
        match job {
            Ok(spec) => refresh_entry(state, &spec),
            Err(RecvTimeoutError::Timeout) => {
                if state.draining.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// One background refresh: snapshot the slice under the read lock, solve
/// with no lock held, then install the answer. If ingest moved the store
/// on while solving, the entry is still stale at install time — re-enqueue
/// it (or, on a full queue, release the claim so the next stale hit
/// re-schedules it).
fn refresh_entry(state: &State, spec: &QuerySpec) {
    let snapshot = read_or_poisoned(&state.store).map(|store| {
        (
            store.generation(),
            store.store().slice(&spec.labels, spec.from, spec.to),
        )
    });
    let Ok((generation, slice)) = snapshot else {
        return;
    };
    let Ok(records) = solve_slice(&slice, spec) else {
        // Invalid specs are rejected before ever being cached; release the
        // claim defensively and drop the job.
        if let Ok(mut cache) = lock_or_poisoned(&state.cache, "cache") {
            cache.refresh_not_queued(spec);
        }
        return;
    };
    let repair = repair_state(&slice, spec);
    let Ok(mut cache) = lock_or_poisoned(&state.cache, "cache") else {
        return;
    };
    let still_stale = cache.install_refreshed(spec, records, generation, repair);
    if still_stale && state.refresh_tx.try_send(spec.clone()).is_err() {
        cache.refresh_not_queued(spec);
    }
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, state: &State) {
    loop {
        // Take the lock only to wait for the next connection; holding it
        // while serving would serialize the pool.
        let conn = {
            // A poisoned receiver mutex means a sibling worker panicked
            // mid-recv; the pool is already compromised, so this worker
            // retires instead of panicking too.
            let Ok(guard) = rx.lock() else { return };
            // lint:allow(blocking-call,guard-held-blocking): bounded by the acceptor — dropping the sender disconnects recv with Err; the lock exists only to serialize waiters on this recv
            guard.recv()
        };
        match conn {
            Ok(c) => {
                let _ = handle_conn(c, state);
            }
            Err(_) => return, // acceptor dropped the sender: drain complete
        }
    }
}

enum Flow {
    Continue,
    Close,
}

fn handle_conn(conn: TcpStream, state: &State) -> std::io::Result<()> {
    conn.set_read_timeout(Some(READ_TICK))?;
    let _ = conn.set_nodelay(true);
    let write_half = conn.try_clone()?;
    let mut reader = LineReader::new(BufReader::new(conn));
    reader.set_idle_ticks(state.idle_ticks);
    let mut w = BufWriter::new(write_half);

    loop {
        let line = match reader.next_line(&state.draining)? {
            LineEvent::Line(line) => line,
            LineEvent::Eof | LineEvent::Drained => return Ok(()),
            LineEvent::IdleTimeout => {
                state.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                let _ = write_err(
                    &mut w,
                    &MqdError::Timeout {
                        msg: "request line stalled; closing idle connection".into(),
                    },
                );
                return Ok(()); // reclaim the worker; no drain for a stalled peer
            }
            LineEvent::Oversized => {
                state.counters.errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_err(
                    &mut w,
                    &MqdError::Protocol {
                        msg: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                    },
                );
                reader.drain_peer();
                return Ok(()); // cannot find the next request boundary
            }
        };
        if line.trim().is_empty() {
            continue;
        }

        let req = match parse_request(&line) {
            Ok(r) => r,
            Err(e) => {
                state.counters.errors.fetch_add(1, Ordering::Relaxed);
                write_err(&mut w, &e)?;
                continue;
            }
        };

        // INGESTB/HELLO: pull the raw body before executing, so the stream
        // stays framed even when the payload turns out to be invalid.
        let body = match req {
            Request::IngestBatch { bytes } | Request::Hello { bytes } => {
                match reader.read_exact_body(bytes, &state.draining)? {
                    BodyEvent::Body(body) => Some(body),
                    BodyEvent::Truncated(got) => {
                        state.counters.errors.fetch_add(1, Ordering::Relaxed);
                        let _ = write_err(
                            &mut w,
                            &MqdError::Protocol {
                                msg: format!("truncated body: got {got} of {bytes} bytes"),
                            },
                        );
                        reader.drain_peer();
                        return Ok(()); // body boundary lost
                    }
                    BodyEvent::IdleTimeout(got) => {
                        state.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                        let _ = write_err(
                            &mut w,
                            &MqdError::Timeout {
                                msg: format!("body stalled at {got} of {bytes} bytes"),
                            },
                        );
                        return Ok(()); // body boundary lost; reclaim the worker
                    }
                }
            }
            _ => None,
        };

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            execute(state, &req, body.as_deref(), &mut w)
        }));
        match outcome {
            Ok(Ok(Flow::Continue)) => {}
            Ok(Ok(Flow::Close)) => return Ok(()),
            Ok(Err(io)) => return Err(io),
            Err(_) => {
                // Backstop: a handler panic answers as a typed error and
                // closes this connection; the worker and server live on.
                state.counters.errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_err(
                    &mut w,
                    &MqdError::Protocol {
                        msg: "internal error (request handler panicked)".into(),
                    },
                );
                reader.drain_peer();
                return Ok(());
            }
        }
    }
}

fn execute(
    state: &State,
    req: &Request,
    body: Option<&[u8]>,
    w: &mut impl Write,
) -> std::io::Result<Flow> {
    match req {
        Request::Ping => {
            write_ok(w, r#"{"pong":true}"#, &[])?;
            Ok(Flow::Continue)
        }
        Request::Stats => {
            match stats_json(state) {
                Ok(json) => write_ok(w, &json, &[])?,
                Err(e) => {
                    state.counters.errors.fetch_add(1, Ordering::Relaxed);
                    write_err(w, &e)?;
                }
            }
            Ok(Flow::Continue)
        }
        Request::Ingest(row) => {
            match ingest_rows(state, std::slice::from_ref(row)) {
                Ok((_, generation)) => {
                    write_ok(
                        w,
                        &format!(r#"{{"ingested":1,"generation":{generation}}}"#),
                        &[],
                    )?;
                }
                Err(e) => {
                    state.counters.errors.fetch_add(1, Ordering::Relaxed);
                    write_err(w, &e)?;
                }
            }
            Ok(Flow::Continue)
        }
        Request::IngestBatch { .. } => {
            // The caller reads the body before dispatching; a missing one
            // is a dispatch bug, reported to the client as a typed error
            // rather than panicking the worker.
            let Some(body) = body else {
                state.counters.errors.fetch_add(1, Ordering::Relaxed);
                write_err(
                    w,
                    &MqdError::Protocol {
                        msg: "batch body missing for INGESTB".into(),
                    },
                )?;
                return Ok(Flow::Continue);
            };
            match ingest_batch(state, body) {
                Ok((n, generation)) => {
                    write_ok(
                        w,
                        &format!(r#"{{"ingested":{n},"generation":{generation}}}"#),
                        &[],
                    )?;
                }
                Err(e) => {
                    state.counters.errors.fetch_add(1, Ordering::Relaxed);
                    write_err(w, &e)?;
                }
            }
            Ok(Flow::Continue)
        }
        Request::Query(spec) => {
            state.counters.queries.fetch_add(1, Ordering::Relaxed);
            match answer_query(state, spec) {
                Ok((rows, generation, cached, stale)) => {
                    let payload: Vec<String> = rows.iter().map(format_tsv).collect();
                    let json = format!(
                        r#"{{"algorithm":"{}","count":{},"cached":{},"stale":{},"generation":{}}}"#,
                        spec.algorithm.as_str(),
                        rows.len(),
                        cached,
                        stale,
                        generation,
                    );
                    write_ok(w, &json, &payload)?;
                }
                Err(e) => {
                    state.counters.errors.fetch_add(1, Ordering::Relaxed);
                    write_err(w, &e)?;
                }
            }
            Ok(Flow::Continue)
        }
        Request::QueryCover { spec, cover } => {
            state.counters.queries.fetch_add(1, Ordering::Relaxed);
            // Cover queries are router-internal fan-out halves: always a
            // cold solve against a slice snapshot (the router's merged
            // answer is what user-facing caching applies to), stamped with
            // the snapshot generation so the router can build its vector
            // watermark.
            let answered = (|| {
                let (generation, rows) = {
                    let store = read_or_poisoned(&state.store)?;
                    (
                        store.generation(),
                        run_query_cover(store.store(), spec, cover)?,
                    )
                };
                Ok::<_, MqdError>((generation, rows))
            })();
            match answered {
                Ok((generation, rows)) => {
                    let payload: Vec<String> = rows.iter().map(format_tsv).collect();
                    let json = format!(
                        r#"{{"algorithm":"{}","count":{},"cached":false,"stale":false,"generation":{}}}"#,
                        spec.algorithm.as_str(),
                        rows.len(),
                        generation,
                    );
                    write_ok(w, &json, &payload)?;
                }
                Err(e) => {
                    state.counters.errors.fetch_add(1, Ordering::Relaxed);
                    write_err(w, &e)?;
                }
            }
            Ok(Flow::Continue)
        }
        Request::Slice { labels, from, to } => {
            // Raw slice export for the router's merge-and-solve path. Rows
            // come back in slice order (value, then external id) with each
            // row's labels already intersected with the requested set —
            // identical rendering on every shard, so a dedup-by-id merge
            // reconstructs the single-node slice byte-for-byte.
            let sliced = (|| {
                let store = read_or_poisoned(&state.store)?;
                let generation = store.generation();
                let slice = store.store().slice(labels, *from, *to);
                let rows: Vec<String> = (0..slice.instance.len() as u32)
                    .map(|i| format_tsv(&slice.record_for(i)))
                    .collect();
                Ok::<_, MqdError>((generation, rows))
            })();
            match sliced {
                Ok((generation, rows)) => {
                    let json = format!(r#"{{"count":{},"generation":{}}}"#, rows.len(), generation);
                    write_ok(w, &json, &rows)?;
                }
                Err(e) => {
                    state.counters.errors.fetch_add(1, Ordering::Relaxed);
                    write_err(w, &e)?;
                }
            }
            Ok(Flow::Continue)
        }
        Request::Hello { .. } => {
            let Some(body) = body else {
                state.counters.errors.fetch_add(1, Ordering::Relaxed);
                write_err(
                    w,
                    &MqdError::Protocol {
                        msg: "handshake body missing for HELLO".into(),
                    },
                )?;
                return Ok(Flow::Continue);
            };
            match hello(state, body) {
                Ok(json) => write_ok(w, &json, &[])?,
                Err(e) => {
                    state.counters.errors.fetch_add(1, Ordering::Relaxed);
                    write_err(w, &e)?;
                }
            }
            Ok(Flow::Continue)
        }
        Request::Subscribe(spec) => {
            state.counters.subscribes.fetch_add(1, Ordering::Relaxed);
            subscribe(state, spec, w)?;
            Ok(Flow::Continue)
        }
        Request::Drain => {
            state.draining.store(true, Ordering::SeqCst);
            // Graceful shutdown seals the WAL tail into a (partial) block,
            // so a clean restart replays nothing. Failure is non-fatal:
            // the WAL still holds the rows and recovery replays it.
            if let Ok(mut store) = write_or_poisoned(&state.store) {
                let _ = store.flush();
            }
            write_ok(w, r#"{"draining":true}"#, &[])?;
            // Kick the acceptor out of its blocking accept so it observes
            // the flag; the connection itself is discarded there.
            let _ = TcpStream::connect_timeout(&state.addr, Duration::from_millis(500));
            Ok(Flow::Close)
        }
        Request::Quit => {
            write_ok(w, r#"{"bye":true}"#, &[])?;
            Ok(Flow::Close)
        }
    }
}

/// Serves a query through the repairable cache. The hot path is one store
/// read-lock (for the generation) plus one cache lookup — nothing solves
/// under a lock. A stale hit is served at its watermark generation and
/// hands the entry to the refresher. A miss solves against a slice
/// *snapshot* with the store lock released; if ingest advances the store
/// mid-solve, the answer is inserted already-stale at its watermark and
/// the refresher catches it up.
///
/// Returns `(rows, watermark generation, cached, stale)`.
fn answer_query(
    state: &State,
    spec: &QuerySpec,
) -> Result<(Vec<Record>, u64, bool, bool), MqdError> {
    validate_spec(spec)?;
    // Lock order everywhere: store, then cache.
    let (generation, looked) = {
        let store = read_or_poisoned(&state.store)?;
        let generation = store.generation();
        let mut cache = lock_or_poisoned(&state.cache, "cache")?;
        (generation, cache.lookup(spec, generation))
    };
    match looked {
        Lookup::Fresh(records) => Ok((records, generation, true, false)),
        Lookup::Stale {
            records,
            generation: watermark,
            enqueue_refresh,
        } => {
            if enqueue_refresh && state.refresh_tx.try_send(spec.clone()).is_err() {
                lock_or_poisoned(&state.cache, "cache")?.refresh_not_queued(spec);
            }
            Ok((records, watermark, true, true))
        }
        Lookup::Miss => {
            let (snap_gen, slice) = {
                let store = read_or_poisoned(&state.store)?;
                (
                    store.generation(),
                    store.store().slice(&spec.labels, spec.from, spec.to),
                )
            };
            let records = solve_slice(&slice, spec)?;
            let repair = repair_state(&slice, spec);
            let mut cache = lock_or_poisoned(&state.cache, "cache")?;
            cache.insert_fresh(spec, records.clone(), snap_gen, repair);
            Ok((records, snap_gen, false, false))
        }
    }
}

/// Verifies a router `HELLO` frame against this backend's configured shard
/// coordinates. A standalone backend accepts any well-formed frame (it can
/// serve as a single-shard cluster of any map); a sharded backend rejects
/// a mismatched map with a typed error so a misconfigured router fails
/// loudly at connect time instead of silently splitting the label space
/// differently than ingest did.
fn hello(state: &State, body: &[u8]) -> Result<String, MqdError> {
    let offered = decode_hello(body)?;
    if let Some(have) = state.shard {
        if have != offered {
            return Err(MqdError::Protocol {
                msg: format!(
                    "shard map mismatch: router expects shard {}/{}, backend serves {}/{}",
                    offered.shard_id, offered.shard_count, have.shard_id, have.shard_count
                ),
            });
        }
    }
    Ok(format!(
        r#"{{"shard_id":{},"shard_count":{},"pinned":{}}}"#,
        offered.shard_id,
        offered.shard_count,
        state.shard.is_some(),
    ))
}

/// On a sharded backend, every ingested row must carry at least one label
/// this shard owns — anything else is a router bug (or a client bypassing
/// the router), and accepting it would silently break the cluster/single-
/// node byte identity.
fn check_row_ownership(shard: &ShardIdentity, rows: &[Record]) -> Result<(), MqdError> {
    for row in rows {
        if !row
            .labels
            .iter()
            .any(|&l| shard_of_label(l, shard.shard_count) == shard.shard_id)
        {
            return Err(MqdError::Protocol {
                msg: format!(
                    "row {} owns no label of shard {}/{}",
                    row.id, shard.shard_id, shard.shard_count
                ),
            });
        }
    }
    Ok(())
}

/// Appends rows and seals the resulting delta into the cache *under the
/// same store write lock*, so no query can observe the new generation
/// before the cache has classified every entry against it (repaired,
/// revalidated, or dirtied). Newly-dirty specs go to the refresher after
/// the locks drop. On a mid-batch append failure the valid prefix stays
/// (stream-prefix semantics) and is still sealed before the error returns.
fn ingest_rows(state: &State, rows: &[Record]) -> Result<(usize, u64), MqdError> {
    // Whole-batch ownership check up front: a misrouted row fails before
    // anything is WAL-logged, so the batch is all-or-nothing with respect
    // to routing mistakes.
    if let Some(shard) = &state.shard {
        check_row_ownership(shard, rows)?;
    }
    let mut appended = 0usize;
    let (failure, generation, to_refresh) = {
        let mut store = write_or_poisoned(&state.store)?;
        let mut failure = None;
        for row in rows {
            // WAL-first: the row is validated, logged, then applied in
            // memory; an invalid row fails before it is ever logged.
            match store.append(row) {
                Ok(()) => appended += 1,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        // The ack barrier: whatever prefix was appended becomes durable
        // before this request is answered (even a prefix-error response
        // acknowledges the prefix).
        if appended > 0 {
            // lint:allow(guard-held-blocking): the ack barrier — appended rows must be durable before any reader can observe them, so writers intentionally queue behind this fsync
            if let Err(e) = store.sync() {
                failure.get_or_insert(e);
            }
        }
        let generation = store.generation();
        let (to_refresh, cache_floor) = match lock_or_poisoned(&state.cache, "cache") {
            Ok(mut cache) => (
                cache.apply_delta(rows.get(..appended).unwrap_or(&[]), generation),
                // Smallest value any live cached cover may still touch on
                // repair/refresh: its slice start, widened by its λ.
                cache
                    .live_lease()
                    .map_or(i64::MAX, |(from, lambda)| from.saturating_sub(lambda)),
            ),
            // A poisoned cache degrades to stale serving; the store is
            // still authoritative. GC is blocked (floor i64::MIN): with
            // the lease bookkeeping unreadable, dropping rows would be a
            // guess.
            Err(_) => (Vec::new(), i64::MIN),
        };
        if failure.is_none() && store.wants_gc() {
            let subs_floor = match lock_or_poisoned(&state.subs, "subs") {
                Ok(reg) => reg.floor(),
                Err(_) => i64::MIN,
            };
            // GC failure (a disk error unlinking a dead block) never fails
            // the ingest that triggered it — the rows are already durable.
            let _ = store.run_gc(cache_floor.min(subs_floor));
        }
        (failure, generation, to_refresh)
    };
    state
        .counters
        .ingested_rows
        .fetch_add(appended as u64, Ordering::Relaxed);
    for spec in to_refresh {
        if state.refresh_tx.try_send(spec.clone()).is_err() {
            if let Ok(mut cache) = lock_or_poisoned(&state.cache, "cache") {
                cache.refresh_not_queued(&spec);
            }
        }
    }
    match failure {
        Some(e) => Err(e),
        None => Ok((appended, generation)),
    }
}

fn ingest_batch(state: &State, body: &[u8]) -> Result<(usize, u64), MqdError> {
    let rows = decode_records(body)?;
    if rows.len() > MAX_BATCH_ROWS {
        return Err(MqdError::Protocol {
            msg: format!(
                "batch of {} rows exceeds limit {MAX_BATCH_ROWS}",
                rows.len()
            ),
        });
    }
    ingest_rows(state, &rows)
}

fn stats_json(state: &State) -> Result<String, MqdError> {
    // Lock order: store, then cache.
    let (store_stats, durable_stats) = {
        let store = read_or_poisoned(&state.store)?;
        (store.store_stats(), store.durable_stats())
    };
    let cache_stats = lock_or_poisoned(&state.cache, "cache")?.stats();
    Ok(render_stats(
        &store_stats,
        &cache_stats,
        &durable_stats,
        &state.counters,
        state.threads,
        state.draining.load(Ordering::SeqCst),
        state.shard,
    ))
}

/// Renders the STATS payload. Pure so the key order — part of the wire
/// contract clients parse and the oracle's byte-identity checks rely on —
/// is pinned by a regression test below, not by whoever edits the
/// `format!` last.
fn render_stats(
    store_stats: &StoreStats,
    cache_stats: &CacheStats,
    durable: &DurableStats,
    c: &Counters,
    threads: usize,
    draining: bool,
    shard: Option<ShardIdentity>,
) -> String {
    let opt_i64 = |v: Option<i64>| v.map_or("null".to_string(), |x| x.to_string());
    let mut out = format!(
        concat!(
            r#"{{"rows":{},"segments":{},"labels":{},"generation":{},"#,
            r#""min_value":{},"max_value":{},"#,
            r#""cache":{{"hits":{},"misses":{},"invalidations":{},"repairs":{},"refreshes":{},"stale_served":{},"entries":{}}},"#,
            r#""served":{{"connections":{},"queries":{},"ingested_rows":{},"subscribes":{},"errors":{},"overloads":{},"timeouts":{}}},"#,
            r#""durable":{{"wal_bytes":{},"segments_flushed":{},"compactions":{},"recovered_rows":{},"gc_segments":{}}},"#,
            r#""threads":{},"draining":{}}}"#
        ),
        store_stats.rows,
        store_stats.segments,
        store_stats.labels,
        store_stats.generation,
        opt_i64(store_stats.min_value),
        opt_i64(store_stats.max_value),
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.invalidations,
        cache_stats.repairs,
        cache_stats.refreshes,
        cache_stats.stale_served,
        cache_stats.entries,
        c.connections.load(Ordering::Relaxed),
        c.queries.load(Ordering::Relaxed),
        c.ingested_rows.load(Ordering::Relaxed),
        c.subscribes.load(Ordering::Relaxed),
        c.errors.load(Ordering::Relaxed),
        c.overloads.load(Ordering::Relaxed),
        c.timeouts.load(Ordering::Relaxed),
        durable.wal_bytes,
        durable.segments_flushed,
        durable.compactions,
        durable.recovered_rows,
        durable.gc_segments,
        threads,
        draining,
    );
    // The shard object is appended only when configured, so a standalone
    // server's STATS bytes — pinned by the regression test below and
    // diffed by the oracle — are unchanged.
    if let Some(s) = shard {
        out.pop(); // trailing '}'
        out.push_str(&format!(
            r#","shard":{{"id":{},"count":{}}}}}"#,
            s.shard_id, s.shard_count
        ));
    }
    out
}

/// Replays the slice through a supervised streaming engine, streaming
/// emissions as they become *stable*: an emission is sent once its release
/// time is strictly earlier than the next arrival's timestamp, so the
/// streamed prefix is identical no matter how the replay is chunked.
///
/// A named session (`NAME id`, durable servers only) is additionally
/// checkpointed into `<data-dir>/subs/<id>` after every chunk (atomic
/// write through `mqd_wal::fsio`), registers a GC lease for its λ-widened
/// slice, and — on a later `SUBSCRIBE` with the same name — resumes from
/// the checkpoint. The resumed run replays the checkpoint's emission log,
/// so the full emission sequence (and the `DONE` totals) are byte-identical
/// to an uninterrupted session; `AFTER n` merely skips the first `n`
/// emissions on the wire for a client that already received them.
fn subscribe(state: &State, spec: &SubscribeSpec, w: &mut impl Write) -> std::io::Result<()> {
    if spec.lambda < 0 {
        state.counters.errors.fetch_add(1, Ordering::Relaxed);
        return write_err(w, &MqdError::NegativeLambda(spec.lambda));
    }
    if spec.tau < 0 {
        state.counters.errors.fetch_add(1, Ordering::Relaxed);
        return write_err(
            w,
            &MqdError::Protocol {
                msg: format!("tau must be >= 0, got {}", spec.tau),
            },
        );
    }
    let params = SubParams::of(spec);
    let checkpoint_path = match (&spec.name, &state.subs_dir) {
        (Some(name), Some(dir)) => Some(dir.join(name)),
        (Some(_), None) => {
            state.counters.errors.fetch_add(1, Ordering::Relaxed);
            return write_err(
                w,
                &MqdError::Protocol {
                    msg: "NAME needs a durable server (start with --data-dir)".into(),
                },
            );
        }
        (None, _) => None,
    };
    let slice = {
        let store = match read_or_poisoned(&state.store) {
            Ok(store) => store,
            Err(e) => {
                state.counters.errors.fetch_add(1, Ordering::Relaxed);
                return write_err(w, &e);
            }
        };
        // Lease before slicing, *while holding the store read lock*
        // (store-then-subs, the global lock order): ingest samples the
        // subs floor and runs GC under the store write lock, so a lease
        // registered here is ordered against that whole critical section
        // — it can never land between the floor sample and the drop, and
        // the slice below sees every row the lease pins. Registering an
        // already-leased name just refreshes the same floor.
        if let (Some(name), Ok(mut reg)) = (&spec.name, lock_or_poisoned(&state.subs, "subs")) {
            reg.register(name, &params);
        }
        store.store().slice(&spec.labels, spec.from, spec.to)
    };
    let inst = &slice.instance;
    // A named session resumes from its checkpoint when one exists and
    // still matches: parameter drift is a client mistake (typed error),
    // while an instance-digest mismatch (rows ingested since the
    // checkpoint) or a corrupt file falls back to a fresh deterministic
    // run — the client's AFTER skip stays valid either way because the
    // emission sequence is a pure function of (instance, params).
    let mut resumed = false;
    let mut run = None;
    if let Some(path) = &checkpoint_path {
        // An unreadable file means no checkpoint yet; a corrupt wrapper
        // or a stale/corrupt inner digest drops through to the fresh
        // run below. Only a parameter mismatch is the client's error.
        if let Ok(bytes) = std::fs::read(path) {
            if let Ok((have, inner)) = subs::decode_wrapper(&bytes) {
                if have != params {
                    state.counters.errors.fetch_add(1, Ordering::Relaxed);
                    return write_err(
                        w,
                        &MqdError::CheckpointMismatch {
                            what: format!(
                                "session '{}' was started with different parameters",
                                spec.name.as_deref().unwrap_or("")
                            ),
                        },
                    );
                }
                if let Ok(r) = resume_supervised(
                    inst,
                    spec.lambda,
                    spec.tau,
                    spec.shards,
                    spec.engine,
                    &FaultPlan::none(),
                    SupervisorConfig::default(),
                    &inner,
                ) {
                    resumed = true;
                    run = Some(r);
                }
            }
        }
    }
    let mut run = run.unwrap_or_else(|| {
        SupervisedRun::new(
            inst,
            spec.lambda,
            spec.tau,
            spec.shards,
            spec.engine,
            &FaultPlan::none(),
            SupervisorConfig::default(),
        )
    });

    writeln!(
        w,
        r#"+OK {{"posts":{},"shards":{},"resumed":{}}}"#,
        inst.len(),
        spec.shards,
        resumed,
    )?;
    let mut sent: HashSet<u32> = HashSet::new();
    let mut degraded = 0u64;
    // Emissions counted so far in the deterministic stream order; the
    // first `spec.after` are counted but not written.
    let mut emitted = 0u64;
    let emit = |w: &mut dyn Write, post: u32, time: i64, flag: bool| -> std::io::Result<()> {
        let r = slice.record_for(post);
        writeln!(w, "EMIT {} {} {} {}", r.id, r.value, time, u8::from(flag))
    };

    loop {
        for _ in 0..SUBSCRIBE_CHUNK {
            match run.step() {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => {
                    // Mid-stream failure: the +OK header is out, so abort
                    // inside the payload, keeping the framing intact. A
                    // named session keeps its checkpoint and lease for a
                    // later resume.
                    state.counters.errors.fetch_add(1, Ordering::Relaxed);
                    writeln!(w, "ABORT {} {}", crate::protocol::error_kind(&e), e)?;
                    writeln!(w, "{TERMINATOR}")?;
                    return w.flush();
                }
            }
        }
        let watermark = if run.done() {
            i64::MAX
        } else {
            inst.value(run.position())
        };
        for e in run.released_emissions() {
            if e.emit_time < watermark && sent.insert(e.post) {
                degraded += u64::from(e.degraded);
                emitted += 1;
                if emitted > spec.after {
                    emit(w, e.post, e.emit_time, e.degraded)?;
                }
            }
        }
        w.flush()?;
        if let Some(path) = &checkpoint_path {
            // Roll the checkpoint only after the chunk's emissions are on
            // the wire. Best-effort: a failed write means a resume replays
            // from an older (still consistent) checkpoint or starts fresh.
            let blob = subs::encode_wrapper(&params, &mqd_stream::encode_checkpoint(&mut run));
            let _ = fsio::write_atomic(path, &blob, state.fsync);
        }
        if run.done() {
            break;
        }
    }
    match run.finish() {
        Ok(res) => {
            for e in &res.emissions {
                if sent.insert(e.post) {
                    degraded += u64::from(e.degraded);
                    emitted += 1;
                    if emitted > spec.after {
                        emit(w, e.post, e.emit_time, e.degraded)?;
                    }
                }
            }
            writeln!(
                w,
                r#"DONE {{"emissions":{},"degraded":{}}}"#,
                sent.len(),
                degraded
            )?;
            // The session is complete: its checkpoint and GC lease go.
            if let (Some(path), Some(name)) = (&checkpoint_path, &spec.name) {
                let _ = fsio::remove_durable(path, state.fsync);
                if let Ok(mut reg) = lock_or_poisoned(&state.subs, "subs") {
                    reg.release(name);
                }
            }
        }
        Err(e) => {
            state.counters.errors.fetch_add(1, Ordering::Relaxed);
            writeln!(w, "ABORT {} {}", crate::protocol::error_kind(&e), e)?;
        }
    }
    writeln!(w, "{TERMINATOR}")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn start(threads: usize, max_queue: usize) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads,
            max_queue,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, handle)
    }

    #[test]
    fn stats_rendering_is_byte_stable() {
        // The STATS payload is parsed by clients and diffed byte-for-byte
        // by the oracle's server-agreement harness, so its key order is
        // wire contract: render twice and pin the exact bytes.
        let store = StoreStats {
            rows: 4,
            segments: 1,
            labels: 2,
            generation: 4,
            min_value: Some(0),
            max_value: Some(30),
        };
        let cache = CacheStats {
            hits: 1,
            misses: 1,
            invalidations: 0,
            repairs: 0,
            refreshes: 0,
            stale_served: 0,
            entries: 1,
        };
        let counters = Counters::default();
        counters.connections.store(3, Ordering::Relaxed);
        counters.queries.store(2, Ordering::Relaxed);
        counters.ingested_rows.store(4, Ordering::Relaxed);
        let durable = DurableStats {
            wal_bytes: 117,
            segments_flushed: 2,
            compactions: 1,
            recovered_rows: 4096,
            gc_segments: 0,
        };
        let a = render_stats(&store, &cache, &durable, &counters, 4, false, None);
        let b = render_stats(&store, &cache, &durable, &counters, 4, false, None);
        assert_eq!(a, b);
        assert_eq!(
            a,
            r#"{"rows":4,"segments":1,"labels":2,"generation":4,"min_value":0,"max_value":30,"cache":{"hits":1,"misses":1,"invalidations":0,"repairs":0,"refreshes":0,"stale_served":0,"entries":1},"served":{"connections":3,"queries":2,"ingested_rows":4,"subscribes":0,"errors":0,"overloads":0,"timeouts":0},"durable":{"wal_bytes":117,"segments_flushed":2,"compactions":1,"recovered_rows":4096,"gc_segments":0},"threads":4,"draining":false}"#
        );
        // An empty store renders nulls, not a panic or a 0 placeholder.
        let empty = StoreStats {
            rows: 0,
            segments: 0,
            labels: 0,
            generation: 0,
            min_value: None,
            max_value: None,
        };
        let s = render_stats(
            &empty,
            &CacheStats::default(),
            &DurableStats::default(),
            &Counters::default(),
            1,
            true,
            None,
        );
        assert!(s.contains(r#""min_value":null,"max_value":null"#), "{s}");
        assert!(s.ends_with(r#""threads":1,"draining":true}"#), "{s}");
        // A sharded backend appends its map after the standalone payload,
        // leaving every standalone byte in place.
        let sharded = render_stats(
            &store,
            &cache,
            &durable,
            &counters,
            4,
            false,
            Some(ShardIdentity {
                shard_id: 1,
                shard_count: 2,
            }),
        );
        assert_eq!(
            sharded,
            format!(r#"{},"shard":{{"id":1,"count":2}}}}"#, &a[..a.len() - 1])
        );
    }

    #[test]
    fn ping_ingest_query_stats_drain() {
        let (addr, handle) = start(2, 8);
        let mut c = Client::connect(addr).unwrap();
        assert!(c.request("PING").unwrap().is_ok());

        for (id, value, labels) in [(1, 0, "0"), (2, 10, "0"), (3, 20, "0,1"), (4, 30, "1")] {
            let r = c.request(&format!("INGEST {id} {value} {labels}")).unwrap();
            assert!(r.is_ok(), "{}", r.status);
        }
        let r = c.request("QUERY 0,1 10 opt").unwrap();
        assert!(r.is_ok(), "{}", r.status);
        // An optimal cover has 2 posts; this DP reconstructs {P1, P3}.
        assert_eq!(r.lines.len(), 2);
        assert_eq!(r.lines[0], "1\t0\t0");
        assert_eq!(r.lines[1], "3\t20\t0,1");

        // Second identical query must be served from the cache, fresh at
        // the current store generation.
        let r2 = c.request("QUERY 0,1 10 opt").unwrap();
        assert!(r2.status.contains(r#""cached":true"#), "{}", r2.status);
        assert!(r2.status.contains(r#""stale":false"#), "{}", r2.status);
        assert!(r2.status.contains(r#""generation":4"#), "{}", r2.status);
        assert_eq!(r2.lines, r.lines);

        let stats = c.request("STATS").unwrap();
        assert!(stats.status.contains(r#""rows":4"#), "{}", stats.status);
        assert!(stats.status.contains(r#""hits":1"#), "{}", stats.status);

        assert!(c.request("DRAIN").unwrap().is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn ingest_after_caching_repairs_scan_and_refreshes_the_rest() {
        let (addr, handle) = start(2, 8);
        let mut c = Client::connect(addr).unwrap();
        for (id, value, labels) in [(1, 0, "0"), (2, 10, "0"), (3, 20, "0,1"), (4, 30, "1")] {
            assert!(c
                .request(&format!("INGEST {id} {value} {labels}"))
                .unwrap()
                .is_ok());
        }
        // Prime a repairable (scan) and a non-repairable (greedysc) cover.
        assert!(c.request("QUERY 0,1 10 scan").unwrap().is_ok());
        assert!(c.request("QUERY 0,1 10 greedysc").unwrap().is_ok());

        // A post inside both footprints: scan repairs in place, greedysc
        // goes stale and is handed to the background refresher.
        assert!(c.request("INGEST 5 40 0").unwrap().is_ok());

        let scan = c.request("QUERY 0,1 10 scan").unwrap();
        assert!(scan.is_ok(), "{}", scan.status);
        assert!(scan.status.contains(r#""cached":true"#), "{}", scan.status);
        assert!(scan.status.contains(r#""stale":false"#), "{}", scan.status);
        assert!(scan.status.contains(r#""generation":5"#), "{}", scan.status);

        // The greedysc entry converges: stale at watermark 4 at first,
        // fresh at generation 5 once the refresher lands.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let r = c.request("QUERY 0,1 10 greedysc").unwrap();
            assert!(r.is_ok(), "{}", r.status);
            if r.status.contains(r#""stale":false"#) {
                assert!(r.status.contains(r#""generation":5"#), "{}", r.status);
                break;
            }
            assert!(r.status.contains(r#""generation":4"#), "{}", r.status);
            assert!(
                std::time::Instant::now() < deadline,
                "refresher never converged: {}",
                r.status
            );
            std::thread::sleep(Duration::from_millis(20));
        }

        let stats = c.request("STATS").unwrap();
        assert!(stats.status.contains(r#""repairs":1"#), "{}", stats.status);
        assert!(
            stats.status.contains(r#""refreshes":1"#),
            "{}",
            stats.status
        );
        assert!(c.request("DRAIN").unwrap().is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn subscribe_streams_emissions() {
        let (addr, handle) = start(2, 8);
        let mut c = Client::connect(addr).unwrap();
        for i in 0..20 {
            let r = c
                .request(&format!("INGEST {} {} {}", i + 1, i * 10, i % 2))
                .unwrap();
            assert!(r.is_ok());
        }
        let r = c.request("SUBSCRIBE 0,1 10 30 scan").unwrap();
        assert!(r.is_ok(), "{}", r.status);
        let emits: Vec<&String> = r.lines.iter().filter(|l| l.starts_with("EMIT ")).collect();
        assert!(!emits.is_empty());
        let done = r.lines.last().unwrap();
        assert!(done.starts_with("DONE "), "{done}");
        assert!(done.contains(r#""degraded":0"#), "{done}");
        // Emissions are (emit_time, ...) ordered.
        let times: Vec<i64> = emits
            .iter()
            .map(|l| l.split_whitespace().nth(3).unwrap().parse().unwrap())
            .collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);

        assert!(c.request("DRAIN").unwrap().is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn typed_errors_keep_the_connection_alive() {
        let (addr, handle) = start(1, 4);
        let mut c = Client::connect(addr).unwrap();
        let r = c.request("FROB 1 2").unwrap();
        assert!(r.status.starts_with("-ERR Protocol "), "{}", r.status);
        let r = c.request("QUERY 0 -5 scan").unwrap();
        assert!(r.status.starts_with("-ERR NegativeLambda "), "{}", r.status);
        let r = c.request("INGEST 1 5 ''").unwrap();
        assert!(r.status.starts_with("-ERR Protocol "), "{}", r.status);
        // The same connection still works.
        assert!(c.request("PING").unwrap().is_ok());
        assert!(c.request("DRAIN").unwrap().is_ok());
        handle.join().unwrap();
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mqd-server-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn start_durable(dir: &std::path::Path) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            max_queue: 8,
            data_dir: Some(dir.to_path_buf()),
            fsync: false, // tests exercise recovery logic, not the disk cache
            retain: None,
            shard: None,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, handle)
    }

    #[test]
    fn durable_server_recovers_identically_after_drain() {
        let dir = tmpdir("recover");
        let (addr, handle) = start_durable(&dir);
        let mut c = Client::connect(addr).unwrap();
        for (id, value, labels) in [(1, 0, "0"), (2, 10, "0"), (3, 20, "0,1"), (4, 30, "1")] {
            assert!(c
                .request(&format!("INGEST {id} {value} {labels}"))
                .unwrap()
                .is_ok());
        }
        let q1 = c.request("QUERY 0,1 10 opt").unwrap();
        assert!(q1.is_ok(), "{}", q1.status);
        let s1 = c.request("STATS").unwrap();
        assert!(c.request("DRAIN").unwrap().is_ok());
        handle.join().unwrap();

        // Same data dir, new process-equivalent: rows, generation, and
        // query answers must come back byte-identical.
        let (addr, handle) = start_durable(&dir);
        let mut c = Client::connect(addr).unwrap();
        let s2 = c.request("STATS").unwrap();
        let core = |s: &str| s[..s.find(r#","cache""#).unwrap()].to_string();
        assert_eq!(
            core(&s1.status),
            core(&s2.status),
            "store stats must survive restart"
        );
        assert!(s2.status.contains(r#""recovered_rows":4"#), "{}", s2.status);
        let q2 = c.request("QUERY 0,1 10 opt").unwrap();
        assert_eq!(q1.lines, q2.lines, "query answers must survive restart");
        // Recovered generation continues, not restarts.
        let r = c.request("INGEST 5 40 0").unwrap();
        assert!(r.status.contains(r#""generation":5"#), "{}", r.status);
        assert!(c.request("DRAIN").unwrap().is_ok());
        handle.join().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn named_subscribe_needs_a_data_dir() {
        let (addr, handle) = start(1, 4);
        let mut c = Client::connect(addr).unwrap();
        assert!(c.request("INGEST 1 0 0").unwrap().is_ok());
        let r = c.request("SUBSCRIBE 0 10 10 scan NAME s1").unwrap();
        assert!(r.status.starts_with("-ERR Protocol "), "{}", r.status);
        assert!(c.request("DRAIN").unwrap().is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn named_subscribe_checkpoints_skip_and_complete() {
        let dir = tmpdir("subs");
        let (addr, handle) = start_durable(&dir);
        let mut c = Client::connect(addr).unwrap();
        for i in 0..20 {
            assert!(c
                .request(&format!("INGEST {} {} {}", i + 1, i * 10, i % 2))
                .unwrap()
                .is_ok());
        }
        let full = c.request("SUBSCRIBE 0,1 10 30 scan NAME s1").unwrap();
        assert!(full.is_ok(), "{}", full.status);
        assert!(
            full.status.contains(r#""resumed":false"#),
            "{}",
            full.status
        );
        let emits: Vec<&String> = full
            .lines
            .iter()
            .filter(|l| l.starts_with("EMIT "))
            .collect();
        assert!(emits.len() >= 3, "{emits:?}");
        // Completion removed the checkpoint.
        assert!(!dir.join("subs").join("s1").exists());

        // AFTER skips the wire prefix but DONE totals are unchanged —
        // exactly what a resuming client needs for a byte-identical
        // reassembled stream.
        let skip = c
            .request("SUBSCRIBE 0,1 10 30 scan NAME s1 AFTER 2")
            .unwrap();
        assert!(skip.is_ok(), "{}", skip.status);
        let skipped: Vec<&String> = skip
            .lines
            .iter()
            .filter(|l| l.starts_with("EMIT "))
            .collect();
        assert_eq!(
            &emits[2..],
            &skipped[..],
            "AFTER must skip exactly the prefix"
        );
        assert_eq!(
            full.lines.last(),
            skip.lines.last(),
            "DONE must be skip-independent"
        );
        assert!(c.request("DRAIN").unwrap().is_ok());
        handle.join().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn named_subscribe_rejects_parameter_drift() {
        let dir = tmpdir("drift");
        let (addr, handle) = start_durable(&dir);
        let mut c = Client::connect(addr).unwrap();
        assert!(c.request("INGEST 1 0 0").unwrap().is_ok());
        // A checkpoint left behind by a (simulated) killed session.
        let params = crate::subs::SubParams {
            labels: vec![0],
            lambda: 99,
            tau: 30,
            engine: mqd_stream::ShardEngineKind::Scan,
            from: i64::MIN,
            to: i64::MAX,
            shards: 1,
        };
        let blob = crate::subs::encode_wrapper(&params, &[1, 2, 3]);
        std::fs::write(dir.join("subs").join("s9"), blob).unwrap();
        let r = c.request("SUBSCRIBE 0 10 30 scan NAME s9").unwrap();
        assert!(
            r.status.starts_with("-ERR CheckpointMismatch "),
            "{}",
            r.status
        );
        assert!(c.request("DRAIN").unwrap().is_ok());
        handle.join().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn start_sharded(shard_id: u32, shard_count: u32) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            max_queue: 8,
            shard: Some(ShardIdentity {
                shard_id,
                shard_count,
            }),
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, handle)
    }

    #[test]
    fn hello_pins_the_shard_map() {
        let (addr, handle) = start_sharded(1, 2);
        let mut c = Client::connect(addr).unwrap();
        let ok = c
            .hello(&ShardIdentity {
                shard_id: 1,
                shard_count: 2,
            })
            .unwrap();
        assert!(ok.is_ok(), "{}", ok.status);
        assert!(ok.status.contains(r#""pinned":true"#), "{}", ok.status);
        // A mismatched map is a typed error, and the connection survives.
        let bad = c
            .hello(&ShardIdentity {
                shard_id: 0,
                shard_count: 2,
            })
            .unwrap();
        assert!(bad.status.starts_with("-ERR Protocol "), "{}", bad.status);
        assert!(c.request("PING").unwrap().is_ok());
        // STATS reports the map.
        let stats = c.request("STATS").unwrap();
        assert!(
            stats.status.contains(r#""shard":{"id":1,"count":2}"#),
            "{}",
            stats.status
        );
        assert!(c.request("DRAIN").unwrap().is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn standalone_backend_accepts_any_hello() {
        let (addr, handle) = start(1, 4);
        let mut c = Client::connect(addr).unwrap();
        let ok = c
            .hello(&ShardIdentity {
                shard_id: 3,
                shard_count: 4,
            })
            .unwrap();
        assert!(ok.is_ok(), "{}", ok.status);
        assert!(ok.status.contains(r#""pinned":false"#), "{}", ok.status);
        assert!(c.request("DRAIN").unwrap().is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn sharded_backend_rejects_misrouted_rows() {
        let (addr, handle) = start_sharded(0, 2);
        let mut c = Client::connect(addr).unwrap();
        // Labels 0 and 2 hash to shard 0; label 1 does not.
        assert!(c.request("INGEST 1 0 0").unwrap().is_ok());
        assert!(c.request("INGEST 2 10 1,2").unwrap().is_ok());
        let r = c.request("INGEST 3 20 1").unwrap();
        assert!(r.status.starts_with("-ERR Protocol "), "{}", r.status);
        // The rejection happened before any append: generation unmoved.
        let r = c.request("INGEST 4 30 0,1").unwrap();
        assert!(r.status.contains(r#""generation":3"#), "{}", r.status);
        assert!(c.request("DRAIN").unwrap().is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn cover_and_slice_serve_the_router_halves() {
        let (addr, handle) = start(2, 8);
        let mut c = Client::connect(addr).unwrap();
        for (id, value, labels) in [(1, 0, "0"), (2, 10, "0"), (3, 20, "0,1"), (4, 30, "1")] {
            assert!(c
                .request(&format!("INGEST {id} {value} {labels}"))
                .unwrap()
                .is_ok());
        }
        // The union of the per-label cover halves equals the full answer.
        let full = c.request("QUERY 0,1 10 scan").unwrap();
        assert!(full.is_ok(), "{}", full.status);
        let mut union: Vec<String> = Vec::new();
        for part in ["0", "1"] {
            let half = c
                .request(&format!("QUERY 0,1 10 scan COVER {part}"))
                .unwrap();
            assert!(half.is_ok(), "{}", half.status);
            assert!(half.status.contains(r#""cached":false"#), "{}", half.status);
            union.extend(half.lines.clone());
        }
        let key = |l: &String| -> (i64, u64) {
            let mut it = l.split('\t');
            let id: u64 = it.next().unwrap().parse().unwrap();
            let value: i64 = it.next().unwrap().parse().unwrap();
            (value, id)
        };
        union.sort_by_key(key);
        union.dedup();
        assert_eq!(union, full.lines);
        // COVER with a non-decomposable algorithm is a typed error.
        let r = c.request("QUERY 0,1 10 greedysc COVER 0").unwrap();
        assert!(r.status.starts_with("-ERR Protocol "), "{}", r.status);
        // SLICE returns the raw slice rows in (value, id) order.
        let s = c.request("SLICE 0,1 FROM 5 TO 25").unwrap();
        assert!(s.is_ok(), "{}", s.status);
        assert_eq!(s.lines, vec!["2\t10\t0", "3\t20\t0,1"]);
        assert!(s.status.contains(r#""count":2"#), "{}", s.status);
        assert!(c.request("DRAIN").unwrap().is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn quit_closes_only_the_connection() {
        let (addr, handle) = start(1, 4);
        let mut c = Client::connect(addr).unwrap();
        assert!(c.request("QUIT").unwrap().is_ok());
        let mut c2 = Client::connect(addr).unwrap();
        assert!(c2.request("PING").unwrap().is_ok());
        assert!(c2.request("DRAIN").unwrap().is_ok());
        handle.join().unwrap();
    }

    #[test]
    fn idle_timeout_reclaims_half_open_and_dribbling_connections() {
        use std::io::Read;
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 4,
            max_queue: 8,
            idle_timeout: Some(Duration::from_millis(300)),
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().unwrap());

        let read_all = |mut s: TcpStream| -> String {
            let mut buf = String::new();
            let _ = s.read_to_string(&mut buf);
            buf
        };

        // Half-open: connect, send nothing. The server must answer with a
        // typed timeout and close, not park the worker forever.
        let half_open = TcpStream::connect(addr).unwrap();
        let got = read_all(half_open);
        assert!(got.starts_with("-ERR Timeout "), "{got}");

        // Dribbler: an unterminated request line paced slower than the
        // budget stalls mid-line; same typed rejection.
        let mut dribble = TcpStream::connect(addr).unwrap();
        dribble.write_all(b"QUERY 0,1 50 sc").unwrap();
        dribble.flush().unwrap();
        let got = read_all(dribble);
        assert!(got.starts_with("-ERR Timeout "), "{got}");

        // Body dribbler: a complete INGESTB header whose body never
        // arrives must time out too (the body reader has its own budget).
        let mut body = TcpStream::connect(addr).unwrap();
        body.write_all(b"INGESTB 4096\nMQDL").unwrap();
        body.flush().unwrap();
        let got = read_all(body);
        assert!(got.starts_with("-ERR Timeout "), "{got}");

        // Well-behaved clients are untouched, and STATS counts the three
        // reclaimed connections under the dedicated timeouts key.
        let mut c = Client::connect(addr).unwrap();
        let r = c.request("STATS").unwrap();
        assert!(r.is_ok(), "{}", r.status);
        assert!(r.status.contains(r#""timeouts":3"#), "{}", r.status);
        assert!(c.request("DRAIN").unwrap().is_ok());
        handle.join().unwrap();
    }
}
