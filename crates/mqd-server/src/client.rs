//! Minimal blocking client for the serving protocol, used by `mqdiv
//! client`, the oracle's loopback agreement check, the benches and the
//! end-to-end tests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use mqd_core::record::{encode_records, parse_tsv_line, Record};
use mqd_core::wire::{encode_hello, ShardIdentity};
use mqd_core::MqdError;
use mqd_store::QuerySpec;

use crate::protocol::TERMINATOR;

/// One framed server response: the status line and the payload lines
/// (everything between the status and the `.` terminator).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Response {
    /// The status line (`+OK ...`, `-ERR ...`, or `-OVERLOADED ...`).
    pub status: String,
    /// Payload lines, terminator excluded.
    pub lines: Vec<String>,
}

impl Response {
    /// Whether the status line is `+OK`.
    pub fn is_ok(&self) -> bool {
        self.status.starts_with("+OK")
    }

    /// Whether the server rejected the request for load (`-OVERLOADED`).
    pub fn is_overloaded(&self) -> bool {
        self.status.starts_with("-OVERLOADED")
    }
}

/// Builds the wire form of a [`QuerySpec`] — shared by every caller so a
/// spec always serializes to the identical request line.
pub fn format_query(spec: &QuerySpec) -> String {
    let labels: Vec<String> = spec.labels.iter().map(|l| l.to_string()).collect();
    let mut line = format!(
        "QUERY {} {} {}",
        labels.join(","),
        spec.lambda,
        spec.algorithm.as_str()
    );
    if spec.from != i64::MIN {
        line.push_str(&format!(" FROM {}", spec.from));
    }
    if spec.to != i64::MAX {
        line.push_str(&format!(" TO {}", spec.to));
    }
    if spec.proportional {
        line.push_str(" PROP");
    }
    line
}

/// A blocking connection to an mqd server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, MqdError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line and reads the framed response.
    pub fn request(&mut self, line: &str) -> Result<Response, MqdError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends raw bytes verbatim (test hook for malformed traffic) and reads
    /// one framed response.
    pub fn request_raw(&mut self, bytes: &[u8]) -> Result<Response, MqdError> {
        self.writer.write_all(bytes)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Performs the router handshake: sends the shard-map frame and reads
    /// the backend's verdict.
    pub fn hello(&mut self, identity: &ShardIdentity) -> Result<Response, MqdError> {
        let frame = encode_hello(identity);
        writeln!(self.writer, "HELLO {}", frame.len())?;
        self.writer.write_all(&frame)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Sends one request line without reading a response — the first half
    /// of a streaming exchange (`SUBSCRIBE`), whose payload the caller
    /// consumes line-by-line via [`Client::next_line`].
    pub fn send_line(&mut self, line: &str) -> Result<(), MqdError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one raw response line — the line-granular half of a streaming
    /// relay, where waiting for the `.` terminator before forwarding would
    /// defeat the stream. Returns `None` on EOF *and* on a torn trailing
    /// fragment (bytes with no newline from a peer that died mid-write): a
    /// healthy stream always ends with a terminated `.` line, so an
    /// unterminated fragment is by definition an interrupted stream and
    /// must not be forwarded as if it were a complete emission.
    pub fn next_line(&mut self) -> Result<Option<String>, MqdError> {
        let mut buf = Vec::new();
        // lint:allow(blocking-call): mid-stream read; the caller opted into line-granular streaming
        let n = self.reader.by_ref().read_until(b'\n', &mut buf)?;
        if n == 0 || buf.last() != Some(&b'\n') {
            return Ok(None);
        }
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        Ok(Some(String::from_utf8_lossy(&buf).into_owned()))
    }

    /// Ingests a batch of rows as one MQDL-framed `INGESTB` request.
    pub fn ingest_batch(&mut self, rows: &[Record]) -> Result<Response, MqdError> {
        let body = encode_records(rows);
        writeln!(self.writer, "INGESTB {}", body.len())?;
        self.writer.write_all(&body)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Runs a query and parses the payload back into records. A non-OK
    /// status is returned as-is with an empty row list.
    pub fn query(&mut self, spec: &QuerySpec) -> Result<(Response, Vec<Record>), MqdError> {
        let resp = self.request(&format_query(spec))?;
        if !resp.is_ok() {
            return Ok((resp, Vec::new()));
        }
        let mut rows = Vec::new();
        for (i, line) in resp.lines.iter().enumerate() {
            if let Some(r) = parse_tsv_line(line, i + 1)? {
                rows.push(r);
            }
        }
        Ok((resp, rows))
    }

    /// Reads one framed response: status line, payload lines, `.`.
    pub fn read_response(&mut self) -> Result<Response, MqdError> {
        // lint:allow(blocking-call): a request is outstanding — blocking for the server's reply IS the request/response contract
        let status = match self.read_line()? {
            Some(s) => s,
            None => {
                return Err(MqdError::Protocol {
                    msg: "connection closed before a response".into(),
                })
            }
        };
        let mut lines = Vec::new();
        loop {
            // lint:allow(blocking-call): mid-response read; the server frames every response with a terminator line
            match self.read_line()? {
                Some(l) if l == TERMINATOR => break,
                Some(l) => lines.push(l),
                None => {
                    return Err(MqdError::Protocol {
                        msg: "connection closed mid-response".into(),
                    })
                }
            }
        }
        Ok(Response { status, lines })
    }

    /// Half-closes the write side (test hook for half-closed sockets).
    pub fn shutdown_write(&mut self) -> Result<(), MqdError> {
        self.writer.shutdown(std::net::Shutdown::Write)?;
        Ok(())
    }

    /// Writes raw bytes without waiting for a response (test hook for
    /// partial frames; pair with [`Client::read_response`]).
    pub fn write_raw(&mut self, bytes: &[u8]) -> Result<(), MqdError> {
        self.writer.write_all(bytes)?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_line(&mut self) -> Result<Option<String>, MqdError> {
        let mut buf = Vec::new();
        let n = self.reader.by_ref().read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Ok(None);
        }
        if buf.last() == Some(&b'\n') {
            buf.pop();
        }
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
        Ok(Some(String::from_utf8_lossy(&buf).into_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqd_store::Algorithm;

    #[test]
    fn query_lines_serialize_canonically() {
        let spec = QuerySpec {
            labels: vec![0, 2],
            lambda: 50,
            proportional: false,
            algorithm: Algorithm::Scan,
            from: i64::MIN,
            to: i64::MAX,
        };
        assert_eq!(format_query(&spec), "QUERY 0,2 50 scan");
        let spec = QuerySpec {
            labels: vec![1],
            lambda: 9,
            proportional: true,
            algorithm: Algorithm::GreedySc,
            from: -5,
            to: 77,
        };
        assert_eq!(format_query(&spec), "QUERY 1 9 greedysc FROM -5 TO 77 PROP");
    }

    #[test]
    fn formatted_queries_parse_back() {
        use crate::protocol::{parse_request, Request};
        let spec = QuerySpec {
            labels: vec![3, 1],
            lambda: 0,
            proportional: true,
            algorithm: Algorithm::ScanPlus,
            from: i64::MIN + 1,
            to: i64::MAX - 1,
        };
        match parse_request(&format_query(&spec)).unwrap() {
            Request::Query(q) => assert_eq!(q, spec),
            other => panic!("expected query, got {other:?}"),
        }
    }
}
