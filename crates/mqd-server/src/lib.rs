//! Zero-dependency TCP serving layer for MQDP queries.
//!
//! The offline pipeline answers one query per process; this crate turns the
//! workspace into a long-lived service: a multi-threaded TCP server that
//! holds an [`mqd_store::Store`], answers `QUERY` requests through the
//! canonical [`mqd_store::run_query`] path (with the generation-invalidated
//! cover cache in front), ingests posts one at a time (`INGEST`) or as MQDL
//! binary batches (`INGESTB`), replays `SUBSCRIBE` sessions through the
//! supervised `mqd-stream` engines, and reports `STATS`.
//!
//! Consistent with the workspace's offline-build policy, the server uses
//! only `std`: an acceptor thread feeds a bounded [`std::sync::mpsc`]
//! channel drained by a worker pool sized via [`mqd_par::configured_threads`].
//! The bounded channel **is** the admission controller — when it is full the
//! acceptor answers `-OVERLOADED` and closes, a typed response rather than a
//! dropped connection, mirroring the graceful-degradation philosophy of the
//! streaming supervisor.
//!
//! The wire protocol ([`protocol`]) is line-oriented: one request line
//! (plus a raw binary body for `INGESTB`), one response of a status line
//! (`+OK <json>`, `-ERR <Kind> <msg>`, or `-OVERLOADED <msg>`), optional
//! payload lines, and a lone `.` terminator. Every malformed input maps to
//! a typed [`mqd_core::MqdError`] response; the connection handler never
//! panics the server.

#![warn(missing_docs)]

mod client;
pub mod lineio;
pub mod protocol;
mod server;
pub mod subs;

pub use client::{format_query, Client, Response};
pub use server::{Server, ServerConfig};
