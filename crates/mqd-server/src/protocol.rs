//! The line/JSON wire protocol: request grammar, limits, response framing.
//!
//! Requests are single lines of whitespace-separated tokens (`INGESTB`
//! additionally carries a raw MQDL body after its header line):
//!
//! ```text
//! PING
//! STATS
//! HELLO <nbytes>\n<nbytes of router handshake frame>
//! INGEST <id> <value> <label,label,...>
//! INGESTB <nbytes>\n<nbytes of MQDL binary log>
//! QUERY <label,...> <lambda> <opt|greedysc|scan|scanplus> [FROM v] [TO v] [PROP]
//!       [COVER label,...]
//! SLICE <label,...> [FROM v] [TO v]
//! SUBSCRIBE <label,...> <lambda> <tau> <scan|scanplus|greedy|greedyplus>
//!           [FROM v] [TO v] [SHARDS n] [NAME id] [AFTER n]
//! DRAIN
//! QUIT
//! ```
//!
//! `HELLO`, `COVER`, and `SLICE` are the cluster verbs (`mqd-router`):
//! the handshake pins the backend's shard map, `COVER` restricts a
//! fixed-lambda Scan query to the labels a shard owns, and `SLICE`
//! returns the raw slice rows so the router can solve non-decomposable
//! algorithms over the merged slice.
//!
//! Responses are a status line — `+OK <json>`, `-ERR <Kind> <msg>` (the
//! kind is the [`MqdError`] variant name), or `-OVERLOADED <msg>` — then
//! zero or more payload lines, then a lone `.`.

use std::io::Write;

use mqd_core::record::Record;
use mqd_core::MqdError;
use mqd_store::{Algorithm, QuerySpec};
use mqd_stream::ShardEngineKind;

/// Longest accepted request line (bytes, incl. newline). Longer lines get a
/// typed Protocol error and the connection is closed (no way to resync).
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Largest accepted `INGESTB` body.
pub const MAX_BATCH_BYTES: usize = 64 * 1024 * 1024;

/// Most rows accepted in one `INGESTB` batch.
pub const MAX_BATCH_ROWS: usize = 1 << 20;

/// Largest accepted `HELLO` handshake frame (a shard-map frame is a few
/// dozen bytes; anything bigger is not a handshake).
pub const MAX_HELLO_BYTES: usize = 256;

/// The response terminator line.
pub const TERMINATOR: &str = ".";

/// One parsed request line. `IngestBatch` carries only the announced body
/// size — the raw bytes follow the line and are read by the server.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Store + cache + serving counters.
    Stats,
    /// Append one post.
    Ingest(Record),
    /// Append a binary batch of `bytes` MQDL bytes (body follows the line).
    IngestBatch {
        /// Announced body size in bytes.
        bytes: usize,
    },
    /// Solve a cover over a label/range slice.
    Query(QuerySpec),
    /// Solve only the per-label covers of `cover` (a subset of the spec's
    /// labels) — the shard-side half of the router's scatter-gather merge.
    QueryCover {
        /// The full query, labels included.
        spec: QuerySpec,
        /// The label subset this shard must cover.
        cover: Vec<u16>,
    },
    /// Return the raw slice rows for a label/range slice, in `(value, id)`
    /// order — the router merges shard slices and solves locally for
    /// algorithms that do not decompose per label.
    Slice {
        /// Global label ids sliced on.
        labels: Vec<u16>,
        /// Inclusive lower bound on the dimension value.
        from: i64,
        /// Inclusive upper bound on the dimension value.
        to: i64,
    },
    /// Router handshake: `bytes` of shard-map frame follow the line.
    Hello {
        /// Announced frame size in bytes.
        bytes: usize,
    },
    /// Replay the slice through a supervised streaming engine.
    Subscribe(SubscribeSpec),
    /// Stop accepting connections, finish in-flight work, shut down.
    Drain,
    /// Close this connection.
    Quit,
}

/// Parameters of a `SUBSCRIBE` session.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SubscribeSpec {
    /// Global label ids subscribed to.
    pub labels: Vec<u16>,
    /// Fixed coverage threshold.
    pub lambda: i64,
    /// Delay budget per emission.
    pub tau: i64,
    /// Which streaming engine runs the session.
    pub engine: ShardEngineKind,
    /// Inclusive lower bound on the dimension value.
    pub from: i64,
    /// Inclusive upper bound on the dimension value.
    pub to: i64,
    /// Number of shards for the supervised run.
    pub shards: usize,
    /// Durable session name: the server checkpoints the run under this
    /// name in its data dir and resumes it on a later `SUBSCRIBE` with the
    /// same name and parameters.
    pub name: Option<String>,
    /// Number of leading emissions to skip on the wire (a resuming client
    /// passes the count it already received; the run itself is not
    /// shortened, so `DONE` totals stay identical to an uninterrupted
    /// session).
    pub after: u64,
}

fn perr(msg: impl Into<String>) -> MqdError {
    MqdError::Protocol { msg: msg.into() }
}

fn parse_labels(s: &str) -> Result<Vec<u16>, MqdError> {
    let mut labels = Vec::new();
    for part in s.split(',').filter(|p| !p.is_empty()) {
        labels.push(
            part.parse::<u16>()
                .map_err(|e| perr(format!("bad label '{part}': {e}")))?,
        );
    }
    if labels.is_empty() {
        return Err(perr("need at least one label"));
    }
    Ok(labels)
}

fn parse_i64(tok: &str, what: &str) -> Result<i64, MqdError> {
    tok.parse::<i64>()
        .map_err(|e| perr(format!("bad {what} '{tok}': {e}")))
}

fn parse_engine(s: &str) -> Result<ShardEngineKind, MqdError> {
    match s {
        "scan" => Ok(ShardEngineKind::Scan),
        "scanplus" => Ok(ShardEngineKind::ScanPlus),
        "greedy" => Ok(ShardEngineKind::Greedy),
        "greedyplus" => Ok(ShardEngineKind::GreedyPlus),
        other => Err(perr(format!(
            "unknown engine '{other}' (want scan|scanplus|greedy|greedyplus)"
        ))),
    }
}

/// Range/option tail shared by QUERY, SLICE, and SUBSCRIBE.
struct Tail {
    from: i64,
    to: i64,
    prop: bool,
    shards: usize,
    name: Option<String>,
    after: u64,
    cover: Option<Vec<u16>>,
}

/// Longest accepted `NAME` token (it becomes a checkpoint file name).
const MAX_NAME_BYTES: usize = 64;

fn parse_name(s: &str) -> Result<String, MqdError> {
    if s.is_empty() || s.len() > MAX_NAME_BYTES {
        return Err(perr(format!(
            "NAME must be 1..={MAX_NAME_BYTES} bytes, got {}",
            s.len()
        )));
    }
    if !s
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
    {
        return Err(perr(format!(
            "NAME '{s}' may only use letters, digits, '.', '_', '-'"
        )));
    }
    if s.starts_with('.') {
        return Err(perr(format!("NAME '{s}' must not start with '.'")));
    }
    // Reserved for the atomic-write tempfiles next to the checkpoints: a
    // session literally named '*.tmp' would be swept at boot and skipped
    // by the lease scan.
    if s.ends_with(".tmp") {
        return Err(perr(format!("NAME '{s}' must not end with '.tmp'")));
    }
    Ok(s.to_string())
}

fn parse_tail<'a>(
    mut toks: impl Iterator<Item = &'a str>,
    allow_prop: bool,
    allow_subscribe: bool,
    allow_cover: bool,
) -> Result<Tail, MqdError> {
    let mut tail = Tail {
        from: i64::MIN,
        to: i64::MAX,
        prop: false,
        shards: 1,
        name: None,
        after: 0,
        cover: None,
    };
    while let Some(tok) = toks.next() {
        match tok.to_ascii_uppercase().as_str() {
            "FROM" => {
                let v = toks.next().ok_or_else(|| perr("FROM needs a value"))?;
                tail.from = parse_i64(v, "FROM value")?;
            }
            "TO" => {
                let v = toks.next().ok_or_else(|| perr("TO needs a value"))?;
                tail.to = parse_i64(v, "TO value")?;
            }
            "PROP" if allow_prop => tail.prop = true,
            "SHARDS" if allow_subscribe => {
                let v = toks.next().ok_or_else(|| perr("SHARDS needs a value"))?;
                tail.shards = v
                    .parse::<usize>()
                    .map_err(|e| perr(format!("bad SHARDS value '{v}': {e}")))?
                    .clamp(1, 64);
            }
            "NAME" if allow_subscribe => {
                let v = toks.next().ok_or_else(|| perr("NAME needs a value"))?;
                tail.name = Some(parse_name(v)?);
            }
            "AFTER" if allow_subscribe => {
                let v = toks.next().ok_or_else(|| perr("AFTER needs a value"))?;
                tail.after = v
                    .parse::<u64>()
                    .map_err(|e| perr(format!("bad AFTER value '{v}': {e}")))?;
            }
            "COVER" if allow_cover => {
                let v = toks.next().ok_or_else(|| perr("COVER needs labels"))?;
                tail.cover = Some(parse_labels(v)?);
            }
            other => return Err(perr(format!("unexpected token '{other}'"))),
        }
    }
    if tail.from > tail.to {
        return Err(perr(format!(
            "empty range: FROM {} > TO {}",
            tail.from, tail.to
        )));
    }
    Ok(tail)
}

/// Parses one request line. All failures are typed [`MqdError::Protocol`].
pub fn parse_request(line: &str) -> Result<Request, MqdError> {
    let mut toks = line.split_whitespace();
    let cmd = toks.next().ok_or_else(|| perr("empty request"))?;
    match cmd.to_ascii_uppercase().as_str() {
        "PING" => Ok(Request::Ping),
        "STATS" => Ok(Request::Stats),
        "DRAIN" => Ok(Request::Drain),
        "QUIT" => Ok(Request::Quit),
        "INGEST" => {
            let id = toks.next().ok_or_else(|| perr("INGEST needs <id>"))?;
            let id = id
                .parse::<u64>()
                .map_err(|e| perr(format!("bad id '{id}': {e}")))?;
            let value = toks.next().ok_or_else(|| perr("INGEST needs <value>"))?;
            let value = parse_i64(value, "value")?;
            let labels = toks.next().ok_or_else(|| perr("INGEST needs <labels>"))?;
            let labels = parse_labels(labels)?;
            if let Some(extra) = toks.next() {
                return Err(perr(format!("unexpected token '{extra}'")));
            }
            Ok(Request::Ingest(Record { id, value, labels }))
        }
        "INGESTB" => {
            let n = toks.next().ok_or_else(|| perr("INGESTB needs <nbytes>"))?;
            let bytes = n
                .parse::<usize>()
                .map_err(|e| perr(format!("bad byte count '{n}': {e}")))?;
            if bytes > MAX_BATCH_BYTES {
                return Err(perr(format!(
                    "batch of {bytes} bytes exceeds limit {MAX_BATCH_BYTES}"
                )));
            }
            if let Some(extra) = toks.next() {
                return Err(perr(format!("unexpected token '{extra}'")));
            }
            Ok(Request::IngestBatch { bytes })
        }
        "QUERY" => {
            let labels = toks.next().ok_or_else(|| perr("QUERY needs <labels>"))?;
            let labels = parse_labels(labels)?;
            let lambda = toks.next().ok_or_else(|| perr("QUERY needs <lambda>"))?;
            let lambda = parse_i64(lambda, "lambda")?;
            let alg = toks.next().ok_or_else(|| perr("QUERY needs <algorithm>"))?;
            let algorithm = Algorithm::parse(alg)?;
            let tail = parse_tail(toks, true, false, true)?;
            let spec = QuerySpec {
                labels,
                lambda,
                proportional: tail.prop,
                algorithm,
                from: tail.from,
                to: tail.to,
            };
            Ok(match tail.cover {
                Some(cover) => Request::QueryCover { spec, cover },
                None => Request::Query(spec),
            })
        }
        "SLICE" => {
            let labels = toks.next().ok_or_else(|| perr("SLICE needs <labels>"))?;
            let labels = parse_labels(labels)?;
            let tail = parse_tail(toks, false, false, false)?;
            Ok(Request::Slice {
                labels,
                from: tail.from,
                to: tail.to,
            })
        }
        "HELLO" => {
            let n = toks.next().ok_or_else(|| perr("HELLO needs <nbytes>"))?;
            let bytes = n
                .parse::<usize>()
                .map_err(|e| perr(format!("bad byte count '{n}': {e}")))?;
            if bytes == 0 || bytes > MAX_HELLO_BYTES {
                return Err(perr(format!(
                    "handshake of {bytes} bytes outside 1..={MAX_HELLO_BYTES}"
                )));
            }
            if let Some(extra) = toks.next() {
                return Err(perr(format!("unexpected token '{extra}'")));
            }
            Ok(Request::Hello { bytes })
        }
        "SUBSCRIBE" => {
            let labels = toks
                .next()
                .ok_or_else(|| perr("SUBSCRIBE needs <labels>"))?;
            let labels = parse_labels(labels)?;
            let lambda = toks
                .next()
                .ok_or_else(|| perr("SUBSCRIBE needs <lambda>"))?;
            let lambda = parse_i64(lambda, "lambda")?;
            let tau = toks.next().ok_or_else(|| perr("SUBSCRIBE needs <tau>"))?;
            let tau = parse_i64(tau, "tau")?;
            let engine = toks
                .next()
                .ok_or_else(|| perr("SUBSCRIBE needs <engine>"))?;
            let engine = parse_engine(engine)?;
            let tail = parse_tail(toks, false, true, false)?;
            Ok(Request::Subscribe(SubscribeSpec {
                labels,
                lambda,
                tau,
                engine,
                from: tail.from,
                to: tail.to,
                shards: tail.shards,
                name: tail.name,
                after: tail.after,
            }))
        }
        other => Err(perr(format!("unknown command '{other}'"))),
    }
}

/// The wire name of an error: its [`MqdError`] variant name.
pub fn error_kind(e: &MqdError) -> &'static str {
    match e {
        MqdError::LabelOutOfRange { .. } => "LabelOutOfRange",
        MqdError::NegativeLambda(_) => "NegativeLambda",
        MqdError::OptBudgetExceeded { .. } => "OptBudgetExceeded",
        MqdError::BruteTooLarge { .. } => "BruteTooLarge",
        MqdError::Parse { .. } => "Parse",
        MqdError::Corrupt { .. } => "Corrupt",
        MqdError::NonMonotoneTimestamp { .. } => "NonMonotoneTimestamp",
        MqdError::EmptyLabelSet { .. } => "EmptyLabelSet",
        MqdError::Io(_) => "Io",
        MqdError::ShardFailed { .. } => "ShardFailed",
        MqdError::CheckpointMismatch { .. } => "CheckpointMismatch",
        MqdError::Protocol { .. } => "Protocol",
        MqdError::Poisoned { .. } => "Poisoned",
        MqdError::Timeout { .. } => "Timeout",
    }
}

fn one_line(s: &str) -> String {
    s.replace(['\n', '\r'], " ")
}

/// Writes `+OK <json>`, the payload lines, and the terminator.
pub fn write_ok<W: Write>(w: &mut W, json: &str, payload: &[String]) -> std::io::Result<()> {
    writeln!(w, "+OK {}", one_line(json))?;
    for line in payload {
        writeln!(w, "{}", one_line(line))?;
    }
    writeln!(w, "{TERMINATOR}")?;
    w.flush()
}

/// Writes `-ERR <Kind> <msg>` and the terminator.
pub fn write_err<W: Write>(w: &mut W, e: &MqdError) -> std::io::Result<()> {
    writeln!(w, "-ERR {} {}", error_kind(e), one_line(&e.to_string()))?;
    writeln!(w, "{TERMINATOR}")?;
    w.flush()
}

/// Writes `-OVERLOADED <msg>` and the terminator — the typed admission-
/// control rejection.
pub fn write_overloaded<W: Write>(w: &mut W, msg: &str) -> std::io::Result<()> {
    writeln!(w, "-OVERLOADED {}", one_line(msg))?;
    writeln!(w, "{TERMINATOR}")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_commands_parse() {
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("stats").unwrap(), Request::Stats);
        assert_eq!(parse_request("  DRAIN  ").unwrap(), Request::Drain);
        assert_eq!(parse_request("quit").unwrap(), Request::Quit);
    }

    #[test]
    fn ingest_parses_a_record() {
        let r = parse_request("INGEST 42 1000 0,3,3").unwrap();
        assert_eq!(
            r,
            Request::Ingest(Record {
                id: 42,
                value: 1000,
                labels: vec![0, 3, 3],
            })
        );
        assert!(parse_request("INGEST 42 1000").is_err());
        assert!(parse_request("INGEST x 1000 0").is_err());
        assert!(parse_request("INGEST 42 1000 0 extra").is_err());
        assert!(parse_request("INGEST 1 2 ,").is_err()); // no labels
    }

    #[test]
    fn ingestb_enforces_the_byte_limit() {
        assert_eq!(
            parse_request("INGESTB 128").unwrap(),
            Request::IngestBatch { bytes: 128 }
        );
        let too_big = format!("INGESTB {}", MAX_BATCH_BYTES + 1);
        assert!(matches!(
            parse_request(&too_big).unwrap_err(),
            MqdError::Protocol { .. }
        ));
    }

    #[test]
    fn query_parses_full_form() {
        let r = parse_request("QUERY 0,2 50 scanplus FROM -10 TO 99 PROP").unwrap();
        let Request::Query(q) = r else {
            panic!("not a query")
        };
        assert_eq!(q.labels, vec![0, 2]);
        assert_eq!(q.lambda, 50);
        assert_eq!(q.algorithm, Algorithm::ScanPlus);
        assert_eq!((q.from, q.to, q.proportional), (-10, 99, true));
    }

    #[test]
    fn query_defaults_to_the_full_range() {
        let Request::Query(q) = parse_request("QUERY 1 5 opt").unwrap() else {
            panic!()
        };
        assert_eq!((q.from, q.to, q.proportional), (i64::MIN, i64::MAX, false));
    }

    #[test]
    fn query_rejects_garbage() {
        for bad in [
            "QUERY",
            "QUERY 0",
            "QUERY 0 5",
            "QUERY 0 5 sort",
            "QUERY 0 x scan",
            "QUERY 0 5 scan FROM",
            "QUERY 0 5 scan FROM x",
            "QUERY 0 5 scan WAT 3",
            "QUERY 0 5 scan FROM 9 TO 1",
            "QUERY 0 5 scan SHARDS 2", // SHARDS is subscribe-only
            "FROB 1 2 3",
            "",
        ] {
            assert!(
                matches!(parse_request(bad), Err(MqdError::Protocol { .. })),
                "should reject {bad:?}"
            );
        }
    }

    #[test]
    fn cluster_verbs_parse() {
        let r = parse_request("QUERY 0,2,4 50 scan TO 99 COVER 0,4").unwrap();
        let Request::QueryCover { spec, cover } = r else {
            panic!("not a cover query")
        };
        assert_eq!(spec.labels, vec![0, 2, 4]);
        assert_eq!((spec.lambda, spec.to), (50, 99));
        assert_eq!(cover, vec![0, 4]);

        let r = parse_request("SLICE 1,3 FROM -5 TO 10").unwrap();
        assert_eq!(
            r,
            Request::Slice {
                labels: vec![1, 3],
                from: -5,
                to: 10,
            }
        );
        let Request::Slice { from, to, .. } = parse_request("SLICE 0").unwrap() else {
            panic!()
        };
        assert_eq!((from, to), (i64::MIN, i64::MAX));

        assert_eq!(
            parse_request("HELLO 32").unwrap(),
            Request::Hello { bytes: 32 }
        );

        for bad in [
            "QUERY 0 5 scan COVER",           // COVER needs labels
            "QUERY 0 5 scan COVER ,",         // empty label list
            "SLICE",                          // labels required
            "SLICE 0 PROP",                   // PROP is query-only
            "SLICE 0 COVER 0",                // COVER is query-only
            "SUBSCRIBE 0 10 20 scan COVER 0", // not a subscribe option
            "HELLO",
            "HELLO 0",
            "HELLO 257",
            "HELLO 32 extra",
        ] {
            assert!(
                matches!(parse_request(bad), Err(MqdError::Protocol { .. })),
                "should reject {bad:?}"
            );
        }
    }

    #[test]
    fn subscribe_parses() {
        let r = parse_request("SUBSCRIBE 0,1 10 20 greedy FROM 0 TO 100 SHARDS 2").unwrap();
        let Request::Subscribe(s) = r else { panic!() };
        assert_eq!(s.labels, vec![0, 1]);
        assert_eq!((s.lambda, s.tau), (10, 20));
        assert_eq!(s.engine, ShardEngineKind::Greedy);
        assert_eq!((s.from, s.to, s.shards), (0, 100, 2));
        assert_eq!((s.name, s.after), (None, 0));
        // PROP is query-only.
        assert!(parse_request("SUBSCRIBE 0 10 20 scan PROP").is_err());
        assert!(parse_request("SUBSCRIBE 0 10 20 turbo").is_err());
    }

    #[test]
    fn subscribe_parses_durable_sessions() {
        let r = parse_request("SUBSCRIBE 0 10 20 scan NAME feed-1 AFTER 7").unwrap();
        let Request::Subscribe(s) = r else { panic!() };
        assert_eq!(s.name.as_deref(), Some("feed-1"));
        assert_eq!(s.after, 7);
        // NAME becomes a file name: path-ish or oversized tokens are typed
        // protocol errors, not filesystem surprises.
        for bad in [
            "SUBSCRIBE 0 10 20 scan NAME ../escape",
            "SUBSCRIBE 0 10 20 scan NAME a/b",
            "SUBSCRIBE 0 10 20 scan NAME .hidden",
            "SUBSCRIBE 0 10 20 scan NAME",
            "SUBSCRIBE 0 10 20 scan AFTER x",
            // NAME/AFTER are subscribe-only.
            "QUERY 0 5 scan NAME q",
            "QUERY 0 5 scan AFTER 3",
        ] {
            assert!(
                matches!(parse_request(bad), Err(MqdError::Protocol { .. })),
                "should reject {bad:?}"
            );
        }
        let long = format!("SUBSCRIBE 0 10 20 scan NAME {}", "x".repeat(65));
        assert!(parse_request(&long).is_err());
    }

    #[test]
    fn responses_frame_with_a_terminator() {
        let mut buf = Vec::new();
        write_ok(&mut buf, r#"{"n":1}"#, &["1\t2\t0".into()]).unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            "+OK {\"n\":1}\n1\t2\t0\n.\n"
        );
        let mut buf = Vec::new();
        write_err(
            &mut buf,
            &MqdError::Protocol {
                msg: "bad\nthing".into(),
            },
        )
        .unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("-ERR Protocol "));
        assert!(!s.contains("bad\nthing"), "newlines must be flattened");
        assert!(s.ends_with(".\n"));
        let mut buf = Vec::new();
        write_overloaded(&mut buf, "queue full").unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            "-OVERLOADED queue full\n.\n"
        );
    }

    #[test]
    fn error_kinds_name_every_variant() {
        assert_eq!(error_kind(&MqdError::NegativeLambda(-1)), "NegativeLambda");
        assert_eq!(
            error_kind(&MqdError::Protocol { msg: String::new() }),
            "Protocol"
        );
        assert_eq!(
            error_kind(&MqdError::EmptyLabelSet { row: 1 }),
            "EmptyLabelSet"
        );
        assert_eq!(
            error_kind(&MqdError::Timeout { msg: String::new() }),
            "Timeout"
        );
    }
}
