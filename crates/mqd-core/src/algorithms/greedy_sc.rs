//! Algorithm GreedySC (Section 4.2): MQDP as greedy set cover.
//!
//! The universe is the set of `(post, label)` occurrences; picking post `k`
//! covers the occurrences `⟨P_i, a⟩` with `a ∈ label(P_k)` and
//! `|t_k - t_i| <= lambda_a(P_k)`. Greedy repeatedly picks the post covering
//! the most uncovered occurrences, giving the `ln(|P||L|)` bound of the
//! paper.
//!
//! Three interchangeable implementations:
//!
//! * [`solve_greedy_sc`] — *implicit lazy greedy* (default). Sets are never
//!   materialized; a post's current gain is computed in `O(s log n)` with
//!   one [`PresenceFenwick`] per label, and selection uses the standard
//!   lazy-evaluation max-heap (gains are submodular, so a stale top entry
//!   that revalidates is safe to pick). This is what the experiment harness
//!   runs on day-scale data.
//! * [`solve_greedy_sc_scan_max`] — implicit gains, but each round linearly
//!   rescans all posts for the maximum, mirroring the implementation the
//!   paper describes in Section 7.3 ("we iterate all sets to find the set
//!   with maximum size"). Kept for the `ablation_greedy_heap` experiment.
//! * [`solve_greedy_sc_naive`] — literally materializes the sets `S_k` of
//!   Algorithm 2 and runs the generic greedy from `mqd-setcover`. Quadratic
//!   memory; used as a cross-check oracle in tests.
//!
//! All three produce the same cover under the shared tie-break (highest
//! gain, then smallest post index).
//!
//! The lazy variant's dominant cost on large instances is the initial
//! `gain(k)` pass over every post; [`solve_greedy_sc`] computes it in
//! parallel with `mqd-par`. This is deterministically byte-identical to the
//! sequential solver at any thread count: the heap entries `(gain,
//! Reverse(k))` are distinct totally-ordered values, so a `BinaryHeap` pops
//! them in the same order no matter how (or on how many threads) they were
//! produced. The selection loop itself stays sequential — each pick changes
//! the gains of later picks, which is inherent to greedy set cover.

use crate::instance::Instance;
use crate::lambda::LambdaProvider;
use crate::post::LabelId;
use crate::solution::Solution;
use mqd_setcover::{greedy_cover, BitSet, Goal, PresenceFenwick};

/// Shared implicit-gain machinery: per-label Fenwick trees over `LP(a)`
/// positions, where "present" means the occurrence is still uncovered.
pub(crate) struct GainOracle<'a, L: LambdaProvider + ?Sized> {
    inst: &'a Instance,
    lp: &'a L,
    fenwicks: Vec<PresenceFenwick>,
    remaining: usize,
}

impl<'a, L: LambdaProvider + ?Sized> GainOracle<'a, L> {
    pub(crate) fn new(inst: &'a Instance, lp: &'a L) -> Self {
        let fenwicks: Vec<PresenceFenwick> = (0..inst.num_labels())
            .map(|a| PresenceFenwick::all_present(inst.postings(LabelId(a as u16)).len()))
            .collect();
        let remaining = inst.num_pairs();
        GainOracle {
            inst,
            lp,
            fenwicks,
            remaining,
        }
    }

    /// Number of still-uncovered occurrences.
    pub(crate) fn remaining(&self) -> usize {
        self.remaining
    }

    /// Current gain of picking `k`: uncovered occurrences inside `k`'s
    /// coverage window, summed over its labels.
    pub(crate) fn gain(&self, k: u32) -> u32 {
        let t = self.inst.value(k);
        let mut g = 0u32;
        for &a in self.inst.labels(k) {
            let lam = self.lp.lambda(self.inst, k, a);
            if lam < 0 {
                continue;
            }
            let w = self
                .inst
                .posting_window(a, t.saturating_sub(lam), t.saturating_add(lam));
            g += self.fenwicks[a.index()].count_range(w.start, w.end);
        }
        g
    }

    /// Marks everything covered by picking `k`. Returns how many occurrences
    /// were newly covered.
    pub(crate) fn cover_by(&mut self, k: u32) -> u32 {
        let t = self.inst.value(k);
        let mut newly = 0u32;
        for &a in self.inst.labels(k) {
            let lam = self.lp.lambda(self.inst, k, a);
            if lam < 0 {
                continue;
            }
            for pos in self
                .inst
                .posting_window(a, t.saturating_sub(lam), t.saturating_add(lam))
            {
                if self.fenwicks[a.index()].clear(pos) {
                    newly += 1;
                }
            }
        }
        self.remaining -= newly as usize;
        newly
    }
}

/// GreedySC with implicit sets and lazy-evaluation selection (default).
/// The initial gain pass runs on the configured thread count (see
/// `mqd_par::configured_threads`); the output is byte-identical to the
/// sequential run regardless.
pub fn solve_greedy_sc<L: LambdaProvider + Sync + ?Sized>(inst: &Instance, lp: &L) -> Solution {
    solve_greedy_sc_threads(mqd_par::configured_threads(), inst, lp)
}

/// [`solve_greedy_sc`] with an explicit thread count for the init pass.
pub fn solve_greedy_sc_threads<L: LambdaProvider + Sync + ?Sized>(
    threads: usize,
    inst: &Instance,
    lp: &L,
) -> Solution {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut oracle = GainOracle::new(inst, lp);
    let mut heap: BinaryHeap<(u32, Reverse<u32>)> = {
        let oracle = &oracle;
        mqd_par::par_map_range_threads(threads, inst.len(), |k| {
            let k = k as u32;
            (oracle.gain(k), Reverse(k))
        })
        .into_iter()
        .collect()
    };
    let mut selected = Vec::new();
    while oracle.remaining() > 0 {
        let Some((stale, Reverse(k))) = heap.pop() else {
            break;
        };
        if stale == 0 {
            break;
        }
        let fresh = oracle.gain(k);
        if fresh < stale {
            if fresh > 0 {
                heap.push((fresh, Reverse(k)));
            }
            continue;
        }
        selected.push(k);
        oracle.cover_by(k);
    }
    Solution::new("GreedySC", selected)
}

/// Completes a partial selection into a full lambda-cover with minimum
/// additional greedy cost: the pinned posts are applied first, then the
/// lazy greedy fills the remaining uncovered occurrences. Useful when a
/// user pins posts they insist on seeing and the system fills the gaps.
/// Returns the combined solution (pins included).
///
/// ```
/// use mqd_core::{Instance, FixedLambda, coverage, algorithms::complete_cover};
/// let inst = Instance::from_values(
///     vec![(0, vec![0]), (10, vec![0]), (20, vec![0, 1]), (30, vec![1])], 2).unwrap();
/// let lam = FixedLambda(10);
/// // Pin the first post; the completion must still cover label 1.
/// let sol = complete_cover(&inst, &lam, &[0]);
/// assert!(sol.selected.contains(&0));
/// assert!(coverage::is_cover(&inst, &lam, &sol.selected));
/// ```
pub fn complete_cover<L: LambdaProvider + Sync + ?Sized>(
    inst: &Instance,
    lp: &L,
    pinned: &[u32],
) -> Solution {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut oracle = GainOracle::new(inst, lp);
    let mut selected: Vec<u32> = Vec::new();
    for &p in pinned {
        assert!(
            (p as usize) < inst.len(),
            "pinned index {p} out of range ({} posts)",
            inst.len()
        );
        selected.push(p);
        oracle.cover_by(p);
    }
    let mut heap: BinaryHeap<(u32, Reverse<u32>)> = {
        let oracle = &oracle;
        mqd_par::par_map_range(inst.len(), |k| {
            let k = k as u32;
            (oracle.gain(k), Reverse(k))
        })
        .into_iter()
        .collect()
    };
    while oracle.remaining() > 0 {
        let Some((stale, Reverse(k))) = heap.pop() else {
            break;
        };
        if stale == 0 {
            break;
        }
        let fresh = oracle.gain(k);
        if fresh < stale {
            if fresh > 0 {
                heap.push((fresh, Reverse(k)));
            }
            continue;
        }
        selected.push(k);
        oracle.cover_by(k);
    }
    Solution::new("GreedySC+pins", selected)
}

/// GreedySC with implicit sets and the paper's scan-max selection
/// (Section 7.3). Same output as [`solve_greedy_sc`], slower rounds.
pub fn solve_greedy_sc_scan_max<L: LambdaProvider + ?Sized>(inst: &Instance, lp: &L) -> Solution {
    let mut oracle = GainOracle::new(inst, lp);
    let mut selected = Vec::new();
    while oracle.remaining() > 0 {
        let mut best_gain = 0u32;
        let mut best_k = u32::MAX;
        for k in 0..inst.len() as u32 {
            let g = oracle.gain(k);
            if g > best_gain {
                best_gain = g;
                best_k = k;
            }
        }
        if best_gain == 0 {
            break;
        }
        selected.push(best_k);
        oracle.cover_by(best_k);
    }
    Solution::new("GreedySC", selected)
}

/// GreedySC materializing the sets `S_k` exactly as Algorithm 2 builds them,
/// then running generic greedy set cover. Memory `O(sum_k |S_k|)` — use only
/// on small instances (tests, tiny slices).
pub fn solve_greedy_sc_naive<L: LambdaProvider + ?Sized>(inst: &Instance, lp: &L) -> Solution {
    let mut sets: Vec<Vec<u32>> = vec![Vec::new(); inst.len()];
    for (k, set) in sets.iter_mut().enumerate() {
        let k = k as u32;
        let t = inst.value(k);
        for &a in inst.labels(k) {
            let lam = lp.lambda(inst, k, a);
            if lam < 0 {
                continue;
            }
            for pos in inst.posting_window(a, t.saturating_sub(lam), t.saturating_add(lam)) {
                let p = inst.postings(a)[pos];
                set.push(inst.pair_id(p, a).expect("post taken from LP(a)"));
            }
        }
        set.sort_unstable();
        set.dedup();
    }
    let mut covered = BitSet::new(inst.num_pairs());
    let picked = greedy_cover(&sets, &mut covered, Goal::CoverAll);
    Solution::new("GreedySC", picked.into_iter().map(|k| k as u32).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage;
    use crate::lambda::{FixedLambda, VariableLambda};

    fn figure2() -> Instance {
        Instance::from_values(
            vec![(0, vec![0]), (10, vec![0]), (20, vec![0, 1]), (30, vec![1])],
            2,
        )
        .unwrap()
    }

    #[test]
    fn figure2_greedy_finds_two_posts() {
        let inst = figure2();
        let f = FixedLambda(10);
        for sol in [
            solve_greedy_sc(&inst, &f),
            solve_greedy_sc_scan_max(&inst, &f),
            solve_greedy_sc_naive(&inst, &f),
        ] {
            assert!(coverage::is_cover(&inst, &f, &sol.selected));
            assert_eq!(sol.size(), 2, "greedy should match optimum here");
        }
    }

    #[test]
    fn all_three_variants_agree_exactly() {
        let mut state = 7u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for trial in 0..25 {
            let n = 20 + (next() % 30) as usize;
            let labels = 2 + (next() % 3) as usize;
            let items: Vec<(i64, Vec<u16>)> = (0..n)
                .map(|_| {
                    let t = (next() % 500) as i64;
                    let mut ls = vec![(next() % labels as u64) as u16];
                    if next() % 3 == 0 {
                        ls.push((next() % labels as u64) as u16);
                    }
                    (t, ls)
                })
                .collect();
            let inst = Instance::from_values(items, labels).unwrap();
            let f = FixedLambda((next() % 40) as i64);
            let a = solve_greedy_sc(&inst, &f);
            let b = solve_greedy_sc_scan_max(&inst, &f);
            let c = solve_greedy_sc_naive(&inst, &f);
            assert_eq!(a.selected, b.selected, "trial {trial}: lazy vs scan-max");
            assert_eq!(a.selected, c.selected, "trial {trial}: lazy vs naive");
            assert!(coverage::is_cover(&inst, &f, &a.selected));
        }
    }

    #[test]
    fn parallel_init_is_byte_identical_across_thread_counts() {
        // Large enough to clear the mqd-par inline threshold so chunked
        // workers actually run.
        let items: Vec<(i64, Vec<u16>)> = (0..600)
            .map(|i| {
                let t = (i * 37 % 5_000) as i64;
                let l = (i % 7) as u16;
                if i % 4 == 0 {
                    (t, vec![l, ((i / 4) % 7) as u16])
                } else {
                    (t, vec![l])
                }
            })
            .collect();
        let inst = Instance::from_values(items, 7).unwrap();
        let f = FixedLambda(60);
        let seq = solve_greedy_sc_threads(1, &inst, &f);
        for threads in [2, 3, 8] {
            let par = solve_greedy_sc_threads(threads, &inst, &f);
            assert_eq!(par.selected, seq.selected, "threads={threads}");
        }
        assert!(coverage::is_cover(&inst, &f, &seq.selected));
    }

    #[test]
    fn greedy_prefers_high_overlap_posts() {
        // A post carrying both labels covers 5 occurrences; greedy must pick
        // it first and finish with a single post.
        let inst = Instance::from_values(
            vec![
                (0, vec![0]),
                (1, vec![1]),
                (2, vec![0, 1]),
                (3, vec![0]),
                (4, vec![1]),
            ],
            2,
        )
        .unwrap();
        let f = FixedLambda(2);
        let sol = solve_greedy_sc(&inst, &f);
        assert_eq!(sol.selected, vec![2]);
    }

    #[test]
    fn variable_lambda_cover_valid() {
        let mut items: Vec<(i64, Vec<u16>)> = (0..60).map(|t| (t * 5, vec![0])).collect();
        items.extend((0..10).map(|t| (t * 40, vec![1])));
        let inst = Instance::from_values(items, 2).unwrap();
        let v = VariableLambda::compute(&inst, 50);
        let sol = solve_greedy_sc(&inst, &v);
        assert!(coverage::is_cover(&inst, &v, &sol.selected));
    }

    #[test]
    fn complete_cover_respects_pins_and_covers() {
        let inst = figure2();
        let f = FixedLambda(10);
        // Pinning a suboptimal post still yields a valid cover containing it.
        let sol = complete_cover(&inst, &f, &[0]);
        assert!(sol.selected.contains(&0));
        assert!(coverage::is_cover(&inst, &f, &sol.selected));
        // Pinning an already-optimal pair adds nothing.
        let sol = complete_cover(&inst, &f, &[1, 3]);
        assert_eq!(sol.selected, vec![1, 3]);
        // No pins == plain greedy.
        assert_eq!(
            complete_cover(&inst, &f, &[]).selected,
            solve_greedy_sc(&inst, &f).selected
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn complete_cover_rejects_bad_pins() {
        let inst = figure2();
        complete_cover(&inst, &FixedLambda(1), &[99]);
    }

    #[test]
    fn empty_instance_yields_empty_solution() {
        let inst = Instance::from_values(Vec::<(i64, Vec<u16>)>::new(), 1).unwrap();
        let f = FixedLambda(1);
        assert_eq!(solve_greedy_sc(&inst, &f).size(), 0);
        assert_eq!(solve_greedy_sc_scan_max(&inst, &f).size(), 0);
        assert_eq!(solve_greedy_sc_naive(&inst, &f).size(), 0);
    }

    #[test]
    fn lambda_zero_selects_representatives_per_timestamp() {
        let inst =
            Instance::from_values(vec![(5, vec![0]), (5, vec![0]), (7, vec![0])], 1).unwrap();
        let f = FixedLambda(0);
        let sol = solve_greedy_sc(&inst, &f);
        assert!(coverage::is_cover(&inst, &f, &sol.selected));
        assert_eq!(sol.size(), 2); // one per distinct timestamp
    }
}
