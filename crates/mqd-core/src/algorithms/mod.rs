//! The MQDP solvers of Section 4: exact (OPT, brute force) and approximate
//! (GreedySC, Scan, Scan+).

pub mod brute;
pub mod greedy_sc;
pub mod opt;
pub mod scan;

pub use brute::solve_brute;
pub use greedy_sc::{
    complete_cover, solve_greedy_sc, solve_greedy_sc_naive, solve_greedy_sc_scan_max,
    solve_greedy_sc_threads,
};
pub use opt::{solve_opt, OptConfig};
pub use scan::{solve_scan, solve_scan_cover, solve_scan_plus, LabelOrder};
