//! Algorithm Scan and its optimization Scan+ (Section 4.3).
//!
//! Scan processes each label independently: one left-to-right pass over the
//! sorted list `LP(a)` computes an **optimal** single-label cover `S_a`, and
//! the final answer is the union `∪_a S_a`, giving the `s`-approximation of
//! the paper (where `s` is the maximum number of labels per post).
//!
//! The per-label pass is implemented as the classic
//! cover-points-with-intervals greedy: among the posts whose coverage
//! interval contains the leftmost uncovered post, pick the one whose
//! interval reaches furthest right. With a fixed lambda this is *exactly*
//! the paper's rule ("pick the post right before the first post farther than
//! lambda"), and it remains optimal per label under the directional variable
//! lambda of Section 6, where each post `z` covers `[t_z - lambda_a(z),
//! t_z + lambda_a(z)]`.
//!
//! Scan+ adds the cross-label pruning of Section 4.3: whenever a post is
//! selected, every `(post, label)` occurrence it covers — for **all** its
//! labels — is marked covered, so subsequent lists skip those posts. The
//! effectiveness depends on the label processing order ([`LabelOrder`]).

use crate::instance::Instance;
use crate::lambda::LambdaProvider;
use crate::post::LabelId;
use crate::solution::Solution;
use mqd_setcover::BitSet;

/// Order in which Scan+ processes the labels (the paper notes the
/// optimization's effectiveness depends on this ordering).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LabelOrder {
    /// Label-id order (the paper's default: the order queries were given).
    #[default]
    Input,
    /// Labels with the most matching posts first.
    DensestFirst,
    /// Labels with the fewest matching posts first.
    SparsestFirst,
}

fn label_sequence(inst: &Instance, order: LabelOrder) -> Vec<LabelId> {
    let mut labels: Vec<LabelId> = (0..inst.num_labels() as u16).map(LabelId).collect();
    match order {
        LabelOrder::Input => {}
        LabelOrder::DensestFirst => {
            labels.sort_by_key(|&a| std::cmp::Reverse(inst.postings(a).len()))
        }
        LabelOrder::SparsestFirst => labels.sort_by_key(|&a| inst.postings(a).len()),
    }
    labels
}

/// One greedy pass over `LP(a)`. `covered` (when present) lets the pass skip
/// occurrences already covered by earlier selections (Scan+); `select` is
/// invoked once per newly picked post.
fn scan_label<L: LambdaProvider + ?Sized>(
    inst: &Instance,
    lp: &L,
    a: LabelId,
    covered: Option<&BitSet>,
    mut select: impl FnMut(u32),
) {
    let lpa = inst.postings(a);
    let max_l = lp.max_lambda();
    let is_covered = |post: u32| -> bool {
        covered.is_some_and(|c| {
            let id = inst.pair_id(post, a).expect("post taken from LP(a)");
            c.get(id)
        })
    };

    let mut j = 0usize;
    while j < lpa.len() {
        if is_covered(lpa[j]) {
            j += 1;
            continue;
        }
        let left = lpa[j];
        let t_left = inst.value(left);

        // Candidates that cover `left`: every post z in LP(a) with
        // |t_z - t_left| <= lambda_a(z). They all live within max_lambda of
        // t_left. Pick the one reaching furthest right (ties: latest post).
        let w = inst.posting_window(
            a,
            t_left.saturating_sub(max_l),
            t_left.saturating_add(max_l),
        );
        let mut best: Option<(i64, u32)> = None;
        for pos in w {
            let z = lpa[pos];
            let lam = lp.lambda(inst, z, a);
            if (inst.value(z) as i128 - t_left as i128).abs() <= lam as i128 {
                let reach = inst.value(z).saturating_add(lam);
                if best.is_none_or(|(r, bz)| reach > r || (reach == r && z > bz)) {
                    best = Some((reach, z));
                }
            }
        }
        // `left` always covers itself (lambda >= 0 for real pairs).
        let (reach, z) = best.expect("leftmost uncovered post covers itself");
        select(z);

        // Everything in LP(a) up to `reach` is now covered: those posts lie
        // in [t_left, reach] ⊆ [t_z - lambda, t_z + lambda].
        while j < lpa.len() && inst.value(lpa[j]) <= reach {
            j += 1;
        }
    }
}

/// Algorithm Scan (Section 4.3): optimal per-label covers, unioned.
/// Approximation bound `s`; running time `O(sum_a |LP(a)|)` plus candidate
/// window scans.
///
/// ```
/// use mqd_core::{Instance, FixedLambda, coverage, algorithms::solve_scan};
/// let inst = Instance::from_values(
///     vec![(0, vec![0]), (10, vec![0]), (20, vec![0, 1]), (30, vec![1])], 2).unwrap();
/// let sol = solve_scan(&inst, &FixedLambda(10));
/// assert!(coverage::is_cover(&inst, &FixedLambda(10), &sol.selected));
/// assert_eq!(sol.size(), 2);
/// ```
pub fn solve_scan<L: LambdaProvider + ?Sized>(inst: &Instance, lp: &L) -> Solution {
    let all: Vec<LabelId> = (0..inst.num_labels() as u16).map(LabelId).collect();
    solve_scan_cover(inst, lp, &all)
}

/// Algorithm Scan restricted to a label subset: the optimal per-label
/// covers of exactly the labels in `cover`, unioned. [`solve_scan`] is the
/// all-labels special case.
///
/// This restriction is what makes Scan shard-decomposable: each per-label
/// pass reads only `LP(a)`, so a node holding every post that carries `a`
/// computes `S_a` exactly, and unioning the passes over any partition of
/// the labels reproduces the single-node selection post-for-post. Labels
/// outside the instance are ignored (a shard may own labels the slice
/// never matched).
pub fn solve_scan_cover<L: LambdaProvider + ?Sized>(
    inst: &Instance,
    lp: &L,
    cover: &[LabelId],
) -> Solution {
    let mut selected = Vec::new();
    for &a in cover {
        if (a.0 as usize) < inst.num_labels() {
            scan_label(inst, lp, a, None, |z| selected.push(z));
        }
    }
    Solution::new("Scan", selected)
}

/// Algorithm Scan+ (Section 4.3): like Scan, but a selected post immediately
/// covers matching occurrences under **all** its labels, pruning subsequent
/// lists.
pub fn solve_scan_plus<L: LambdaProvider + ?Sized>(
    inst: &Instance,
    lp: &L,
    order: LabelOrder,
) -> Solution {
    let mut covered = BitSet::new(inst.num_pairs());
    let mut selected = Vec::new();
    for a in label_sequence(inst, order) {
        // Collect this label's picks first (scan_label borrows `covered`
        // immutably), then mark their cross-label coverage. Within one label
        // the pass's own reach pointer already accounts for its picks, so
        // deferred marking does not change the selection.
        let mut picks = Vec::new();
        scan_label(inst, lp, a, Some(&covered), |z| picks.push(z));
        for z in picks {
            selected.push(z);
            mark_covered_by(inst, lp, z, &mut covered);
        }
    }
    Solution::new("Scan+", selected)
}

/// Marks every `(post, label)` occurrence covered by selecting `z`.
pub(crate) fn mark_covered_by<L: LambdaProvider + ?Sized>(
    inst: &Instance,
    lp: &L,
    z: u32,
    covered: &mut BitSet,
) {
    let t_z = inst.value(z);
    for &b in inst.labels(z) {
        let lam = lp.lambda(inst, z, b);
        if lam < 0 {
            continue;
        }
        for pos in inst.posting_window(b, t_z.saturating_sub(lam), t_z.saturating_add(lam)) {
            let p = inst.postings(b)[pos];
            let id = inst.pair_id(p, b).expect("post taken from LP(b)");
            covered.set(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage;
    use crate::lambda::FixedLambda;

    fn check_cover<L: LambdaProvider + Sync + ?Sized>(inst: &Instance, lp: &L, sol: &Solution) {
        assert!(
            coverage::is_cover(inst, lp, &sol.selected),
            "{} produced a non-cover: {:?}",
            sol.algorithm,
            sol.selected
        );
    }

    #[test]
    fn single_label_scan_is_optimal_on_line() {
        // Posts at 0,1,2,...,9 with lambda=2: optimal single-label cover
        // picks every ~4 apart: {2, 7} covers [0,4] and [5,9] -> size 2.
        let inst = Instance::from_values((0..10).map(|t| (t as i64, vec![0])), 1).unwrap();
        let f = FixedLambda(2);
        let sol = solve_scan(&inst, &f);
        check_cover(&inst, &f, &sol);
        assert_eq!(sol.size(), 2);
        assert_eq!(sol.selected, vec![2, 7]);
    }

    #[test]
    fn scan_handles_trailing_uncovered_post() {
        // Posts 0, 1, 100: after picking 1 (covers 0,1), post 100 starts a
        // new segment and must be picked (paper's "last post" handling).
        let inst =
            Instance::from_values(vec![(0, vec![0]), (1, vec![0]), (100, vec![0])], 1).unwrap();
        let f = FixedLambda(5);
        let sol = solve_scan(&inst, &f);
        check_cover(&inst, &f, &sol);
        assert_eq!(sol.size(), 2);
    }

    #[test]
    fn figure2_scan() {
        // Figure 2 instance: optimal is {P2, P4}; Scan per-label gives
        // a-list {0,10,20} -> picks 10; c-list {20,30} -> picks 30.
        let inst = Instance::from_values(
            vec![(0, vec![0]), (10, vec![0]), (20, vec![0, 1]), (30, vec![1])],
            2,
        )
        .unwrap();
        let f = FixedLambda(10);
        let sol = solve_scan(&inst, &f);
        check_cover(&inst, &f, &sol);
        assert_eq!(sol.selected, vec![1, 3]);
    }

    #[test]
    fn scan_plus_reuses_cross_label_picks() {
        // Label 0's scan picks the post at t=1, which also carries label 1
        // and covers label 1's whole list — Scan+ then selects nothing for
        // label 1, while plain Scan picks a second post.
        let inst =
            Instance::from_values(vec![(0, vec![0]), (1, vec![0, 1]), (2, vec![1])], 2).unwrap();
        let f = FixedLambda(5);
        let scan = solve_scan(&inst, &f);
        let plus = solve_scan_plus(&inst, &f, LabelOrder::Input);
        check_cover(&inst, &f, &scan);
        check_cover(&inst, &f, &plus);
        assert_eq!(scan.size(), 2);
        assert_eq!(plus.size(), 1);
        assert_eq!(plus.selected, vec![1]);
    }

    #[test]
    fn scan_plus_orderings_all_valid() {
        let inst = Instance::from_values(
            vec![
                (0, vec![0, 1]),
                (3, vec![1]),
                (5, vec![0]),
                (9, vec![2]),
                (12, vec![0, 2]),
                (15, vec![1, 2]),
            ],
            3,
        )
        .unwrap();
        let f = FixedLambda(4);
        for order in [
            LabelOrder::Input,
            LabelOrder::DensestFirst,
            LabelOrder::SparsestFirst,
        ] {
            let sol = solve_scan_plus(&inst, &f, order);
            check_cover(&inst, &f, &sol);
        }
    }

    #[test]
    fn cover_partition_unions_to_full_scan() {
        // Any partition of the labels reproduces full Scan's selection:
        // the per-label passes are independent, so sharded solving is
        // byte-identical after a sort/dedup union.
        let inst = Instance::from_values(
            vec![
                (0, vec![0, 1]),
                (3, vec![1]),
                (5, vec![0]),
                (9, vec![2]),
                (12, vec![0, 2]),
                (15, vec![1, 2]),
            ],
            3,
        )
        .unwrap();
        let f = FixedLambda(4);
        let mut full = solve_scan(&inst, &f).selected;
        full.sort_unstable();
        full.dedup();
        for split in [
            vec![vec![0u16], vec![1], vec![2]],
            vec![vec![0, 2], vec![1]],
            vec![vec![1, 2, 0]],
        ] {
            let mut union = Vec::new();
            for part in &split {
                let cover: Vec<LabelId> = part.iter().copied().map(LabelId).collect();
                union.extend(solve_scan_cover(&inst, &f, &cover).selected);
            }
            union.sort_unstable();
            union.dedup();
            assert_eq!(union, full, "partition {split:?} diverged");
        }
        // Labels beyond the instance are ignored, not a panic.
        assert_eq!(solve_scan_cover(&inst, &f, &[LabelId(7)]).size(), 0);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::from_values(Vec::<(i64, Vec<u16>)>::new(), 2).unwrap();
        let f = FixedLambda(1);
        assert_eq!(solve_scan(&inst, &f).size(), 0);
        assert_eq!(solve_scan_plus(&inst, &f, LabelOrder::Input).size(), 0);
    }

    #[test]
    fn variable_lambda_directional_cover_is_valid() {
        use crate::lambda::VariableLambda;
        // Dense cluster plus outliers; Scan must produce a valid directional
        // cover under Eq. 2 thresholds.
        let mut items: Vec<(i64, Vec<u16>)> =
            (0..40).map(|t| (t as i64 * 10, vec![0, 1])).collect();
        items.push((5_000, vec![0]));
        items.push((9_000, vec![1]));
        let inst = Instance::from_values(items, 2).unwrap();
        let v = VariableLambda::compute(&inst, 200);
        let scan = solve_scan(&inst, &v);
        check_cover(&inst, &v, &scan);
        let plus = solve_scan_plus(&inst, &v, LabelOrder::Input);
        check_cover(&inst, &v, &plus);
    }

    #[test]
    fn scan_bound_s_times_single_label_optimum() {
        // With one label Scan is optimal; sanity-check the s-bound shape on
        // a two-label instance: |Scan| <= 2 * |any cover|.
        let inst =
            Instance::from_values((0..20).map(|t| (t as i64, vec![(t % 2) as u16])), 2).unwrap();
        let f = FixedLambda(3);
        let sol = solve_scan(&inst, &f);
        check_cover(&inst, &f, &sol);
        assert!(sol.size() <= 2 * inst.len());
    }
}
