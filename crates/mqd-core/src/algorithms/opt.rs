//! Algorithm OPT (Section 4.1): exact dynamic programming over end-patterns.
//!
//! Posts are processed in dimension order. After handling post `P_j` the DP
//! keeps, for every feasible *j-end-pattern* `ξ : L → {0..f(j)}` (the index
//! of the latest selected post carrying each label, `0` = the virtual
//! sentinel post `P_0` that carries all labels and sits more than lambda
//! before the first post), the minimum cardinality `h_{j,ξ}` of a
//! `(lambda, j)`-cover realizing it, plus a parent pointer for backtracking.
//!
//! The transition (Equation 1 of the paper) extends each consistent
//! `(j-1)`-end-pattern `η` with the set `Δ(η, ξ)` of posts newer than
//! `f(j-1)`:
//!
//! ```text
//! h_{j,ξ} = min over η ⪯ ξ of  h_{j-1,η} + |Δ(η, ξ)|
//! ```
//!
//! Feasibility of a candidate pattern is exactly the paper's two conditions:
//! (i) a label `a` carried by a *later* selected post `P_{ξ(b)}` must have
//! `ξ(a) >= ξ(b)`; (ii) no post up to `P_j` carrying `a` may lie beyond
//! `t_{ξ(a)} + lambda`.
//!
//! Worst-case time `O(|P|^(2|L|+1))` — the paper (and our harness) only run
//! OPT on small slices with `|L| <= 3` and small lambda; the
//! [`OptConfig::max_patterns_per_step`] budget turns blow-ups into a typed
//! error instead of an OOM.
//!
//! OPT requires a **fixed** lambda: the redundancy argument behind the
//! end-pattern state (every selected post newer than `f(j-1)` is the latest
//! for one of its labels) relies on symmetric coverage. The approximation
//! algorithms handle the variable lambda of Section 6.

use std::collections::HashMap;

use crate::error::MqdError;
use crate::instance::Instance;
use crate::post::LabelId;
use crate::solution::Solution;

/// Budget knobs for the exact DP.
#[derive(Clone, Copy, Debug)]
pub struct OptConfig {
    /// Maximum number of distinct end-patterns retained per step, and also
    /// the maximum candidate-combination count per step.
    pub max_patterns_per_step: usize,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            max_patterns_per_step: 200_000,
        }
    }
}

#[derive(Clone, Debug)]
struct Entry {
    count: u32,
    /// Index of the parent entry in the previous layer (`u32::MAX` = root).
    parent: u32,
    /// Post codes added by this transition (codes are post index + 1).
    added: Vec<u32>,
}

#[derive(Default)]
struct Layer {
    index: HashMap<Vec<u32>, usize>,
    /// Pattern of each entry, in insertion order. Iterating parents through
    /// this (never through the HashMap) keeps tie-breaking — and therefore
    /// the reconstructed cover — deterministic across runs, which the
    /// serving layer's answer-identity guarantees rely on.
    keys: Vec<Vec<u32>>,
    entries: Vec<Entry>,
}

/// Exact minimum lambda-cover via the end-pattern DP. `lambda` must be
/// non-negative; fails with [`MqdError::OptBudgetExceeded`] when the state
/// space outgrows the configured budget.
///
/// ```
/// use mqd_core::{Instance, algorithms::{solve_opt, OptConfig}};
/// let inst = Instance::from_values(
///     vec![(0, vec![0]), (10, vec![0]), (20, vec![0, 1]), (30, vec![1])], 2).unwrap();
/// let opt = solve_opt(&inst, 10, &OptConfig::default()).unwrap();
/// assert_eq!(opt.size(), 2); // {P2, P4} — the paper's Example 2
/// ```
pub fn solve_opt(inst: &Instance, lambda: i64, cfg: &OptConfig) -> Result<Solution, MqdError> {
    if lambda < 0 {
        return Err(MqdError::NegativeLambda(lambda));
    }
    let n = inst.len();
    if n == 0 {
        return Ok(Solution::new("OPT", Vec::new()));
    }
    let num_l = inst.num_labels();

    // `code` space: 0 = sentinel P0, code c >= 1 is post index c-1.
    // lint:allow(overflow-arith): index math on codes >= 1 by construction, not an F/lambda value
    let tval = |code: u32| -> i64 { inst.value(code - 1) };

    // f[j] for 1-based j: the largest code whose value is <= t_j + lambda.
    // f(0) = 0.
    let f: Vec<u32> = (1..=n as u32)
        .map(|j| inst.window(i64::MIN, tval(j).saturating_add(lambda)).end as u32)
        .collect();
    let f_of = |j: u32| -> u32 {
        if j == 0 {
            0
        } else {
            f[j as usize - 1]
        }
    };

    // Condition (ii): merged[a] must reach the last a-post with code <= j.
    let last_posting_leq = |a: usize, j: u32| -> Option<u32> {
        let lpa = inst.postings(LabelId(a as u16));
        let idx = lpa.partition_point(|&p| p < j); // post indices < j == codes <= j
        if idx == 0 {
            None
        } else {
            Some(lpa[idx - 1] + 1)
        }
    };

    let is_valid = |merged: &[u32], j: u32| -> bool {
        for a in 0..num_l {
            let c = merged[a];
            if c > 0 {
                // (i): every label carried by P_{c-1} must have its latest
                // selected occurrence at or after c.
                for &b in inst.labels(c - 1) {
                    if merged[b.index()] < c {
                        return false;
                    }
                }
            }
            // (ii)
            if let Some(last) = last_posting_leq(a, j) {
                if c == 0 {
                    return false; // the sentinel covers nothing real
                }
                if tval(last) > tval(c).saturating_add(lambda) {
                    return false;
                }
            }
        }
        true
    };

    // Layer 0: the all-sentinel pattern, count 1 (the sentinel itself).
    let mut layers: Vec<Layer> = Vec::with_capacity(n + 1);
    let mut l0 = Layer::default();
    l0.index.insert(vec![0u32; num_l], 0);
    l0.keys.push(vec![0u32; num_l]);
    l0.entries.push(Entry {
        count: 1,
        parent: u32::MAX,
        added: Vec::new(),
    });
    layers.push(l0);

    for j in 1..=n as u32 {
        let pj = j - 1; // 0-based post index of P_j
        let t_j = inst.value(pj);
        let f_prev = f_of(j - 1);

        // Candidate codes per label.
        let mut cands: Vec<Vec<u32>> = Vec::with_capacity(num_l);
        let mut product: usize = 1;
        for a in 0..num_l {
            let lab = LabelId(a as u16);
            let mut c: Vec<u32> = Vec::new();
            if inst.post(pj).has_label(lab) {
                // Must cover a ∈ P_j: any a-post within lambda of t_j.
                for pos in
                    inst.posting_window(lab, t_j.saturating_sub(lambda), t_j.saturating_add(lambda))
                {
                    c.push(inst.postings(lab)[pos] + 1);
                }
            } else {
                // Either keep the previous latest (placeholder 0) or adopt a
                // post newer than f(j-1). Older explicit choices are
                // redundant: consistency forces them to equal η(a), which
                // the placeholder already yields.
                c.push(0);
                for pos in
                    inst.posting_window(lab, t_j.saturating_sub(lambda), t_j.saturating_add(lambda))
                {
                    let code = inst.postings(lab)[pos] + 1;
                    if code > f_prev {
                        c.push(code);
                    }
                }
            }
            product = product.saturating_mul(c.len());
            cands.push(c);
        }
        if product > cfg.max_patterns_per_step {
            return Err(MqdError::OptBudgetExceeded {
                patterns: product,
                limit: cfg.max_patterns_per_step,
            });
        }

        let prev = layers.last().expect("layer 0 exists");
        let mut next = Layer::default();

        // Odometer over the candidate cartesian product.
        let mut choice = vec![0usize; num_l];
        let mut xi = vec![0u32; num_l];
        'combos: loop {
            for a in 0..num_l {
                xi[a] = cands[a][choice[a]];
            }

            // Distinct codes newer than f(j-1): the posts this transition adds.
            let mut added: Vec<u32> = xi.iter().copied().filter(|&c| c > f_prev).collect();
            added.sort_unstable();
            added.dedup();

            let mut merged = vec![0u32; num_l];
            for eta_idx in 0..prev.entries.len() {
                let (eta_key, eta_entry) = (&prev.keys[eta_idx], &prev.entries[eta_idx]);
                // Consistency η ⪯ ξ and merge of placeholders.
                let mut ok = true;
                for a in 0..num_l {
                    let c = xi[a];
                    if c == 0 {
                        merged[a] = eta_key[a];
                    } else if c <= f_prev {
                        if eta_key[a] != c {
                            ok = false;
                            break;
                        }
                        merged[a] = c;
                    } else {
                        merged[a] = c;
                    }
                }
                if !ok || !is_valid(&merged, j) {
                    continue;
                }
                let count = eta_entry.count + added.len() as u32;
                match next.index.get(merged.as_slice()) {
                    Some(&i) => {
                        if count < next.entries[i].count {
                            next.entries[i] = Entry {
                                count,
                                parent: eta_idx as u32,
                                added: added.clone(),
                            };
                        }
                    }
                    None => {
                        if next.entries.len() >= cfg.max_patterns_per_step {
                            return Err(MqdError::OptBudgetExceeded {
                                patterns: next.entries.len() + 1,
                                limit: cfg.max_patterns_per_step,
                            });
                        }
                        next.index.insert(merged.clone(), next.entries.len());
                        next.keys.push(merged.clone());
                        next.entries.push(Entry {
                            count,
                            parent: eta_idx as u32,
                            added: added.clone(),
                        });
                    }
                }
            }

            // Advance the odometer.
            let mut a = 0;
            loop {
                if a == num_l {
                    break 'combos;
                }
                choice[a] += 1;
                if choice[a] < cands[a].len() {
                    break;
                }
                choice[a] = 0;
                a += 1;
            }
        }

        debug_assert!(
            !next.entries.is_empty(),
            "every post is coverable by itself, so some pattern must survive"
        );
        layers.push(next);
    }

    // Best final pattern, then backtrack through the parent chain.
    let last = layers.last().expect("n >= 1");
    let best = last
        .entries
        .iter()
        .enumerate()
        .min_by_key(|(_, e)| e.count)
        .map(|(i, _)| i)
        .expect("final layer non-empty");

    let mut selected: Vec<u32> = Vec::new();
    let mut layer_idx = layers.len() - 1;
    let mut entry_idx = best as u32;
    while layer_idx > 0 {
        let e = &layers[layer_idx].entries[entry_idx as usize];
        selected.extend(e.added.iter().map(|&code| code - 1));
        entry_idx = e.parent;
        layer_idx -= 1;
    }
    Ok(Solution::new("OPT", selected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::brute::solve_brute;
    use crate::coverage;
    use crate::lambda::FixedLambda;

    fn opt(inst: &Instance, lambda: i64) -> Solution {
        solve_opt(inst, lambda, &OptConfig::default()).unwrap()
    }

    #[test]
    fn figure2_opt_is_two() {
        let inst = Instance::from_values(
            vec![(0, vec![0]), (10, vec![0]), (20, vec![0, 1]), (30, vec![1])],
            2,
        )
        .unwrap();
        let sol = opt(&inst, 10);
        assert!(coverage::is_cover(&inst, &FixedLambda(10), &sol.selected));
        assert_eq!(sol.size(), 2);
    }

    #[test]
    fn single_label_line() {
        let inst = Instance::from_values((0..10).map(|t| (t as i64, vec![0])), 1).unwrap();
        let sol = opt(&inst, 2);
        assert!(coverage::is_cover(&inst, &FixedLambda(2), &sol.selected));
        assert_eq!(sol.size(), 2);
    }

    #[test]
    fn disjoint_labels_need_separate_posts() {
        // Same timestamps, disjoint labels: neither covers the other (the
        // key multi-query property from the introduction).
        let inst = Instance::from_values(vec![(0, vec![0]), (0, vec![1])], 2).unwrap();
        let sol = opt(&inst, 100);
        assert_eq!(sol.size(), 2);
    }

    #[test]
    fn one_post_covers_all_when_it_carries_all_labels() {
        let inst =
            Instance::from_values(vec![(0, vec![0]), (1, vec![1]), (2, vec![0, 1])], 2).unwrap();
        let sol = opt(&inst, 5);
        assert!(coverage::is_cover(&inst, &FixedLambda(5), &sol.selected));
        assert_eq!(sol.size(), 1);
        assert_eq!(sol.selected, vec![2]);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut state = 2024u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for trial in 0..40 {
            let n = 4 + (next() % 8) as usize;
            let labels = 1 + (next() % 3) as usize;
            let items: Vec<(i64, Vec<u16>)> = (0..n)
                .map(|_| {
                    let t = (next() % 50) as i64;
                    let mut ls = vec![(next() % labels as u64) as u16];
                    if next() % 3 == 0 {
                        ls.push((next() % labels as u64) as u16);
                    }
                    (t, ls)
                })
                .collect();
            let inst = Instance::from_values(items.clone(), labels).unwrap();
            let lambda = (next() % 25) as i64;
            let dp = opt(&inst, lambda);
            let bf = solve_brute(&inst, &FixedLambda(lambda), None).unwrap();
            assert!(
                coverage::is_cover(&inst, &FixedLambda(lambda), &dp.selected),
                "trial {trial}: OPT non-cover on {items:?} lambda={lambda}"
            );
            assert_eq!(
                dp.size(),
                bf.size(),
                "trial {trial}: OPT={:?} brute={:?} on {items:?} lambda={lambda}",
                dp.selected,
                bf.selected
            );
        }
    }

    #[test]
    fn negative_lambda_rejected() {
        let inst = Instance::from_values(vec![(0, vec![0])], 1).unwrap();
        assert_eq!(
            solve_opt(&inst, -1, &OptConfig::default()).unwrap_err(),
            MqdError::NegativeLambda(-1)
        );
    }

    #[test]
    fn budget_exceeded_is_reported() {
        let inst = Instance::from_values((0..30).map(|t| (t as i64, vec![0, 1])), 2).unwrap();
        let cfg = OptConfig {
            max_patterns_per_step: 4,
        };
        assert!(matches!(
            solve_opt(&inst, 20, &cfg).unwrap_err(),
            MqdError::OptBudgetExceeded { .. }
        ));
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::from_values(Vec::<(i64, Vec<u16>)>::new(), 1).unwrap();
        assert_eq!(opt(&inst, 5).size(), 0);
    }
}
