//! Branch-and-bound exact solver.
//!
//! Not part of the paper — a test oracle used to validate the dynamic
//! program OPT and to measure the exact optimum in the Section 7.2
//! experiments when the DP would be slower. It branches on the first
//! uncovered `(post, label)` occurrence: some selected post must cover it,
//! and only posts inside its coverage window can, so the branching factor is
//! the local window density and the depth is the optimum size.

use crate::error::MqdError;
use crate::instance::Instance;
use crate::lambda::LambdaProvider;
use crate::solution::Solution;
use mqd_setcover::BitSet;

/// Hard cap on instance size: beyond this the search space risks exploding.
const DEFAULT_MAX_POSTS: usize = 64;

/// Exact minimum lambda-cover by branch and bound. Errors if the instance
/// has more than `max_posts` posts (default 64 when `None`).
pub fn solve_brute<L: LambdaProvider + ?Sized>(
    inst: &Instance,
    lp: &L,
    max_posts: Option<usize>,
) -> Result<Solution, MqdError> {
    let limit = max_posts.unwrap_or(DEFAULT_MAX_POSTS);
    if inst.len() > limit {
        return Err(MqdError::BruteTooLarge {
            posts: inst.len(),
            limit,
        });
    }

    // covers_mask[k]: pair ids covered by picking post k.
    let covers_mask: Vec<Vec<u32>> = (0..inst.len() as u32)
        .map(|k| {
            let t = inst.value(k);
            let mut v = Vec::new();
            for &a in inst.labels(k) {
                let lam = lp.lambda(inst, k, a);
                if lam < 0 {
                    continue;
                }
                for pos in inst.posting_window(a, t.saturating_sub(lam), t.saturating_add(lam)) {
                    let p = inst.postings(a)[pos];
                    v.push(inst.pair_id(p, a).expect("post taken from LP(a)"));
                }
            }
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();

    // coverers[e]: posts that can cover pair e.
    let mut coverers: Vec<Vec<u32>> = vec![Vec::new(); inst.num_pairs()];
    for (k, pairs) in covers_mask.iter().enumerate() {
        for &e in pairs {
            coverers[e as usize].push(k as u32);
        }
    }

    let max_set = covers_mask
        .iter()
        .map(|s| s.len())
        .max()
        .unwrap_or(1)
        .max(1);

    struct Ctx<'a> {
        covers_mask: &'a [Vec<u32>],
        coverers: &'a [Vec<u32>],
        max_set: usize,
        best: Vec<u32>,
        best_size: usize,
    }

    fn search(ctx: &mut Ctx<'_>, covered: &BitSet, stack: &mut Vec<u32>) {
        // Lower bound: each further pick covers at most max_set occurrences.
        let uncovered = covered.len() - covered.count_ones();
        let lb = stack.len() + uncovered.div_ceil(ctx.max_set);
        if lb >= ctx.best_size && uncovered > 0 {
            return;
        }
        if uncovered == 0 {
            if stack.len() < ctx.best_size {
                ctx.best_size = stack.len();
                ctx.best = stack.clone();
            }
            return;
        }
        // Fail-first: branch on the uncovered occurrence with the fewest
        // remaining coverers.
        let e = covered
            .iter_zeros()
            .min_by_key(|&e| ctx.coverers[e as usize].len())
            .expect("uncovered > 0");
        // Try coverers that gain the most first, to find tight upper bounds
        // early.
        let mut options: Vec<(usize, u32)> = ctx.coverers[e as usize]
            .iter()
            .map(|&k| {
                let gain = ctx.covers_mask[k as usize]
                    .iter()
                    .filter(|&&p| !covered.get(p))
                    .count();
                (gain, k)
            })
            .collect();
        options.sort_by(|a, b| b.cmp(a));
        for (_, k) in options {
            let mut next = covered.clone();
            for &p in &ctx.covers_mask[k as usize] {
                next.set(p);
            }
            stack.push(k);
            search(ctx, &next, stack);
            stack.pop();
        }
    }

    // Upper bound: selecting every post is always a cover; start there.
    let mut ctx = Ctx {
        covers_mask: &covers_mask,
        coverers: &coverers,
        max_set,
        best: (0..inst.len() as u32).collect(),
        best_size: inst.len() + 1,
    };
    let covered = BitSet::new(inst.num_pairs());
    let mut stack = Vec::new();
    search(&mut ctx, &covered, &mut stack);
    Ok(Solution::new("Brute", ctx.best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::greedy_sc::solve_greedy_sc;
    use crate::algorithms::scan::solve_scan;
    use crate::coverage;
    use crate::lambda::FixedLambda;

    #[test]
    fn figure2_optimum_is_two() {
        let inst = Instance::from_values(
            vec![(0, vec![0]), (10, vec![0]), (20, vec![0, 1]), (30, vec![1])],
            2,
        )
        .unwrap();
        let f = FixedLambda(10);
        let sol = solve_brute(&inst, &f, None).unwrap();
        assert!(coverage::is_cover(&inst, &f, &sol.selected));
        assert_eq!(sol.size(), 2);
    }

    #[test]
    fn rejects_oversized_instances() {
        let inst = Instance::from_values((0..10).map(|t| (t as i64, vec![0])), 1).unwrap();
        let err = solve_brute(&inst, &FixedLambda(1), Some(5)).unwrap_err();
        assert!(matches!(err, MqdError::BruteTooLarge { posts: 10, .. }));
    }

    #[test]
    fn brute_lower_bounds_approximations_randomly() {
        let mut state = 42u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..20 {
            let n = 6 + (next() % 8) as usize;
            let labels = 2 + (next() % 2) as usize;
            let items: Vec<(i64, Vec<u16>)> = (0..n)
                .map(|_| {
                    let t = (next() % 60) as i64;
                    let mut ls = vec![(next() % labels as u64) as u16];
                    if next() % 2 == 0 {
                        ls.push((next() % labels as u64) as u16);
                    }
                    (t, ls)
                })
                .collect();
            let inst = Instance::from_values(items, labels).unwrap();
            let f = FixedLambda((next() % 20) as i64);
            let opt = solve_brute(&inst, &f, None).unwrap();
            assert!(coverage::is_cover(&inst, &f, &opt.selected));
            let greedy = solve_greedy_sc(&inst, &f);
            let scan = solve_scan(&inst, &f);
            assert!(opt.size() <= greedy.size());
            assert!(opt.size() <= scan.size());
            // Scan's provable bound: s * opt.
            let s = inst.max_labels_per_post();
            assert!(scan.size() <= s * opt.size());
        }
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::from_values(Vec::<(i64, Vec<u16>)>::new(), 1).unwrap();
        let sol = solve_brute(&inst, &FixedLambda(1), None).unwrap();
        assert_eq!(sol.size(), 0);
    }
}
