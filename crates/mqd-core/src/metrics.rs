//! Solution-quality metrics beyond raw cardinality.
//!
//! The paper evaluates solutions by size and relative error; a deployment
//! also cares *how well* the selected posts represent the input: how far a
//! covered occurrence sits from its nearest representative, how output is
//! allocated across labels (Section 6's proportionality goal), and how much
//! the stream was compressed. These metrics power the
//! `ablation_variable_lambda` experiment and the examples.

use crate::instance::Instance;
use crate::post::LabelId;

/// Fraction of posts kept: `|Z| / |P|` (0 for an empty instance).
pub fn compression_ratio(inst: &Instance, selected: &[u32]) -> f64 {
    if inst.is_empty() {
        0.0
    } else {
        selected.len() as f64 / inst.len() as f64
    }
}

/// Distance from each `(post, label)` occurrence to its nearest selected
/// post carrying that label.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RepresentationError {
    /// Mean distance over all occurrences (dimension units).
    pub mean: f64,
    /// Maximum distance (the worst-represented occurrence).
    pub max: i64,
    /// Occurrences with no same-label representative at all.
    pub unrepresented: usize,
}

/// Computes [`RepresentationError`] for a selection. A valid lambda-cover
/// has `max <= max_lambda` and `unrepresented == 0`; smaller means the
/// digest tracks the input more closely.
pub fn representation_error(inst: &Instance, selected: &[u32]) -> RepresentationError {
    let mut sorted: Vec<u32> = selected.to_vec();
    sorted.sort_unstable();
    sorted.dedup();

    let mut sum = 0f64;
    let mut max = 0i64;
    let mut missing = 0usize;
    let mut count = 0usize;
    for a_idx in 0..inst.num_labels() {
        let a = LabelId(a_idx as u16);
        let reps: Vec<i64> = sorted
            .iter()
            .filter(|&&z| inst.post(z).has_label(a))
            .map(|&z| inst.value(z))
            .collect();
        for &i in inst.postings(a) {
            count += 1;
            if reps.is_empty() {
                missing += 1;
                continue;
            }
            let t = inst.value(i);
            let pos = reps.partition_point(|&r| r < t);
            // Unlike the coverage checks there is no lambda bound here, so
            // the gap to the nearest representative can exceed i64: compute
            // in i128 and clamp the reported distance.
            let mut best = i64::MAX;
            if pos < reps.len() {
                let d = (reps[pos] as i128 - t as i128).unsigned_abs();
                best = best.min(d.min(i64::MAX as u128) as i64);
            }
            if pos > 0 {
                let d = (t as i128 - reps[pos - 1] as i128).unsigned_abs();
                best = best.min(d.min(i64::MAX as u128) as i64);
            }
            sum += best as f64;
            max = max.max(best);
        }
    }
    RepresentationError {
        mean: if count == missing {
            0.0
        } else {
            sum / (count - missing) as f64
        },
        max,
        unrepresented: missing,
    }
}

/// Number of selected posts carrying each label.
pub fn per_label_counts(inst: &Instance, selected: &[u32]) -> Vec<usize> {
    let mut counts = vec![0usize; inst.num_labels()];
    for &z in selected {
        for &a in inst.labels(z) {
            counts[a.index()] += 1;
        }
    }
    counts
}

/// Share of each label among all label occurrences of `posts` (sums to 1
/// unless empty).
fn label_shares(inst: &Instance, posts: &[u32]) -> Vec<f64> {
    let counts = per_label_counts(inst, posts);
    let total: usize = counts.iter().sum();
    counts
        .iter()
        .map(|&c| {
            if total == 0 {
                0.0
            } else {
                c as f64 / total as f64
            }
        })
        .collect()
}

/// Proportionality of a selection (Section 6's goal): L1 distance between
/// the output's per-label share vector and the input's. 0 = perfectly
/// proportional, 2 = maximally skewed.
pub fn proportionality_l1(inst: &Instance, selected: &[u32]) -> f64 {
    let all: Vec<u32> = (0..inst.len() as u32).collect();
    let input = label_shares(inst, &all);
    let output = label_shares(inst, selected);
    input.iter().zip(&output).map(|(a, b)| (a - b).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        Instance::from_values(
            vec![(0, vec![0]), (10, vec![0]), (20, vec![0, 1]), (30, vec![1])],
            2,
        )
        .unwrap()
    }

    #[test]
    fn compression() {
        let i = inst();
        assert_eq!(compression_ratio(&i, &[1, 3]), 0.5);
        let empty = Instance::from_values(Vec::<(i64, Vec<u16>)>::new(), 1).unwrap();
        assert_eq!(compression_ratio(&empty, &[]), 0.0);
    }

    #[test]
    fn representation_for_exact_cover() {
        let i = inst();
        // {P2 (t=10, a), P4 (t=30, c)}: a-occurrences at 0,10,20 -> dists
        // 10,0,10; c at 20,30 -> 10,0. mean = 30/5, max = 10.
        let r = representation_error(&i, &[1, 3]);
        assert_eq!(r.max, 10);
        assert_eq!(r.unrepresented, 0);
        assert!((r.mean - 6.0).abs() < 1e-12);
    }

    #[test]
    fn unrepresented_labels_counted() {
        let i = inst();
        // Only P1 (t=0, {a}) selected: both c-occurrences unrepresented.
        let r = representation_error(&i, &[0]);
        assert_eq!(r.unrepresented, 2);
        assert_eq!(r.max, 20); // a at t=20
    }

    #[test]
    fn empty_selection() {
        let i = inst();
        let r = representation_error(&i, &[]);
        assert_eq!(r.unrepresented, 5);
        assert_eq!(r.mean, 0.0);
    }

    #[test]
    fn label_counts_and_proportionality() {
        let i = inst();
        assert_eq!(per_label_counts(&i, &[2]), vec![1, 1]);
        // The full set is perfectly proportional to itself.
        let all: Vec<u32> = (0..4).collect();
        assert!(proportionality_l1(&i, &all) < 1e-12);
        // Selecting only a-posts maximizes skew toward label a.
        let skewed = proportionality_l1(&i, &[0, 1]);
        assert!(skewed > 0.3);
    }

    #[test]
    fn representation_error_survives_extreme_values() {
        // Regression: the nearest-representative gap was computed with raw
        // i64 subtraction, which overflows when the only representative
        // sits at the other end of the i64 range.
        let i =
            Instance::from_values(vec![(i64::MIN + 1, vec![0]), (i64::MAX, vec![0])], 1).unwrap();
        let r = representation_error(&i, &[1]);
        assert_eq!(r.unrepresented, 0);
        // The true gap exceeds i64::MAX; the report clamps instead of
        // wrapping to a small (or negative-then-abs'd) value.
        assert_eq!(r.max, i64::MAX);
    }

    #[test]
    fn duplicate_selection_indices_tolerated() {
        let i = inst();
        let a = representation_error(&i, &[1, 1, 3, 3]);
        let b = representation_error(&i, &[1, 3]);
        assert_eq!(a, b);
    }
}
