//! Diversity thresholds: fixed lambda and the variable, density-dependent
//! lambda of Section 6 (proportional diversity).
//!
//! With a fixed lambda the coverage relation is symmetric. With the
//! post-specific lambda of Equation 2 it becomes *directional*: the lambda
//! of the **covering** post applies, so `P_i` may lambda-cover `a ∈ P_j`
//! while `P_j` does not lambda-cover `a ∈ P_i`. All algorithms in this crate
//! are written against the [`LambdaProvider`] trait so both regimes share
//! one implementation.

use crate::instance::Instance;
use crate::post::LabelId;

/// Supplies the threshold `lambda_a(P_i)` used when post `P_i` acts as the
/// *coverer* for label `a`.
pub trait LambdaProvider {
    /// Threshold for `coverer` on label `a`. Callers guarantee
    /// `a ∈ label(coverer)`.
    fn lambda(&self, inst: &Instance, coverer: u32, a: LabelId) -> i64;

    /// An upper bound on every lambda this provider can return; algorithms
    /// use it to size candidate windows.
    fn max_lambda(&self) -> i64;

    /// `Some(lambda)` when the threshold is one uniform constant; lets
    /// algorithms take symmetric-coverage fast paths.
    fn as_fixed(&self) -> Option<i64> {
        None
    }
}

/// The uniform threshold of Sections 2–5: every post covers `lambda` units
/// around itself on the diversity dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FixedLambda(pub i64);

impl LambdaProvider for FixedLambda {
    #[inline]
    fn lambda(&self, _inst: &Instance, _coverer: u32, _a: LabelId) -> i64 {
        self.0
    }

    #[inline]
    fn max_lambda(&self) -> i64 {
        self.0
    }

    #[inline]
    fn as_fixed(&self) -> Option<i64> {
        Some(self.0)
    }
}

/// The proportional-diversity threshold of Equation 2:
///
/// ```text
/// lambda_a(P_i) = lambda0 * e^(1 - density_a(t_i - lambda0, t_i + lambda0) / density0)
/// ```
///
/// where `density_a` is the rate of posts matching `a` around `P_i` and
/// `density0` is the average per-label rate over the whole instance. Dense
/// regions get a smaller lambda (more representatives survive), sparse
/// regions a larger one, and the exponential keeps rare perspectives
/// represented (Section 6's "smooth diversity formula").
///
/// All thresholds are precomputed per `(post, label)` pair at construction,
/// so lookups during the algorithms are O(1).
#[derive(Clone, Debug)]
pub struct VariableLambda {
    lambda0: i64,
    per_pair: Vec<i64>,
    max_lambda: i64,
}

impl VariableLambda {
    /// Precomputes Equation 2 for every `(post, label)` occurrence of the
    /// instance. `lambda0` is the domain-expert base threshold.
    ///
    /// Densities are measured in posts per dimension unit, and `density0` is
    /// the average over labels of `|LP(a)| / span`; the units cancel in the
    /// `density_a / density0` ratio, so the formula works unchanged for any
    /// diversity dimension (time in ms, scaled sentiment, ...).
    pub fn compute(inst: &Instance, lambda0: i64) -> Self {
        assert!(lambda0 >= 0, "lambda0 must be non-negative");
        let n = inst.len();
        let mut per_pair = vec![lambda0; inst.num_pairs()];
        let mut max_lambda = lambda0;
        if n == 0 || inst.num_pairs() == 0 {
            return VariableLambda {
                lambda0,
                per_pair,
                max_lambda,
            };
        }

        let span = ((inst.value(n as u32 - 1) as i128 - inst.value(0) as i128).max(1)) as f64;
        // Average number of matching posts a single label accumulates over a
        // window of length 2*lambda0.
        let avg_label_rate = inst.num_pairs() as f64 / (inst.num_labels().max(1) as f64 * span);
        // 2*lambda0 in f64: the i64 product overflows for lambda0 near
        // i64::MAX (multiplying by 2.0 is exact, so small lambdas are
        // unchanged).
        let expected_in_window = (avg_label_rate * 2.0 * lambda0 as f64).max(f64::MIN_POSITIVE);

        for post in 0..n as u32 {
            let t = inst.value(post);
            for &a in inst.labels(post) {
                let w =
                    inst.posting_window(a, t.saturating_sub(lambda0), t.saturating_add(lambda0));
                let ratio = w.len() as f64 / expected_in_window;
                let lam = (lambda0 as f64 * (1.0 - ratio).exp()).round() as i64;
                let lam = lam.clamp(0, saturating_e_times(lambda0));
                let id = inst
                    .pair_id(post, a)
                    .expect("labels(post) iterates real pairs");
                per_pair[id as usize] = lam;
                max_lambda = max_lambda.max(lam);
            }
        }
        VariableLambda {
            lambda0,
            per_pair,
            max_lambda,
        }
    }

    /// The base threshold `lambda0`.
    #[inline]
    pub fn lambda0(&self) -> i64 {
        self.lambda0
    }

    /// The precomputed thresholds, indexed by pair id.
    #[inline]
    pub fn per_pair(&self) -> &[i64] {
        &self.per_pair
    }
}

/// `ceil(lambda0 * e)` with saturation — the analytic maximum of Equation 2
/// (attained when the local density is zero).
fn saturating_e_times(lambda0: i64) -> i64 {
    let e = std::f64::consts::E;
    let v = lambda0 as f64 * e;
    if v >= i64::MAX as f64 {
        i64::MAX
    } else {
        v.ceil() as i64
    }
}

impl LambdaProvider for VariableLambda {
    #[inline]
    fn lambda(&self, inst: &Instance, coverer: u32, a: LabelId) -> i64 {
        match inst.pair_id(coverer, a) {
            Some(id) => self.per_pair[id as usize],
            // A post never covers a label it does not carry; make the
            // predicate unsatisfiable rather than panicking.
            None => -1,
        }
    }

    #[inline]
    fn max_lambda(&self) -> i64 {
        self.max_lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_lambda_is_uniform() {
        let inst = Instance::from_values(vec![(0, vec![0]), (10, vec![0])], 1).unwrap();
        let f = FixedLambda(7);
        assert_eq!(f.lambda(&inst, 0, LabelId(0)), 7);
        assert_eq!(f.max_lambda(), 7);
        assert_eq!(f.as_fixed(), Some(7));
    }

    #[test]
    fn variable_lambda_shrinks_in_dense_regions() {
        // Label 0: a burst of 50 posts around t=0..49, then one isolated post
        // at t=100000. The isolated post must get a larger lambda than the
        // burst posts.
        let mut items: Vec<(i64, Vec<u16>)> = (0..50).map(|t| (t as i64, vec![0])).collect();
        items.push((100_000, vec![0]));
        let inst = Instance::from_values(items, 1).unwrap();
        let v = VariableLambda::compute(&inst, 1000);
        let dense = v.lambda(&inst, 10, LabelId(0));
        let sparse = v.lambda(&inst, 50, LabelId(0));
        assert!(
            sparse > dense,
            "sparse lambda {sparse} should exceed dense lambda {dense}"
        );
        assert!(v.max_lambda() >= sparse);
        assert!(v.as_fixed().is_none());
    }

    #[test]
    fn variable_lambda_bounded_by_e_lambda0() {
        let inst = Instance::from_values(vec![(0, vec![0]), (1_000_000, vec![0])], 1).unwrap();
        let v = VariableLambda::compute(&inst, 60_000);
        for post in 0..2u32 {
            let lam = v.lambda(&inst, post, LabelId(0));
            assert!(lam <= (60_000.0 * std::f64::consts::E).ceil() as i64);
            assert!(lam >= 0);
        }
    }

    #[test]
    fn non_matching_label_cannot_cover() {
        let inst = Instance::from_values(vec![(0, vec![0]), (5, vec![1])], 2).unwrap();
        let v = VariableLambda::compute(&inst, 10);
        assert_eq!(v.lambda(&inst, 0, LabelId(1)), -1);
    }

    #[test]
    fn negative_sentinel_never_covers() {
        use crate::coverage::{covers, is_cover, violations};
        // Post 0 carries only label 0, post 1 only label 1, both at the
        // same value. The -1 sentinel for the missing (post, label) pair
        // must make every coverage predicate unsatisfiable — even at
        // distance 0, where a buggy `d <= lambda` with lambda = -1 could
        // only fail because -1 < 0, and any sign mix-up would flip it.
        let inst = Instance::from_values(vec![(5, vec![0]), (5, vec![1])], 2).unwrap();
        let v = VariableLambda::compute(&inst, 10);
        assert_eq!(v.lambda(&inst, 0, LabelId(1)), -1);
        assert_eq!(v.lambda(&inst, 1, LabelId(0)), -1);
        assert!(!covers(&inst, &v, 0, 1, LabelId(1)));
        assert!(!covers(&inst, &v, 1, 0, LabelId(0)));
        // Neither post alone covers the other's label occurrence.
        assert!(!is_cover(&inst, &v, &[0]));
        assert!(!is_cover(&inst, &v, &[1]));
        assert_eq!(violations(&inst, &v, &[0]).len(), 1);
        assert!(is_cover(&inst, &v, &[0, 1]));
        // max_lambda (used for window pruning) ignores the sentinel: it
        // must stay an upper bound on the *real* thresholds, not -1.
        assert!(v.max_lambda() >= 0);
    }

    #[test]
    fn every_solver_respects_negative_sentinel() {
        use crate::algorithms::{solve_greedy_sc, solve_scan, solve_scan_plus, LabelOrder};
        use crate::coverage::is_cover;
        // Interleaved single-label posts at identical values: any solver
        // that ever lets a post cover a label it does not carry would
        // return a 1-post "cover" here. The correct answer needs both
        // labels represented.
        let inst = Instance::from_values(
            vec![(0, vec![0]), (0, vec![1]), (1, vec![0]), (1, vec![1])],
            2,
        )
        .unwrap();
        let v = VariableLambda::compute(&inst, 3);
        for sol in [
            solve_greedy_sc(&inst, &v),
            solve_scan(&inst, &v),
            solve_scan_plus(&inst, &v, LabelOrder::Input),
        ] {
            assert!(is_cover(&inst, &v, &sol.selected), "{}", sol.algorithm);
            let has = |a: u16| {
                sol.selected
                    .iter()
                    .any(|&z| inst.post(z).has_label(LabelId(a)))
            };
            assert!(has(0) && has(1), "{} must pick both labels", sol.algorithm);
        }
    }

    #[test]
    fn empty_instance_ok() {
        let inst = Instance::from_values(Vec::<(i64, Vec<u16>)>::new(), 2).unwrap();
        let v = VariableLambda::compute(&inst, 10);
        assert_eq!(v.max_lambda(), 10);
    }
}
