//! The CNF → MQDP reduction of Section 3 (Lemma 1).
//!
//! The paper proves MQDP NP-hard even with at most two labels per post by
//! transforming a CNF formula `α` with `n` variables and `m` clauses into an
//! MQDP instance with `lambda = 1` such that `α` is satisfiable **iff** the
//! instance has a cover of cardinality `n(2m + 3)`.
//!
//! This module implements the gadget construction faithfully (posts at
//! integral times `1..=2m+3`, labels `w_i, u_i, ū_i, c_j`), plus a tiny
//! brute-force SAT solver, so the test suite can machine-check the lemma on
//! small formulas: reduce, solve MQDP exactly, and compare against SAT.

use crate::error::MqdError;
use crate::instance::Instance;
use crate::post::{LabelId, Post, PostId};

/// A CNF formula. Literals are non-zero integers in DIMACS convention:
/// `+v` is variable `v`, `-v` its negation (variables are `1..=num_vars`).
#[derive(Clone, Debug)]
pub struct CnfFormula {
    /// Number of variables `n`.
    pub num_vars: usize,
    /// Clauses, each a disjunction of literals.
    pub clauses: Vec<Vec<i32>>,
}

impl CnfFormula {
    /// Validates literal ranges.
    pub fn validate(&self) -> Result<(), String> {
        for (ci, c) in self.clauses.iter().enumerate() {
            for &lit in c {
                if lit == 0 || lit.unsigned_abs() as usize > self.num_vars {
                    return Err(format!("clause {ci}: literal {lit} out of range"));
                }
            }
        }
        Ok(())
    }

    /// Whether the assignment (indexed by variable-1) satisfies the formula.
    pub fn satisfied_by(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.iter().any(|&lit| {
                let v = lit.unsigned_abs() as usize - 1;
                if lit > 0 {
                    assignment[v]
                } else {
                    !assignment[v]
                }
            })
        })
    }

    /// Brute-force satisfiability (exponential in `num_vars`; test use only).
    pub fn brute_force_sat(&self) -> Option<Vec<bool>> {
        assert!(self.num_vars <= 24, "brute-force SAT capped at 24 vars");
        for mask in 0u32..(1u32 << self.num_vars) {
            let assignment: Vec<bool> = (0..self.num_vars).map(|v| mask & (1 << v) != 0).collect();
            if self.satisfied_by(&assignment) {
                return Some(assignment);
            }
        }
        None
    }
}

/// The output of [`reduce_to_mqdp`].
#[derive(Debug)]
pub struct Reduction {
    /// The constructed MQDP instance.
    pub instance: Instance,
    /// The threshold to use (`lambda = 1`).
    pub lambda: i64,
    /// The satisfiability-equivalent cover size `n(2m + 3)`.
    pub target_cover_size: usize,
}

/// The paper's *first* hardness argument (Section 3, opening paragraph):
/// if all posts share one timestamp, MQDP **is** set cover — each post is a
/// set of labels, and a minimum lambda-cover is a minimum collection of
/// posts whose label sets cover every label that occurs. This converts a
/// set-cover instance (`sets[k]` = element ids) into an equal-timestamp
/// MQDP instance whose optimum equals the set-cover optimum, which is what
/// also transfers the `ln |L|` inapproximability bound [Feige 98].
///
/// One wrinkle: MQDP only requires covering label occurrences of *posts*,
/// so an element in no set simply never occurs — callers should ensure the
/// universe equals the union of the sets (or accept that uncoverable
/// elements vanish).
pub fn set_cover_to_mqdp(sets: &[Vec<u16>], num_elements: usize) -> Result<Instance, MqdError> {
    let posts: Vec<Post> = sets
        .iter()
        .enumerate()
        .map(|(k, set)| {
            Post::new(
                PostId(k as u64),
                0,
                set.iter().map(|&e| LabelId(e)).collect(),
            )
        })
        .collect();
    Instance::from_posts(posts, num_elements)
}

/// Label layout: for variable `i` (0-based) the labels `w_i, u_i, ū_i` are
/// `3i, 3i+1, 3i+2`; clause label `c_j` (0-based) is `3n + j`.
fn w(i: usize) -> u16 {
    (3 * i) as u16
}
fn u(i: usize) -> u16 {
    (3 * i + 1) as u16
}
fn ubar(i: usize) -> u16 {
    (3 * i + 2) as u16
}
fn c(n: usize, j: usize) -> u16 {
    (3 * n + j) as u16
}

/// Builds the Section 3 gadget instance for `formula`.
///
/// For each variable `x_i` the construction issues:
/// * `(1, {u_i, w_i})` and `(1, {ū_i, w_i})`,
/// * `(2m+3, {u_i, w_i})` and `(2m+3, {ū_i, w_i})`,
/// * `(2j, {u_i})` and `(2j, {ū_i})` for `j = 1..=m+1`,
/// * `(2j+1, U_ij)` and `(2j+1, Ū_ij)` for `j = 1..=m`, where `U_ij`
///   additionally carries `c_j` iff `x_i ∈ C_j` (resp. `¬x_i` for `Ū`).
pub fn reduce_to_mqdp(formula: &CnfFormula) -> Result<Reduction, MqdError> {
    let n = formula.num_vars;
    let m = formula.clauses.len();
    let num_labels = 3 * n + m;
    let mut posts: Vec<Post> = Vec::with_capacity(n * (4 * m + 6));
    let mut next_id = 0u64;
    let mut push = |time: i64, labels: Vec<u16>, posts: &mut Vec<Post>| {
        posts.push(Post::new(
            PostId(next_id),
            time,
            labels.into_iter().map(LabelId).collect(),
        ));
        next_id += 1;
    };

    for i in 0..n {
        let var = (i + 1) as i32;
        push(1, vec![u(i), w(i)], &mut posts);
        push(1, vec![ubar(i), w(i)], &mut posts);
        push((2 * m + 3) as i64, vec![u(i), w(i)], &mut posts);
        push((2 * m + 3) as i64, vec![ubar(i), w(i)], &mut posts);
        for j in 1..=(m + 1) {
            push((2 * j) as i64, vec![u(i)], &mut posts);
            push((2 * j) as i64, vec![ubar(i)], &mut posts);
        }
        for j in 1..=m {
            let clause = &formula.clauses[j - 1];
            let mut uij = vec![u(i)];
            if clause.contains(&var) {
                uij.push(c(n, j - 1));
            }
            push((2 * j + 1) as i64, uij, &mut posts);
            let mut ubij = vec![ubar(i)];
            if clause.contains(&(-var)) {
                ubij.push(c(n, j - 1));
            }
            push((2 * j + 1) as i64, ubij, &mut posts);
        }
    }

    Ok(Reduction {
        instance: Instance::from_posts(posts, num_labels)?,
        lambda: 1,
        target_cover_size: n * (2 * m + 3),
    })
}

/// Builds the satisfying-assignment cover from the (⇒) direction of the
/// lemma's proof. For `f(x_i) = 1` the `u_i` side is covered by the two
/// endpoint posts plus the odd-time posts `(2j+1, U_ij)` (which also pick up
/// the clause labels of the satisfied literals), while the `ū_i` side is
/// covered minimally by the `m+1` even-time singletons `(2j, {ū_i})` —
/// and symmetrically for `f(x_i) = 0`. That is `2 + m + (m+1) = 2m+3` posts
/// per variable. Returns post indices into `reduction.instance`.
pub fn cover_from_assignment(red: &Reduction, formula: &CnfFormula, f: &[bool]) -> Vec<u32> {
    let n = formula.num_vars;
    let m = formula.clauses.len();
    let inst = &red.instance;
    let mut selected = Vec::new();
    // Locate a post by (time, exact label set).
    let find = |time: i64, labels: &mut Vec<u16>| -> u32 {
        labels.sort_unstable();
        let want: Vec<LabelId> = labels.iter().map(|&l| LabelId(l)).collect();
        let w = inst.window(time, time);
        for idx in w {
            if inst.posts()[idx].labels() == want.as_slice() {
                return idx as u32;
            }
        }
        panic!("gadget post not found at t={time} labels={labels:?}");
    };
    for (i, &truth) in f.iter().enumerate().take(n) {
        let var = (i + 1) as i32;
        let (side, other) = if truth {
            (u(i), ubar(i))
        } else {
            (ubar(i), u(i))
        };
        selected.push(find(1, &mut vec![side, w(i)]));
        selected.push(find((2 * m + 3) as i64, &mut vec![side, w(i)]));
        for j in 1..=(m + 1) {
            selected.push(find((2 * j) as i64, &mut vec![other]));
        }
        for j in 1..=m {
            let clause = &formula.clauses[j - 1];
            let lit_present = if f[i] {
                clause.contains(&var)
            } else {
                clause.contains(&(-var))
            };
            let mut labels = vec![side];
            if lit_present {
                labels.push(c(n, j - 1));
            }
            selected.push(find((2 * j + 1) as i64, &mut labels));
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::brute::solve_brute;
    use crate::coverage;
    use crate::lambda::FixedLambda;

    fn tiny_sat() -> CnfFormula {
        // (x1 ∨ x2) ∧ (¬x1 ∨ x2) — satisfiable with x2 = true.
        CnfFormula {
            num_vars: 2,
            clauses: vec![vec![1, 2], vec![-1, 2]],
        }
    }

    fn tiny_unsat() -> CnfFormula {
        // x1 ∧ ¬x1
        CnfFormula {
            num_vars: 1,
            clauses: vec![vec![1], vec![-1]],
        }
    }

    #[test]
    fn validate_catches_bad_literals() {
        let f = CnfFormula {
            num_vars: 1,
            clauses: vec![vec![2]],
        };
        assert!(f.validate().is_err());
        assert!(tiny_sat().validate().is_ok());
    }

    #[test]
    fn brute_force_sat_agrees() {
        assert!(tiny_sat().brute_force_sat().is_some());
        assert!(tiny_unsat().brute_force_sat().is_none());
    }

    #[test]
    fn equal_timestamps_reduce_to_set_cover() {
        // Universe {0..4}; optimal set cover is {S0, S2} (size 2).
        let sets: Vec<Vec<u16>> = vec![vec![0, 1, 2], vec![1, 3], vec![3, 4], vec![0, 4]];
        let inst = set_cover_to_mqdp(&sets, 5).unwrap();
        assert_eq!(inst.len(), 4);
        // Any lambda works — all posts share t=0.
        let opt = solve_brute(&inst, &FixedLambda(0), None).unwrap();
        assert_eq!(opt.size(), 2);
        assert!(coverage::is_cover(&inst, &FixedLambda(0), &opt.selected));
    }

    #[test]
    fn set_cover_equivalence_on_random_instances() {
        // Brute-force min set cover == MQDP optimum at equal timestamps.
        let mut state = 77u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..15 {
            let n_elems = 6usize;
            let n_sets = 5usize;
            let sets: Vec<Vec<u16>> = (0..n_sets)
                .map(|_| {
                    let mut s: Vec<u16> = (0..n_elems as u16).filter(|_| next() % 3 == 0).collect();
                    if s.is_empty() {
                        s.push((next() % n_elems as u64) as u16);
                    }
                    s
                })
                .collect();
            // Restrict the universe to covered elements (see the docs).
            let covered: std::collections::BTreeSet<u16> = sets.iter().flatten().copied().collect();
            // Brute-force set cover over masks.
            let mut best = usize::MAX;
            for mask in 0u32..(1 << n_sets) {
                let mut got: std::collections::BTreeSet<u16> = Default::default();
                for (k, s) in sets.iter().enumerate() {
                    if mask & (1 << k) != 0 {
                        got.extend(s.iter().copied());
                    }
                }
                if got == covered {
                    best = best.min(mask.count_ones() as usize);
                }
            }
            let inst = set_cover_to_mqdp(&sets, n_elems).unwrap();
            let opt = solve_brute(&inst, &FixedLambda(0), None).unwrap();
            assert_eq!(opt.size(), best, "MQDP at equal timestamps != set cover");
        }
    }

    #[test]
    fn gadget_shape() {
        let f = tiny_sat();
        let red = reduce_to_mqdp(&f).unwrap();
        let n = 2;
        let m = 2;
        assert_eq!(red.instance.len(), n * (4 * m + 6));
        assert_eq!(red.instance.num_labels(), 3 * n + m);
        assert_eq!(red.target_cover_size, n * (2 * m + 3));
        assert_eq!(red.lambda, 1);
        // At most two labels per post (Lemma 1's strengthening).
        assert!(red.instance.max_labels_per_post() <= 2);
    }

    #[test]
    fn satisfying_assignment_yields_target_cover() {
        let f = tiny_sat();
        let red = reduce_to_mqdp(&f).unwrap();
        let assignment = f.brute_force_sat().unwrap();
        let cover = cover_from_assignment(&red, &f, &assignment);
        assert_eq!(cover.len(), red.target_cover_size);
        assert!(coverage::is_cover(
            &red.instance,
            &FixedLambda(red.lambda),
            &cover
        ));
    }

    #[test]
    fn forward_direction_sat_implies_target_cover_exists() {
        // The (⇒) direction of Lemma 1 holds: a satisfiable formula yields a
        // cover of size exactly n(2m+3), so the optimum is at most the
        // target.
        let cases = vec![
            tiny_sat(),
            CnfFormula {
                num_vars: 1,
                clauses: vec![vec![1]],
            },
            CnfFormula {
                num_vars: 2,
                clauses: vec![vec![1], vec![-1, -2], vec![2, 1]],
            },
        ];
        for formula in cases {
            let assignment = formula.brute_force_sat().expect("cases are satisfiable");
            let red = reduce_to_mqdp(&formula).unwrap();
            let cover = cover_from_assignment(&red, &formula, &assignment);
            assert_eq!(cover.len(), red.target_cover_size);
            assert!(coverage::is_cover(
                &red.instance,
                &FixedLambda(red.lambda),
                &cover
            ));
            let opt = solve_brute(&red.instance, &FixedLambda(red.lambda), Some(64)).unwrap();
            assert!(opt.size() <= red.target_cover_size);
        }
    }

    /// **Reproduction note (documented discrepancy).** The (⇐) direction of
    /// Lemma 1 claims every variable gadget needs `2m+3` posts, via the step
    /// "the only way to cover all `u_i`'s with `m+1` posts is by choosing
    /// the posts `(2j, {u_i})`". That uniqueness claim is false: the `2m+3`
    /// consecutive integer occurrences can also be covered by `m+1` posts
    /// that *include the endpoint posts* `(1, {u_i, w_i})` and
    /// `(2m+3, {u_i, w_i})` (e.g. times {1,3,6} for m=2), which lets the
    /// `w_i` labels ride along for free and yields an `n(2m+2)`-post cover
    /// regardless of satisfiability. This test machine-checks the
    /// counterexample: the *unsatisfiable* formula `x1 ∧ ¬x1` admits a cover
    /// strictly smaller than the lemma's target `n(2m+3)`, so the published
    /// gadget does not witness the claimed equivalence (NP-hardness itself
    /// is unaffected — the paper's set-cover argument at equal timestamps
    /// already establishes it).
    #[test]
    fn backward_direction_counterexample_documented() {
        let formula = tiny_unsat(); // n = 1, m = 2, target = 7
        assert!(formula.brute_force_sat().is_none());
        let red = reduce_to_mqdp(&formula).unwrap();
        let opt = solve_brute(&red.instance, &FixedLambda(red.lambda), Some(64)).unwrap();
        assert!(coverage::is_cover(
            &red.instance,
            &FixedLambda(red.lambda),
            &opt.selected
        ));
        assert_eq!(
            opt.size(),
            6,
            "the unsat gadget admits an n(2m+2)-cover, below the lemma's n(2m+3) target"
        );
        assert!(opt.size() < red.target_cover_size);
    }
}
