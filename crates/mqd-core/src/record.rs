//! The workspace's shared labeled-post record and its two wire forms.
//!
//! A [`Record`] is the external representation of one labeled post —
//! `(id, value, labels)` — before it becomes an [`crate::Instance`] post.
//! Historically the TSV row format and the MQDL binary-log framing lived in
//! the CLI crate while the server and store grew their own copies; this
//! module is now the **single** implementation of both encodings, so an
//! `INGEST` batch on the wire, a CLI binlog and an on-disk store segment can
//! never drift apart:
//!
//! * **MQDL binary log** ([`encode_records`] / [`decode_records`]):
//!
//!   ```text
//!   header : b"MQDL" + version(u8)
//!   record : varint(id delta) + zigzag-varint(value delta)
//!            + varint(label count) + varint(label)*
//!   footer : b"END!" + u64 FNV-1a checksum of everything before it
//!   ```
//!
//!   Ids and dimension values are delta-encoded against the previous record
//!   (streams are time-sorted, so deltas are small) and the trailing
//!   checksum turns truncation or bit rot into a typed
//!   [`MqdError::Corrupt`] carrying the byte offset.
//!
//! * **TSV row** ([`parse_tsv_line`] / [`format_tsv`]):
//!   `id \t value \t label,label,...` — the line-oriented form used by the
//!   CLI files and the server's line protocol. Malformed rows are typed
//!   [`MqdError::Parse`] errors carrying the 1-based line number.

use std::io::{Read, Write};

use crate::error::MqdError;
use crate::wire::{check_framed, put_varint, seal_framed, unzigzag, zigzag, Cursor};

const MAGIC: &[u8; 4] = b"MQDL";
const FOOTER: &[u8; 4] = crate::wire::FRAME_FOOTER;
const VERSION: u8 = 1;

/// One labeled post row: the unit of ingest, binlogs and store segments.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Record {
    /// External post id.
    pub id: u64,
    /// Diversity-dimension value (ms for time, fixed-point for sentiment).
    pub value: i64,
    /// Matched label ids.
    pub labels: Vec<u16>,
}

/// Serializes records into the MQDL binary-log format.
pub fn encode_records(rows: &[Record]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + rows.len() * 8);
    buf.extend_from_slice(MAGIC);
    buf.push(VERSION);
    put_varint(&mut buf, rows.len() as u64);
    let mut prev_id = 0u64;
    let mut prev_value = 0i64;
    for r in rows {
        put_varint(&mut buf, zigzag(r.id.wrapping_sub(prev_id) as i64));
        put_varint(&mut buf, zigzag(r.value.wrapping_sub(prev_value)));
        put_varint(&mut buf, r.labels.len() as u64);
        for &l in &r.labels {
            put_varint(&mut buf, l as u64);
        }
        prev_id = r.id;
        prev_value = r.value;
    }
    seal_framed(&mut buf, FOOTER);
    buf
}

/// Deserializes an MQDL binary log, verifying magic, version and checksum.
/// Every failure is an [`MqdError::Corrupt`] naming the byte offset
/// (offset 0 for whole-file checks such as the checksum).
pub fn decode_records(data: &[u8]) -> Result<Vec<Record>, MqdError> {
    let body = check_framed(data, FOOTER, MAGIC.len() + 1)?;

    let mut buf = Cursor::new(body);
    let magic: [u8; 4] = buf.get_array()?;
    if &magic != MAGIC {
        return Err(MqdError::Corrupt {
            offset: 0,
            reason: "bad magic (not an mqdiv binary log)".into(),
        });
    }
    let version = buf.get_u8()?;
    if version != VERSION {
        return Err(MqdError::Corrupt {
            offset: MAGIC.len(),
            reason: format!("unsupported version {version}"),
        });
    }
    let count = buf.get_varint()?;
    // Each record encodes at least 3 bytes (id + value + label count), so
    // this also rejects a hostile count before allocating for it.
    let count = buf.plausible_len(count, 3, "record")?;
    let mut rows = Vec::with_capacity(count);
    let mut prev_id = 0u64;
    let mut prev_value = 0i64;
    for _ in 0..count {
        let id = prev_id.wrapping_add(unzigzag(buf.get_varint()?) as u64);
        let value = prev_value.wrapping_add(buf.get_varint_i64()?);
        let n_labels = buf.get_varint()?;
        if n_labels > u16::MAX as u64 {
            return Err(buf.corrupt("label count out of range"));
        }
        let n_labels = buf.plausible_len(n_labels, 1, "label")?;
        let mut labels = Vec::with_capacity(n_labels);
        for _ in 0..n_labels {
            let l = buf.get_varint()?;
            if l > u16::MAX as u64 {
                return Err(buf.corrupt("label id out of range"));
            }
            labels.push(l as u16);
        }
        rows.push(Record { id, value, labels });
        prev_id = id;
        prev_value = value;
    }
    if buf.has_remaining() {
        return Err(buf.corrupt("trailing bytes after last record"));
    }
    Ok(rows)
}

/// Writes records to a writer in binary-log format.
pub fn write_records(mut w: impl Write, rows: &[Record]) -> std::io::Result<()> {
    w.write_all(&encode_records(rows))
}

/// Reads a whole binary log from a reader.
pub fn read_records(mut r: impl Read) -> Result<Vec<Record>, MqdError> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    decode_records(&data)
}

fn parse_err(line_no: usize, msg: impl std::fmt::Display) -> MqdError {
    MqdError::Parse {
        line: line_no,
        msg: msg.to_string(),
    }
}

/// Parses one TSV row (`id \t value \t label,label,...`). Returns
/// `Ok(None)` for blank lines and `#` comments; malformed rows are typed
/// [`MqdError::Parse`] errors carrying `line_no` (1-based).
pub fn parse_tsv_line(line: &str, line_no: usize) -> Result<Option<Record>, MqdError> {
    // Strip only the carriage return: a trailing tab is significant (an
    // empty label list serializes as `id\tvalue\t`).
    let line = line.trim_end_matches('\r');
    if line.trim().is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.split('\t');
    let id: u64 = parts
        .next()
        .ok_or_else(|| parse_err(line_no, "missing id"))?
        .parse()
        .map_err(|e| parse_err(line_no, format!("bad id: {e}")))?;
    let value: i64 = parts
        .next()
        .ok_or_else(|| parse_err(line_no, "missing value"))?
        .parse()
        .map_err(|e| parse_err(line_no, format!("bad value: {e}")))?;
    let labels_str = parts
        .next()
        .ok_or_else(|| parse_err(line_no, "missing labels"))?;
    let mut labels = Vec::new();
    for l in labels_str.split(',').filter(|s| !s.is_empty()) {
        labels.push(
            l.parse()
                .map_err(|e| parse_err(line_no, format!("bad label '{l}': {e}")))?,
        );
    }
    if parts.next().is_some() {
        return Err(parse_err(line_no, "too many fields (expected 3)"));
    }
    Ok(Some(Record { id, value, labels }))
}

/// Formats one record as its TSV row (no trailing newline).
pub fn format_tsv(r: &Record) -> String {
    let labels: Vec<String> = r.labels.iter().map(|l| l.to_string()).collect();
    format!("{}\t{}\t{}", r.id, r.value, labels.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Record> {
        vec![
            Record {
                id: 10,
                value: 1_000,
                labels: vec![0, 3],
            },
            Record {
                id: 11,
                value: 1_050,
                labels: vec![1],
            },
            Record {
                id: 15,
                value: 980, // values may go backwards (sentiment dimension)
                labels: vec![],
            },
        ]
    }

    #[test]
    fn binary_round_trip() {
        let rows = sample();
        assert_eq!(decode_records(&encode_records(&rows)).unwrap(), rows);
        assert!(decode_records(&encode_records(&[])).unwrap().is_empty());
    }

    #[test]
    fn binary_round_trip_extremes() {
        let rows = vec![
            Record {
                id: u64::MAX,
                value: i64::MIN,
                labels: vec![u16::MAX],
            },
            Record {
                id: 0,
                value: i64::MAX,
                labels: vec![0],
            },
        ];
        assert_eq!(decode_records(&encode_records(&rows)).unwrap(), rows);
    }

    #[test]
    fn corruption_is_typed() {
        let mut data = encode_records(&sample());
        let mid = data.len() / 2;
        data[mid] ^= 0xff;
        assert!(matches!(
            decode_records(&data).unwrap_err(),
            MqdError::Corrupt { .. }
        ));
    }

    #[test]
    fn tsv_round_trip() {
        for r in sample() {
            let line = format_tsv(&r);
            assert_eq!(parse_tsv_line(&line, 1).unwrap(), Some(r));
        }
    }

    #[test]
    fn tsv_comments_and_blanks_are_none() {
        assert_eq!(parse_tsv_line("# header", 1).unwrap(), None);
        assert_eq!(parse_tsv_line("", 2).unwrap(), None);
        assert_eq!(parse_tsv_line("   ", 3).unwrap(), None);
    }

    #[test]
    fn tsv_errors_carry_line_numbers() {
        match parse_tsv_line("1\t10", 7).unwrap_err() {
            MqdError::Parse { line, msg } => {
                assert_eq!(line, 7);
                assert!(msg.contains("missing labels"), "{msg}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        let err = |s: &str| parse_tsv_line(s, 1).unwrap_err().to_string();
        assert!(err("x\t10\t0").contains("bad id"));
        assert!(err("1\ty\t0").contains("bad value"));
        assert!(err("1\t2\tz").contains("bad label"));
        assert!(err("1\t2\t0\textra").contains("too many fields"));
    }
}
