//! Coverage semantics (Definitions 1 and 2 of the paper) and cover
//! verification.
//!
//! * `P_j` *lambda-covers* `a ∈ P_i` iff both posts carry label `a` and
//!   `|F(P_i) - F(P_j)| <= lambda_a(P_j)` (the coverer's threshold — with a
//!   fixed lambda this is the symmetric relation of Section 2, with the
//!   variable lambda of Section 6 it is directional).
//! * A post is covered by a set `Z` iff **every** of its labels is covered
//!   by some member of `Z` (Definition 1 — the multi-query twist).
//! * `Z` is a lambda-cover of `P` iff every post of `P` is covered
//!   (Definition 2).

use crate::instance::Instance;
use crate::lambda::LambdaProvider;
use crate::post::LabelId;

/// Test-only fault-injection hooks, compiled into debug builds so the
/// differential oracle (`mqd-oracle`) can prove it detects a broken coverage
/// comparator. Release builds carry no hook and no atomic load.
#[cfg(debug_assertions)]
pub mod test_hooks {
    use std::sync::atomic::{AtomicBool, Ordering};

    static STRICT_COMPARATOR: AtomicBool = AtomicBool::new(false);

    /// When set, the coverage comparator is mutated from `d <= lambda` to
    /// the off-by-one `d < lambda`. The oracle's mutation smoke test flips
    /// this and must observe a failure; nothing else may ever set it.
    pub fn set_strict_comparator(on: bool) {
        STRICT_COMPARATOR.store(on, Ordering::SeqCst);
    }

    /// Current state of the comparator mutation.
    pub fn strict_comparator() -> bool {
        STRICT_COMPARATOR.load(Ordering::SeqCst)
    }
}

/// The one coverage comparator: `|F(P_i) - F(P_j)| <= lambda_a(P_j)` in
/// `i128` so no value pair can overflow. Every coverage decision in this
/// module funnels through here, which is what makes the mutation hook a
/// faithful single-point fault.
#[inline]
fn within(d: i128, lam: i128) -> bool {
    #[cfg(debug_assertions)]
    if test_hooks::strict_comparator() {
        return d < lam;
    }
    d <= lam
}

/// Whether `coverer` lambda-covers the occurrence of label `a` in `covered`.
/// Returns `false` when either post does not carry `a`.
#[inline]
pub fn covers<L: LambdaProvider + ?Sized>(
    inst: &Instance,
    lp: &L,
    coverer: u32,
    covered: u32,
    a: LabelId,
) -> bool {
    if !inst.post(coverer).has_label(a) || !inst.post(covered).has_label(a) {
        return false;
    }
    let d = (inst.value(coverer) as i128 - inst.value(covered) as i128).abs();
    within(d, lp.lambda(inst, coverer, a) as i128)
}

/// Whether the occurrence of label `a` in `post` is covered by any member of
/// `selected` (post indices, any order).
pub fn pair_covered<L: LambdaProvider + ?Sized>(
    inst: &Instance,
    lp: &L,
    selected: &[u32],
    post: u32,
    a: LabelId,
) -> bool {
    selected.iter().any(|&z| covers(inst, lp, z, post, a))
}

/// Whether `post` is lambda-covered by `selected` (Definition 1).
pub fn post_covered<L: LambdaProvider + ?Sized>(
    inst: &Instance,
    lp: &L,
    selected: &[u32],
    post: u32,
) -> bool {
    inst.labels(post)
        .iter()
        .all(|&a| pair_covered(inst, lp, selected, post, a))
}

/// A label occurrence left uncovered by a candidate solution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Violation {
    /// Index (into `Instance::posts`) of the uncovered post.
    pub post: u32,
    /// The label whose occurrence is uncovered.
    pub label: LabelId,
}

/// Selected posts carrying each label, in value order: one pass over the
/// (deduplicated, index-sorted) selection instead of re-filtering it per
/// label. Posts are stored in value order, so pushing in index order keeps
/// each per-label list value-sorted.
fn selected_by_label(inst: &Instance, selected: &[u32]) -> Vec<Vec<u32>> {
    let mut sel: Vec<u32> = selected.to_vec();
    sel.sort_unstable();
    sel.dedup();
    let mut per_label: Vec<Vec<u32>> = vec![Vec::new(); inst.num_labels()];
    for &z in &sel {
        for &a in inst.labels(z) {
            per_label[a.index()].push(z);
        }
    }
    per_label
}

/// Verifies Definition 2: returns every uncovered `(post, label)` occurrence.
/// An empty result means `selected` is a valid lambda-cover of the instance.
///
/// Runs in `O(sum_a |LP(a)| * w)` where `w` is the number of selected posts
/// inside a `2*max_lambda` window — fast enough to verify every solution in
/// the test suite and the experiment harness. Labels are checked in
/// parallel on the configured thread count; the result is byte-identical
/// to the sequential verifier (per-label results are concatenated in label
/// order, matching the sequential label-major loop).
pub fn violations<L: LambdaProvider + Sync + ?Sized>(
    inst: &Instance,
    lp: &L,
    selected: &[u32],
) -> Vec<Violation> {
    violations_threads(mqd_par::configured_threads(), inst, lp, selected)
}

/// [`violations`] with an explicit thread count for the per-label fan-out.
pub fn violations_threads<L: LambdaProvider + Sync + ?Sized>(
    threads: usize,
    inst: &Instance,
    lp: &L,
    selected: &[u32],
) -> Vec<Violation> {
    let max_l = lp.max_lambda();
    let per_label = selected_by_label(inst, selected);

    let per: Vec<Vec<Violation>> =
        mqd_par::par_map_range_coarse_threads(threads, inst.num_labels(), |a_idx| {
            let a = LabelId(a_idx as u16);
            let zs = &per_label[a_idx];
            let mut out = Vec::new();
            for &i in inst.postings(a) {
                let t = inst.value(i);
                // Candidate coverers live within max_lambda of t.
                let lo = zs.partition_point(|&z| inst.value(z) < t.saturating_sub(max_l));
                let hi = zs.partition_point(|&z| inst.value(z) <= t.saturating_add(max_l));
                let ok = zs[lo..hi].iter().any(|&z| {
                    within(
                        (inst.value(z) as i128 - t as i128).abs(),
                        lp.lambda(inst, z, a) as i128,
                    )
                });
                if !ok {
                    out.push(Violation { post: i, label: a });
                }
            }
            out
        });
    per.into_iter().flatten().collect()
}

/// Whether `selected` lambda-covers the whole instance (Definition 2).
pub fn is_cover<L: LambdaProvider + Sync + ?Sized>(
    inst: &Instance,
    lp: &L,
    selected: &[u32],
) -> bool {
    violations(inst, lp, selected).is_empty()
}

/// Why a label occurrence is (not) represented in a digest.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Attribution {
    /// The covered post.
    pub post: u32,
    /// The label occurrence.
    pub label: LabelId,
    /// The nearest selected post covering it, if any.
    pub coverer: Option<u32>,
    /// Distance to the coverer on the diversity dimension (0 when the post
    /// itself is selected; `i64::MAX` when uncovered).
    pub distance: i64,
}

/// Explains a digest: for every `(post, label)` occurrence, the nearest
/// selected post that lambda-covers it. The "why am I not seeing post X?"
/// answer a client UI can surface ("it is represented by Y").
pub fn attribution<L: LambdaProvider + ?Sized>(
    inst: &Instance,
    lp: &L,
    selected: &[u32],
) -> Vec<Attribution> {
    let max_l = lp.max_lambda();
    let per_label = selected_by_label(inst, selected);
    let mut out = Vec::with_capacity(inst.num_pairs());
    for (a_idx, zs) in per_label.iter().enumerate() {
        let a = LabelId(a_idx as u16);
        for &i in inst.postings(a) {
            let t = inst.value(i);
            let lo = zs.partition_point(|&z| inst.value(z) < t.saturating_sub(max_l));
            let hi = zs.partition_point(|&z| inst.value(z) <= t.saturating_add(max_l));
            // Distance in i128: raw i64 subtraction overflows when the
            // instance spans most of the i64 range (see `violations`).
            let best = zs[lo..hi]
                .iter()
                .filter(|&&z| covers(inst, lp, z, i, a))
                .map(|&z| ((inst.value(z) as i128 - t as i128).abs(), z))
                .min();
            out.push(match best {
                // d <= lambda_a(z) <= i64::MAX, so the narrowing is lossless.
                Some((d, z)) => Attribution {
                    post: i,
                    label: a,
                    coverer: Some(z),
                    distance: d as i64,
                },
                None => Attribution {
                    post: i,
                    label: a,
                    coverer: None,
                    distance: i64::MAX,
                },
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lambda::FixedLambda;

    /// The Figure 2 example of the paper: four posts Δt apart with labels
    /// {a}, {a}, {a,c}, {c} and lambda = Δt.
    fn figure2() -> Instance {
        Instance::from_values(
            vec![
                (0, vec![0]),     // P1: a
                (10, vec![0]),    // P2: a
                (20, vec![0, 1]), // P3: a, c
                (30, vec![1]),    // P4: c
            ],
            2,
        )
        .unwrap()
    }

    #[test]
    fn figure2_single_label_covers() {
        let inst = figure2();
        let f = FixedLambda(10);
        // P2 covers a in P1 and P3; P3 covers c in P4; P4 covers c in P3.
        assert!(covers(&inst, &f, 1, 0, LabelId(0)));
        assert!(covers(&inst, &f, 1, 2, LabelId(0)));
        assert!(covers(&inst, &f, 2, 3, LabelId(1)));
        assert!(covers(&inst, &f, 3, 2, LabelId(1)));
        // P2 does not cover c in anything (no label c) and not a in P4.
        assert!(!covers(&inst, &f, 1, 3, LabelId(1)));
        assert!(!covers(&inst, &f, 1, 3, LabelId(0)));
        // Too far: P1 does not cover a in P3.
        assert!(!covers(&inst, &f, 0, 2, LabelId(0)));
    }

    #[test]
    fn figure2_example2_cover() {
        // Example 2: {P2, P4} lambda-covers P with lambda = Δt.
        let inst = figure2();
        let f = FixedLambda(10);
        assert!(is_cover(&inst, &f, &[1, 3]));
        // {P2} alone leaves c in P3 and P4 uncovered.
        let v = violations(&inst, &f, &[1]);
        assert_eq!(
            v,
            vec![
                Violation {
                    post: 2,
                    label: LabelId(1)
                },
                Violation {
                    post: 3,
                    label: LabelId(1)
                }
            ]
        );
    }

    #[test]
    fn post_covered_requires_all_labels() {
        let inst = figure2();
        let f = FixedLambda(10);
        // P3 has labels {a, c}: P2 covers a, but c needs P3 or P4.
        assert!(!post_covered(&inst, &f, &[1], 2));
        assert!(post_covered(&inst, &f, &[1, 3], 2));
        assert!(pair_covered(&inst, &f, &[1], 2, LabelId(0)));
        assert!(!pair_covered(&inst, &f, &[1], 2, LabelId(1)));
    }

    #[test]
    fn whole_set_is_always_a_cover() {
        let inst = figure2();
        let f = FixedLambda(0);
        let all: Vec<u32> = (0..inst.len() as u32).collect();
        assert!(is_cover(&inst, &f, &all));
    }

    #[test]
    fn empty_selection_covers_empty_instance_only() {
        let empty = Instance::from_values(Vec::<(i64, Vec<u16>)>::new(), 2).unwrap();
        let f = FixedLambda(5);
        assert!(is_cover(&empty, &f, &[]));
        let inst = figure2();
        assert!(!is_cover(&inst, &f, &[]));
    }

    #[test]
    fn attribution_names_nearest_coverer() {
        let inst = figure2();
        let f = FixedLambda(10);
        let attr = attribution(&inst, &f, &[1, 3]);
        assert_eq!(attr.len(), inst.num_pairs());
        // a ∈ P1 (t=0) is covered by P2 (t=10) at distance 10.
        let a_p1 = attr
            .iter()
            .find(|x| x.post == 0 && x.label == LabelId(0))
            .unwrap();
        assert_eq!(a_p1.coverer, Some(1));
        assert_eq!(a_p1.distance, 10);
        // The selected post covers itself at distance 0.
        let a_p2 = attr
            .iter()
            .find(|x| x.post == 1 && x.label == LabelId(0))
            .unwrap();
        assert_eq!(a_p2.coverer, Some(1));
        assert_eq!(a_p2.distance, 0);
        // With an empty selection everything is unattributed.
        let none = attribution(&inst, &f, &[]);
        assert!(none.iter().all(|x| x.coverer.is_none()));
    }

    #[test]
    fn attribution_consistent_with_violations() {
        let inst = figure2();
        let f = FixedLambda(10);
        for sel in [vec![], vec![1], vec![1, 3], vec![0, 2]] {
            let attr = attribution(&inst, &f, &sel);
            let uncovered_attr: Vec<(u32, LabelId)> = attr
                .iter()
                .filter(|x| x.coverer.is_none())
                .map(|x| (x.post, x.label))
                .collect();
            let viols: Vec<(u32, LabelId)> = violations(&inst, &f, &sel)
                .iter()
                .map(|v| (v.post, v.label))
                .collect();
            assert_eq!(uncovered_attr, viols);
        }
    }

    #[test]
    fn parallel_violations_identical_across_thread_counts() {
        let items: Vec<(i64, Vec<u16>)> = (0..400)
            .map(|i| ((i * 13 % 3_000) as i64, vec![(i % 5) as u16]))
            .collect();
        let inst = Instance::from_values(items, 5).unwrap();
        let f = FixedLambda(25);
        // A deliberately partial selection so violations are non-empty.
        let sel: Vec<u32> = (0..inst.len() as u32).step_by(9).collect();
        let seq = violations_threads(1, &inst, &f, &sel);
        assert!(!seq.is_empty());
        for threads in [2, 3, 8] {
            assert_eq!(
                violations_threads(threads, &inst, &f, &sel),
                seq,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn attribution_survives_extreme_values() {
        // Regression: `attribution` used to compute `(value(z) - t).abs()`
        // in raw i64, which overflows (debug panic / wrong nearest coverer
        // in release) on instances spanning most of the i64 range.
        let inst = Instance::from_values(
            vec![
                (i64::MIN + 1, vec![0]),
                (i64::MIN + 2, vec![0]),
                (i64::MAX - 1, vec![0]),
                (i64::MAX, vec![0]),
            ],
            1,
        )
        .unwrap();
        let f = FixedLambda(i64::MAX);
        // Selection at both extremes: every occurrence has a same-value-side
        // coverer at distance <= 1, but the candidate window spans the whole
        // domain so the cross-extreme distances are evaluated too.
        let attr = attribution(&inst, &f, &[0, 3]);
        assert_eq!(attr.len(), 4);
        for x in &attr {
            assert!(x.coverer.is_some());
            assert!(x.distance <= 1, "nearest coverer is the same-side one");
        }
        // Nearest-coverer choice: post 1 is closer to post 0 than to post 3.
        let p1 = attr.iter().find(|x| x.post == 1).unwrap();
        assert_eq!(p1.coverer, Some(0));
        assert_eq!(p1.distance, 1);
        // A lone extreme selection still attributes without overflow.
        let attr = attribution(&inst, &f, &[3]);
        let p0 = attr.iter().find(|x| x.post == 0).unwrap();
        // |MAX - (MIN+1)| > i64::MAX, so post 3 cannot cover post 0 even
        // with lambda = i64::MAX; it must be unattributed, not wrapped.
        assert_eq!(p0.coverer, None);
        assert_eq!(p0.distance, i64::MAX);
    }

    #[test]
    fn lambda_zero_means_exact_value_match() {
        let inst =
            Instance::from_values(vec![(5, vec![0]), (5, vec![0]), (6, vec![0])], 1).unwrap();
        let f = FixedLambda(0);
        assert!(covers(&inst, &f, 0, 1, LabelId(0)));
        assert!(!covers(&inst, &f, 0, 2, LabelId(0)));
    }
}
