//! Problem instances: a sorted collection of posts plus per-label postings.
//!
//! An [`Instance`] is the `<P, lambda>` input of the paper with the `P` part
//! preprocessed the way every algorithm of Sections 4–5 expects it:
//!
//! * posts are sorted by diversity-dimension value (ties broken by id),
//! * for every label `a` the list `LP(a)` of matching post indices is
//!   materialized in sorted order,
//! * every `(post, label)` occurrence is assigned a dense *pair id* so the
//!   set-cover based algorithms can track coverage in flat bitmaps.

use crate::error::MqdError;
use crate::post::{LabelId, Post, PostId};

/// A preprocessed MQDP instance. Post indices (`u32`) returned by algorithms
/// always refer to the sorted order exposed by [`Instance::posts`].
#[derive(Clone, Debug)]
pub struct Instance {
    posts: Vec<Post>,
    postings: Vec<Vec<u32>>,
    pair_offsets: Vec<u32>,
    num_pairs: usize,
    max_labels_per_post: usize,
}

impl Instance {
    /// Builds an instance from raw posts. Posts are sorted by value; each
    /// post's labels must be `< num_labels`. Posts with an empty label set
    /// are dropped (they match no query, so MQDP never needs to cover them).
    pub fn from_posts(mut posts: Vec<Post>, num_labels: usize) -> Result<Self, MqdError> {
        for p in &posts {
            for &l in p.labels() {
                if l.index() >= num_labels {
                    return Err(MqdError::LabelOutOfRange {
                        label: l.0,
                        num_labels,
                    });
                }
            }
        }
        posts.retain(|p| !p.labels().is_empty());
        posts.sort_by_key(|p| (p.value(), p.id()));

        let mut postings = vec![Vec::new(); num_labels];
        let mut pair_offsets = Vec::with_capacity(posts.len() + 1);
        let mut num_pairs = 0u32;
        let mut max_labels = 0usize;
        for (i, p) in posts.iter().enumerate() {
            pair_offsets.push(num_pairs);
            max_labels = max_labels.max(p.labels().len());
            for &l in p.labels() {
                postings[l.index()].push(i as u32);
            }
            num_pairs += p.labels().len() as u32;
        }
        pair_offsets.push(num_pairs);

        Ok(Instance {
            posts,
            postings,
            pair_offsets,
            num_pairs: num_pairs as usize,
            max_labels_per_post: max_labels,
        })
    }

    /// Convenience constructor from `(value, labels)` tuples; ids are assigned
    /// from the input order.
    ///
    /// ```
    /// use mqd_core::Instance;
    /// let inst = Instance::from_values(
    ///     vec![(0, vec![0]), (10, vec![0, 1])], 2).unwrap();
    /// assert_eq!(inst.len(), 2);
    /// assert_eq!(inst.num_labels(), 2);
    /// assert_eq!(inst.overlap_rate(), 1.5);
    /// ```
    pub fn from_values(
        items: impl IntoIterator<Item = (i64, Vec<u16>)>,
        num_labels: usize,
    ) -> Result<Self, MqdError> {
        let posts = items
            .into_iter()
            .enumerate()
            .map(|(i, (v, ls))| {
                Post::new(PostId(i as u64), v, ls.into_iter().map(LabelId).collect())
            })
            .collect();
        Self::from_posts(posts, num_labels)
    }

    /// Number of posts `|P|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.posts.len()
    }

    /// Whether the instance has no posts.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.posts.is_empty()
    }

    /// Number of labels `|L|`.
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.postings.len()
    }

    /// All posts, sorted by diversity-dimension value.
    #[inline]
    pub fn posts(&self) -> &[Post] {
        &self.posts
    }

    /// The post at sorted index `i`.
    #[inline]
    pub fn post(&self, i: u32) -> &Post {
        &self.posts[i as usize]
    }

    /// The dimension value of the post at sorted index `i`.
    #[inline]
    pub fn value(&self, i: u32) -> i64 {
        self.posts[i as usize].value()
    }

    /// The label set of the post at sorted index `i`.
    #[inline]
    pub fn labels(&self, i: u32) -> &[LabelId] {
        self.posts[i as usize].labels()
    }

    /// `LP(a)`: sorted indices of the posts matching label `a`.
    #[inline]
    pub fn postings(&self, a: LabelId) -> &[u32] {
        &self.postings[a.index()]
    }

    /// Total number of `(post, label)` occurrences — the universe size of the
    /// set-cover reformulation in Section 4.2.
    #[inline]
    pub fn num_pairs(&self) -> usize {
        self.num_pairs
    }

    /// Maximum number of labels on any single post — the `s` in the Scan
    /// approximation bound `|S_scan| <= s * |S_opt|`.
    #[inline]
    pub fn max_labels_per_post(&self) -> usize {
        self.max_labels_per_post
    }

    /// Average number of labels per post — the paper's *post overlap rate*
    /// (Section 7.2). Returns 0 for an empty instance.
    pub fn overlap_rate(&self) -> f64 {
        if self.posts.is_empty() {
            0.0
        } else {
            self.num_pairs as f64 / self.posts.len() as f64
        }
    }

    /// Dense id of the `(post, label)` pair, or `None` if the post does not
    /// match the label. Pair ids are contiguous in `0..num_pairs()`.
    #[inline]
    pub fn pair_id(&self, post: u32, a: LabelId) -> Option<u32> {
        let labels = self.posts[post as usize].labels();
        labels
            .binary_search(&a)
            .ok()
            .map(|slot| self.pair_offsets[post as usize] + slot as u32)
    }

    /// The pair-id range `[start, end)` of all label occurrences of `post`.
    #[inline]
    pub fn pair_range(&self, post: u32) -> std::ops::Range<u32> {
        self.pair_offsets[post as usize]..self.pair_offsets[post as usize + 1]
    }

    /// Indices `[lo, hi)` into `posts()` whose values lie in
    /// `[min_value, max_value]` (inclusive on both ends).
    pub fn window(&self, min_value: i64, max_value: i64) -> std::ops::Range<usize> {
        let lo = self.posts.partition_point(|p| p.value() < min_value);
        let hi = self.posts.partition_point(|p| p.value() <= max_value);
        lo..hi
    }

    /// Indices `[lo, hi)` into `postings(a)` whose post values lie in
    /// `[min_value, max_value]` (inclusive on both ends).
    pub fn posting_window(
        &self,
        a: LabelId,
        min_value: i64,
        max_value: i64,
    ) -> std::ops::Range<usize> {
        let lp = &self.postings[a.index()];
        let lo = lp.partition_point(|&i| self.value(i) < min_value);
        let hi = lp.partition_point(|&i| self.value(i) <= max_value);
        lo..hi
    }

    /// Restricts the instance to posts whose value lies in
    /// `[min_value, max_value]`, keeping the same label space. Used to carve
    /// the 10-minute evaluation slices of Section 7.2 out of a full day.
    pub fn slice(&self, min_value: i64, max_value: i64) -> Instance {
        let r = self.window(min_value, max_value);
        let posts = self.posts[r].to_vec();
        Instance::from_posts(posts, self.num_labels()).expect("slice of a valid instance is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        // values deliberately unsorted on input
        Instance::from_values(
            vec![
                (30, vec![0, 1]),
                (10, vec![0]),
                (20, vec![1]),
                (40, vec![2, 0]),
            ],
            3,
        )
        .unwrap()
    }

    #[test]
    fn posts_sorted_by_value() {
        let i = inst();
        let values: Vec<i64> = i.posts().iter().map(|p| p.value()).collect();
        assert_eq!(values, vec![10, 20, 30, 40]);
    }

    #[test]
    fn postings_reference_sorted_indices() {
        let i = inst();
        assert_eq!(i.postings(LabelId(0)), &[0, 2, 3]);
        assert_eq!(i.postings(LabelId(1)), &[1, 2]);
        assert_eq!(i.postings(LabelId(2)), &[3]);
    }

    #[test]
    fn label_out_of_range_rejected() {
        let err = Instance::from_values(vec![(0, vec![5])], 3).unwrap_err();
        assert_eq!(
            err,
            MqdError::LabelOutOfRange {
                label: 5,
                num_labels: 3
            }
        );
    }

    #[test]
    fn unlabeled_posts_dropped() {
        let i = Instance::from_values(vec![(0, vec![]), (1, vec![0])], 1).unwrap();
        assert_eq!(i.len(), 1);
        assert_eq!(i.value(0), 1);
    }

    #[test]
    fn pair_ids_dense_and_correct() {
        let i = inst();
        assert_eq!(i.num_pairs(), 6);
        let mut seen = vec![false; i.num_pairs()];
        for p in 0..i.len() as u32 {
            for &a in i.labels(p) {
                let id = i.pair_id(p, a).unwrap();
                assert!(!seen[id as usize]);
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(i.pair_id(1, LabelId(0)), None); // post at value 20 lacks L0
    }

    #[test]
    fn windows_inclusive() {
        let i = inst();
        assert_eq!(i.window(10, 30), 0..3);
        assert_eq!(i.window(11, 29), 1..2);
        assert_eq!(i.window(41, 50), 4..4);
        assert_eq!(i.posting_window(LabelId(0), 10, 30), 0..2);
        assert_eq!(i.posting_window(LabelId(0), 35, 100), 2..3);
    }

    #[test]
    fn overlap_rate_and_s() {
        let i = inst();
        assert!((i.overlap_rate() - 1.5).abs() < 1e-12);
        assert_eq!(i.max_labels_per_post(), 2);
    }

    #[test]
    fn slice_preserves_label_space() {
        let i = inst();
        let s = i.slice(15, 35);
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_labels(), 3);
        assert_eq!(s.value(0), 20);
    }
}
