//! Shared binary wire primitives for the workspace's on-disk formats.
//!
//! The CLI's binlog and the streaming checkpoint format both store integers
//! as LEB128 varints (signed values zigzag-mapped first) and detect
//! truncation or bit rot with a trailing FNV-1a checksum. This module is
//! the single home of those primitives so every codec shares one
//! bounds-checked reader and reports failures as typed
//! [`MqdError::Corrupt`] errors carrying the byte offset.

use crate::error::MqdError;

/// Footer magic sealing every framed blob (binlog, store segment,
/// checkpoint) ahead of its FNV-1a checksum. This module and
/// `mqd_core::record` are the only places wire magic may be minted —
/// everywhere else aliases these constants (enforced by the `wire-drift`
/// lint), so a format bump can never leave a stale copy behind.
pub const FRAME_FOOTER: &[u8; 4] = b"END!";

/// File magic of a streaming checkpoint blob (`mqd-stream::checkpoint`).
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"MQDC";

/// File magic of the durable store's write-ahead log (`mqd-wal::wal`).
pub const WAL_MAGIC: &[u8; 4] = b"WAL!";

/// File magic of a sealed on-disk store segment (`mqd-wal::segment`).
pub const SEGMENT_MAGIC: &[u8; 4] = b"MQDS";

/// File magic of a durable `SUBSCRIBE` checkpoint wrapper (the server's
/// named-subscription files; the inner payload is a [`CHECKPOINT_MAGIC`]
/// blob).
pub const SUBSCRIPTION_MAGIC: &[u8; 4] = b"MQSB";

/// Frame magic of the router/backend `HELLO` handshake (`mqd-router`).
pub const ROUTER_MAGIC: &[u8; 4] = b"MQRT";

/// Version byte of the router handshake frame.
pub const ROUTER_VERSION: u8 = 1;

/// Upper bound on cluster shard count — matches the `SHARDS` clamp the
/// serving protocol already applies to per-query label sharding.
pub const MAX_SHARD_COUNT: u32 = 64;

/// The canonical shard map: a label is owned by exactly one shard, and
/// every node (router, backends, oracle) derives ownership from this one
/// function so the map can never drift.
pub fn shard_of_label(label: u16, shard_count: u32) -> u32 {
    (label as u32) % shard_count.max(1)
}

/// A backend's position in the cluster shard map, exchanged in the
/// router handshake and pinned by `mqdiv serve --shard-id/--shard-count`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardIdentity {
    /// Which shard this backend serves (`0..shard_count`).
    pub shard_id: u32,
    /// Total shards in the cluster map.
    pub shard_count: u32,
}

/// Encodes the router handshake frame: magic, version, and the shard map
/// coordinates the router expects the backend to hold.
pub fn encode_hello(identity: &ShardIdentity) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(ROUTER_MAGIC);
    buf.push(ROUTER_VERSION);
    put_varint(&mut buf, identity.shard_id as u64);
    put_varint(&mut buf, identity.shard_count as u64);
    seal_framed(&mut buf, FRAME_FOOTER);
    buf
}

/// Decodes and validates a router handshake frame.
pub fn decode_hello(data: &[u8]) -> Result<ShardIdentity, MqdError> {
    let body = check_framed(data, FRAME_FOOTER, 7)?;
    let mut c = Cursor::new(body);
    let magic = c.get_array::<4>()?;
    if &magic != ROUTER_MAGIC {
        return Err(c.corrupt("not a router hello frame"));
    }
    let version = c.get_u8()?;
    if version != ROUTER_VERSION {
        return Err(c.corrupt(format!("unsupported router frame version {version}")));
    }
    let shard_id = c.get_varint()?;
    let shard_count = c.get_varint()?;
    if shard_count == 0 || shard_count > MAX_SHARD_COUNT as u64 {
        return Err(c.corrupt(format!("shard count {shard_count} out of range")));
    }
    if shard_id >= shard_count {
        return Err(c.corrupt(format!(
            "shard id {shard_id} outside shard count {shard_count}"
        )));
    }
    if c.has_remaining() {
        return Err(c.corrupt("trailing bytes after hello frame"));
    }
    Ok(ShardIdentity {
        shard_id: shard_id as u32,
        shard_count: shard_count as u32,
    })
}

/// FNV-1a over a byte slice — the workspace's integrity checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Appends `v` as an LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends a signed value as a zigzag-mapped varint.
pub fn put_varint_i64(buf: &mut Vec<u8>, v: i64) {
    put_varint(buf, zigzag(v));
}

/// Maps a signed value onto the unsigned varint domain.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Bounds-checked forward reader over a byte slice. Every failure is a
/// [`MqdError::Corrupt`] naming the byte offset where decoding stopped.
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Whether any bytes remain.
    pub fn has_remaining(&self) -> bool {
        self.pos < self.data.len()
    }

    /// Unread bytes left in the buffer.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Validates an untrusted element count against the bytes actually
    /// left: each element occupies at least `min_encoded_size` bytes, so a
    /// count beyond `remaining / min_encoded_size` cannot be satisfied by
    /// any suffix of the input and is reported as [`MqdError::Corrupt`]
    /// before a single byte is allocated for it. Returns the count as a
    /// capacity safe to pass to `Vec::with_capacity`.
    pub fn plausible_len(
        &self,
        n: u64,
        min_encoded_size: usize,
        what: &str,
    ) -> Result<usize, MqdError> {
        let cap = (self.remaining() / min_encoded_size.max(1)) as u64;
        if n > cap {
            return Err(self.corrupt(format!(
                "{what} count {n} exceeds the {} bytes remaining",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    /// Builds the typed error for a failure at the current offset.
    pub fn corrupt(&self, reason: impl Into<String>) -> MqdError {
        MqdError::Corrupt {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, MqdError> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or_else(|| self.corrupt("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a fixed-size array.
    pub fn get_array<const N: usize>(&mut self) -> Result<[u8; N], MqdError> {
        let end = self.pos.checked_add(N).filter(|&e| e <= self.data.len());
        let Some(end) = end else {
            return Err(self.corrupt("unexpected end of input"));
        };
        let out: [u8; N] = self.data[self.pos..end].try_into().expect("N bytes");
        self.pos = end;
        Ok(out)
    }

    /// Reads an LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64, MqdError> {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            if !self.has_remaining() {
                return Err(self.corrupt("truncated varint"));
            }
            let byte = self.get_u8()?;
            if shift >= 64 {
                return Err(self.corrupt("varint overflow"));
            }
            out |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    /// Reads a zigzag-mapped signed varint.
    pub fn get_varint_i64(&mut self) -> Result<i64, MqdError> {
        Ok(unzigzag(self.get_varint()?))
    }
}

/// Splits a framed buffer `body ++ footer_magic ++ u64 checksum` and
/// verifies the checksum over the body. Returns the body.
pub fn check_framed<'a>(
    data: &'a [u8],
    footer_magic: &[u8; 4],
    min_body: usize,
) -> Result<&'a [u8], MqdError> {
    let frame = footer_magic.len() + 8;
    if data.len() < min_body + frame {
        return Err(MqdError::Corrupt {
            offset: data.len(),
            reason: "file too short for this format".into(),
        });
    }
    let (body, tail) = data.split_at(data.len() - frame);
    if &tail[..4] != footer_magic {
        return Err(MqdError::Corrupt {
            offset: body.len(),
            reason: "missing end marker (truncated file?)".into(),
        });
    }
    let stored = u64::from_be_bytes(tail[4..].try_into().expect("8 bytes"));
    if fnv1a(body) != stored {
        return Err(MqdError::Corrupt {
            offset: 0,
            reason: "checksum mismatch (corrupted file)".into(),
        });
    }
    Ok(body)
}

/// Appends the footer `footer_magic ++ FNV-1a(body)` to `buf`.
pub fn seal_framed(buf: &mut Vec<u8>, footer_magic: &[u8; 4]) {
    let checksum = fnv1a(buf);
    buf.extend_from_slice(footer_magic);
    buf.extend_from_slice(&checksum.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_and_zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 123456789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            put_varint(&mut buf, v);
        }
        let mut c = Cursor::new(&buf);
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            assert_eq!(c.get_varint().unwrap(), v);
        }
        assert!(!c.has_remaining());
    }

    #[test]
    fn truncated_varint_reports_offset() {
        let buf = [0x80u8, 0x80]; // continuation bits with no terminator
        let mut c = Cursor::new(&buf);
        let err = c.get_varint().unwrap_err();
        match err {
            MqdError::Corrupt { offset, reason } => {
                assert_eq!(offset, 2);
                assert!(reason.contains("varint"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn overlong_varint_rejected() {
        // 10 continuation bytes push shift past 64.
        let buf = [0xffu8; 11];
        let mut c = Cursor::new(&buf);
        assert!(matches!(
            c.get_varint().unwrap_err(),
            MqdError::Corrupt { .. }
        ));
    }

    #[test]
    fn plausible_len_rejects_impossible_counts() {
        let buf = [0u8; 16];
        let mut c = Cursor::new(&buf);
        c.get_u8().unwrap();
        assert_eq!(c.remaining(), 15);
        // 15 one-byte elements fit; 16 cannot.
        assert_eq!(c.plausible_len(15, 1, "labels").unwrap(), 15);
        assert!(matches!(
            c.plausible_len(16, 1, "labels").unwrap_err(),
            MqdError::Corrupt { .. }
        ));
        // 5 three-byte elements fit; 6 cannot; u64::MAX certainly cannot.
        assert_eq!(c.plausible_len(5, 3, "rows").unwrap(), 5);
        assert!(c.plausible_len(6, 3, "rows").is_err());
        assert!(c.plausible_len(u64::MAX, 3, "rows").is_err());
    }

    #[test]
    fn hello_frame_round_trips_and_rejects_bad_maps() {
        let id = ShardIdentity {
            shard_id: 1,
            shard_count: 2,
        };
        let frame = encode_hello(&id);
        assert_eq!(decode_hello(&frame).unwrap(), id);
        // Corruption is caught by the checksum.
        let mut bad = frame.clone();
        bad[5] ^= 0x01;
        assert!(decode_hello(&bad).is_err());
        // Out-of-range maps are rejected even when correctly framed.
        for (sid, count) in [(0u32, 0u32), (2, 2), (0, MAX_SHARD_COUNT + 1)] {
            let mut buf = Vec::new();
            buf.extend_from_slice(ROUTER_MAGIC);
            buf.push(ROUTER_VERSION);
            put_varint(&mut buf, sid as u64);
            put_varint(&mut buf, count as u64);
            seal_framed(&mut buf, FRAME_FOOTER);
            assert!(decode_hello(&buf).is_err(), "accepted {sid}/{count}");
        }
    }

    #[test]
    fn shard_map_is_total_and_stable() {
        for label in 0..u16::MAX {
            let s = shard_of_label(label, 4);
            assert!(s < 4);
            assert_eq!(s, (label % 4) as u32);
        }
        // A single-shard map owns everything; zero is clamped, not a panic.
        assert_eq!(shard_of_label(123, 1), 0);
        assert_eq!(shard_of_label(123, 0), 0);
    }

    #[test]
    fn framed_seal_and_check() {
        let mut buf = b"payload".to_vec();
        seal_framed(&mut buf, b"END!");
        assert_eq!(check_framed(&buf, b"END!", 0).unwrap(), b"payload");
        // Flip a body byte: checksum failure.
        let mut bad = buf.clone();
        bad[2] ^= 0xff;
        assert!(check_framed(&bad, b"END!", 0).is_err());
        // Truncate: end-marker failure.
        assert!(check_framed(&buf[..buf.len() - 3], b"END!", 0).is_err());
        // Too short entirely.
        assert!(check_framed(b"x", b"END!", 0).is_err());
    }
}
