//! Shared binary wire primitives for the workspace's on-disk formats.
//!
//! The CLI's binlog and the streaming checkpoint format both store integers
//! as LEB128 varints (signed values zigzag-mapped first) and detect
//! truncation or bit rot with a trailing FNV-1a checksum. This module is
//! the single home of those primitives so every codec shares one
//! bounds-checked reader and reports failures as typed
//! [`MqdError::Corrupt`] errors carrying the byte offset.

use crate::error::MqdError;

/// Footer magic sealing every framed blob (binlog, store segment,
/// checkpoint) ahead of its FNV-1a checksum. This module and
/// `mqd_core::record` are the only places wire magic may be minted —
/// everywhere else aliases these constants (enforced by the `wire-drift`
/// lint), so a format bump can never leave a stale copy behind.
pub const FRAME_FOOTER: &[u8; 4] = b"END!";

/// File magic of a streaming checkpoint blob (`mqd-stream::checkpoint`).
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"MQDC";

/// File magic of the durable store's write-ahead log (`mqd-wal::wal`).
pub const WAL_MAGIC: &[u8; 4] = b"WAL!";

/// File magic of a sealed on-disk store segment (`mqd-wal::segment`).
pub const SEGMENT_MAGIC: &[u8; 4] = b"MQDS";

/// File magic of a durable `SUBSCRIBE` checkpoint wrapper (the server's
/// named-subscription files; the inner payload is a [`CHECKPOINT_MAGIC`]
/// blob).
pub const SUBSCRIPTION_MAGIC: &[u8; 4] = b"MQSB";

/// FNV-1a over a byte slice — the workspace's integrity checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Appends `v` as an LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends a signed value as a zigzag-mapped varint.
pub fn put_varint_i64(buf: &mut Vec<u8>, v: i64) {
    put_varint(buf, zigzag(v));
}

/// Maps a signed value onto the unsigned varint domain.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Bounds-checked forward reader over a byte slice. Every failure is a
/// [`MqdError::Corrupt`] naming the byte offset where decoding stopped.
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Whether any bytes remain.
    pub fn has_remaining(&self) -> bool {
        self.pos < self.data.len()
    }

    /// Builds the typed error for a failure at the current offset.
    pub fn corrupt(&self, reason: impl Into<String>) -> MqdError {
        MqdError::Corrupt {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, MqdError> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or_else(|| self.corrupt("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a fixed-size array.
    pub fn get_array<const N: usize>(&mut self) -> Result<[u8; N], MqdError> {
        let end = self.pos.checked_add(N).filter(|&e| e <= self.data.len());
        let Some(end) = end else {
            return Err(self.corrupt("unexpected end of input"));
        };
        let out: [u8; N] = self.data[self.pos..end].try_into().expect("N bytes");
        self.pos = end;
        Ok(out)
    }

    /// Reads an LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64, MqdError> {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            if !self.has_remaining() {
                return Err(self.corrupt("truncated varint"));
            }
            let byte = self.get_u8()?;
            if shift >= 64 {
                return Err(self.corrupt("varint overflow"));
            }
            out |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    /// Reads a zigzag-mapped signed varint.
    pub fn get_varint_i64(&mut self) -> Result<i64, MqdError> {
        Ok(unzigzag(self.get_varint()?))
    }
}

/// Splits a framed buffer `body ++ footer_magic ++ u64 checksum` and
/// verifies the checksum over the body. Returns the body.
pub fn check_framed<'a>(
    data: &'a [u8],
    footer_magic: &[u8; 4],
    min_body: usize,
) -> Result<&'a [u8], MqdError> {
    let frame = footer_magic.len() + 8;
    if data.len() < min_body + frame {
        return Err(MqdError::Corrupt {
            offset: data.len(),
            reason: "file too short for this format".into(),
        });
    }
    let (body, tail) = data.split_at(data.len() - frame);
    if &tail[..4] != footer_magic {
        return Err(MqdError::Corrupt {
            offset: body.len(),
            reason: "missing end marker (truncated file?)".into(),
        });
    }
    let stored = u64::from_be_bytes(tail[4..].try_into().expect("8 bytes"));
    if fnv1a(body) != stored {
        return Err(MqdError::Corrupt {
            offset: 0,
            reason: "checksum mismatch (corrupted file)".into(),
        });
    }
    Ok(body)
}

/// Appends the footer `footer_magic ++ FNV-1a(body)` to `buf`.
pub fn seal_framed(buf: &mut Vec<u8>, footer_magic: &[u8; 4]) {
    let checksum = fnv1a(buf);
    buf.extend_from_slice(footer_magic);
    buf.extend_from_slice(&checksum.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_and_zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 123456789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            put_varint(&mut buf, v);
        }
        let mut c = Cursor::new(&buf);
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            assert_eq!(c.get_varint().unwrap(), v);
        }
        assert!(!c.has_remaining());
    }

    #[test]
    fn truncated_varint_reports_offset() {
        let buf = [0x80u8, 0x80]; // continuation bits with no terminator
        let mut c = Cursor::new(&buf);
        let err = c.get_varint().unwrap_err();
        match err {
            MqdError::Corrupt { offset, reason } => {
                assert_eq!(offset, 2);
                assert!(reason.contains("varint"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn overlong_varint_rejected() {
        // 10 continuation bytes push shift past 64.
        let buf = [0xffu8; 11];
        let mut c = Cursor::new(&buf);
        assert!(matches!(
            c.get_varint().unwrap_err(),
            MqdError::Corrupt { .. }
        ));
    }

    #[test]
    fn framed_seal_and_check() {
        let mut buf = b"payload".to_vec();
        seal_framed(&mut buf, b"END!");
        assert_eq!(check_framed(&buf, b"END!", 0).unwrap(), b"payload");
        // Flip a body byte: checksum failure.
        let mut bad = buf.clone();
        bad[2] ^= 0xff;
        assert!(check_framed(&bad, b"END!", 0).is_err());
        // Truncate: end-marker failure.
        assert!(check_framed(&buf[..buf.len() - 3], b"END!", 0).is_err());
        // Too short entirely.
        assert!(check_framed(b"x", b"END!", 0).is_err());
    }
}
