//! Post and label primitives.
//!
//! A [`Post`] is the unit of input to every algorithm in this crate: a value
//! on the chosen *diversity dimension* (Section 2 of the paper) plus the set
//! of labels (queries) the post matches. The dimension value is an `i64` in
//! fixed-point units — milliseconds for the time dimension, or polarity
//! scaled by [`SENTIMENT_SCALE`] for the sentiment dimension — so that the
//! coverage predicate `|F(P_i) - F(P_j)| <= lambda` is exact.

use std::fmt;

/// Fixed-point scale used to map a sentiment polarity in `[-1.0, 1.0]` onto
/// the integer diversity dimension: `value = (polarity * SENTIMENT_SCALE)`.
pub const SENTIMENT_SCALE: i64 = 1_000_000;

/// Identifier of a label (a query/topic/hashtag the user subscribed to).
///
/// Labels are dense small integers `0..num_labels`; the paper's `L` is the
/// set of all labels of an [`crate::Instance`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LabelId(pub u16);

impl LabelId {
    /// The label id as a `usize`, for indexing per-label tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// External identifier of a post (e.g. a tweet id). Preserved through
/// sorting so results can be mapped back to the source data.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PostId(pub u64);

impl fmt::Display for PostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A microblogging post projected onto the inputs MQDP cares about:
/// `P_i = (F(P_i), label(P_i))`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Post {
    id: PostId,
    value: i64,
    labels: Vec<LabelId>,
}

impl Post {
    /// Creates a post with the given external id, diversity-dimension value
    /// and label set. Labels are sorted and de-duplicated.
    pub fn new(id: PostId, value: i64, mut labels: Vec<LabelId>) -> Self {
        labels.sort_unstable();
        labels.dedup();
        Post { id, value, labels }
    }

    /// The external identifier.
    #[inline]
    pub fn id(&self) -> PostId {
        self.id
    }

    /// The value of the post on the diversity dimension (`F(P_i)`); for the
    /// time dimension this is the timestamp in milliseconds.
    #[inline]
    pub fn value(&self) -> i64 {
        self.value
    }

    /// The sorted, de-duplicated label set `label(P_i)`.
    #[inline]
    pub fn labels(&self) -> &[LabelId] {
        &self.labels
    }

    /// Whether the post matches label `a`.
    #[inline]
    pub fn has_label(&self, a: LabelId) -> bool {
        self.labels.binary_search(&a).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_sorted_and_deduped() {
        let p = Post::new(
            PostId(7),
            100,
            vec![LabelId(3), LabelId(1), LabelId(3), LabelId(0)],
        );
        assert_eq!(p.labels(), &[LabelId(0), LabelId(1), LabelId(3)]);
        assert_eq!(p.id(), PostId(7));
        assert_eq!(p.value(), 100);
    }

    #[test]
    fn has_label_uses_membership() {
        let p = Post::new(PostId(1), 0, vec![LabelId(2), LabelId(5)]);
        assert!(p.has_label(LabelId(2)));
        assert!(p.has_label(LabelId(5)));
        assert!(!p.has_label(LabelId(3)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(LabelId(4).to_string(), "L4");
        assert_eq!(PostId(9).to_string(), "P9");
    }
}
