//! Error type for the core library.

use std::fmt;

/// Errors produced by instance construction and the exact solvers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MqdError {
    /// A post references a label `>= num_labels`.
    LabelOutOfRange {
        /// The offending label.
        label: u16,
        /// The declared number of labels.
        num_labels: usize,
    },
    /// The distance threshold lambda must be non-negative.
    NegativeLambda(i64),
    /// The exact DP exceeded its configured state budget; the instance is too
    /// large for OPT (use GreedySC or Scan instead).
    OptBudgetExceeded {
        /// Number of end-patterns at the step that blew the budget.
        patterns: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The brute-force solver was asked to handle more posts than its cap.
    BruteTooLarge {
        /// Number of posts in the instance.
        posts: usize,
        /// The configured cap.
        limit: usize,
    },
    /// A line-oriented input (TSV) failed to parse.
    Parse {
        /// 1-based line number of the offending row.
        line: usize,
        /// What went wrong on that line.
        msg: String,
    },
    /// A binary input (binlog, checkpoint) is corrupt or truncated.
    Corrupt {
        /// Byte offset where decoding failed (0 for whole-file checks such
        /// as a checksum or footer mismatch).
        offset: usize,
        /// What the decoder expected.
        reason: String,
    },
    /// A stream input violated the arrival-order contract: timestamps must
    /// be non-decreasing.
    NonMonotoneTimestamp {
        /// 1-based row number of the out-of-order post.
        row: usize,
        /// The previous (larger) timestamp.
        prev: i64,
        /// The offending (smaller) timestamp.
        got: i64,
    },
    /// A stream input row carries no labels; such a post matches no query
    /// and a streaming pipeline must reject it rather than silently drop it.
    EmptyLabelSet {
        /// 1-based row number of the unlabeled post.
        row: usize,
    },
    /// An underlying I/O operation failed (message of the `std::io::Error`).
    Io(String),
    /// A shard thread panicked and exhausted its restart budget.
    ShardFailed {
        /// Index of the failed shard.
        shard: usize,
        /// Number of restarts attempted before giving up.
        restarts: usize,
    },
    /// A checkpoint does not match the stream it is being applied to.
    CheckpointMismatch {
        /// What differed (lambda, tau, shard count, input digest, ...).
        what: String,
    },
    /// A client spoke the serving protocol incorrectly (unknown command,
    /// missing argument, oversized request, ...). Servers answer these with
    /// a typed error response instead of dropping the connection.
    Protocol {
        /// What the server expected.
        msg: String,
    },
    /// A shared mutex was poisoned: another thread panicked while holding
    /// it. The lock holder's state may be torn, so the operation is
    /// refused rather than served from suspect data.
    Poisoned {
        /// Which lock (store, cache, ...).
        what: &'static str,
    },
    /// A peer exhausted its idle budget (half-open socket or byte
    /// dribbling); the server reclaims the worker with a typed response
    /// instead of starving.
    Timeout {
        /// What timed out (request line, body, ...).
        msg: String,
    },
}

impl fmt::Display for MqdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MqdError::LabelOutOfRange { label, num_labels } => {
                write!(f, "label {label} out of range (num_labels = {num_labels})")
            }
            MqdError::NegativeLambda(l) => write!(f, "lambda must be >= 0, got {l}"),
            MqdError::OptBudgetExceeded { patterns, limit } => write!(
                f,
                "OPT state budget exceeded: {patterns} end-patterns > limit {limit}"
            ),
            MqdError::BruteTooLarge { posts, limit } => {
                write!(
                    f,
                    "brute-force solver limited to {limit} posts, got {posts}"
                )
            }
            MqdError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            MqdError::Corrupt { offset, reason } => {
                write!(f, "corrupt input at byte {offset}: {reason}")
            }
            MqdError::NonMonotoneTimestamp { row, prev, got } => write!(
                f,
                "row {row}: timestamp {got} is earlier than the previous row's {prev} \
                 (stream input must be time-sorted)"
            ),
            MqdError::EmptyLabelSet { row } => {
                write!(f, "row {row}: empty label set (post matches no query)")
            }
            MqdError::Io(msg) => write!(f, "I/O error: {msg}"),
            MqdError::ShardFailed { shard, restarts } => write!(
                f,
                "shard {shard} failed after {restarts} restart(s); giving up"
            ),
            MqdError::CheckpointMismatch { what } => {
                write!(f, "checkpoint does not match this stream: {what}")
            }
            MqdError::Protocol { msg } => write!(f, "protocol error: {msg}"),
            MqdError::Poisoned { what } => write!(
                f,
                "{what} lock poisoned by a panicking thread; refusing to serve from it"
            ),
            MqdError::Timeout { msg } => write!(f, "idle timeout: {msg}"),
        }
    }
}

impl std::error::Error for MqdError {}

impl From<std::io::Error> for MqdError {
    fn from(e: std::io::Error) -> Self {
        MqdError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MqdError::LabelOutOfRange {
            label: 9,
            num_labels: 3,
        };
        assert!(e.to_string().contains("label 9"));
        let e = MqdError::OptBudgetExceeded {
            patterns: 100,
            limit: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(MqdError::NegativeLambda(-5).to_string().contains("-5"));
        let e = MqdError::BruteTooLarge {
            posts: 40,
            limit: 24,
        };
        assert!(e.to_string().contains("40"));
    }

    #[test]
    fn robustness_variants_carry_location() {
        let e = MqdError::Parse {
            line: 7,
            msg: "bad id".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = MqdError::Corrupt {
            offset: 12,
            reason: "truncated varint".into(),
        };
        assert!(e.to_string().contains("byte 12"));
        let e = MqdError::NonMonotoneTimestamp {
            row: 3,
            prev: 100,
            got: 50,
        };
        let s = e.to_string();
        assert!(s.contains("row 3") && s.contains("100") && s.contains("50"));
        assert!(MqdError::EmptyLabelSet { row: 9 }
            .to_string()
            .contains("row 9"));
        let e = MqdError::ShardFailed {
            shard: 2,
            restarts: 3,
        };
        assert!(e.to_string().contains("shard 2"));
        let e = MqdError::CheckpointMismatch {
            what: "lambda 5 != 7".into(),
        };
        assert!(e.to_string().contains("lambda 5 != 7"));
        let e = MqdError::Protocol {
            msg: "unknown command FROB".into(),
        };
        assert!(e.to_string().contains("unknown command FROB"));
        let e = MqdError::Poisoned { what: "store" };
        assert!(e.to_string().contains("store lock poisoned"));
        let e = MqdError::Timeout {
            msg: "request line stalled".into(),
        };
        assert!(e.to_string().contains("idle timeout"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "short read");
        let e: MqdError = io.into();
        assert!(e.to_string().contains("short read"));
    }
}
