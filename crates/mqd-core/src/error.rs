//! Error type for the core library.

use std::fmt;

/// Errors produced by instance construction and the exact solvers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MqdError {
    /// A post references a label `>= num_labels`.
    LabelOutOfRange {
        /// The offending label.
        label: u16,
        /// The declared number of labels.
        num_labels: usize,
    },
    /// The distance threshold lambda must be non-negative.
    NegativeLambda(i64),
    /// The exact DP exceeded its configured state budget; the instance is too
    /// large for OPT (use GreedySC or Scan instead).
    OptBudgetExceeded {
        /// Number of end-patterns at the step that blew the budget.
        patterns: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The brute-force solver was asked to handle more posts than its cap.
    BruteTooLarge {
        /// Number of posts in the instance.
        posts: usize,
        /// The configured cap.
        limit: usize,
    },
}

impl fmt::Display for MqdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MqdError::LabelOutOfRange { label, num_labels } => {
                write!(f, "label {label} out of range (num_labels = {num_labels})")
            }
            MqdError::NegativeLambda(l) => write!(f, "lambda must be >= 0, got {l}"),
            MqdError::OptBudgetExceeded { patterns, limit } => write!(
                f,
                "OPT state budget exceeded: {patterns} end-patterns > limit {limit}"
            ),
            MqdError::BruteTooLarge { posts, limit } => {
                write!(
                    f,
                    "brute-force solver limited to {limit} posts, got {posts}"
                )
            }
        }
    }
}

impl std::error::Error for MqdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MqdError::LabelOutOfRange {
            label: 9,
            num_labels: 3,
        };
        assert!(e.to_string().contains("label 9"));
        let e = MqdError::OptBudgetExceeded {
            patterns: 100,
            limit: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(MqdError::NegativeLambda(-5).to_string().contains("-5"));
        let e = MqdError::BruteTooLarge {
            posts: 40,
            limit: 24,
        };
        assert!(e.to_string().contains("40"));
    }
}
