//! Core library for **Multi-Query Diversification in Microblogging Posts**
//! (Cheng, Arvanitis, Chrobak, Hristidis — EDBT 2014).
//!
//! Given a set of posts, each carrying a value on an ordered *diversity
//! dimension* (time, sentiment, ...) and a set of matched *labels* (user
//! queries), MQDP asks for the minimum subset of posts that lambda-covers
//! every label occurrence of every post. This crate provides:
//!
//! * the data model ([`Instance`], [`Post`], [`LabelId`]) and coverage
//!   semantics ([`coverage`]),
//! * fixed and density-proportional thresholds ([`FixedLambda`],
//!   [`VariableLambda`] — Section 6),
//! * the exact dynamic program [`algorithms::solve_opt`] (Section 4.1),
//! * the approximations [`algorithms::solve_greedy_sc`] (Section 4.2,
//!   `ln(|P||L|)` bound) and [`algorithms::solve_scan`] /
//!   [`algorithms::solve_scan_plus`] (Section 4.3, `s` bound),
//! * the NP-hardness gadget of Section 3 ([`hardness`]) used to
//!   machine-check Lemma 1 in the test suite.
//!
//! Streaming variants live in the companion crate `mqd-stream`.
//!
//! # Quick example
//!
//! ```
//! use mqd_core::{Instance, FixedLambda, algorithms::solve_scan, coverage};
//!
//! // Four posts on a timeline with two queries (0 and 1), lambda = 10.
//! let inst = Instance::from_values(
//!     vec![(0, vec![0]), (10, vec![0]), (20, vec![0, 1]), (30, vec![1])],
//!     2,
//! ).unwrap();
//! let lambda = FixedLambda(10);
//! let solution = solve_scan(&inst, &lambda);
//! assert!(coverage::is_cover(&inst, &lambda, &solution.selected));
//! ```

#![warn(missing_docs)]

pub mod algorithms;
pub mod coverage;
mod error;
pub mod hardness;
mod instance;
mod lambda;
pub mod metrics;
mod post;
pub mod record;
mod solution;
pub mod wire;

pub use error::MqdError;
pub use instance::Instance;
pub use lambda::{FixedLambda, LambdaProvider, VariableLambda};
pub use post::{LabelId, Post, PostId, SENTIMENT_SCALE};
pub use solution::Solution;
