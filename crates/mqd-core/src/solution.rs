//! Solution container shared by all MQDP algorithms.

use crate::instance::Instance;

/// The result of running an MQDP algorithm: the selected post indices (into
/// `Instance::posts`, sorted ascending) plus bookkeeping for the experiment
/// harness.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Name of the producing algorithm ("OPT", "GreedySC", "Scan", ...).
    pub algorithm: &'static str,
    /// Selected post indices, sorted ascending, duplicate-free.
    pub selected: Vec<u32>,
}

impl Solution {
    /// Builds a solution, normalizing (sorting + deduplicating) the selected
    /// indices.
    pub fn new(algorithm: &'static str, mut selected: Vec<u32>) -> Self {
        selected.sort_unstable();
        selected.dedup();
        Solution {
            algorithm,
            selected,
        }
    }

    /// Number of selected posts — the objective MQDP minimizes.
    #[inline]
    pub fn size(&self) -> usize {
        self.selected.len()
    }

    /// Relative solution-size error against an optimal size, the paper's
    /// `(|estimated| - |optimal|) / |optimal|` metric (Section 7.2).
    /// Returns 0 when both are empty.
    pub fn relative_error(&self, optimal_size: usize) -> f64 {
        if optimal_size == 0 {
            if self.size() == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.size() as f64 - optimal_size as f64) / optimal_size as f64
        }
    }

    /// External ids of the selected posts, in dimension order.
    pub fn post_ids(&self, inst: &Instance) -> Vec<crate::post::PostId> {
        self.selected.iter().map(|&i| inst.post(i).id()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_selection() {
        let s = Solution::new("test", vec![3, 1, 3, 2]);
        assert_eq!(s.selected, vec![1, 2, 3]);
        assert_eq!(s.size(), 3);
    }

    #[test]
    fn relative_error() {
        let s = Solution::new("test", vec![0, 1, 2]);
        assert!((s.relative_error(2) - 0.5).abs() < 1e-12);
        assert_eq!(s.relative_error(3), 0.0);
        let empty = Solution::new("test", vec![]);
        assert_eq!(empty.relative_error(0), 0.0);
        assert!(s.relative_error(0).is_infinite());
    }

    #[test]
    fn post_ids_map_back() {
        let inst = Instance::from_values(vec![(5, vec![0]), (1, vec![0])], 1).unwrap();
        let s = Solution::new("test", vec![0, 1]);
        let ids = s.post_ids(&inst);
        // Post with value 1 had input position 1, value 5 had position 0.
        assert_eq!(ids[0].0, 1);
        assert_eq!(ids[1].0, 0);
    }
}
