//! The canonical slice-and-solve query path.
//!
//! Every served `QUERY` — whether it comes over a socket, from the CLI, or
//! from the oracle's loopback agreement check — resolves through
//! [`run_query`]: carve the [`crate::Slice`] for the spec's labels and
//! range, run the requested solver, and map the selected posts back to
//! external [`Record`]s. Keeping this in one place is what makes
//! "served answer == offline answer on the same slice" a meaningful,
//! checkable identity.

use mqd_core::algorithms::{
    solve_greedy_sc, solve_opt, solve_scan, solve_scan_cover, solve_scan_plus, LabelOrder,
    OptConfig,
};
use mqd_core::record::Record;
use mqd_core::{FixedLambda, LabelId, MqdError, VariableLambda};
use mqd_stream::CoverRepair;

use crate::store::{Slice, Store};

/// Which solver answers the query.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Algorithm {
    /// Exact DP (Section 4.1); fixed lambda only, may exceed its budget.
    Opt,
    /// Greedy set cover (Section 4.2).
    GreedySc,
    /// Per-label optimal scan (Section 4.3).
    Scan,
    /// Scan with cross-label pruning (Section 4.3).
    ScanPlus,
}

impl Algorithm {
    /// The wire name, as accepted by [`Algorithm::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            Algorithm::Opt => "opt",
            Algorithm::GreedySc => "greedysc",
            Algorithm::Scan => "scan",
            Algorithm::ScanPlus => "scanplus",
        }
    }

    /// Parses a wire name; unknown names are typed [`MqdError::Protocol`]
    /// errors.
    pub fn parse(s: &str) -> Result<Self, MqdError> {
        match s {
            "opt" => Ok(Algorithm::Opt),
            "greedysc" => Ok(Algorithm::GreedySc),
            "scan" => Ok(Algorithm::Scan),
            "scanplus" => Ok(Algorithm::ScanPlus),
            other => Err(MqdError::Protocol {
                msg: format!("unknown algorithm '{other}' (want opt|greedysc|scan|scanplus)"),
            }),
        }
    }

    /// All four algorithms, in wire-name order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Opt,
        Algorithm::GreedySc,
        Algorithm::Scan,
        Algorithm::ScanPlus,
    ];
}

/// One fully-specified query against a [`Store`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct QuerySpec {
    /// Global label ids the user subscribed to.
    pub labels: Vec<u16>,
    /// Threshold (fixed lambda, or `lambda0` when `proportional`).
    pub lambda: i64,
    /// Use the variable, density-proportional lambda of Section 6.
    pub proportional: bool,
    /// Solver choice.
    pub algorithm: Algorithm,
    /// Inclusive lower bound on the dimension value.
    pub from: i64,
    /// Inclusive upper bound on the dimension value.
    pub to: i64,
}

/// Validates a spec without touching the store: lambda must be
/// non-negative, at least one label, and Opt rejects proportional mode.
pub fn validate_spec(spec: &QuerySpec) -> Result<(), MqdError> {
    if spec.lambda < 0 {
        return Err(MqdError::NegativeLambda(spec.lambda));
    }
    if spec.labels.is_empty() {
        return Err(MqdError::Protocol {
            msg: "query needs at least one label".into(),
        });
    }
    if spec.algorithm == Algorithm::Opt && spec.proportional {
        return Err(MqdError::Protocol {
            msg: "opt supports fixed lambda only (use greedysc/scan/scanplus for prop)".into(),
        });
    }
    Ok(())
}

/// True when a cached answer for `spec` can be patched in place by
/// [`CoverRepair`] as the store grows: only the fixed-lambda Scan family
/// qualifies. Scan+'s cross-label pruning, GreedySC's global ranking, the
/// OPT DP, and the density-proportional lambda of Section 6 all couple the
/// answer to the whole slice, so an in-footprint append invalidates them.
pub fn repairable(spec: &QuerySpec) -> bool {
    spec.algorithm == Algorithm::Scan && !spec.proportional
}

/// Runs `spec` against `store`: slice, solve, map back. The answer lists
/// the selected posts in ascending slice order, each with its external id,
/// value, and the intersection of its labels with the query labels.
pub fn run_query(store: &Store, spec: &QuerySpec) -> Result<Vec<Record>, MqdError> {
    validate_spec(spec)?;
    let slice = store.slice(&spec.labels, spec.from, spec.to);
    solve_slice(&slice, spec)
}

/// Runs a fixed-lambda Scan spec restricted to a label subset: the slice
/// is carved for the spec's **full** label set (so each answer row renders
/// the same label intersection as the unrestricted query), but only the
/// per-label covers of `cover` are solved and returned.
///
/// This is the shard-side half of the router's scatter-gather merge: a
/// shard holding every post that carries its labels answers
/// `COVER owned ∩ L` exactly, and the union over a partition of `L`
/// reproduces the single-node Scan answer row-for-row (see
/// `solve_scan_cover`). Only the Scan family decomposes this way —
/// Scan+'s pruning, GreedySC's global ranking, OPT's DP, and the
/// proportional lambda all couple the answer to the whole slice — so
/// anything else is a typed protocol error.
pub fn run_query_cover(
    store: &Store,
    spec: &QuerySpec,
    cover: &[u16],
) -> Result<Vec<Record>, MqdError> {
    validate_spec(spec)?;
    if !repairable(spec) {
        return Err(MqdError::Protocol {
            msg: "COVER applies to fixed-lambda scan only".into(),
        });
    }
    if cover.is_empty() {
        return Err(MqdError::Protocol {
            msg: "COVER needs at least one label".into(),
        });
    }
    let slice = store.slice(&spec.labels, spec.from, spec.to);
    let mut locals = Vec::with_capacity(cover.len());
    for g in cover {
        match slice.label_map.binary_search(g) {
            Ok(i) => locals.push(LabelId(i as u16)),
            Err(_) => {
                return Err(MqdError::Protocol {
                    msg: format!("COVER label {g} is not among the query labels"),
                })
            }
        }
    }
    locals.sort_unstable();
    locals.dedup();
    let mut solution = solve_scan_cover(&slice.instance, &FixedLambda(spec.lambda), &locals);
    solution.selected.sort_unstable();
    solution.selected.dedup();
    Ok(solution
        .selected
        .iter()
        .map(|&z| slice.record_for(z))
        .collect())
}

/// [`run_query`] plus, when the spec is [`repairable`], the
/// [`CoverRepair`] tail state equivalent to having streamed the slice —
/// ready for [`crate::CoverCache::insert_fresh`].
pub fn run_query_with_repair(
    store: &Store,
    spec: &QuerySpec,
) -> Result<(Vec<Record>, Option<CoverRepair>), MqdError> {
    validate_spec(spec)?;
    let slice = store.slice(&spec.labels, spec.from, spec.to);
    let records = solve_slice(&slice, spec)?;
    Ok((records, repair_state(&slice, spec)))
}

/// Builds the [`CoverRepair`] tail state for a [`repairable`] spec by
/// replaying the slice (already in `(value, id)` order) through the fold;
/// `None` for non-repairable specs. The caller is expected to have solved
/// the same slice — the fold's cover is byte-identical to that answer.
pub fn repair_state(slice: &Slice, spec: &QuerySpec) -> Option<CoverRepair> {
    if !repairable(spec) {
        return None;
    }
    let mut rep = CoverRepair::new(&spec.labels, spec.lambda);
    for i in 0..slice.instance.len() as u32 {
        rep.observe(&slice.record_for(i));
    }
    Some(rep)
}

/// Solves an already-carved slice (see [`run_query`]; the spec must have
/// passed [`validate_spec`]). Split out so the background refresher can
/// solve against a slice snapshot without holding the store lock.
pub fn solve_slice(slice: &Slice, spec: &QuerySpec) -> Result<Vec<Record>, MqdError> {
    validate_spec(spec)?;
    let inst = &slice.instance;
    let mut solution = match spec.algorithm {
        Algorithm::Opt => solve_opt(inst, spec.lambda, &OptConfig::default())?,
        _ if spec.proportional => {
            let v = VariableLambda::compute(inst, spec.lambda);
            match spec.algorithm {
                Algorithm::GreedySc => solve_greedy_sc(inst, &v),
                Algorithm::Scan => solve_scan(inst, &v),
                Algorithm::ScanPlus => solve_scan_plus(inst, &v, LabelOrder::Input),
                // lint:allow(panic-path): validate_spec rejects proportional Opt before this match
                Algorithm::Opt => unreachable!("rejected by validate_spec"),
            }
        }
        Algorithm::GreedySc => solve_greedy_sc(inst, &FixedLambda(spec.lambda)),
        Algorithm::Scan => solve_scan(inst, &FixedLambda(spec.lambda)),
        Algorithm::ScanPlus => solve_scan_plus(inst, &FixedLambda(spec.lambda), LabelOrder::Input),
    };
    solution.selected.sort_unstable();
    solution.selected.dedup();
    Ok(solution
        .selected
        .iter()
        .map(|&z| slice.record_for(z))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Store {
        let mut s = Store::new();
        // The paper's Example 2 shape on label 0, plus label 1 activity.
        for (id, value, labels) in [
            (1u64, 0i64, vec![0u16]),
            (2, 10, vec![0]),
            (3, 20, vec![0, 1]),
            (4, 30, vec![1]),
        ] {
            s.append(Record { id, value, labels }).unwrap();
        }
        s
    }

    fn spec(algorithm: Algorithm) -> QuerySpec {
        QuerySpec {
            labels: vec![0, 1],
            lambda: 10,
            proportional: false,
            algorithm,
            from: i64::MIN,
            to: i64::MAX,
        }
    }

    #[test]
    fn all_algorithms_answer_and_opt_matches_the_paper() {
        let s = store();
        let opt = run_query(&s, &spec(Algorithm::Opt)).unwrap();
        assert_eq!(opt.len(), 2); // {P2, P4} — Example 2
        for alg in [Algorithm::GreedySc, Algorithm::Scan, Algorithm::ScanPlus] {
            let ans = run_query(&s, &spec(alg)).unwrap();
            assert!(!ans.is_empty(), "{:?}", alg);
            // Answers are ascending in slice order (value, then id).
            let vals: Vec<i64> = ans.iter().map(|r| r.value).collect();
            let mut sorted = vals.clone();
            sorted.sort();
            assert_eq!(vals, sorted);
        }
    }

    #[test]
    fn range_restriction_changes_the_slice() {
        let s = store();
        let mut q = spec(Algorithm::Scan);
        q.from = 15;
        q.to = 25;
        let ans = run_query(&s, &q).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].id, 3);
        assert_eq!(ans[0].labels, vec![0, 1]);
    }

    #[test]
    fn invalid_specs_are_typed_errors() {
        let s = store();
        let mut q = spec(Algorithm::Scan);
        q.lambda = -1;
        assert!(matches!(
            run_query(&s, &q).unwrap_err(),
            MqdError::NegativeLambda(-1)
        ));
        let mut q = spec(Algorithm::Scan);
        q.labels.clear();
        assert!(matches!(
            run_query(&s, &q).unwrap_err(),
            MqdError::Protocol { .. }
        ));
        let mut q = spec(Algorithm::Opt);
        q.proportional = true;
        assert!(matches!(
            run_query(&s, &q).unwrap_err(),
            MqdError::Protocol { .. }
        ));
    }

    #[test]
    fn proportional_mode_runs_on_the_approximations() {
        let s = store();
        for alg in [Algorithm::GreedySc, Algorithm::Scan, Algorithm::ScanPlus] {
            let mut q = spec(alg);
            q.proportional = true;
            run_query(&s, &q).unwrap();
        }
    }

    #[test]
    fn cover_queries_partition_back_to_full_scan() {
        let s = store();
        let q = spec(Algorithm::Scan);
        let full = run_query(&s, &q).unwrap();
        let mut union: Vec<Record> = Vec::new();
        for part in [vec![0u16], vec![1]] {
            union.extend(run_query_cover(&s, &q, &part).unwrap());
        }
        union.sort_by_key(|r| (r.value, r.id));
        union.dedup_by_key(|r| r.id);
        assert_eq!(union, full);
        // Rendered labels come from the FULL query label set even when the
        // cover is a subset: with lambda 5 the label-1 pass must select
        // post 3, which carries both query labels.
        let mut tight = q.clone();
        tight.lambda = 5;
        let one = run_query_cover(&s, &tight, &[1]).unwrap();
        assert!(one.iter().any(|r| r.id == 3 && r.labels == vec![0, 1]));
    }

    #[test]
    fn cover_misuse_is_a_typed_error() {
        let s = store();
        let q = spec(Algorithm::Scan);
        // Label outside the query set.
        assert!(matches!(
            run_query_cover(&s, &q, &[5]).unwrap_err(),
            MqdError::Protocol { .. }
        ));
        // Empty cover.
        assert!(matches!(
            run_query_cover(&s, &q, &[]).unwrap_err(),
            MqdError::Protocol { .. }
        ));
        // Non-decomposable algorithms and modes.
        for bad in [spec(Algorithm::ScanPlus), spec(Algorithm::GreedySc), {
            let mut p = spec(Algorithm::Scan);
            p.proportional = true;
            p
        }] {
            assert!(matches!(
                run_query_cover(&s, &bad, &[0]).unwrap_err(),
                MqdError::Protocol { .. }
            ));
        }
    }

    #[test]
    fn algorithm_names_round_trip() {
        for alg in Algorithm::ALL {
            assert_eq!(Algorithm::parse(alg.as_str()).unwrap(), alg);
        }
        assert!(matches!(
            Algorithm::parse("bogus").unwrap_err(),
            MqdError::Protocol { .. }
        ));
    }
}
