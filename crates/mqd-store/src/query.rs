//! The canonical slice-and-solve query path.
//!
//! Every served `QUERY` — whether it comes over a socket, from the CLI, or
//! from the oracle's loopback agreement check — resolves through
//! [`run_query`]: carve the [`crate::Slice`] for the spec's labels and
//! range, run the requested solver, and map the selected posts back to
//! external [`Record`]s. Keeping this in one place is what makes
//! "served answer == offline answer on the same slice" a meaningful,
//! checkable identity.

use mqd_core::algorithms::{
    solve_greedy_sc, solve_opt, solve_scan, solve_scan_plus, LabelOrder, OptConfig,
};
use mqd_core::record::Record;
use mqd_core::{FixedLambda, MqdError, VariableLambda};

use crate::store::Store;

/// Which solver answers the query.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Algorithm {
    /// Exact DP (Section 4.1); fixed lambda only, may exceed its budget.
    Opt,
    /// Greedy set cover (Section 4.2).
    GreedySc,
    /// Per-label optimal scan (Section 4.3).
    Scan,
    /// Scan with cross-label pruning (Section 4.3).
    ScanPlus,
}

impl Algorithm {
    /// The wire name, as accepted by [`Algorithm::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            Algorithm::Opt => "opt",
            Algorithm::GreedySc => "greedysc",
            Algorithm::Scan => "scan",
            Algorithm::ScanPlus => "scanplus",
        }
    }

    /// Parses a wire name; unknown names are typed [`MqdError::Protocol`]
    /// errors.
    pub fn parse(s: &str) -> Result<Self, MqdError> {
        match s {
            "opt" => Ok(Algorithm::Opt),
            "greedysc" => Ok(Algorithm::GreedySc),
            "scan" => Ok(Algorithm::Scan),
            "scanplus" => Ok(Algorithm::ScanPlus),
            other => Err(MqdError::Protocol {
                msg: format!("unknown algorithm '{other}' (want opt|greedysc|scan|scanplus)"),
            }),
        }
    }

    /// All four algorithms, in wire-name order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Opt,
        Algorithm::GreedySc,
        Algorithm::Scan,
        Algorithm::ScanPlus,
    ];
}

/// One fully-specified query against a [`Store`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct QuerySpec {
    /// Global label ids the user subscribed to.
    pub labels: Vec<u16>,
    /// Threshold (fixed lambda, or `lambda0` when `proportional`).
    pub lambda: i64,
    /// Use the variable, density-proportional lambda of Section 6.
    pub proportional: bool,
    /// Solver choice.
    pub algorithm: Algorithm,
    /// Inclusive lower bound on the dimension value.
    pub from: i64,
    /// Inclusive upper bound on the dimension value.
    pub to: i64,
}

/// Runs `spec` against `store`: slice, solve, map back. The answer lists
/// the selected posts in ascending slice order, each with its external id,
/// value, and the intersection of its labels with the query labels.
pub fn run_query(store: &Store, spec: &QuerySpec) -> Result<Vec<Record>, MqdError> {
    if spec.lambda < 0 {
        return Err(MqdError::NegativeLambda(spec.lambda));
    }
    if spec.labels.is_empty() {
        return Err(MqdError::Protocol {
            msg: "query needs at least one label".into(),
        });
    }
    let slice = store.slice(&spec.labels, spec.from, spec.to);
    let inst = &slice.instance;
    let mut solution = match spec.algorithm {
        Algorithm::Opt => {
            if spec.proportional {
                return Err(MqdError::Protocol {
                    msg: "opt supports fixed lambda only (use greedysc/scan/scanplus for prop)"
                        .into(),
                });
            }
            solve_opt(inst, spec.lambda, &OptConfig::default())?
        }
        _ if spec.proportional => {
            let v = VariableLambda::compute(inst, spec.lambda);
            match spec.algorithm {
                Algorithm::GreedySc => solve_greedy_sc(inst, &v),
                Algorithm::Scan => solve_scan(inst, &v),
                Algorithm::ScanPlus => solve_scan_plus(inst, &v, LabelOrder::Input),
                // lint:allow(panic-path): the Opt arm above this match guards on the same discriminant
                Algorithm::Opt => unreachable!("handled above"),
            }
        }
        Algorithm::GreedySc => solve_greedy_sc(inst, &FixedLambda(spec.lambda)),
        Algorithm::Scan => solve_scan(inst, &FixedLambda(spec.lambda)),
        Algorithm::ScanPlus => solve_scan_plus(inst, &FixedLambda(spec.lambda), LabelOrder::Input),
    };
    solution.selected.sort_unstable();
    solution.selected.dedup();
    Ok(solution
        .selected
        .iter()
        .map(|&z| slice.record_for(z))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Store {
        let mut s = Store::new();
        // The paper's Example 2 shape on label 0, plus label 1 activity.
        for (id, value, labels) in [
            (1u64, 0i64, vec![0u16]),
            (2, 10, vec![0]),
            (3, 20, vec![0, 1]),
            (4, 30, vec![1]),
        ] {
            s.append(Record { id, value, labels }).unwrap();
        }
        s
    }

    fn spec(algorithm: Algorithm) -> QuerySpec {
        QuerySpec {
            labels: vec![0, 1],
            lambda: 10,
            proportional: false,
            algorithm,
            from: i64::MIN,
            to: i64::MAX,
        }
    }

    #[test]
    fn all_algorithms_answer_and_opt_matches_the_paper() {
        let s = store();
        let opt = run_query(&s, &spec(Algorithm::Opt)).unwrap();
        assert_eq!(opt.len(), 2); // {P2, P4} — Example 2
        for alg in [Algorithm::GreedySc, Algorithm::Scan, Algorithm::ScanPlus] {
            let ans = run_query(&s, &spec(alg)).unwrap();
            assert!(!ans.is_empty(), "{:?}", alg);
            // Answers are ascending in slice order (value, then id).
            let vals: Vec<i64> = ans.iter().map(|r| r.value).collect();
            let mut sorted = vals.clone();
            sorted.sort();
            assert_eq!(vals, sorted);
        }
    }

    #[test]
    fn range_restriction_changes_the_slice() {
        let s = store();
        let mut q = spec(Algorithm::Scan);
        q.from = 15;
        q.to = 25;
        let ans = run_query(&s, &q).unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans[0].id, 3);
        assert_eq!(ans[0].labels, vec![0, 1]);
    }

    #[test]
    fn invalid_specs_are_typed_errors() {
        let s = store();
        let mut q = spec(Algorithm::Scan);
        q.lambda = -1;
        assert!(matches!(
            run_query(&s, &q).unwrap_err(),
            MqdError::NegativeLambda(-1)
        ));
        let mut q = spec(Algorithm::Scan);
        q.labels.clear();
        assert!(matches!(
            run_query(&s, &q).unwrap_err(),
            MqdError::Protocol { .. }
        ));
        let mut q = spec(Algorithm::Opt);
        q.proportional = true;
        assert!(matches!(
            run_query(&s, &q).unwrap_err(),
            MqdError::Protocol { .. }
        ));
    }

    #[test]
    fn proportional_mode_runs_on_the_approximations() {
        let s = store();
        for alg in [Algorithm::GreedySc, Algorithm::Scan, Algorithm::ScanPlus] {
            let mut q = spec(alg);
            q.proportional = true;
            run_query(&s, &q).unwrap();
        }
    }

    #[test]
    fn algorithm_names_round_trip() {
        for alg in Algorithm::ALL {
            assert_eq!(Algorithm::parse(alg.as_str()).unwrap(), alg);
        }
        assert!(matches!(
            Algorithm::parse("bogus").unwrap_err(),
            MqdError::Protocol { .. }
        ));
    }
}
