//! Generation-invalidated cover cache.
//!
//! Serving workloads repeat queries: the same user polls the same label set
//! and range, dashboards re-issue the same STATS-adjacent covers. A cover
//! is only valid for the exact store contents it was computed against, so
//! the cache is keyed by the full [`QuerySpec`] and stamped with the
//! store's generation counter: the first lookup after **any** append sees a
//! different generation and flushes every entry (lazy, O(1) per append).

use std::collections::HashMap;

use mqd_core::record::Record;
use mqd_core::MqdError;

use crate::query::QuerySpec;

/// Default maximum number of cached covers.
const DEFAULT_CAPACITY: usize = 1024;

/// Counters reported by [`CoverCache::stats`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Times the whole cache was flushed by a generation change.
    pub invalidations: u64,
    /// Entries currently held.
    pub entries: usize,
}

/// A bounded cover cache keyed by [`QuerySpec`] and a store generation.
pub struct CoverCache {
    map: HashMap<QuerySpec, Vec<Record>>,
    /// Store generation the current entries were computed at.
    generation: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl CoverCache {
    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An empty cache holding at most `capacity` covers. When full, an
    /// insert flushes the map — covers are cheap to recompute relative to
    /// tracking per-entry recency, and appends flush everything anyway.
    pub fn with_capacity(capacity: usize) -> Self {
        CoverCache {
            map: HashMap::new(),
            generation: 0,
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// Returns the cached answer for `spec` at `store_generation`, or
    /// computes, caches and returns it. The `bool` is `true` on a hit.
    pub fn get_or_compute(
        &mut self,
        store_generation: u64,
        spec: &QuerySpec,
        compute: impl FnOnce() -> Result<Vec<Record>, MqdError>,
    ) -> Result<(Vec<Record>, bool), MqdError> {
        if self.generation != store_generation {
            if !self.map.is_empty() {
                self.invalidations += 1;
                self.map.clear();
            }
            self.generation = store_generation;
        }
        if let Some(hit) = self.map.get(spec) {
            self.hits += 1;
            return Ok((hit.clone(), true));
        }
        self.misses += 1;
        let answer = compute()?;
        if self.map.len() >= self.capacity {
            self.map.clear();
        }
        self.map.insert(spec.clone(), answer.clone());
        Ok((answer, false))
    }

    /// Cache counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidations: self.invalidations,
            entries: self.map.len(),
        }
    }
}

impl Default for CoverCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Algorithm;

    fn spec(lambda: i64) -> QuerySpec {
        QuerySpec {
            labels: vec![0],
            lambda,
            proportional: false,
            algorithm: Algorithm::Scan,
            from: 0,
            to: 100,
        }
    }

    fn answer(id: u64) -> Vec<Record> {
        vec![Record {
            id,
            value: 1,
            labels: vec![0],
        }]
    }

    #[test]
    fn hits_after_first_compute() {
        let mut c = CoverCache::new();
        let (a, hit) = c.get_or_compute(1, &spec(5), || Ok(answer(7))).unwrap();
        assert!(!hit);
        let (b, hit) = c
            .get_or_compute(1, &spec(5), || panic!("must not recompute"))
            .unwrap();
        assert!(hit);
        assert_eq!(a, b);
        let st = c.stats();
        assert_eq!((st.hits, st.misses, st.entries), (1, 1, 1));
    }

    #[test]
    fn generation_change_flushes() {
        let mut c = CoverCache::new();
        c.get_or_compute(1, &spec(5), || Ok(answer(7))).unwrap();
        // Same spec, newer store generation: must recompute.
        let (a, hit) = c.get_or_compute(2, &spec(5), || Ok(answer(8))).unwrap();
        assert!(!hit);
        assert_eq!(a[0].id, 8);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn distinct_specs_do_not_collide() {
        let mut c = CoverCache::new();
        c.get_or_compute(1, &spec(5), || Ok(answer(1))).unwrap();
        let (b, hit) = c.get_or_compute(1, &spec(6), || Ok(answer(2))).unwrap();
        assert!(!hit);
        assert_eq!(b[0].id, 2);
    }

    #[test]
    fn errors_are_not_cached() {
        let mut c = CoverCache::new();
        let err = c
            .get_or_compute(1, &spec(5), || {
                Err(MqdError::Protocol { msg: "boom".into() })
            })
            .unwrap_err();
        assert!(matches!(err, MqdError::Protocol { .. }));
        // A later good compute for the same spec succeeds and caches.
        let (_, hit) = c.get_or_compute(1, &spec(5), || Ok(answer(3))).unwrap();
        assert!(!hit);
        let (_, hit) = c.get_or_compute(1, &spec(5), || Ok(answer(3))).unwrap();
        assert!(hit);
    }

    #[test]
    fn capacity_bounds_entries() {
        let mut c = CoverCache::with_capacity(2);
        for lam in 0..5 {
            c.get_or_compute(1, &spec(lam), || Ok(answer(lam as u64)))
                .unwrap();
        }
        assert!(c.stats().entries <= 2);
    }
}
