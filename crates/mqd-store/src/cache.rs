//! Repairable cover cache with per-entry generations.
//!
//! Serving workloads repeat queries: the same user polls the same label set
//! and range, dashboards re-issue the same covers. The first cache keyed
//! answers by [`QuerySpec`] but stamped the whole map with one store
//! generation — any append flushed every entry, and the next query paid a
//! full re-solve inline on the request thread (the 4-second p99 of
//! `BENCH_server.json`). This version keeps entries useful across appends:
//!
//! * **Footprint check** — a new post only matters to a cached entry if it
//!   joins that entry's slice: it carries one of the spec's labels *and*
//!   its value lies in `[from, to]`. Entries outside the footprint are
//!   revalidated at the new generation untouched.
//! * **In-place repair** — fixed-lambda Scan entries carry a
//!   [`CoverRepair`] tail state; posts inside the footprint are folded in
//!   (O(query labels) each) and the entry stays byte-identical to a cold
//!   solve at the new generation. Each entry tracks its *repair debt* (rows
//!   folded since the last full solve); past [`DEFAULT_DEBT_BOUND`] the
//!   entry falls back to a full re-solve like the non-repairable cases.
//! * **Stale-but-bounded serving** — entries whose solver cannot be
//!   repaired locally (Scan+ cascades across labels, GreedySC re-ranks
//!   globally, OPT is a global DP, proportional lambda is density-coupled)
//!   go *dirty* on a footprint hit: their records stay exact at their
//!   recorded watermark generation and keep being served (stamped stale)
//!   while a background refresher re-solves them off the request path.
//!   [`DEFAULT_MAX_LAG`] hard-bounds the staleness: a dirty entry lagging
//!   further than that is treated as a miss and recomputed inline.
//! * **Second-chance eviction** — a full cache evicts via the clock
//!   algorithm over the insertion ring instead of dropping everything, so
//!   repeatedly-hit specs survive capacity pressure.
//!
//! Contract: [`CoverCache::apply_delta`] must see every appended row
//! exactly once, in append order, stamped with the store generation after
//! the batch. The cache verifies contiguity (`new_generation ==
//! latest + rows.len()`) and degrades safely — by marking everything dirty
//! rather than certifying wrong freshness — if a caller breaks the
//! contract. Staleness is always sound: an entry's records are exact at
//! its watermark generation no matter what, because appends never retract.

use std::collections::HashMap;

use mqd_core::record::Record;
use mqd_stream::CoverRepair;

use crate::query::QuerySpec;

/// Default maximum number of cached covers.
const DEFAULT_CAPACITY: usize = 1024;

/// Default repair-debt bound: rows folded into an entry since its last
/// full solve before it falls back to a background re-solve. Repair is
/// exact, so the bound is about bounding per-entry state drift and
/// guaranteeing every hot entry is periodically re-derived from scratch.
pub const DEFAULT_DEBT_BOUND: u64 = 4096;

/// Default staleness hard bound, in generations: a dirty entry lagging
/// beyond this is treated as a miss (inline recompute) instead of served.
pub const DEFAULT_MAX_LAG: u64 = 1 << 16;

/// Counters reported by [`CoverCache::stats`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache (fresh or stale).
    pub hits: u64,
    /// Lookups that had to compute inline.
    pub misses: u64,
    /// Entries marked dirty by an in-footprint append they could not
    /// repair (previously: whole-cache flushes).
    pub invalidations: u64,
    /// In-place entry repairs (one per entry per delta that touched it).
    pub repairs: u64,
    /// Background re-solves installed via [`CoverCache::install_refreshed`].
    pub refreshes: u64,
    /// Stale (watermarked) answers served while a refresh was pending.
    pub stale_served: u64,
    /// Entries currently held.
    pub entries: usize,
}

/// Outcome of [`CoverCache::lookup`].
#[derive(Clone, Debug)]
pub enum Lookup {
    /// The records are exact at the looked-up generation.
    Fresh(Vec<Record>),
    /// The entry lags the store: records are exact at `generation` (the
    /// watermark to stamp on the response). When `enqueue_refresh` is
    /// true the caller owns scheduling a background re-solve (the cache
    /// marked the entry queued; undo with
    /// [`CoverCache::refresh_not_queued`] if scheduling fails).
    Stale {
        /// The cached cover, exact at `generation`.
        records: Vec<Record>,
        /// Watermark generation the records were computed against.
        generation: u64,
        /// True when this lookup claimed responsibility for queueing a
        /// background refresh of the entry.
        enqueue_refresh: bool,
    },
    /// Nothing serviceable cached; compute and [`CoverCache::insert_fresh`].
    Miss,
}

struct Entry {
    records: Vec<Record>,
    /// Store generation the records are exact at (the watermark).
    generation: u64,
    /// Incremental tail state, for fixed-lambda Scan entries only.
    repair: Option<CoverRepair>,
    /// Rows folded into `repair` since the last full solve.
    debt: u64,
    /// True when the records lag the latest generation and a background
    /// re-solve is wanted.
    dirty: bool,
    /// True while a refresh job for this entry is (believed) queued.
    refresh_queued: bool,
    /// Second-chance bit: set on hit, cleared by the clock hand.
    referenced: bool,
}

/// A bounded, repairable cover cache keyed by [`QuerySpec`] (see the
/// module docs for the maintenance protocol).
pub struct CoverCache {
    map: HashMap<QuerySpec, Entry>,
    /// Insertion ring for the clock hand; holds exactly the map's keys.
    /// All iteration over entries goes through this ring, never the map,
    /// so delta application and eviction are deterministic.
    ring: Vec<QuerySpec>,
    /// Clock hand: index into `ring` of the next eviction candidate.
    hand: usize,
    /// Newest store generation [`CoverCache::apply_delta`] has sealed.
    latest_generation: u64,
    capacity: usize,
    debt_bound: u64,
    max_lag: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
    repairs: u64,
    refreshes: u64,
    stale_served: u64,
}

impl CoverCache {
    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An empty cache holding at most `capacity` covers; a full cache
    /// evicts one entry via second-chance/clock on insert.
    pub fn with_capacity(capacity: usize) -> Self {
        CoverCache {
            map: HashMap::new(),
            ring: Vec::new(),
            hand: 0,
            latest_generation: 0,
            capacity: capacity.max(1),
            debt_bound: DEFAULT_DEBT_BOUND,
            max_lag: DEFAULT_MAX_LAG,
            hits: 0,
            misses: 0,
            invalidations: 0,
            repairs: 0,
            refreshes: 0,
            stale_served: 0,
        }
    }

    /// Overrides the repair-debt bound (test/tuning hook).
    pub fn set_debt_bound(&mut self, bound: u64) {
        self.debt_bound = bound;
    }

    /// Overrides the staleness hard bound (test/tuning hook).
    pub fn set_max_lag(&mut self, lag: u64) {
        self.max_lag = lag;
    }

    /// Looks up `spec` against the store generation the caller is serving
    /// at. Never computes: on [`Lookup::Miss`] the caller computes and
    /// [`CoverCache::insert_fresh`]es.
    pub fn lookup(&mut self, spec: &QuerySpec, store_generation: u64) -> Lookup {
        let Some(entry) = self.map.get_mut(spec) else {
            self.misses += 1;
            return Lookup::Miss;
        };
        if entry.generation == store_generation {
            entry.referenced = true;
            self.hits += 1;
            return Lookup::Fresh(entry.records.clone());
        }
        let lag = store_generation.saturating_sub(entry.generation);
        if lag > self.max_lag {
            // Staleness hard bound: recompute inline rather than serve
            // arbitrarily old data.
            self.misses += 1;
            return Lookup::Miss;
        }
        entry.referenced = true;
        self.hits += 1;
        self.stale_served += 1;
        let enqueue_refresh = !entry.refresh_queued;
        entry.refresh_queued = true;
        Lookup::Stale {
            records: entry.records.clone(),
            generation: entry.generation,
            enqueue_refresh,
        }
    }

    /// Undoes the `enqueue_refresh` claim of a [`Lookup::Stale`] (or the
    /// re-enqueue claim of [`CoverCache::install_refreshed`]) after the
    /// caller failed to schedule the job, so a later lookup retries.
    pub fn refresh_not_queued(&mut self, spec: &QuerySpec) {
        if let Some(entry) = self.map.get_mut(spec) {
            entry.refresh_queued = false;
        }
    }

    /// Caches a freshly computed answer. `generation` is the store
    /// generation the computation was exact at; if deltas were sealed
    /// past it while the caller was solving, the entry comes in already
    /// stale (records remain exact at their watermark) and the repair
    /// state — which would be missing those rows — is dropped.
    pub fn insert_fresh(
        &mut self,
        spec: &QuerySpec,
        records: Vec<Record>,
        generation: u64,
        repair: Option<CoverRepair>,
    ) {
        debug_assert!(
            repair.as_ref().is_none_or(|r| {
                r.cover().iter().zip(records.iter()).all(|(a, b)| a == b)
                    && r.len() == records.len()
            }),
            "repair state out of sync with the solved records"
        );
        self.latest_generation = self.latest_generation.max(generation);
        let dirty = generation < self.latest_generation;
        let entry = Entry {
            records,
            generation,
            repair: if dirty { None } else { repair },
            debt: 0,
            dirty,
            refresh_queued: false,
            // New entries start unreferenced and earn their second chance
            // on the first re-hit; otherwise a full sweep sees every bit
            // set and the clock degrades to FIFO, evicting hot entries.
            referenced: false,
        };
        if let Some(slot) = self.map.get_mut(spec) {
            *slot = entry;
            return;
        }
        if self.map.len() >= self.capacity {
            self.evict_one();
        }
        self.ring.push(spec.clone());
        self.map.insert(spec.clone(), entry);
    }

    /// Seals `rows` (the rows appended since the last call, in append
    /// order) at `new_generation`. Every entry is either revalidated
    /// (footprint miss), repaired in place (fixed-lambda Scan, within the
    /// debt bound), or marked dirty. Returns the specs newly needing a
    /// background re-solve; the caller owns scheduling them.
    pub fn apply_delta(&mut self, rows: &[Record], new_generation: u64) -> Vec<QuerySpec> {
        let mut rows_norm: Vec<Record> = rows.to_vec();
        for r in &mut rows_norm {
            r.labels.sort_unstable();
            r.labels.dedup();
        }
        // Contract check: the delta must be exactly the rows between the
        // sealed generation and the new one. On a gap (a caller that
        // appended without telling the cache), freshness can no longer be
        // certified — degrade every entry to stale instead of lying.
        let contiguous =
            new_generation.saturating_sub(rows_norm.len() as u64) == self.latest_generation;
        let mut to_refresh = Vec::new();
        for i in 0..self.ring.len() {
            let spec = &self.ring[i];
            let Some(entry) = self.map.get_mut(spec) else {
                continue; // ring/map desync is repaired by the clock hand
            };
            if entry.dirty {
                continue; // already lagging; the pending refresh catches up
            }
            if !contiguous {
                entry.dirty = true;
                self.invalidations += 1;
                if !entry.refresh_queued {
                    entry.refresh_queued = true;
                    to_refresh.push(spec.clone());
                }
                continue;
            }
            // The footprint test: a row matters iff it joins this spec's
            // slice (value in range, shares a label).
            let relevant: Vec<usize> = rows_norm
                .iter()
                .enumerate()
                .filter(|(_, r)| {
                    r.value >= spec.from
                        && r.value <= spec.to
                        && r.labels.iter().any(|l| spec.labels.contains(l))
                })
                .map(|(j, _)| j)
                .collect();
            if relevant.is_empty() {
                // Outside the footprint: the slice is unchanged, so the
                // cover is exact at the new generation as-is.
                entry.generation = new_generation;
                continue;
            }
            let repairable = entry.repair.is_some()
                && entry.debt.saturating_add(relevant.len() as u64) <= self.debt_bound;
            if repairable {
                if let Some(rep) = entry.repair.as_mut() {
                    for &j in &relevant {
                        rep.observe(&rows_norm[j]);
                    }
                    entry.records = rep.cover();
                    entry.debt += relevant.len() as u64;
                    entry.generation = new_generation;
                    self.repairs += 1;
                    continue;
                }
            }
            entry.dirty = true;
            self.invalidations += 1;
            if !entry.refresh_queued {
                entry.refresh_queued = true;
                to_refresh.push(spec.clone());
            }
        }
        self.latest_generation = self.latest_generation.max(new_generation);
        to_refresh
    }

    /// Installs a background re-solve computed at `generation`. Returns
    /// true when the entry is *still* stale (the store moved on while the
    /// refresher was solving) — the caller should re-enqueue; the entry
    /// is already marked queued for it (undo with
    /// [`CoverCache::refresh_not_queued`] on scheduling failure).
    pub fn install_refreshed(
        &mut self,
        spec: &QuerySpec,
        records: Vec<Record>,
        generation: u64,
        repair: Option<CoverRepair>,
    ) -> bool {
        self.refreshes += 1;
        let latest = self.latest_generation.max(generation);
        self.latest_generation = latest;
        let Some(entry) = self.map.get_mut(spec) else {
            // Evicted while the refresh was in flight; it was hot enough
            // to be refreshed, so reinstall it.
            self.insert_fresh(spec, records, generation, repair);
            return self.map.get(spec).is_some_and(|e| e.dirty);
        };
        if generation >= entry.generation {
            let dirty = generation < latest;
            entry.records = records;
            entry.generation = generation;
            entry.repair = if dirty { None } else { repair };
            entry.debt = 0;
            entry.dirty = dirty;
            entry.refresh_queued = dirty;
            return dirty;
        }
        // A newer answer beat this refresh; keep it.
        entry.refresh_queued = entry.dirty;
        entry.dirty
    }

    /// Second-chance/clock eviction: sweep the ring from the hand,
    /// clearing referenced bits; the first unreferenced entry goes. Two
    /// full laps always find a victim (the first lap clears every bit).
    fn evict_one(&mut self) {
        let mut budget = self.ring.len().saturating_mul(2).saturating_add(1);
        while budget > 0 && !self.ring.is_empty() {
            budget -= 1;
            if self.hand >= self.ring.len() {
                self.hand = 0;
            }
            let spec = &self.ring[self.hand];
            match self.map.get_mut(spec) {
                Some(entry) if entry.referenced => {
                    entry.referenced = false;
                    self.hand += 1;
                }
                Some(_) => {
                    self.map.remove(&self.ring[self.hand]);
                    self.ring.remove(self.hand);
                    return;
                }
                None => {
                    // Ring slot without a map entry: drop the slot and
                    // keep sweeping.
                    self.ring.remove(self.hand);
                }
            }
        }
    }

    /// The retention lease held by the live cache entries: the smallest
    /// `from` bound and the largest non-negative λ across all entries
    /// (`None` when the cache is empty). The durable layer's retention GC
    /// must keep every segment a live entry's slice — or its λ-sized
    /// repair window — can still touch, so it folds this lease into its
    /// horizon. Iterates the ring, never the map, for determinism.
    pub fn live_lease(&self) -> Option<(i64, i64)> {
        if self.ring.is_empty() {
            return None;
        }
        let mut min_from = i64::MAX;
        let mut max_lambda = 0i64;
        for spec in &self.ring {
            min_from = min_from.min(spec.from);
            max_lambda = max_lambda.max(spec.lambda);
        }
        Some((min_from, max_lambda))
    }

    /// Cache counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidations: self.invalidations,
            repairs: self.repairs,
            refreshes: self.refreshes,
            stale_served: self.stale_served,
            entries: self.map.len(),
        }
    }
}

impl Default for CoverCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{repair_state, run_query, solve_slice, Algorithm};
    use crate::store::Store;

    fn row(id: u64, value: i64, labels: &[u16]) -> Record {
        Record {
            id,
            value,
            labels: labels.to_vec(),
        }
    }

    fn spec(algorithm: Algorithm, labels: &[u16], lambda: i64) -> QuerySpec {
        QuerySpec {
            labels: labels.to_vec(),
            lambda,
            proportional: false,
            algorithm,
            from: i64::MIN,
            to: i64::MAX,
        }
    }

    /// Stores rows 0..n with value 10*i on alternating labels 0/1.
    fn store(n: u64) -> Store {
        let mut s = Store::new();
        for i in 0..n {
            s.append(row(i, 10 * i as i64, &[(i % 2) as u16])).unwrap();
        }
        s
    }

    /// Primes the cache with a fresh solve of `spec` against `store`.
    fn prime(cache: &mut CoverCache, store: &Store, q: &QuerySpec) {
        assert!(matches!(cache.lookup(q, store.generation()), Lookup::Miss));
        let slice = store.slice(&q.labels, q.from, q.to);
        let records = solve_slice(&slice, q).unwrap();
        let repair = repair_state(&slice, q);
        cache.insert_fresh(q, records, store.generation(), repair);
    }

    #[test]
    fn hits_after_insert_fresh() {
        let s = store(4);
        let q = spec(Algorithm::Scan, &[0, 1], 15);
        let mut c = CoverCache::new();
        prime(&mut c, &s, &q);
        let Lookup::Fresh(records) = c.lookup(&q, s.generation()) else {
            panic!("expected a fresh hit");
        };
        assert_eq!(records, run_query(&s, &q).unwrap());
        let st = c.stats();
        assert_eq!((st.hits, st.misses, st.entries), (1, 1, 1));
    }

    #[test]
    fn footprint_miss_revalidates_without_repair() {
        let mut s = store(4);
        let q = spec(Algorithm::GreedySc, &[0], 15);
        let mut c = CoverCache::new();
        prime(&mut c, &s, &q);
        // Label 5 is outside the spec's footprint: no repair, no dirt.
        s.append(row(100, 40, &[5])).unwrap();
        let dirty = c.apply_delta(&[row(100, 40, &[5])], s.generation());
        assert!(dirty.is_empty());
        assert!(matches!(c.lookup(&q, s.generation()), Lookup::Fresh(_)));
        let st = c.stats();
        assert_eq!((st.invalidations, st.repairs, st.stale_served), (0, 0, 0));
    }

    #[test]
    fn range_bounded_specs_ignore_out_of_range_appends() {
        let mut s = store(4);
        let mut q = spec(Algorithm::ScanPlus, &[0, 1], 15);
        q.to = 30; // the slice ends at value 30
        let mut c = CoverCache::new();
        prime(&mut c, &s, &q);
        s.append(row(100, 500, &[0])).unwrap();
        assert!(c
            .apply_delta(&[row(100, 500, &[0])], s.generation())
            .is_empty());
        assert!(matches!(c.lookup(&q, s.generation()), Lookup::Fresh(_)));
    }

    #[test]
    fn scan_entries_are_repaired_in_place() {
        let mut s = store(6);
        let q = spec(Algorithm::Scan, &[0, 1], 15);
        let mut c = CoverCache::new();
        prime(&mut c, &s, &q);
        for i in 6..40u64 {
            let r = row(i, 10 * i as i64, &[(i % 2) as u16]);
            s.append(r.clone()).unwrap();
            let dirty = c.apply_delta(std::slice::from_ref(&r), s.generation());
            assert!(dirty.is_empty(), "scan entries must repair, not dirty");
            let Lookup::Fresh(records) = c.lookup(&q, s.generation()) else {
                panic!("expected a fresh (repaired) hit at generation {i}");
            };
            assert_eq!(
                records,
                run_query(&s, &q).unwrap(),
                "repaired cover must be byte-identical to a cold solve"
            );
        }
        assert_eq!(c.stats().repairs, 34);
        assert_eq!(c.stats().invalidations, 0);
    }

    #[test]
    fn non_repairable_entries_serve_stale_then_refresh() {
        let mut s = store(6);
        let q = spec(Algorithm::GreedySc, &[0, 1], 15);
        let mut c = CoverCache::new();
        prime(&mut c, &s, &q);
        let stale_answer = run_query(&s, &q).unwrap();
        let watermark = s.generation();

        let r = row(100, 100, &[0]);
        s.append(r.clone()).unwrap();
        let dirty = c.apply_delta(std::slice::from_ref(&r), s.generation());
        assert_eq!(dirty, vec![q.clone()], "entry must be queued for refresh");
        assert_eq!(c.stats().invalidations, 1);

        // Served stale, stamped with its exact watermark.
        let Lookup::Stale {
            records,
            generation,
            enqueue_refresh,
        } = c.lookup(&q, s.generation())
        else {
            panic!("expected a stale hit");
        };
        assert_eq!(records, stale_answer);
        assert_eq!(generation, watermark);
        assert!(!enqueue_refresh, "apply_delta already queued the refresh");
        assert_eq!(c.stats().stale_served, 1);

        // The background refresher lands: fresh again, at the new gen.
        let refreshed = run_query(&s, &q).unwrap();
        let still_stale = c.install_refreshed(&q, refreshed.clone(), s.generation(), None);
        assert!(!still_stale);
        let Lookup::Fresh(records) = c.lookup(&q, s.generation()) else {
            panic!("expected a fresh hit after refresh");
        };
        assert_eq!(records, refreshed);
        assert_eq!(c.stats().refreshes, 1);
    }

    #[test]
    fn debt_bound_forces_fallback_to_refresh() {
        let mut s = store(4);
        let q = spec(Algorithm::Scan, &[0, 1], 15);
        let mut c = CoverCache::new();
        c.set_debt_bound(2);
        prime(&mut c, &s, &q);
        let mut dirtied = Vec::new();
        for i in 4..8u64 {
            let r = row(i, 10 * i as i64, &[0]);
            s.append(r.clone()).unwrap();
            dirtied.extend(c.apply_delta(std::slice::from_ref(&r), s.generation()));
        }
        // Two repairs fit the bound; the third append tips it over.
        assert_eq!(dirtied, vec![q.clone()]);
        assert_eq!(c.stats().repairs, 2);
        assert_eq!(c.stats().invalidations, 1);
        assert!(matches!(c.lookup(&q, s.generation()), Lookup::Stale { .. }));
    }

    #[test]
    fn lag_past_the_bound_is_a_miss() {
        let mut s = store(4);
        let q = spec(Algorithm::GreedySc, &[0], 15);
        let mut c = CoverCache::new();
        c.set_max_lag(3);
        prime(&mut c, &s, &q);
        for i in 4..10u64 {
            let r = row(i, 10 * i as i64, &[0]);
            s.append(r.clone()).unwrap();
            c.apply_delta(std::slice::from_ref(&r), s.generation());
        }
        // Lag is 6 > 3: too stale to serve.
        assert!(matches!(c.lookup(&q, s.generation()), Lookup::Miss));
    }

    #[test]
    fn non_contiguous_delta_degrades_to_stale_not_wrong() {
        let mut s = store(4);
        let q = spec(Algorithm::Scan, &[0, 1], 15);
        let mut c = CoverCache::new();
        prime(&mut c, &s, &q);
        // Append two rows but only tell the cache about the second: it
        // must refuse to certify freshness.
        s.append(row(50, 100, &[0])).unwrap();
        let r = row(51, 110, &[0]);
        s.append(r.clone()).unwrap();
        let dirty = c.apply_delta(std::slice::from_ref(&r), s.generation());
        assert_eq!(dirty, vec![q.clone()]);
        match c.lookup(&q, s.generation()) {
            Lookup::Stale { generation, .. } => assert_eq!(generation, 4),
            other => panic!("expected stale, got {other:?}"),
        }
    }

    #[test]
    fn repeatedly_hit_entry_outlives_capacity_pressure() {
        // The satellite regression: the old cache cleared the whole map
        // on insert-when-full; second-chance must keep the hot entry.
        let s = store(8);
        let hot = spec(Algorithm::Scan, &[0], 15);
        let mut c = CoverCache::with_capacity(2);
        prime(&mut c, &s, &hot);
        for lambda in 0..20 {
            // Keep the hot entry referenced, then pressure the cache.
            assert!(
                matches!(c.lookup(&hot, s.generation()), Lookup::Fresh(_)),
                "hot entry evicted at lambda {lambda}"
            );
            let cold = spec(Algorithm::GreedySc, &[1], 100 + lambda);
            let slice = s.slice(&cold.labels, cold.from, cold.to);
            let records = solve_slice(&slice, &cold).unwrap();
            c.insert_fresh(&cold, records, s.generation(), None);
            assert!(c.stats().entries <= 2);
        }
        assert!(matches!(c.lookup(&hot, s.generation()), Lookup::Fresh(_)));
    }

    #[test]
    fn unreferenced_entries_are_the_eviction_victims() {
        let s = store(8);
        let mut c = CoverCache::with_capacity(3);
        let specs: Vec<QuerySpec> = (0..3)
            .map(|i| spec(Algorithm::Scan, &[0], 10 + i))
            .collect();
        for q in &specs {
            prime(&mut c, &s, q);
        }
        // Touch all but specs[1], then insert one more.
        assert!(matches!(
            c.lookup(&specs[0], s.generation()),
            Lookup::Fresh(_)
        ));
        assert!(matches!(
            c.lookup(&specs[2], s.generation()),
            Lookup::Fresh(_)
        ));
        // Age out the referenced bits set by insertion: one pressure pass
        // clears them, a second pass picks the never-rehit victim.
        let newcomer = spec(Algorithm::Scan, &[1], 99);
        prime(&mut c, &s, &newcomer);
        assert!(c.stats().entries <= 3);
        // specs[1] (never re-hit) must be the entry that disappeared.
        assert!(matches!(c.lookup(&specs[1], s.generation()), Lookup::Miss));
        assert!(matches!(
            c.lookup(&specs[0], s.generation()),
            Lookup::Fresh(_)
        ));
    }

    #[test]
    fn stale_lookup_claims_refresh_exactly_once() {
        let mut s = store(4);
        let q = spec(Algorithm::GreedySc, &[0], 15);
        let mut c = CoverCache::new();
        prime(&mut c, &s, &q);
        s.append(row(50, 100, &[5])).unwrap(); // footprint miss
        s.append(row(51, 110, &[0])).unwrap(); // footprint hit
                                               // Simulate a caller that applies deltas but drops the refresh
                                               // list (e.g. a full queue): the first stale lookup re-claims it.
        let _ = c.apply_delta(&[row(50, 100, &[5]), row(51, 110, &[0])], s.generation());
        c.refresh_not_queued(&q);
        let Lookup::Stale {
            enqueue_refresh, ..
        } = c.lookup(&q, s.generation())
        else {
            panic!("expected stale");
        };
        assert!(enqueue_refresh);
        let Lookup::Stale {
            enqueue_refresh, ..
        } = c.lookup(&q, s.generation())
        else {
            panic!("expected stale");
        };
        assert!(!enqueue_refresh, "second lookup must not double-queue");
    }

    #[test]
    fn install_refreshed_reports_continued_staleness() {
        let mut s = store(4);
        let q = spec(Algorithm::GreedySc, &[0], 15);
        let mut c = CoverCache::new();
        prime(&mut c, &s, &q);
        let r1 = row(10, 100, &[0]);
        s.append(r1.clone()).unwrap();
        let _ = c.apply_delta(std::slice::from_ref(&r1), s.generation());
        let refresh_gen = s.generation();
        let refreshed = run_query(&s, &q).unwrap();
        // The store moves again before the refresh lands.
        let r2 = row(11, 110, &[0]);
        s.append(r2.clone()).unwrap();
        let _ = c.apply_delta(std::slice::from_ref(&r2), s.generation());
        assert!(c.install_refreshed(&q, refreshed.clone(), refresh_gen, None));
        match c.lookup(&q, s.generation()) {
            Lookup::Stale {
                generation,
                records,
                ..
            } => {
                assert_eq!(generation, refresh_gen);
                assert_eq!(records, refreshed);
            }
            other => panic!("expected stale at the refresh watermark, got {other:?}"),
        }
    }
}
