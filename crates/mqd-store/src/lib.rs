//! In-memory, time-partitioned post store for the MQDP serving layer.
//!
//! The offline pipeline solves one TSV file and exits; a serving deployment
//! instead holds a growing corpus and answers many `(label set, lambda,
//! time range)` queries against slices of it. This crate provides the three
//! pieces that make that cheap:
//!
//! * [`Store`] — an append-only, time-partitioned store. Posts arrive in
//!   arrival order (monotone non-decreasing dimension value, the same
//!   contract as the streaming pipeline) and land in bounded-size
//!   *segments*, each with an inverted label → posting-list index, so a
//!   query touches only the segments and postings its labels and range
//!   intersect — never the full corpus.
//! * [`query`] — the canonical slice-and-solve path: carve a
//!   [`mqd_core::Instance`] out of the store for a `(labels, range)` pair
//!   and run one of the paper's solvers over it. Both the server and the
//!   oracle's loopback agreement check go through the exact same
//!   definitions, which is what makes "served answer == offline answer"
//!   a checkable byte-identity.
//! * [`CoverCache`] — a per-`(labels, lambda, algorithm, range)` answer
//!   cache maintained *incrementally*: each append is checked against every
//!   entry's (label, value-range) footprint; entries outside it revalidate
//!   untouched, fixed-lambda Scan entries inside it are repaired in place
//!   (byte-identical to a cold solve), and everything else goes stale —
//!   still servable at its watermark generation — until a background
//!   refresher re-solves it. See the [`cache`] module docs for the
//!   protocol.
//!
//! Like the rest of the workspace, this crate depends only on `std`.

#![warn(missing_docs)]

pub mod cache;
pub mod query;
mod store;

pub use cache::{CacheStats, CoverCache, Lookup, DEFAULT_DEBT_BOUND, DEFAULT_MAX_LAG};
pub use query::{
    repair_state, repairable, run_query, run_query_cover, run_query_with_repair, solve_slice,
    validate_spec, Algorithm, QuerySpec,
};
pub use store::{Slice, Store, StoreStats, SEGMENT_TARGET_ROWS};
