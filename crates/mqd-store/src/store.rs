//! The time-partitioned store: append-only segments with inverted indexes.

use std::collections::HashMap;

use mqd_core::record::Record;
use mqd_core::{Instance, LabelId, MqdError, Post, PostId};

/// Rows per segment before a new one is opened. Segments are partitioned by
/// row count, not by time span: counts bound memory and index size directly
/// and stay overflow-free for values near the `i64` extremes.
pub const SEGMENT_TARGET_ROWS: usize = 4096;

/// One bounded run of rows in arrival order, with its own inverted index.
struct Segment {
    /// Rows in arrival order; values are non-decreasing within a segment.
    rows: Vec<Record>,
    /// label -> indices into `rows`, ascending (arrival order).
    postings: HashMap<u16, Vec<u32>>,
    min_value: i64,
    max_value: i64,
}

impl Segment {
    fn new(first: Record) -> Self {
        let (min_value, max_value) = (first.value, first.value);
        let mut seg = Segment {
            rows: Vec::new(),
            postings: HashMap::new(),
            min_value,
            max_value,
        };
        seg.push(first);
        seg
    }

    fn push(&mut self, row: Record) {
        let idx = self.rows.len() as u32;
        for &l in &row.labels {
            self.postings.entry(l).or_default().push(idx);
        }
        self.min_value = self.min_value.min(row.value);
        self.max_value = self.max_value.max(row.value);
        self.rows.push(row);
    }
}

/// Counters reported by [`Store::stats`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StoreStats {
    /// Total rows ingested.
    pub rows: u64,
    /// Number of segments.
    pub segments: usize,
    /// Number of distinct labels seen across all rows.
    pub labels: usize,
    /// Generation counter; bumps on every append (cache invalidation key).
    pub generation: u64,
    /// Smallest dimension value in the store (`None` when empty).
    pub min_value: Option<i64>,
    /// Largest dimension value in the store (`None` when empty).
    pub max_value: Option<i64>,
}

/// A label/time-range slice of the store, ready to solve.
///
/// The slice defines the **canonical** mapping every serving answer is
/// judged against (the oracle's `server-agreement` invariant rebuilds it
/// independently):
///
/// * query labels are sorted and de-duplicated; their position in that
///   sorted list is the dense local [`LabelId`],
/// * a stored row joins the slice iff its value lies in `[from, to]` and it
///   carries at least one query label,
/// * each joining row becomes a [`Post`] with `PostId(row.id)`, the row's
///   value, and only the intersected labels (remapped to local ids) — so
///   the [`Instance`] sorts by `(value, external id)` and the tie-break is
///   reproducible from the raw rows alone.
pub struct Slice {
    /// The solver-ready instance over the slice.
    pub instance: Instance,
    /// Dense local label id -> global label (sorted query label list).
    pub label_map: Vec<u16>,
}

impl Slice {
    /// Maps a solver-selected post (index into `instance.posts()`) back to
    /// an external [`Record`]: external id, value, and the post's slice
    /// labels translated back to global label ids.
    pub fn record_for(&self, post: u32) -> Record {
        let p = self.instance.post(post);
        Record {
            id: p.id().0,
            value: p.value(),
            labels: p
                .labels()
                .iter()
                .map(|l| self.label_map[l.index()])
                .collect(),
        }
    }
}

/// Append-only, time-partitioned post store with inverted label indexes.
///
/// Ingest enforces the streaming contract: non-decreasing dimension values
/// ([`MqdError::NonMonotoneTimestamp`]) and at least one label per row
/// ([`MqdError::EmptyLabelSet`]). Every successful append bumps the
/// generation counter that [`crate::CoverCache`] keys invalidation on.
pub struct Store {
    segments: Vec<Segment>,
    segment_target: usize,
    total_rows: u64,
    label_counts: HashMap<u16, u64>,
    generation: u64,
    last_value: Option<i64>,
}

impl Store {
    /// An empty store with the default segment size.
    pub fn new() -> Self {
        Self::with_segment_target(SEGMENT_TARGET_ROWS)
    }

    /// An empty store whose segments roll over after `target` rows
    /// (test hook; serving uses [`SEGMENT_TARGET_ROWS`]).
    pub fn with_segment_target(target: usize) -> Self {
        Store {
            segments: Vec::new(),
            segment_target: target.max(1),
            total_rows: 0,
            label_counts: HashMap::new(),
            generation: 0,
            last_value: None,
        }
    }

    /// Appends one row. The row's labels are normalized (sorted, deduped)
    /// on the way in; `row` numbers in errors are 1-based ingest positions.
    pub fn append(&mut self, mut row: Record) -> Result<(), MqdError> {
        let row_no = self.total_rows as usize + 1;
        row.labels.sort_unstable();
        row.labels.dedup();
        if row.labels.is_empty() {
            return Err(MqdError::EmptyLabelSet { row: row_no });
        }
        if let Some(prev) = self.last_value {
            if row.value < prev {
                return Err(MqdError::NonMonotoneTimestamp {
                    row: row_no,
                    prev,
                    got: row.value,
                });
            }
        }
        self.last_value = Some(row.value);
        for &l in &row.labels {
            *self.label_counts.entry(l).or_insert(0) += 1;
        }
        match self.segments.last_mut() {
            Some(seg) if seg.rows.len() < self.segment_target => seg.push(row),
            _ => self.segments.push(Segment::new(row)),
        }
        self.total_rows += 1;
        self.generation += 1;
        Ok(())
    }

    /// Appends a batch; stops at the first invalid row (rows before it are
    /// kept — the batch is a stream prefix, not a transaction).
    pub fn append_batch(&mut self, rows: impl IntoIterator<Item = Record>) -> Result<(), MqdError> {
        for r in rows {
            self.append(r)?;
        }
        Ok(())
    }

    /// Validates `row` against the append contract *without* mutating the
    /// store, returning the normalized (sorted, deduped labels) record.
    /// The durable layer uses this to reject a row before it is written to
    /// the WAL — an invalid row must never be acked, logged, or replayed.
    pub fn check_append(&self, row: &Record) -> Result<Record, MqdError> {
        let row_no = self.total_rows as usize + 1;
        let mut labels = row.labels.clone();
        labels.sort_unstable();
        labels.dedup();
        if labels.is_empty() {
            return Err(MqdError::EmptyLabelSet { row: row_no });
        }
        if let Some(prev) = self.last_value {
            if row.value < prev {
                return Err(MqdError::NonMonotoneTimestamp {
                    row: row_no,
                    prev,
                    got: row.value,
                });
            }
        }
        Ok(Record {
            id: row.id,
            value: row.value,
            labels,
        })
    }

    /// Seeds the cumulative counters of an **empty** store before recovery
    /// replays a retained suffix of the ingest history: `rows` earlier rows
    /// existed once (and were GC'd), so row numbering, `rows`, and the
    /// generation counter continue exactly where the uninterrupted process
    /// left them. No-op on a non-empty store.
    pub fn set_origin(&mut self, rows: u64) {
        if self.segments.is_empty() && self.total_rows == 0 {
            self.total_rows = rows;
            self.generation = rows;
        }
    }

    /// Retention GC: drops the `n` oldest segments (the durable layer
    /// decides `n` from its sealed-window metadata and the live λ-window
    /// leases). Cumulative counters (`rows`, `generation`) are untouched —
    /// they count ingest history, not residency — but `labels` and the
    /// value span are recomputed from the retained rows, so a restarted
    /// process replaying only the retained suffix reports identical stats.
    /// The newest segment is never dropped. Returns the rows dropped.
    pub fn drop_leading_segments(&mut self, n: usize) -> u64 {
        let n = n.min(self.segments.len().saturating_sub(1));
        if n == 0 {
            return 0;
        }
        // lint:allow(panic-path): n is clamped to segments.len() - 1 above
        let dropped: u64 = self.segments[..n].iter().map(|s| s.rows.len() as u64).sum();
        self.segments.drain(..n);
        self.label_counts.clear();
        for seg in &self.segments {
            for row in &seg.rows {
                for &l in &row.labels {
                    *self.label_counts.entry(l).or_insert(0) += 1;
                }
            }
        }
        dropped
    }

    /// Rows per segment before a new one is opened.
    pub fn segment_target(&self) -> usize {
        self.segment_target
    }

    /// The newest ingested dimension value (`None` when nothing was ever
    /// appended since the origin). This is the retention clock's "now".
    pub fn last_value(&self) -> Option<i64> {
        self.last_value
    }

    /// Current generation; bumps on every append.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Store-wide counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            rows: self.total_rows,
            segments: self.segments.len(),
            labels: self.label_counts.len(),
            generation: self.generation,
            min_value: self.segments.first().map(|s| s.min_value),
            max_value: self.segments.last().map(|s| s.max_value),
        }
    }

    /// Carves the `(labels, [from, to])` slice out of the store (semantics
    /// documented on [`Slice`]). Only segments whose value span intersects
    /// the range are visited, and within a segment only the posting lists
    /// of the query labels — the full corpus is never scanned or copied.
    pub fn slice(&self, labels: &[u16], from: i64, to: i64) -> Slice {
        let mut label_map: Vec<u16> = labels.to_vec();
        label_map.sort_unstable();
        label_map.dedup();
        let local_of: HashMap<u16, u16> = label_map
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, i as u16))
            .collect();

        let mut posts = Vec::new();
        for seg in &self.segments {
            if seg.min_value > to || seg.max_value < from {
                continue;
            }
            // Union the candidate rows across the query labels' postings.
            let mut candidates: Vec<u32> = label_map
                .iter()
                .filter_map(|l| seg.postings.get(l))
                .flatten()
                .copied()
                .collect();
            candidates.sort_unstable();
            candidates.dedup();
            for idx in candidates {
                let row = &seg.rows[idx as usize];
                if row.value < from || row.value > to {
                    continue;
                }
                let locals: Vec<LabelId> = row
                    .labels
                    .iter()
                    .filter_map(|l| local_of.get(l).map(|&i| LabelId(i)))
                    .collect();
                posts.push(Post::new(PostId(row.id), row.value, locals));
            }
        }
        let instance = Instance::from_posts(posts, label_map.len())
            // lint:allow(panic-path): label_map assigns ids 0..len in this function, so density holds by construction
            .expect("local labels are dense by construction");
        Slice {
            instance,
            label_map,
        }
    }
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: u64, value: i64, labels: &[u16]) -> Record {
        Record {
            id,
            value,
            labels: labels.to_vec(),
        }
    }

    #[test]
    fn append_validates_the_stream_contract() {
        let mut s = Store::new();
        s.append(row(1, 10, &[0])).unwrap();
        assert_eq!(
            s.append(row(2, 10, &[])).unwrap_err(),
            MqdError::EmptyLabelSet { row: 2 }
        );
        assert_eq!(
            s.append(row(2, 5, &[0])).unwrap_err(),
            MqdError::NonMonotoneTimestamp {
                row: 2,
                prev: 10,
                got: 5
            }
        );
        s.append(row(2, 10, &[1, 1, 0])).unwrap(); // ties ok, labels deduped
        assert_eq!(s.stats().rows, 2);
        assert_eq!(s.stats().labels, 2);
    }

    #[test]
    fn generation_bumps_only_on_successful_append() {
        let mut s = Store::new();
        assert_eq!(s.generation(), 0);
        s.append(row(1, 10, &[0])).unwrap();
        assert_eq!(s.generation(), 1);
        let _ = s.append(row(2, 0, &[0])); // rejected: non-monotone
        assert_eq!(s.generation(), 1);
    }

    #[test]
    fn segments_roll_over_by_count() {
        let mut s = Store::with_segment_target(2);
        for i in 0..5 {
            s.append(row(i, i as i64, &[0])).unwrap();
        }
        let st = s.stats();
        assert_eq!(st.segments, 3);
        assert_eq!(st.min_value, Some(0));
        assert_eq!(st.max_value, Some(4));
    }

    #[test]
    fn slice_intersects_labels_and_range() {
        let mut s = Store::with_segment_target(2);
        s.append(row(1, 10, &[0, 2])).unwrap();
        s.append(row(2, 20, &[1])).unwrap();
        s.append(row(3, 30, &[0])).unwrap();
        s.append(row(4, 40, &[2])).unwrap();

        // Labels {0, 2} over [10, 30]: rows 1 (labels 0,2) and 3 (label 0).
        let sl = s.slice(&[2, 0, 0], 10, 30);
        assert_eq!(sl.label_map, vec![0, 2]);
        assert_eq!(sl.instance.len(), 2);
        assert_eq!(sl.instance.num_labels(), 2);
        let r0 = sl.record_for(0);
        assert_eq!((r0.id, r0.value, r0.labels.clone()), (1, 10, vec![0, 2]));
        let r1 = sl.record_for(1);
        assert_eq!((r1.id, r1.value, r1.labels.clone()), (3, 30, vec![0]));
    }

    #[test]
    fn slice_skips_non_overlapping_segments() {
        let mut s = Store::with_segment_target(1);
        for i in 0..10 {
            s.append(row(i, i as i64 * 100, &[0])).unwrap();
        }
        let sl = s.slice(&[0], 250, 450);
        let ids: Vec<u64> = (0..sl.instance.len() as u32)
            .map(|i| sl.record_for(i).id)
            .collect();
        assert_eq!(ids, vec![3, 4]);
    }

    #[test]
    fn slice_handles_extreme_values() {
        let mut s = Store::new();
        s.append(row(1, i64::MIN, &[0])).unwrap();
        s.append(row(2, i64::MAX, &[0])).unwrap();
        let sl = s.slice(&[0], i64::MIN, i64::MAX);
        assert_eq!(sl.instance.len(), 2);
        let empty = s.slice(&[1], i64::MIN, i64::MAX);
        assert_eq!(empty.instance.len(), 0);
    }

    #[test]
    fn empty_store_slices_to_empty_instance() {
        let s = Store::new();
        let sl = s.slice(&[0, 1], 0, 100);
        assert!(sl.instance.is_empty());
        assert_eq!(sl.instance.num_labels(), 2);
        assert_eq!(s.stats().min_value, None);
    }
}
