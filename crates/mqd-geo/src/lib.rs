//! Spatiotemporal Multi-Query Diversification — the extension named in the
//! paper's Section 9 ("extend to the spatiotemporal space, where the
//! selected posts need to cover both the time and geospatial dimension").
//!
//! Coverage requires a shared label **and** proximity on both axes:
//! `|Δtime| <= lambda.time` and planar `dist <= lambda.dist`. The problem
//! strictly generalizes MQDP (collapse all locations to one point), so it
//! stays NP-hard; this crate ships a greedy set-cover solver with the
//! standard logarithmic bound, a per-label time-sweep heuristic, a
//! branch-and-bound oracle, a uniform-grid spatial index, and a seeded
//! hotspot stream generator. The `ext_geo` experiment in `mqd-bench`
//! measures the greedy/sweep trade-off.

#![warn(missing_docs)]

pub mod algorithms;
pub mod gen;
pub mod grid;
pub mod instance;
pub mod point;

pub use algorithms::{solve_geo_brute, solve_geo_greedy, solve_geo_sweep};
pub use gen::{generate_geo_posts, GeoStreamConfig};
pub use grid::SpatialGrid;
pub use instance::GeoInstance;
pub use point::{GeoLambda, GeoPost};
