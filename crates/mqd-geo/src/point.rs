//! Geotagged posts: the paper's Section 9 extension where the selected
//! posts must cover both the time and the geospatial dimension.

use mqd_core::{LabelId, PostId};

/// A geotagged microblogging post: timestamp plus planar coordinates
/// (fixed-point meters — e.g. a local projection of lat/lon), and the
/// matched label set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GeoPost {
    id: PostId,
    time: i64,
    x: i64,
    y: i64,
    labels: Vec<LabelId>,
}

impl GeoPost {
    /// Creates a post; labels are sorted and de-duplicated.
    pub fn new(id: PostId, time: i64, x: i64, y: i64, mut labels: Vec<LabelId>) -> Self {
        labels.sort_unstable();
        labels.dedup();
        GeoPost {
            id,
            time,
            x,
            y,
            labels,
        }
    }

    /// External id.
    #[inline]
    pub fn id(&self) -> PostId {
        self.id
    }

    /// Timestamp (ms).
    #[inline]
    pub fn time(&self) -> i64 {
        self.time
    }

    /// X coordinate (fixed-point meters).
    #[inline]
    pub fn x(&self) -> i64 {
        self.x
    }

    /// Y coordinate (fixed-point meters).
    #[inline]
    pub fn y(&self) -> i64 {
        self.y
    }

    /// Sorted label set.
    #[inline]
    pub fn labels(&self) -> &[LabelId] {
        &self.labels
    }

    /// Whether the post matches label `a`.
    #[inline]
    pub fn has_label(&self, a: LabelId) -> bool {
        self.labels.binary_search(&a).is_ok()
    }

    /// Squared planar distance to another post (saturating).
    pub fn dist2(&self, other: &GeoPost) -> i128 {
        let dx = (self.x - other.x) as i128;
        let dy = (self.y - other.y) as i128;
        dx * dx + dy * dy
    }
}

/// The two-threshold coverage radius of the spatiotemporal problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GeoLambda {
    /// Temporal threshold (ms).
    pub time: i64,
    /// Spatial threshold (fixed-point meters).
    pub dist: i64,
}

impl GeoLambda {
    /// Creates thresholds; both must be non-negative.
    pub fn new(time: i64, dist: i64) -> Self {
        assert!(time >= 0 && dist >= 0, "thresholds must be non-negative");
        GeoLambda { time, dist }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes_labels() {
        let p = GeoPost::new(
            PostId(1),
            5,
            10,
            20,
            vec![LabelId(2), LabelId(0), LabelId(2)],
        );
        assert_eq!(p.labels(), &[LabelId(0), LabelId(2)]);
        assert!(p.has_label(LabelId(0)));
        assert!(!p.has_label(LabelId(1)));
    }

    #[test]
    fn squared_distance() {
        let a = GeoPost::new(PostId(0), 0, 0, 0, vec![LabelId(0)]);
        let b = GeoPost::new(PostId(1), 0, 3, 4, vec![LabelId(0)]);
        assert_eq!(a.dist2(&b), 25);
        assert_eq!(b.dist2(&a), 25);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_lambda_rejected() {
        GeoLambda::new(-1, 0);
    }
}
