//! Spatiotemporal MQDP instances.
//!
//! Coverage (the natural extension of Definition 1): `P_j` covers
//! `a ∈ P_i` iff both carry `a`, `|time(P_i) - time(P_j)| <= lambda.time`
//! **and** `dist(P_i, P_j) <= lambda.dist`. A set covers the instance when
//! every label occurrence of every post is covered.

use mqd_core::LabelId;

use crate::grid::SpatialGrid;
use crate::point::{GeoLambda, GeoPost};

/// A preprocessed spatiotemporal instance: posts sorted by time, per-label
/// postings, per-label spatial grids, dense pair ids.
#[derive(Debug)]
pub struct GeoInstance {
    posts: Vec<GeoPost>,
    postings: Vec<Vec<u32>>,
    grids: Vec<SpatialGrid>,
    pair_offsets: Vec<u32>,
    num_pairs: usize,
    lambda: GeoLambda,
}

impl GeoInstance {
    /// Builds an instance. Posts with empty label sets are dropped; labels
    /// must be `< num_labels`. The spatial grids use `lambda.dist` as cell
    /// side (minimum 1).
    pub fn new(mut posts: Vec<GeoPost>, num_labels: usize, lambda: GeoLambda) -> Self {
        posts.retain(|p| !p.labels().is_empty());
        posts.sort_by_key(|p| (p.time(), p.id()));
        for p in &posts {
            for l in p.labels() {
                assert!(
                    l.index() < num_labels,
                    "label {l} out of range (num_labels {num_labels})"
                );
            }
        }
        let mut postings = vec![Vec::new(); num_labels];
        let mut pair_offsets = Vec::with_capacity(posts.len() + 1);
        let mut num_pairs = 0u32;
        for (i, p) in posts.iter().enumerate() {
            pair_offsets.push(num_pairs);
            for &l in p.labels() {
                postings[l.index()].push(i as u32);
            }
            num_pairs += p.labels().len() as u32;
        }
        pair_offsets.push(num_pairs);

        let cell = lambda.dist.max(1);
        let grids = postings
            .iter()
            .map(|lp| {
                SpatialGrid::build(
                    cell,
                    lp.iter()
                        .map(|&i| (posts[i as usize].x(), posts[i as usize].y())),
                )
            })
            .collect();

        GeoInstance {
            posts,
            postings,
            grids,
            pair_offsets,
            num_pairs: num_pairs as usize,
            lambda,
        }
    }

    /// Number of posts.
    #[inline]
    pub fn len(&self) -> usize {
        self.posts.len()
    }

    /// Whether there are no posts.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.posts.is_empty()
    }

    /// Number of labels.
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.postings.len()
    }

    /// The thresholds.
    #[inline]
    pub fn lambda(&self) -> GeoLambda {
        self.lambda
    }

    /// The post at sorted index `i`.
    #[inline]
    pub fn post(&self, i: u32) -> &GeoPost {
        &self.posts[i as usize]
    }

    /// All posts, time-sorted.
    #[inline]
    pub fn posts(&self) -> &[GeoPost] {
        &self.posts
    }

    /// `LP(a)`, time-sorted post indices.
    #[inline]
    pub fn postings(&self, a: LabelId) -> &[u32] {
        &self.postings[a.index()]
    }

    /// Total `(post, label)` occurrences.
    #[inline]
    pub fn num_pairs(&self) -> usize {
        self.num_pairs
    }

    /// Dense id of pair `(post, a)`, if the post carries `a`.
    #[inline]
    pub fn pair_id(&self, post: u32, a: LabelId) -> Option<u32> {
        self.posts[post as usize]
            .labels()
            .binary_search(&a)
            .ok()
            .map(|slot| self.pair_offsets[post as usize] + slot as u32)
    }

    /// Whether `coverer` covers `a ∈ covered` under both thresholds.
    pub fn covers(&self, coverer: u32, covered: u32, a: LabelId) -> bool {
        let cz = &self.posts[coverer as usize];
        let cp = &self.posts[covered as usize];
        cz.has_label(a)
            && cp.has_label(a)
            && (cz.time() as i128 - cp.time() as i128).abs() <= self.lambda.time as i128
            && cz.dist2(cp) <= (self.lambda.dist as i128) * (self.lambda.dist as i128)
    }

    /// Indices (into `postings(a)`) of candidates that might interact with
    /// post `i` on label `a`: same-label posts inside the time window whose
    /// grid cell neighbours `i`'s. A superset of the true coverage set —
    /// callers still check [`GeoInstance::covers`].
    pub fn candidates(&self, i: u32, a: LabelId) -> Vec<u32> {
        let p = &self.posts[i as usize];
        let lp = &self.postings[a.index()];
        let lo = lp.partition_point(|&j| {
            self.posts[j as usize].time() < p.time().saturating_sub(self.lambda.time)
        });
        let hi = lp.partition_point(|&j| {
            self.posts[j as usize].time() <= p.time().saturating_add(self.lambda.time)
        });
        let window = hi - lo;
        // Choose the cheaper enumeration: the time window or the spatial
        // neighbourhood.
        let spatial: Vec<u32> = self.grids[a.index()].neighbourhood(p.x(), p.y()).collect();
        if spatial.len() < window {
            spatial
                .into_iter()
                .map(|pos| lp[pos as usize])
                .filter(|&j| {
                    (self.posts[j as usize].time() as i128 - p.time() as i128).abs()
                        <= self.lambda.time as i128
                })
                .collect()
        } else {
            lp[lo..hi].to_vec()
        }
    }

    /// Every uncovered `(post index, label)` pair for a candidate solution
    /// (empty = valid cover).
    pub fn violations(&self, selected: &[u32]) -> Vec<(u32, LabelId)> {
        let mut sel: Vec<u32> = selected.to_vec();
        sel.sort_unstable();
        sel.dedup();
        let mut out = Vec::new();
        for a_idx in 0..self.num_labels() {
            let a = LabelId(a_idx as u16);
            for &i in self.postings(a) {
                let ok = sel.iter().any(|&z| self.covers(z, i, a));
                if !ok {
                    out.push((i, a));
                }
            }
        }
        out
    }

    /// Whether `selected` covers the instance.
    pub fn is_cover(&self, selected: &[u32]) -> bool {
        self.violations(selected).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqd_core::PostId;

    fn post(id: u64, t: i64, x: i64, y: i64, labels: &[u16]) -> GeoPost {
        GeoPost::new(
            PostId(id),
            t,
            x,
            y,
            labels.iter().map(|&l| LabelId(l)).collect(),
        )
    }

    fn small() -> GeoInstance {
        GeoInstance::new(
            vec![
                post(0, 0, 0, 0, &[0]),
                post(1, 5, 10, 0, &[0]),
                post(2, 5, 1000, 0, &[0]), // same time, far away
                post(3, 100, 0, 0, &[1]),
            ],
            2,
            GeoLambda::new(10, 50),
        )
    }

    #[test]
    fn coverage_needs_both_dimensions() {
        let g = small();
        assert!(g.covers(1, 0, LabelId(0))); // close in both
        assert!(!g.covers(2, 0, LabelId(0))); // close in time, far in space
        assert!(!g.covers(3, 0, LabelId(0))); // different label
        assert!(!g.covers(3, 0, LabelId(1))); // post 0 lacks label 1
    }

    #[test]
    fn violations_and_cover() {
        let g = small();
        assert!(!g.is_cover(&[1])); // far post 2 and label-1 post uncovered
        assert!(g.is_cover(&[1, 2, 3]));
        let v = g.violations(&[1]);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn pair_ids_dense() {
        let g = small();
        assert_eq!(g.num_pairs(), 4);
        let mut seen = [false; 4];
        for i in 0..g.len() as u32 {
            for &a in g.post(i).labels().to_vec().iter() {
                let id = g.pair_id(i, a).unwrap() as usize;
                assert!(!seen[id]);
                seen[id] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn candidates_superset_of_coverers() {
        let g = small();
        for i in 0..g.len() as u32 {
            for &a in g.post(i).labels().to_vec().iter() {
                let cands = g.candidates(i, a);
                for j in 0..g.len() as u32 {
                    if g.covers(j, i, a) {
                        assert!(cands.contains(&j), "candidate set missed a coverer");
                    }
                }
            }
        }
    }
}
