//! Solvers for spatiotemporal MQDP.
//!
//! The problem generalizes MQDP (it reduces to it when all posts share one
//! location), so it is NP-hard too and we keep the same toolbox:
//!
//! * [`solve_geo_greedy`] — lazy-evaluation greedy set cover with gains
//!   enumerated on demand through the time-window/grid candidate index;
//!   inherits the `ln(universe)` bound.
//! * [`solve_geo_sweep`] — the Scan analogue: per label, sweep by time and
//!   repeatedly pick the coverer of the earliest uncovered occurrence with
//!   the furthest *time* reach. Unlike the 1-D case this is a heuristic,
//!   not per-label optimal: spatial freedom means interval greedy no longer
//!   dominates (documented, and measured in the `ext_geo` experiment).
//! * [`solve_geo_brute`] — branch-and-bound oracle for tests.

use mqd_core::{LabelId, Solution};
use mqd_setcover::BitSet;

use crate::instance::GeoInstance;

/// Greedy set cover over the spatiotemporal coverage sets (lazy heap).
pub fn solve_geo_greedy(inst: &GeoInstance) -> Solution {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let mut covered = BitSet::new(inst.num_pairs());
    let gain = |k: u32, covered: &BitSet| -> u32 {
        let mut g = 0u32;
        for &a in inst.post(k).labels() {
            for j in inst.candidates(k, a) {
                if inst.covers(k, j, a) {
                    let id = inst.pair_id(j, a).expect("candidate carries label");
                    if !covered.get(id) {
                        g += 1;
                    }
                }
            }
        }
        g
    };
    let cover_by = |k: u32, covered: &mut BitSet| {
        for &a in inst.post(k).labels() {
            for j in inst.candidates(k, a) {
                if inst.covers(k, j, a) {
                    let id = inst.pair_id(j, a).expect("candidate carries label");
                    covered.set(id);
                }
            }
        }
    };

    let mut heap: BinaryHeap<(u32, Reverse<u32>)> = (0..inst.len() as u32)
        .map(|k| (gain(k, &covered), Reverse(k)))
        .collect();
    let mut selected = Vec::new();
    while covered.count_ones() < inst.num_pairs() {
        let Some((stale, Reverse(k))) = heap.pop() else {
            break;
        };
        if stale == 0 {
            break;
        }
        let fresh = gain(k, &covered);
        if fresh < stale {
            if fresh > 0 {
                heap.push((fresh, Reverse(k)));
            }
            continue;
        }
        selected.push(k);
        cover_by(k, &mut covered);
    }
    Solution::new("GeoGreedy", selected)
}

/// Per-label time sweep (Scan analogue; heuristic in 2-D).
pub fn solve_geo_sweep(inst: &GeoInstance) -> Solution {
    let mut selected = Vec::new();
    for a_idx in 0..inst.num_labels() {
        let a = LabelId(a_idx as u16);
        let lp = inst.postings(a);
        let mut covered = vec![false; lp.len()];
        let mut j = 0usize;
        while j < lp.len() {
            if covered[j] {
                j += 1;
                continue;
            }
            let left = lp[j];
            // Among coverers of `left`, take the one reaching furthest in
            // time (ties: latest post index).
            let mut best: Option<(i64, u32)> = None;
            for z in inst.candidates(left, a) {
                if inst.covers(z, left, a) {
                    let reach = inst.post(z).time().saturating_add(inst.lambda().time);
                    if best.is_none_or(|(r, bz)| reach > r || (reach == r && z > bz)) {
                        best = Some((reach, z));
                    }
                }
            }
            let (_, z) = best.expect("a post covers itself");
            selected.push(z);
            // Mark what z covers within this label; the sweep pointer only
            // advances past *covered* posts, so spatial misses are revisited.
            for (pos, &p) in lp.iter().enumerate().skip(j) {
                if inst.post(p).time() > inst.post(z).time().saturating_add(inst.lambda().time) {
                    break;
                }
                if !covered[pos] && inst.covers(z, p, a) {
                    covered[pos] = true;
                }
            }
            while j < lp.len() && covered[j] {
                j += 1;
            }
        }
    }
    Solution::new("GeoSweep", selected)
}

/// Exact minimum cover by branch and bound (test oracle; caps at
/// `max_posts`, default 48).
pub fn solve_geo_brute(inst: &GeoInstance, max_posts: Option<usize>) -> Option<Solution> {
    let limit = max_posts.unwrap_or(48);
    if inst.len() > limit {
        return None;
    }
    // covers[k] = pair ids covered by picking k; coverers[e] = posts
    // covering pair e.
    let covers: Vec<Vec<u32>> = (0..inst.len() as u32)
        .map(|k| {
            let mut v = Vec::new();
            for &a in inst.post(k).labels() {
                for j in inst.candidates(k, a) {
                    if inst.covers(k, j, a) {
                        v.push(inst.pair_id(j, a).expect("candidate carries label"));
                    }
                }
            }
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    let mut coverers: Vec<Vec<u32>> = vec![Vec::new(); inst.num_pairs()];
    for (k, pairs) in covers.iter().enumerate() {
        for &e in pairs {
            coverers[e as usize].push(k as u32);
        }
    }
    let max_set = covers.iter().map(|s| s.len()).max().unwrap_or(1).max(1);

    struct Ctx<'a> {
        covers: &'a [Vec<u32>],
        coverers: &'a [Vec<u32>],
        max_set: usize,
        best: Vec<u32>,
        best_size: usize,
    }
    fn search(ctx: &mut Ctx<'_>, covered: &BitSet, stack: &mut Vec<u32>) {
        let uncovered = covered.len() - covered.count_ones();
        if uncovered == 0 {
            if stack.len() < ctx.best_size {
                ctx.best_size = stack.len();
                ctx.best = stack.clone();
            }
            return;
        }
        if stack.len() + uncovered.div_ceil(ctx.max_set) >= ctx.best_size {
            return;
        }
        let e = covered
            .iter_zeros()
            .min_by_key(|&e| ctx.coverers[e as usize].len())
            .expect("uncovered > 0");
        let mut options: Vec<(usize, u32)> = ctx.coverers[e as usize]
            .iter()
            .map(|&k| {
                (
                    ctx.covers[k as usize]
                        .iter()
                        .filter(|&&p| !covered.get(p))
                        .count(),
                    k,
                )
            })
            .collect();
        options.sort_by(|a, b| b.cmp(a));
        for (_, k) in options {
            let mut next = covered.clone();
            for &p in &ctx.covers[k as usize] {
                next.set(p);
            }
            stack.push(k);
            search(ctx, &next, stack);
            stack.pop();
        }
    }

    let mut ctx = Ctx {
        covers: &covers,
        coverers: &coverers,
        max_set,
        best: (0..inst.len() as u32).collect(),
        best_size: inst.len() + 1,
    };
    search(&mut ctx, &BitSet::new(inst.num_pairs()), &mut Vec::new());
    Some(Solution::new("GeoBrute", ctx.best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{GeoLambda, GeoPost};
    use mqd_core::PostId;

    fn post(id: u64, t: i64, x: i64, y: i64, labels: &[u16]) -> GeoPost {
        GeoPost::new(
            PostId(id),
            t,
            x,
            y,
            labels.iter().map(|&l| LabelId(l)).collect(),
        )
    }

    fn hotspots() -> GeoInstance {
        // Two spatial hotspots reporting the same topic simultaneously:
        // time-only diversification would merge them; spatiotemporal must
        // keep one representative per hotspot.
        GeoInstance::new(
            vec![
                post(0, 0, 0, 0, &[0]),
                post(1, 1, 5, 5, &[0]),
                post(2, 2, 10_000, 0, &[0]),
                post(3, 3, 10_005, 5, &[0]),
            ],
            1,
            GeoLambda::new(100, 50),
        )
    }

    #[test]
    fn hotspots_need_two_representatives() {
        let g = hotspots();
        for sol in [
            solve_geo_greedy(&g),
            solve_geo_sweep(&g),
            solve_geo_brute(&g, None).unwrap(),
        ] {
            assert!(g.is_cover(&sol.selected), "{} non-cover", sol.algorithm);
            assert_eq!(sol.size(), 2, "{} size", sol.algorithm);
        }
    }

    #[test]
    fn degenerates_to_time_mqdp_when_colocated() {
        // All posts at one location: greedy must match the 1-D optimum.
        let g = GeoInstance::new(
            (0..10).map(|t| post(t, t as i64, 0, 0, &[0])).collect(),
            1,
            GeoLambda::new(2, 1),
        );
        let brute = solve_geo_brute(&g, None).unwrap();
        assert_eq!(brute.size(), 2); // same as the 1-D line test in mqd-core
        let sweep = solve_geo_sweep(&g);
        assert!(g.is_cover(&sweep.selected));
        assert_eq!(sweep.size(), 2);
    }

    #[test]
    fn greedy_and_sweep_bounded_by_brute_on_random() {
        use mqd_rng::rngs::StdRng;
        use mqd_rng::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..15 {
            let n = rng.random_range(4..12);
            let posts: Vec<GeoPost> = (0..n)
                .map(|i| {
                    post(
                        i,
                        rng.random_range(0..100),
                        rng.random_range(0..200),
                        rng.random_range(0..200),
                        &[rng.random_range(0..2) as u16],
                    )
                })
                .collect();
            let g = GeoInstance::new(posts, 2, GeoLambda::new(30, 60));
            let brute = solve_geo_brute(&g, None).unwrap();
            let greedy = solve_geo_greedy(&g);
            let sweep = solve_geo_sweep(&g);
            assert!(g.is_cover(&brute.selected));
            assert!(g.is_cover(&greedy.selected), "greedy non-cover");
            assert!(g.is_cover(&sweep.selected), "sweep non-cover");
            assert!(greedy.size() >= brute.size());
            assert!(sweep.size() >= brute.size());
        }
    }

    #[test]
    fn empty_instance() {
        let g = GeoInstance::new(Vec::new(), 1, GeoLambda::new(1, 1));
        assert_eq!(solve_geo_greedy(&g).size(), 0);
        assert_eq!(solve_geo_sweep(&g).size(), 0);
        assert_eq!(solve_geo_brute(&g, None).unwrap().size(), 0);
    }

    #[test]
    fn oversized_brute_returns_none() {
        let g = GeoInstance::new(
            (0..10).map(|t| post(t, t as i64, 0, 0, &[0])).collect(),
            1,
            GeoLambda::new(2, 1),
        );
        assert!(solve_geo_brute(&g, Some(5)).is_none());
    }
}
