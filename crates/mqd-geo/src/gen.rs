//! Seeded generator for geotagged post streams: events unfold at spatial
//! hotspots (e.g. neighbourhoods of a city), each emitting posts over a
//! time span — the workload the paper's Section 9 extension targets
//! ("increasingly, more posts are geotagged").

use mqd_rng::rngs::StdRng;
use mqd_rng::{RngExt, SeedableRng};

use mqd_core::{LabelId, PostId};

use crate::point::GeoPost;

/// Geo-stream parameters.
#[derive(Clone, Copy, Debug)]
pub struct GeoStreamConfig {
    /// Number of labels (topics).
    pub num_labels: usize,
    /// Number of spatial hotspots.
    pub hotspots: usize,
    /// Side of the square world (fixed-point meters).
    pub world_size: i64,
    /// Standard deviation of post scatter around a hotspot.
    pub spread: i64,
    /// Total posts.
    pub posts: usize,
    /// Stream duration (ms).
    pub duration_ms: i64,
    /// Probability a post carries a second label.
    pub second_label_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeoStreamConfig {
    fn default() -> Self {
        GeoStreamConfig {
            num_labels: 3,
            hotspots: 4,
            world_size: 20_000,
            spread: 300,
            posts: 500,
            duration_ms: 3_600_000,
            second_label_prob: 0.2,
            seed: 1,
        }
    }
}

/// Generates a geotagged stream: each post picks a hotspot, scatters
/// around it (Box–Muller gaussian), and lands uniformly in time.
pub fn generate_geo_posts(cfg: &GeoStreamConfig) -> Vec<GeoPost> {
    assert!(cfg.num_labels > 0 && cfg.hotspots > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let centers: Vec<(i64, i64)> = (0..cfg.hotspots)
        .map(|_| {
            (
                rng.random_range(0..cfg.world_size),
                rng.random_range(0..cfg.world_size),
            )
        })
        .collect();
    let gauss = move |rng: &mut StdRng| -> f64 {
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };

    let mut posts: Vec<GeoPost> = (0..cfg.posts)
        .map(|i| {
            let (cx, cy) = centers[rng.random_range(0..centers.len())];
            let x = cx + (gauss(&mut rng) * cfg.spread as f64) as i64;
            let y = cy + (gauss(&mut rng) * cfg.spread as f64) as i64;
            let t = rng.random_range(0..cfg.duration_ms.max(1));
            let mut labels = vec![LabelId(rng.random_range(0..cfg.num_labels) as u16)];
            if rng.random::<f64>() < cfg.second_label_prob {
                labels.push(LabelId(rng.random_range(0..cfg.num_labels) as u16));
            }
            GeoPost::new(PostId(i as u64), t, x, y, labels)
        })
        .collect();
    posts.sort_by_key(|p| (p.time(), p.id()));
    posts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_in_bounds() {
        let cfg = GeoStreamConfig::default();
        let posts = generate_geo_posts(&cfg);
        assert_eq!(posts.len(), cfg.posts);
        for p in &posts {
            assert!((0..cfg.duration_ms).contains(&p.time()));
            assert!(!p.labels().is_empty());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = GeoStreamConfig::default();
        let a = generate_geo_posts(&cfg);
        let b = generate_geo_posts(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn posts_cluster_near_hotspots() {
        let cfg = GeoStreamConfig {
            hotspots: 2,
            spread: 100,
            posts: 400,
            ..Default::default()
        };
        let posts = generate_geo_posts(&cfg);
        // Median nearest-neighbour distance should be far below the world
        // size if clustering works.
        let mut nn: Vec<i128> = posts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                posts
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, q)| p.dist2(q))
                    .min()
                    .unwrap()
            })
            .collect();
        nn.sort_unstable();
        let median = nn[nn.len() / 2];
        let world = cfg.world_size as i128;
        assert!(median < (world / 10) * (world / 10), "median nn^2 {median}");
    }
}
