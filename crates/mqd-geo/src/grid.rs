//! Uniform spatial grid index: candidate lookup for the spatiotemporal
//! coverage window. Cell side = the spatial threshold, so any post within
//! `lambda.dist` of a query point lies in the 3×3 cell neighbourhood.

use std::collections::HashMap;

/// Grid over post positions; stores post indices per cell.
#[derive(Debug)]
pub struct SpatialGrid {
    cell: i64,
    cells: HashMap<(i64, i64), Vec<u32>>,
}

impl SpatialGrid {
    /// Builds a grid with cell side `cell` (must be positive) from
    /// `(x, y)` positions; index `i` of the iterator becomes post id `i`.
    pub fn build(cell: i64, positions: impl IntoIterator<Item = (i64, i64)>) -> Self {
        assert!(cell > 0, "cell side must be positive");
        let mut cells: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
        for (i, (x, y)) in positions.into_iter().enumerate() {
            cells
                .entry((x.div_euclid(cell), y.div_euclid(cell)))
                .or_default()
                .push(i as u32);
        }
        SpatialGrid { cell, cells }
    }

    /// Post indices in the 3×3 neighbourhood of `(x, y)` — a superset of
    /// everything within one cell side of the point.
    pub fn neighbourhood(&self, x: i64, y: i64) -> impl Iterator<Item = u32> + '_ {
        let cx = x.div_euclid(self.cell);
        let cy = y.div_euclid(self.cell);
        (-1..=1).flat_map(move |dx| {
            (-1..=1).flat_map(move |dy| {
                self.cells
                    .get(&(cx + dx, cy + dy))
                    .map_or(&[][..], |v| v.as_slice())
                    .iter()
                    .copied()
            })
        })
    }

    /// Number of non-empty cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbourhood_contains_all_within_radius() {
        let pts = vec![
            (0, 0),
            (50, 50),
            (99, 0),
            (150, 150),
            (-30, -30),
            (500, 500),
        ];
        let g = SpatialGrid::build(100, pts.clone());
        let near: Vec<u32> = {
            let mut v: Vec<u32> = g.neighbourhood(10, 10).collect();
            v.sort_unstable();
            v
        };
        // Everything within 100 of (10,10) must appear.
        for (i, &(x, y)) in pts.iter().enumerate() {
            let d2 = (x - 10) * (x - 10) + (y - 10) * (y - 10);
            if d2 <= 100 * 100 {
                assert!(near.contains(&(i as u32)), "missing point {i}");
            }
        }
        // The far point must not.
        assert!(!near.contains(&5));
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        let g = SpatialGrid::build(10, vec![(-1, -1), (-11, -11)]);
        assert_eq!(g.num_cells(), 2);
        let n: Vec<u32> = g.neighbourhood(-1, -1).collect();
        assert!(n.contains(&0));
        assert!(n.contains(&1)); // adjacent cell
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_rejected() {
        SpatialGrid::build(0, vec![(0, 0)]);
    }
}
