//! SLO evidence artifacts: `BENCH_load_<scenario>.json`.
//!
//! Every run — live or simulated — funnels into one [`RunOutcome`] and is
//! rendered by [`render_report`] with byte-stable formatting (integers and
//! fixed-precision floats only, keys in a pinned order): a simulated run
//! is byte-identical for a seed, and a live run's plan block (digest, op
//! mix, offered rate) is, so any report names the exact schedule that
//! produced it. The SLO verdict is embedded in the artifact — the
//! evidence-file discipline: the claim, the numbers, and the replay
//! coordinates travel together.

use crate::hist::Hist;
use crate::plan::Plan;

/// Typed response tallies for the paced ops.
#[derive(Clone, Default, Debug)]
pub struct Counts {
    /// `+OK` responses.
    pub ok: u64,
    /// `-ERR` responses other than timeouts (protocol/server faults).
    pub errors: u64,
    /// Typed `-OVERLOADED` admission rejections.
    pub overloads: u64,
    /// Typed `-ERR Timeout` responses (idle/body deadline enforced).
    pub timeouts: u64,
    /// Ops with no response inside the runner's patience (or never sent
    /// because the lane's connection failed).
    pub dropped: u64,
}

impl Counts {
    /// Every op accounted for, across all outcomes.
    pub fn total(&self) -> u64 {
        self.ok + self.errors + self.overloads + self.timeouts + self.dropped
    }
}

/// What became of the slow-connection fleet.
#[derive(Clone, Default, Debug)]
pub struct SlowOutcome {
    /// Connections that reached the server.
    pub opened: u64,
    /// Ended with a typed `-ERR`/`-OVERLOADED` response.
    pub typed_rejected: u64,
    /// Server closed the socket without a readable typed response.
    pub server_closed: u64,
    /// Still parked on a worker when the run ended — the starvation case
    /// the slowloris SLO forbids.
    pub unresolved: u64,
}

/// Aggregated result of executing a [`Plan`].
#[derive(Clone)]
pub struct RunOutcome {
    /// `"live"` or `"sim"`.
    pub mode: &'static str,
    /// Latency of every responded op, µs from the *scheduled* deadline.
    pub all_hist: Hist,
    /// Latency of query ops only.
    pub query_hist: Hist,
    /// Response tallies.
    pub counts: Counts,
    /// Slow-connection fleet outcome.
    pub slow: SlowOutcome,
    /// Wall-clock (or virtual) run length, µs.
    pub wall_us: u64,
    /// Raw `STATS` JSON before the run (live runs only).
    pub stats_before: Option<String>,
    /// Raw `STATS` JSON after the run (live runs only).
    pub stats_after: Option<String>,
}

/// Extracts the first `"key":<uint>` occurrence from a flat-ish JSON blob.
/// The STATS wire format nests objects but never repeats the keys the
/// harness reads across sections, so first-occurrence is exact.
fn json_u64(s: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = s.find(&needle)? + needle.len();
    let rest = s.get(at..)?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// The STATS keys the report tracks as before/after deltas: cache pressure
/// (what adversarial-ingest maximizes) and the served-section tallies.
const DELTA_KEYS: &[&str] = &[
    "repairs",
    "refreshes",
    "stale_served",
    "invalidations",
    "queries",
    "ingested_rows",
    "errors",
    "overloads",
    "timeouts",
];

fn render_stats_delta(before: &str, after: &str) -> String {
    let mut parts = Vec::with_capacity(DELTA_KEYS.len() + 1);
    for key in DELTA_KEYS {
        let b = json_u64(before, key);
        let a = json_u64(after, key);
        let v = match (b, a) {
            (Some(b), Some(a)) => a.saturating_sub(b).to_string(),
            _ => "null".to_string(),
        };
        parts.push(format!("\"{key}\":{v}"));
    }
    // Router targets expose per-backend liveness; count what's alive now.
    let alive = after.matches("\"alive\":true").count();
    let dead = after.matches("\"alive\":false").count();
    if alive + dead > 0 {
        parts.push(format!("\"backends_alive\":{alive}"));
        parts.push(format!("\"backends_dead\":{dead}"));
    }
    format!("{{{}}}", parts.join(","))
}

/// Evaluates the scenario's SLO, returning human-readable violations
/// (empty = pass). Overloads and typed timeouts are *not* failures — they
/// are the admission controller doing its job; silent drops and untyped
/// errors are.
pub fn evaluate_slo(scenario: &str, out: &RunOutcome) -> Vec<String> {
    let mut v = Vec::new();
    let total = out.counts.total();
    if total == 0 {
        v.push("no ops were attempted".to_string());
        return v;
    }
    let frac = |n: u64| n as f64 / total as f64;
    if frac(out.counts.errors) > 0.01 {
        v.push(format!(
            "error rate {:.3} exceeds 0.01 ({} of {total})",
            frac(out.counts.errors),
            out.counts.errors
        ));
    }
    if frac(out.counts.dropped) > 0.10 {
        v.push(format!(
            "dropped-op rate {:.3} exceeds 0.10 ({} of {total}): ops got no response at all",
            frac(out.counts.dropped),
            out.counts.dropped
        ));
    }
    if scenario == "slowloris" {
        if out.slow.unresolved > 0 {
            v.push(format!(
                "{} slow connection(s) still parked on a worker at run end (starvation, not admission control)",
                out.slow.unresolved
            ));
        }
        if out.slow.opened > 0 && out.slow.typed_rejected + out.slow.server_closed == 0 {
            v.push("no slow connection was rejected or closed".to_string());
        }
        if frac(out.counts.ok) < 0.90 {
            v.push(format!(
                "liveness probes succeeded at only {:.3} under slowloris pressure",
                frac(out.counts.ok)
            ));
        }
    }
    v
}

fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Renders the full evidence artifact. Key order is part of the format
/// contract (the determinism test pins the bytes for `--sim` runs).
pub fn render_report(plan: &Plan, out: &RunOutcome) -> String {
    let violations = evaluate_slo(&plan.scenario, out);
    let wall_s = (out.wall_us.max(1)) as f64 / 1_000_000.0;
    let achieved = out.counts.ok as f64 / wall_s;
    let mut s = String::with_capacity(2048);
    s.push_str(&format!(
        concat!(
            "{{\"bench\":\"load\",\"scenario\":\"{}\",\"mode\":\"{}\",\"seed\":{},\n",
            " \"plan\":{{\"digest\":\"{:016x}\",\"ops\":{},\"query_ops\":{},\"ingest_ops\":{},",
            "\"slow_conns\":{},\"duration_ms\":{},\"lanes\":{}}},\n"
        ),
        plan.scenario,
        out.mode,
        plan.seed,
        plan.digest(),
        plan.ops.len(),
        plan.query_ops(),
        plan.ingest_ops(),
        plan.slow_conns.len(),
        plan.duration_us / 1000,
        plan.lanes,
    ));
    s.push_str(&format!(
        " \"offered_rate\":{},\"achieved_rps\":{},\n",
        f1(plan.offered_rate),
        f1(achieved)
    ));
    s.push_str(&format!(" \"latency_us\":{},\n", out.all_hist.to_json()));
    s.push_str(&format!(
        " \"query_latency_us\":{},\n",
        out.query_hist.to_json()
    ));
    s.push_str(&format!(
        " \"counts\":{{\"ok\":{},\"errors\":{},\"overloads\":{},\"timeouts\":{},\"dropped\":{}}},\n",
        out.counts.ok, out.counts.errors, out.counts.overloads, out.counts.timeouts, out.counts.dropped
    ));
    s.push_str(&format!(
        " \"slow_conns\":{{\"opened\":{},\"typed_rejected\":{},\"server_closed\":{},\"unresolved\":{}}},\n",
        out.slow.opened, out.slow.typed_rejected, out.slow.server_closed, out.slow.unresolved
    ));
    match (&out.stats_before, &out.stats_after) {
        (Some(b), Some(a)) => {
            s.push_str(&format!(" \"stats_delta\":{},\n", render_stats_delta(b, a)));
        }
        _ => s.push_str(" \"stats_delta\":null,\n"),
    }
    let viol_json: Vec<String> = violations
        .iter()
        .map(|v| format!("\"{}\"", v.replace('"', "'")))
        .collect();
    s.push_str(&format!(
        " \"slo\":{{\"pass\":{},\"violations\":[{}]}},\n",
        violations.is_empty(),
        viol_json.join(",")
    ));
    s.push_str(&format!(
        " \"replay\":\"mqdiv load --scenario {} --seed {} --rate {} --duration-ms {}\"}}\n",
        plan.scenario,
        plan.seed,
        f1(plan.offered_rate),
        plan.duration_us / 1000
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> RunOutcome {
        let mut all = Hist::new();
        let mut q = Hist::new();
        for v in [100u64, 200, 400, 800] {
            all.record(v);
            q.record(v);
        }
        RunOutcome {
            mode: "sim",
            all_hist: all,
            query_hist: q,
            counts: Counts {
                ok: 4,
                ..Counts::default()
            },
            slow: SlowOutcome::default(),
            wall_us: 1_000_000,
            stats_before: None,
            stats_after: None,
        }
    }

    fn tiny_plan() -> Plan {
        Plan {
            scenario: "steady".into(),
            seed: 7,
            duration_us: 1_000_000,
            offered_rate: 4.0,
            lanes: 1,
            ops: Vec::new(),
            slow_conns: Vec::new(),
        }
    }

    #[test]
    fn json_u64_extracts_first_occurrence() {
        let s = r#"{"cache":{"repairs":12},"served":{"errors":3,"overloads":0}}"#;
        assert_eq!(json_u64(s, "repairs"), Some(12));
        assert_eq!(json_u64(s, "errors"), Some(3));
        assert_eq!(json_u64(s, "missing"), None);
    }

    #[test]
    fn stats_delta_subtracts_and_counts_liveness() {
        let before = r#"{"repairs":10,"refreshes":1,"stale_served":5,"invalidations":0,"queries":100,"ingested_rows":50,"errors":0,"overloads":0,"timeouts":0}"#;
        let after = r#"{"repairs":25,"refreshes":2,"stale_served":9,"invalidations":1,"queries":300,"ingested_rows":80,"errors":1,"overloads":4,"timeouts":2,"backends":[{"alive":true},{"alive":false}]}"#;
        let d = render_stats_delta(before, after);
        assert!(d.contains("\"repairs\":15"), "{d}");
        assert!(d.contains("\"queries\":200"), "{d}");
        assert!(d.contains("\"timeouts\":2"), "{d}");
        assert!(d.contains("\"backends_alive\":1"), "{d}");
        assert!(d.contains("\"backends_dead\":1"), "{d}");
    }

    #[test]
    fn report_is_byte_stable_and_carries_slo() {
        let p = tiny_plan();
        let o = outcome();
        let a = render_report(&p, &o);
        let b = render_report(&p, &o);
        assert_eq!(a, b);
        assert!(a.contains("\"bench\":\"load\""));
        assert!(a.contains("\"p999\""));
        assert!(a.contains("\"slo\":{\"pass\":true"));
        assert!(a.contains("\"replay\":\"mqdiv load --scenario steady --seed 7"));
    }

    #[test]
    fn slo_flags_untyped_failures_not_typed_rejections() {
        let mut o = outcome();
        o.counts.overloads = 1000; // typed rejections are fine
        assert!(evaluate_slo("steady", &o).is_empty());
        o.counts.errors = 200; // untyped server faults are not
        assert!(!evaluate_slo("steady", &o).is_empty());
    }

    #[test]
    fn slowloris_slo_requires_resolution() {
        let mut o = outcome();
        o.slow.opened = 8;
        o.slow.typed_rejected = 8;
        assert!(evaluate_slo("slowloris", &o).is_empty());
        o.slow.unresolved = 1;
        let v = evaluate_slo("slowloris", &o);
        assert!(v.iter().any(|m| m.contains("parked")), "{v:?}");
        o.slow.unresolved = 0;
        o.slow.typed_rejected = 0;
        o.slow.server_closed = 0;
        assert!(!evaluate_slo("slowloris", &o).is_empty());
    }
}
