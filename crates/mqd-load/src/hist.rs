//! Log-bucketed latency histogram (HdrHistogram-style, std-only).
//!
//! Values are recorded in whatever unit the caller picks (the harness uses
//! microseconds). The first `SUB` values get exact linear buckets; above
//! that, each power-of-two octave is split into `SUB` linear sub-buckets,
//! which bounds the relative quantization error at `1/SUB` (< 1%) while
//! keeping the whole table a few kilobytes — constant-time record, no
//! allocation after construction, safe to share across recorder threads by
//! merging per-thread instances at the end.
//!
//! Percentile lookups report the *upper edge* of the matched bucket, so a
//! reported p99 never understates the true quantile. The closed-loop bench
//! (`mqd-bench`) and the open-loop harness both read latency through this
//! one type, so their percentile math can never drift apart.

/// Linear sub-buckets per octave (and the size of the exact linear region).
const SUB_BITS: u32 = 7;
const SUB: u64 = 1 << SUB_BITS;
/// Bucket count covering the full `u64` range.
const NBUCKETS: usize = (SUB as usize) * (65 - SUB_BITS as usize);

/// A fixed-size log-bucketed histogram of `u64` samples.
#[derive(Clone)]
pub struct Hist {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // >= SUB_BITS since v >= SUB
    let shift = top - SUB_BITS;
    let sub = (v >> shift) - SUB; // in [0, SUB)
    ((shift as u64 + 1) * SUB + sub) as usize
}

/// Upper edge of the bucket holding `v`-class values: the largest value
/// that lands in the same bucket as the bucket's lower bound.
fn bucket_upper(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let shift = (idx / SUB) - 1;
    let sub = idx % SUB;
    let lower = (SUB + sub) << shift;
    lower + ((1u64 << shift) - 1)
}

impl Hist {
    /// An empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        Hist {
            counts: vec![0; NBUCKETS],
            total: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        if let Some(c) = self.counts.get_mut(bucket_index(v)) {
            *c += 1;
        }
        self.total += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    /// Folds another histogram into this one (per-thread recorder merge).
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample, exact (not bucket-quantized).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest recorded sample, exact; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of the recorded samples, rounded down; 0 when empty.
    pub fn mean(&self) -> u64 {
        if self.total == 0 {
            return 0;
        }
        (self.sum / self.total as u128) as u64
    }

    /// The value at percentile `p` (0.0–100.0): the upper edge of the first
    /// bucket whose cumulative count reaches `ceil(p/100 * total)`, clamped
    /// to the exact observed max. 0 when empty.
    pub fn value_at_percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil() as u64;
        let rank = rank.clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Renders the standard percentile block as byte-stable JSON:
    /// `{"p50":..,"p95":..,"p99":..,"p999":..,"max":..,"mean":..,"count":..}`
    /// (integer sample units throughout, so the bytes are reproducible).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"p50":{},"p95":{},"p99":{},"p999":{},"max":{},"mean":{},"count":{}}}"#,
            self.value_at_percentile(50.0),
            self.value_at_percentile(95.0),
            self.value_at_percentile(99.0),
            self.value_at_percentile(99.9),
            self.max(),
            self.mean(),
            self.count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        let mut h = Hist::new();
        for v in 0..SUB {
            h.record(v);
        }
        assert_eq!(h.count(), SUB);
        assert_eq!(h.value_at_percentile(50.0), SUB / 2 - 1);
        assert_eq!(h.value_at_percentile(100.0), SUB - 1);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = 0usize;
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            let idx = bucket_index(v);
            assert!(idx >= prev, "bucket index must be monotone");
            assert!(idx < NBUCKETS);
            prev = idx;
            // The representative upper edge never understates the value.
            assert!(bucket_upper(idx) >= v);
        }
        assert!(bucket_index(u64::MAX) < NBUCKETS);
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[1_000u64, 123_456, 9_999_999, 1 << 40] {
            let upper = bucket_upper(bucket_index(v));
            assert!(upper >= v);
            // Upper edge within 1/SUB of the true value.
            assert!(
                (upper - v) as f64 <= v as f64 / SUB as f64 + 1.0,
                "v={v} upper={upper}"
            );
        }
    }

    #[test]
    fn percentiles_on_known_distribution() {
        let mut h = Hist::new();
        // 1..=1000 microseconds, uniform.
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.value_at_percentile(50.0);
        let p99 = h.value_at_percentile(99.0);
        assert!((495..=512).contains(&p50), "p50={p50}");
        assert!((985..=1000).contains(&p99), "p99={p99}");
        assert_eq!(h.value_at_percentile(100.0), 1000);
        assert_eq!(h.mean(), 500);
    }

    #[test]
    fn merge_matches_single_recorder() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut one = Hist::new();
        for v in 0..4096u64 {
            let x = v * 37 % 100_000;
            one.record(x);
            if v % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.to_json(), one.to_json());
    }

    #[test]
    fn empty_histogram_renders_zeros() {
        let h = Hist::new();
        assert_eq!(
            h.to_json(),
            r#"{"p50":0,"p95":0,"p99":0,"p999":0,"max":0,"mean":0,"count":0}"#
        );
    }
}
