//! The open-loop scheduler: fire at the deadline, full stop.
//!
//! A closed-loop generator waits for a response before sending the next
//! request, so a slow server quietly throttles its own measurement —
//! coordinated omission. [`pace`] never looks at completions: it sleeps to
//! each deadline and fires, and the caller measures latency from the
//! *scheduled* deadline, so queueing delay the server causes shows up in
//! the recorded numbers instead of vanishing from them.

use crate::clock::Clock;

/// Fires `f(index, deadline_us)` for each deadline in order, at (never
/// before) the deadline, regardless of what earlier firings are still
/// waiting on. `f` must not block on server responses — hand the work to
/// a writer/reader pair and return.
pub fn pace<C: Clock>(clock: &C, deadlines: &[u64], mut f: impl FnMut(usize, u64)) {
    for (i, &d) in deadlines.iter().enumerate() {
        clock.sleep_until_us(d);
        f(i, d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    /// The satellite pacing contract: with a responder lagging 10 s behind
    /// (simulated by completions that trail far after each fire), every op
    /// still fires exactly at its deadline — the schedule is independent
    /// of response latency.
    #[test]
    fn fires_at_deadlines_independent_of_response_latency() {
        let clock = VirtualClock::new();
        let deadlines: Vec<u64> = (0..100).map(|i| i * 10_000).collect();
        let mut fired_at = Vec::new();
        let mut completions = Vec::new();
        pace(&clock, &deadlines, |i, d| {
            fired_at.push((i, clock.now_us()));
            // Model a badly lagging server: this op's response would land
            // 10 s after the fire. A closed-loop generator would stall
            // here; the pacer must not.
            completions.push(d + 10_000_000);
        });
        assert_eq!(fired_at.len(), deadlines.len());
        for (i, (idx, t)) in fired_at.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(
                *t, deadlines[i],
                "op {i} fired at {t}, deadline {}",
                deadlines[i]
            );
        }
        // Sanity: the simulated completions all trail the last fire, i.e.
        // the pacer really did run ahead of the responses.
        let last_fire = fired_at.last().map(|(_, t)| *t).unwrap_or(0);
        assert!(completions.iter().all(|&c| c > last_fire));
    }

    #[test]
    fn late_start_fires_immediately_without_skipping() {
        let clock = VirtualClock::new();
        clock.advance_to(50_000); // the run started late / a hiccup
        let deadlines = [10_000u64, 20_000, 60_000];
        let mut fired = Vec::new();
        pace(&clock, &deadlines, |i, _| fired.push((i, clock.now_us())));
        // Past-due ops fire immediately at current time (send-at-deadline
        // degrades to send-asap, never to drop); future ops on schedule.
        assert_eq!(fired, vec![(0, 50_000), (1, 50_000), (2, 60_000)]);
    }
}
