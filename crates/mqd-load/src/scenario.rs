//! The scenario fleet: named, seeded workload compositions.
//!
//! Each builder is a pure function `(name, cfg) -> Plan`: every label
//! choice, spec draw, arrival gap, and slow-connection stagger comes from
//! one `mqd-rng` stream seeded by `cfg.seed`, so a scenario run is
//! replayable from its `(scenario, seed)` pair alone. Arrival times come
//! from jittered-uniform gaps scaled by a [`RateShape`] envelope
//! (IEEE-exact arithmetic only — see `mqd_datagen::shapes`), which keeps
//! the schedule bit-identical across platforms while still exercising
//! bursty, non-lattice arrival patterns.

use mqd_core::record::Record;
use mqd_datagen::shapes::RateShape;
use mqd_datagen::zipf::ZipfSampler;
use mqd_rng::{RngExt, SeedableRng, StdRng};
use mqd_store::{Algorithm, QuerySpec};

use crate::plan::{Action, Op, Plan, SlowConn};

/// Knobs shared by every scenario; scenario-specific structure (spike
/// shape, skew, slow-connection mix) is derived from these plus the seed.
#[derive(Clone, Debug)]
pub struct ScenarioCfg {
    /// Master seed; every choice in the plan derives from it.
    pub seed: u64,
    /// Baseline offered rate, requests/second (shapes multiply this).
    pub rate: f64,
    /// Run length in milliseconds.
    pub duration_ms: u64,
    /// Paced connection lanes.
    pub lanes: u16,
    /// Peak multiplier for `flashcrowd` (the paper-motivated default is
    /// a 100× breaking-news spike; CI smoke runs scale it down).
    pub flash_peak: f64,
    /// Slow-connection fleet size for `slowloris`.
    pub slow_conns: u32,
    /// Zipf exponent for `zipf-users`.
    pub zipf_exponent: f64,
}

impl Default for ScenarioCfg {
    fn default() -> Self {
        ScenarioCfg {
            seed: 20130612,
            rate: 500.0,
            duration_ms: 10_000,
            lanes: 4,
            flash_peak: 100.0,
            slow_conns: 16,
            zipf_exponent: 1.1,
        }
    }
}

/// The scenario catalog: name and one-line description, in display order.
pub const CATALOG: &[(&str, &str)] = &[
    (
        "steady",
        "baseline mix: 80% queries over a uniform spec population, 20% ingest",
    ),
    (
        "diurnal",
        "the steady mix under a sinusoidal rate tide (trough 0.3x, peak 1.7x)",
    ),
    (
        "flashcrowd",
        "one breaking-news label spikes the rate (default 100x), holds, then decays",
    ),
    (
        "zipf-users",
        "heavy-tailed QuerySpec popularity: hot specs hammer the cover cache, cold specs miss",
    ),
    (
        "adversarial-ingest",
        "posts land inside cached cover footprints to maximize repair/invalidation pressure",
    ),
    (
        "slowloris",
        "half-open and byte-dribbling connections against admission control, with liveness probes",
    ),
];

/// Label universe shared by every scenario (12 labels, like the paper's
/// topic count per broad subscription neighborhood).
const NUM_LABELS: u16 = 12;
/// The breaking-news label for `flashcrowd`.
const HOT_LABEL: u16 = 0;
/// Lambda menu, in the same ms-scale units as ingested values.
const LAMBDAS: &[i64] = &[250, 500, 1000, 2000];

/// Builds the plan for `name`. Unknown names list the catalog.
pub fn build(name: &str, cfg: &ScenarioCfg) -> Result<Plan, String> {
    match name {
        "steady" => Ok(mixed_scenario(name, cfg, RateShape::Constant, 0.20)),
        "diurnal" => Ok(mixed_scenario(
            name,
            cfg,
            RateShape::Diurnal {
                period_us: (cfg.duration_ms * 1000).max(1),
                amplitude: 0.7,
            },
            0.20,
        )),
        "flashcrowd" => Ok(flashcrowd(cfg)),
        "zipf-users" => Ok(zipf_users(cfg)),
        "adversarial-ingest" => Ok(adversarial_ingest(cfg)),
        "slowloris" => Ok(slowloris(cfg)),
        other => {
            let names: Vec<&str> = CATALOG.iter().map(|(n, _)| *n).collect();
            Err(format!(
                "unknown scenario '{other}' (have: {})",
                names.join(", ")
            ))
        }
    }
}

/// Jittered-uniform arrival times under a rate envelope: each gap is
/// `1e6/(rate·mult(t)) · (0.5 + u)` µs with `u` uniform in `[0,1)`, so the
/// mean honors the envelope while gaps stay aperiodic. Pure arithmetic —
/// bit-identical for a seed on any platform.
fn arrivals(shape: &RateShape, rate: f64, duration_us: u64, rng: &mut StdRng) -> Vec<u64> {
    let rate = if rate.is_finite() && rate > 0.01 {
        rate
    } else {
        1.0
    };
    let mut out = Vec::new();
    let mut t = 0.0f64;
    let end = duration_us as f64;
    loop {
        let mult = shape.multiplier_at(t as u64);
        let mean_gap = 1_000_000.0 / (rate * mult);
        let u: f64 = rng.random();
        t += mean_gap * (0.5 + u);
        if t >= end {
            return out;
        }
        out.push(t as u64);
    }
}

/// Draws a query-spec population over the label universe: 1–3 sorted
/// labels, a lambda from the menu, mostly cache-friendly fixed-λ Scan
/// with a minority of Scan+/GreedySC and PROP variants.
fn make_specs(rng: &mut StdRng, n: usize) -> Vec<QuerySpec> {
    let mut specs = Vec::with_capacity(n);
    for _ in 0..n {
        let k = rng.random_range(1..4usize);
        let mut labels: Vec<u16> = Vec::with_capacity(k);
        while labels.len() < k {
            let l = rng.random_range(0..NUM_LABELS);
            if !labels.contains(&l) {
                labels.push(l);
            }
        }
        labels.sort_unstable();
        // lint:allow(panic-path): random_range(0..len) is in-bounds by construction
        let lambda = LAMBDAS[rng.random_range(0..LAMBDAS.len())];
        let roll = rng.random_range(0..100u32);
        let algorithm = if roll < 70 {
            Algorithm::Scan
        } else if roll < 85 {
            Algorithm::ScanPlus
        } else {
            Algorithm::GreedySc
        };
        let proportional = rng.random_range(0..100u32) < 15;
        specs.push(QuerySpec {
            labels,
            lambda,
            proportional,
            algorithm,
            from: i64::MIN,
            to: i64::MAX,
        });
    }
    specs
}

/// An ingest row whose value tracks virtual time (ms) with small forward
/// jitter, clamped non-decreasing across the plan — the microblog "posts
/// arrive in timestamp order" shape, and the store's streaming contract:
/// a live server rejects time-travel with `NonMonotoneTimestamp`. Order
/// only survives the wire if every ingest rides one connection, so the
/// generators also pin all ingest ops to [`INGEST_LANE`].
fn ingest_row(
    rng: &mut StdRng,
    next_id: &mut u64,
    last_value: &mut i64,
    at_us: u64,
    labels: Vec<u16>,
) -> Record {
    let id = *next_id;
    *next_id += 1;
    let jitter = rng.random_range(0..50i64);
    let value = ((at_us / 1000) as i64 + jitter).max(*last_value);
    *last_value = value;
    Record { id, value, labels }
}

/// The lane that carries every ingest op. Lanes race each other, so
/// spreading writes across them would reorder timestamps at the server;
/// one pipelined connection delivers them in schedule order.
const INGEST_LANE: u16 = 0;

fn random_labels(rng: &mut StdRng) -> Vec<u16> {
    let k = rng.random_range(1..4usize);
    let mut labels: Vec<u16> = Vec::with_capacity(k);
    while labels.len() < k {
        let l = rng.random_range(0..NUM_LABELS);
        if !labels.contains(&l) {
            labels.push(l);
        }
    }
    labels.sort_unstable();
    labels
}

fn finish(name: &str, cfg: &ScenarioCfg, ops: Vec<Op>, slow_conns: Vec<SlowConn>) -> Plan {
    Plan {
        scenario: name.to_string(),
        seed: cfg.seed,
        duration_us: cfg.duration_ms * 1000,
        offered_rate: cfg.rate,
        lanes: cfg.lanes.max(1),
        ops,
        slow_conns,
    }
}

/// `steady` / `diurnal`: uniform spec popularity with `ingest_frac` of
/// ops writing new posts.
fn mixed_scenario(name: &str, cfg: &ScenarioCfg, shape: RateShape, ingest_frac: f64) -> Plan {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let specs = make_specs(&mut rng, 64);
    let times = arrivals(&shape, cfg.rate, cfg.duration_ms * 1000, &mut rng);
    let lanes = cfg.lanes.max(1);
    let mut next_id = 1u64;
    let mut last_value = 0i64;
    let mut ops = Vec::with_capacity(times.len());
    for (i, at_us) in times.into_iter().enumerate() {
        let action = if rng.random::<f64>() < ingest_frac {
            let labels = random_labels(&mut rng);
            Action::Ingest(ingest_row(
                &mut rng,
                &mut next_id,
                &mut last_value,
                at_us,
                labels,
            ))
        } else {
            let s = rng.random_range(0..specs.len());
            Action::Query(specs[s].clone())
        };
        let lane = if action.is_ingest() {
            INGEST_LANE
        } else {
            (i % lanes as usize) as u16
        };
        ops.push(Op {
            at_us,
            lane,
            action,
        });
    }
    finish(name, cfg, ops, Vec::new())
}

/// `flashcrowd`: baseline mix until the spike; during the spike, traffic
/// concentrates on the breaking-news label — both reads and writes.
fn flashcrowd(cfg: &ScenarioCfg) -> Plan {
    let duration_us = cfg.duration_ms * 1000;
    let start_us = duration_us / 4;
    let hold_us = duration_us / 10;
    let decay_us = duration_us / 2;
    let shape = RateShape::FlashCrowd {
        start_us,
        peak: cfg.flash_peak,
        hold_us,
        decay_us,
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let specs = make_specs(&mut rng, 64);
    // Hot specs: fixed-λ Scan on the breaking label (and pairs with it).
    let hot_specs: Vec<QuerySpec> = (0..8)
        .map(|i| QuerySpec {
            labels: if i % 2 == 0 {
                vec![HOT_LABEL]
            } else {
                vec![HOT_LABEL, (i % NUM_LABELS as usize) as u16]
            },
            lambda: LAMBDAS[i % LAMBDAS.len()],
            proportional: false,
            algorithm: Algorithm::Scan,
            from: i64::MIN,
            to: i64::MAX,
        })
        .collect();
    let times = arrivals(&shape, cfg.rate, duration_us, &mut rng);
    let lanes = cfg.lanes.max(1);
    let mut next_id = 1u64;
    let mut last_value = 0i64;
    let mut ops = Vec::with_capacity(times.len());
    for (i, at_us) in times.into_iter().enumerate() {
        let in_spike = at_us >= start_us;
        let hot = in_spike && rng.random::<f64>() < 0.9;
        let action = if rng.random::<f64>() < 0.25 {
            let labels = if hot {
                let mut ls = vec![HOT_LABEL];
                if rng.random::<f64>() < 0.3 {
                    let extra = rng.random_range(1..NUM_LABELS);
                    ls.push(extra);
                    ls.sort_unstable();
                }
                ls
            } else {
                random_labels(&mut rng)
            };
            Action::Ingest(ingest_row(
                &mut rng,
                &mut next_id,
                &mut last_value,
                at_us,
                labels,
            ))
        } else if hot {
            let s = rng.random_range(0..hot_specs.len());
            Action::Query(hot_specs[s].clone())
        } else {
            let s = rng.random_range(0..specs.len());
            Action::Query(specs[s].clone())
        };
        let lane = if action.is_ingest() {
            INGEST_LANE
        } else {
            (i % lanes as usize) as u16
        };
        ops.push(Op {
            at_us,
            lane,
            action,
        });
    }
    finish("flashcrowd", cfg, ops, Vec::new())
}

/// `zipf-users`: a large spec population under zipfian popularity — the
/// hot head lives in the cover cache, the long tail forces cold solves.
fn zipf_users(cfg: &ScenarioCfg) -> Plan {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let specs = make_specs(&mut rng, 256);
    let zipf = ZipfSampler::new(specs.len(), cfg.zipf_exponent);
    let times = arrivals(
        &RateShape::Constant,
        cfg.rate,
        cfg.duration_ms * 1000,
        &mut rng,
    );
    let lanes = cfg.lanes.max(1);
    let mut next_id = 1u64;
    let mut last_value = 0i64;
    let mut ops = Vec::with_capacity(times.len());
    for (i, at_us) in times.into_iter().enumerate() {
        let action = if rng.random::<f64>() < 0.05 {
            // Light ingest arrives in small batches, like a firehose tick.
            let rows: Vec<Record> = (0..16)
                .map(|_| {
                    let labels = random_labels(&mut rng);
                    ingest_row(&mut rng, &mut next_id, &mut last_value, at_us, labels)
                })
                .collect();
            Action::IngestBatch(rows)
        } else {
            let s = zipf.sample(&mut rng);
            Action::Query(specs[s].clone())
        };
        let lane = if action.is_ingest() {
            INGEST_LANE
        } else {
            (i % lanes as usize) as u16
        };
        ops.push(Op {
            at_us,
            lane,
            action,
        });
    }
    finish("zipf-users", cfg, ops, Vec::new())
}

/// `adversarial-ingest`: a small population of fixed-λ Scan specs is kept
/// hot (so their covers are cached), while every ingest row is crafted to
/// land *inside* a cached cover's footprint — same labels as a hot spec,
/// appended at the stream tail, which every `[MIN, MAX]` cover spans —
/// so each write forces a repair or invalidation instead of an append the
/// cache can ignore. (Back-dating rows deeper into the λ window would be
/// nastier still, but the store's streaming contract rejects time-travel,
/// so the tail is the deepest admissible poison.)
fn adversarial_ingest(cfg: &ScenarioCfg) -> Plan {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let specs: Vec<QuerySpec> = (0..12)
        .map(|i| QuerySpec {
            labels: vec![(i % NUM_LABELS as usize) as u16],
            lambda: LAMBDAS[i % LAMBDAS.len()],
            proportional: false,
            algorithm: Algorithm::Scan,
            from: i64::MIN,
            to: i64::MAX,
        })
        .collect();
    let times = arrivals(
        &RateShape::Constant,
        cfg.rate,
        cfg.duration_ms * 1000,
        &mut rng,
    );
    let lanes = cfg.lanes.max(1);
    let mut next_id = 1u64;
    let mut last_value = 0i64;
    let mut ops = Vec::with_capacity(times.len());
    for (i, at_us) in times.into_iter().enumerate() {
        let s = rng.random_range(0..specs.len());
        let spec = &specs[s];
        // Alternate prime-query and poison-ingest on the same spec pool.
        let action = if rng.random::<f64>() < 0.5 {
            Action::Query(spec.clone())
        } else {
            Action::Ingest(ingest_row(
                &mut rng,
                &mut next_id,
                &mut last_value,
                at_us,
                spec.labels.clone(),
            ))
        };
        let lane = if action.is_ingest() {
            INGEST_LANE
        } else {
            (i % lanes as usize) as u16
        };
        ops.push(Op {
            at_us,
            lane,
            action,
        });
    }
    finish("adversarial-ingest", cfg, ops, Vec::new())
}

/// `slowloris`: a light probe workload (PING + queries) proves the server
/// stays live while a fleet of misbehaving connections — half-open,
/// dribbling an unterminated request line, or dribbling an `INGESTB` body
/// — tries to park every worker. The SLO asserts typed
/// `-OVERLOADED`/timeout handling, not starvation.
fn slowloris(cfg: &ScenarioCfg) -> Plan {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let duration_us = cfg.duration_ms * 1000;
    let specs = make_specs(&mut rng, 16);
    let times = arrivals(&RateShape::Constant, cfg.rate, duration_us, &mut rng);
    let lanes = cfg.lanes.max(1);
    let mut ops = Vec::with_capacity(times.len());
    for (i, at_us) in times.into_iter().enumerate() {
        let action = if rng.random::<f64>() < 0.5 {
            Action::Ping
        } else {
            let s = rng.random_range(0..specs.len());
            Action::Query(specs[s].clone())
        };
        ops.push(Op {
            at_us,
            lane: (i % lanes as usize) as u16,
            action,
        });
    }
    let mut slow_conns = Vec::with_capacity(cfg.slow_conns as usize);
    for i in 0..cfg.slow_conns {
        // Stagger openings across the first fifth of the run.
        let open_at_us = rng.random_range(0..(duration_us / 5).max(1));
        let sc = match i % 3 {
            0 => SlowConn {
                // Half-open: connect, send nothing, hold the socket.
                open_at_us,
                dribble: Vec::new(),
                interval_us: 0,
                hold_us: duration_us,
            },
            1 => SlowConn {
                // Classic slowloris: dribble an unterminated request line.
                open_at_us,
                dribble: b"QUERY 0,1 500 scan FROM 0 TO 99999".to_vec(),
                interval_us: 150_000,
                hold_us: duration_us,
            },
            _ => SlowConn {
                // Framed-body stall: a complete INGESTB header, then a
                // body that dribbles and never completes.
                open_at_us,
                dribble: b"INGESTB 4096\nMQDL".to_vec(),
                interval_us: 150_000,
                hold_us: duration_us,
            },
        };
        slow_conns.push(sc);
    }
    finish("slowloris", cfg, ops, slow_conns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg() -> ScenarioCfg {
        ScenarioCfg {
            rate: 200.0,
            duration_ms: 2_000,
            ..ScenarioCfg::default()
        }
    }

    #[test]
    fn every_catalog_entry_builds() {
        for (name, _) in CATALOG {
            let plan = build(name, &smoke_cfg()).unwrap();
            assert!(!plan.ops.is_empty(), "{name} produced no ops");
            assert!(
                plan.ops.windows(2).all(|w| w[0].at_us <= w[1].at_us),
                "{name} schedule must be time-sorted"
            );
            assert!(plan.ops.iter().all(|o| o.at_us < plan.duration_us));
            assert!(plan.ops.iter().all(|o| o.lane < plan.lanes));
        }
    }

    #[test]
    fn unknown_scenario_lists_catalog() {
        let err = build("nope", &smoke_cfg()).unwrap_err();
        assert!(err.contains("steady") && err.contains("slowloris"));
    }

    #[test]
    fn plans_are_seed_deterministic() {
        for (name, _) in CATALOG {
            let a = build(name, &smoke_cfg()).unwrap();
            let b = build(name, &smoke_cfg()).unwrap();
            assert_eq!(
                a.encode(),
                b.encode(),
                "{name}: same seed must give byte-identical schedules"
            );
            let other = build(
                name,
                &ScenarioCfg {
                    seed: 999,
                    ..smoke_cfg()
                },
            )
            .unwrap();
            assert_ne!(a.digest(), other.digest(), "{name}: seed must matter");
        }
    }

    #[test]
    fn steady_mix_is_roughly_80_20() {
        let plan = build("steady", &smoke_cfg()).unwrap();
        let ingest = plan.ingest_ops() as f64 / plan.ops.len() as f64;
        assert!((0.1..0.3).contains(&ingest), "ingest fraction {ingest}");
    }

    #[test]
    fn flashcrowd_concentrates_rate_in_spike() {
        let cfg = smoke_cfg();
        let plan = build("flashcrowd", &cfg).unwrap();
        let duration = plan.duration_us;
        // Ops per quarter of the run: the spike quarter must dominate.
        let mut quarters = [0usize; 4];
        for op in &plan.ops {
            quarters[((op.at_us * 4) / duration).min(3) as usize] += 1;
        }
        assert!(
            quarters[1] > quarters[0] * 5,
            "spike quarter {} vs baseline {}",
            quarters[1],
            quarters[0]
        );
    }

    #[test]
    fn zipf_users_skews_query_popularity() {
        let plan = build("zipf-users", &smoke_cfg()).unwrap();
        // Count per-spec query frequencies via the wire form.
        let mut counts = std::collections::BTreeMap::new();
        let mut queries = 0usize;
        for op in &plan.ops {
            if let Action::Query(_) = &op.action {
                queries += 1;
                *counts.entry(op.action.wire_bytes()).or_insert(0usize) += 1;
            }
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let head: usize = freqs.iter().take(8).sum();
        assert!(
            head * 3 > queries,
            "hot 8 specs should carry > 1/3 of queries (got {head}/{queries})"
        );
    }

    #[test]
    fn adversarial_rows_land_inside_footprints() {
        let plan = build("adversarial-ingest", &smoke_cfg()).unwrap();
        for op in &plan.ops {
            if let Action::Ingest(r) = &op.action {
                let now_ms = (op.at_us / 1000) as i64;
                // Tail append: at (or jitter-close to) the stream's leading
                // edge, inside every cached [MIN, MAX] cover footprint.
                assert!(
                    r.value >= now_ms && r.value <= now_ms + 50,
                    "poison row value {} should ride the stream tail at {now_ms}",
                    r.value
                );
            }
        }
    }

    #[test]
    fn ingest_honors_the_streaming_contract_in_every_scenario() {
        // A live store rejects NonMonotoneTimestamp, and only a single
        // connection preserves send order — so every scenario must emit
        // ingest rows with non-decreasing values, all on one lane.
        for (name, _) in CATALOG {
            let plan = build(name, &smoke_cfg()).unwrap();
            let mut last = i64::MIN;
            for op in &plan.ops {
                let rows: Vec<&Record> = match &op.action {
                    Action::Ingest(r) => vec![r],
                    Action::IngestBatch(rows) => rows.iter().collect(),
                    _ => continue,
                };
                assert_eq!(op.lane, INGEST_LANE, "{name}: ingest off the ingest lane");
                for r in rows {
                    assert!(
                        r.value >= last,
                        "{name}: row {} value {} < previous {last}",
                        r.id,
                        r.value
                    );
                    last = r.value;
                }
            }
        }
    }

    #[test]
    fn slowloris_builds_all_three_conn_kinds() {
        let plan = build("slowloris", &smoke_cfg()).unwrap();
        assert_eq!(plan.slow_conns.len(), 16);
        assert!(plan.slow_conns.iter().any(|c| c.dribble.is_empty()));
        assert!(plan
            .slow_conns
            .iter()
            .any(|c| c.dribble.starts_with(b"QUERY")));
        assert!(plan
            .slow_conns
            .iter()
            .any(|c| c.dribble.starts_with(b"INGESTB")));
        // Probes stay light but present.
        assert!(!plan.ops.is_empty());
    }
}
