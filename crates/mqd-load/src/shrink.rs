//! ddmin-style schedule minimization, the PR 3 oracle strategy applied to
//! load plans: when an SLO assertion fails, chunked greedy removal pares
//! the schedule down to a minimal op list (and slow-connection fleet)
//! that still fails the same way. Paired with the deterministic `--sim`
//! executor this turns "the overnight soak broke" into a seed plus a
//! handful of ops that reproduce the violation instantly.

use crate::plan::Plan;

/// Shrinks `plan` while `fails` keeps returning true. `fails` must be a
/// pure predicate (run the candidate through the sim executor and check
/// the SLO); the returned plan provably still fails it. Bounded work:
/// each pass is linear in the op count and stops at a fixed point.
pub fn shrink_plan(plan: &Plan, fails: impl Fn(&Plan) -> bool) -> Plan {
    let mut best = plan.clone();
    if !fails(&best) {
        return best; // nothing to minimize
    }

    // Pass 1: chunked op removal (halves, quarters, ..., single ops).
    let mut chunk = (best.ops.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < best.ops.len() {
            let mut cand = best.clone();
            let end = (i + chunk).min(cand.ops.len());
            cand.ops.drain(i..end);
            if fails(&cand) {
                best = cand; // do not advance: the next chunk slid into i
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    // Pass 2: thin the slow-connection fleet the same way.
    let mut chunk = (best.slow_conns.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < best.slow_conns.len() {
            let mut cand = best.clone();
            let end = (i + chunk).min(cand.slow_conns.len());
            cand.slow_conns.drain(i..end);
            if fails(&cand) {
                best = cand;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }

    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Action, Op};
    use crate::scenario::{build, ScenarioCfg};

    #[test]
    fn shrinks_to_the_single_triggering_op() {
        let plan = build(
            "steady",
            &ScenarioCfg {
                rate: 200.0,
                duration_ms: 2_000,
                ..ScenarioCfg::default()
            },
        )
        .unwrap();
        // Failure: "the plan contains a lambda-2000 query". ddmin must
        // find a 1-op reproducer.
        let fails = |p: &Plan| {
            p.ops.iter().any(|o| match &o.action {
                Action::Query(s) => s.lambda == 2000,
                _ => false,
            })
        };
        assert!(fails(&plan), "seed must produce at least one such query");
        let small = shrink_plan(&plan, fails);
        assert_eq!(small.ops.len(), 1, "minimal reproducer is one op");
        assert!(fails(&small));
        assert!(small.slow_conns.is_empty());
    }

    #[test]
    fn shrinks_slow_conn_fleet() {
        let plan = build(
            "slowloris",
            &ScenarioCfg {
                rate: 100.0,
                duration_ms: 2_000,
                ..ScenarioCfg::default()
            },
        )
        .unwrap();
        let fails = |p: &Plan| {
            p.slow_conns
                .iter()
                .any(|c| c.dribble.starts_with(b"INGESTB"))
        };
        let small = shrink_plan(&plan, fails);
        assert!(small.ops.is_empty());
        assert_eq!(small.slow_conns.len(), 1);
    }

    #[test]
    fn passing_plan_is_untouched() {
        let plan = Plan {
            scenario: "steady".into(),
            seed: 1,
            duration_us: 1000,
            offered_rate: 1.0,
            lanes: 1,
            ops: vec![Op {
                at_us: 0,
                lane: 0,
                action: Action::Ping,
            }],
            slow_conns: Vec::new(),
        };
        let same = shrink_plan(&plan, |_| false);
        assert_eq!(same, plan);
    }
}
