//! The live executor: drives a real `mqd-server` or `mqd-router` endpoint
//! over TCP with the open-loop schedule.
//!
//! Each connection lane gets a paced **writer** thread (fires wire bytes
//! at the plan's deadlines — never waiting on responses, so the loop
//! stays open) and a **reader** thread consuming framed responses in
//! request order; latency is measured from the *scheduled* deadline to
//! response completion, which charges real queueing — including TCP
//! backpressure the server causes — to the server instead of silently
//! omitting it. The slow-connection fleet runs on its own threads and
//! records whether the server answered misbehavior with typed rejections
//! (`-OVERLOADED` / `-ERR Timeout`), a close, or — the SLO failure — not
//! at all.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Mutex;
use std::time::Duration;

use mqd_core::MqdError;
use mqd_server::Client;

use crate::clock::{Clock, RealClock};
use crate::hist::Hist;
use crate::pacer::pace;
use crate::plan::{Action, Plan, SlowConn};
use crate::report::{Counts, RunOutcome, SlowOutcome};

/// Socket poll tick: how often blocked reads wake to check deadlines.
const TICK: Duration = Duration::from_millis(100);

/// Live-run knobs.
#[derive(Clone, Debug)]
pub struct RunnerCfg {
    /// Target endpoint (`host:port` of a server or router frontend).
    pub addr: String,
    /// Patience per op: an op with no response this long after its
    /// deadline counts as dropped and its lane is abandoned.
    pub response_timeout_us: u64,
}

impl RunnerCfg {
    /// Defaults: 15 s patience.
    pub fn new(addr: impl Into<String>) -> Self {
        RunnerCfg {
            addr: addr.into(),
            response_timeout_us: 15_000_000,
        }
    }
}

#[derive(Default)]
struct Agg {
    counts: Counts,
    slow: SlowOutcome,
    all_hist: Hist,
    query_hist: Hist,
}

fn retryable(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::Interrupted
    )
}

/// Timeout-tolerant line reader that keeps partial bytes across ticks
/// (the client-side mirror of the server's `LineReader`).
struct TickLines {
    inner: BufReader<TcpStream>,
    partial: Vec<u8>,
}

enum LineOut {
    Line(String),
    Eof,
    Tick,
}

impl TickLines {
    fn next(&mut self) -> LineOut {
        match self.inner.by_ref().read_until(b'\n', &mut self.partial) {
            Ok(0) => LineOut::Eof,
            Ok(_) => {
                if self.partial.last() == Some(&b'\n') {
                    let mut bytes = std::mem::take(&mut self.partial);
                    bytes.pop();
                    if bytes.last() == Some(&b'\r') {
                        bytes.pop();
                    }
                    LineOut::Line(String::from_utf8_lossy(&bytes).into_owned())
                } else {
                    LineOut::Tick // mid-line; more bytes coming
                }
            }
            Err(e) if retryable(&e) => LineOut::Tick,
            Err(_) => LineOut::Eof,
        }
    }
}

enum Resp {
    Status(String),
    Closed,
    TimedOut,
}

/// Reads one framed response (status line .. `.` terminator), giving up
/// at `deadline_us`.
fn read_response(lines: &mut TickLines, clock: &RealClock, deadline_us: u64) -> Resp {
    let mut status: Option<String> = None;
    loop {
        if clock.now_us() > deadline_us {
            return Resp::TimedOut;
        }
        match lines.next() {
            LineOut::Line(l) => {
                if status.is_none() {
                    status = Some(l);
                } else if l == "." {
                    return match status.take() {
                        Some(s) => Resp::Status(s),
                        None => Resp::Closed,
                    };
                }
                // else: payload line, skip
            }
            LineOut::Eof => return Resp::Closed,
            LineOut::Tick => {}
        }
    }
}

fn classify(status: &str, counts: &mut Counts) -> bool {
    if status.starts_with("+OK") {
        counts.ok += 1;
        true
    } else if status.starts_with("-OVERLOADED") {
        counts.overloads += 1;
        false
    } else if status.starts_with("-ERR Timeout") {
        counts.timeouts += 1;
        false
    } else {
        // Untyped errors are SLO violations; surface the first few so a
        // failed run names the fault instead of just counting it.
        if counts.errors < 5 {
            eprintln!("load: untyped error response: {status}");
        }
        counts.errors += 1;
        false
    }
}

/// One lane's materialized schedule entry.
struct LaneOp {
    at_us: u64,
    bytes: Vec<u8>,
    is_query: bool,
}

fn lane_writer(
    clock: &RealClock,
    ops: &[LaneOp],
    mut w: TcpStream,
    tx: Sender<(u64, bool)>,
    agg: &Mutex<Agg>,
) {
    let deadlines: Vec<u64> = ops.iter().map(|o| o.at_us).collect();
    let mut dead = 0u64;
    let mut lane_down = false;
    pace(clock, &deadlines, |i, _| {
        let Some(op) = ops.get(i) else { return };
        if lane_down {
            dead += 1;
            return;
        }
        // Send-at-deadline: the write itself may block on backpressure,
        // which delays *later* sends on this lane — and those ops'
        // latencies, measured from their scheduled deadlines, charge that
        // delay to the server. That is the point.
        if w.write_all(&op.bytes).is_ok() {
            let _ = tx.send((op.at_us, op.is_query));
        } else {
            lane_down = true;
            dead += 1;
        }
    });
    drop(tx); // reader sees Disconnected once responses are drained
    if dead > 0 {
        if let Ok(mut g) = agg.lock() {
            g.counts.dropped += dead;
        }
    }
}

fn lane_reader(
    clock: &RealClock,
    stream: TcpStream,
    rx: Receiver<(u64, bool)>,
    patience_us: u64,
    agg: &Mutex<Agg>,
) {
    let mut lines = TickLines {
        inner: BufReader::new(stream),
        partial: Vec::new(),
    };
    let mut counts = Counts::default();
    let mut all_hist = Hist::new();
    let mut query_hist = Hist::new();
    let mut abandoned = false;
    loop {
        match rx.recv_timeout(TICK) {
            Ok((at_us, is_query)) => {
                if abandoned {
                    counts.dropped += 1;
                    continue;
                }
                match read_response(&mut lines, clock, at_us.saturating_add(patience_us)) {
                    Resp::Status(status) => {
                        if classify(&status, &mut counts) {
                            let latency = clock.now_us().saturating_sub(at_us);
                            all_hist.record(latency);
                            if is_query {
                                query_hist.record(latency);
                            }
                        }
                    }
                    Resp::Closed | Resp::TimedOut => {
                        counts.dropped += 1;
                        abandoned = true; // framing lost; drain the rest as drops
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    if let Ok(mut g) = agg.lock() {
        g.counts.ok += counts.ok;
        g.counts.errors += counts.errors;
        g.counts.overloads += counts.overloads;
        g.counts.timeouts += counts.timeouts;
        g.counts.dropped += counts.dropped;
        g.all_hist.merge(&all_hist);
        g.query_hist.merge(&query_hist);
    }
}

/// Drives one misbehaving connection and classifies how it ended.
fn run_slow_conn(clock: &RealClock, sc: &SlowConn, addr: &str, end_us: u64, agg: &Mutex<Agg>) {
    clock.sleep_until_us(sc.open_at_us);
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => {
            if let Ok(mut g) = agg.lock() {
                g.slow.opened += 1;
                g.slow.server_closed += 1; // refused at the door
            }
            return;
        }
    };
    let _ = stream.set_read_timeout(Some(TICK));
    let _ = stream.set_nodelay(true);
    let mut w = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            if let Ok(mut g) = agg.lock() {
                g.slow.opened += 1;
                g.slow.unresolved += 1;
            }
            return;
        }
    };
    let mut r = stream;
    let deadline = sc
        .open_at_us
        .saturating_add(sc.hold_us)
        .min(end_us.saturating_add(500_000));
    let mut got: Vec<u8> = Vec::new();
    let mut closed = false;
    let mut sent = 0usize;
    let mut buf = [0u8; 1024];
    while clock.now_us() < deadline && !closed {
        // Dribble every due byte (one per interval since open).
        while sent < sc.dribble.len() {
            let due = sc
                .open_at_us
                .saturating_add(sc.interval_us.saturating_mul(sent as u64 + 1));
            if clock.now_us() < due {
                break;
            }
            match sc.dribble.get(sent) {
                Some(&b) => {
                    if w.write_all(&[b]).is_err() {
                        closed = true;
                        break;
                    }
                    let _ = w.flush();
                    sent += 1;
                }
                None => break,
            }
        }
        // Poll for a typed response or a close; the read timeout is the
        // loop's pacing tick.
        match r.read(&mut buf) {
            Ok(0) => closed = true,
            Ok(n) => got.extend_from_slice(buf.get(..n).unwrap_or(&[])),
            Err(e) if retryable(&e) => {}
            Err(_) => closed = true,
        }
    }
    // One last non-blocking-ish read so a typed response racing the
    // deadline still counts.
    if !closed {
        match r.read(&mut buf) {
            Ok(0) => closed = true,
            Ok(n) => got.extend_from_slice(buf.get(..n).unwrap_or(&[])),
            Err(_) => {}
        }
    }
    let typed = {
        let s = String::from_utf8_lossy(&got);
        s.contains("-ERR") || s.contains("-OVERLOADED")
    };
    if let Ok(mut g) = agg.lock() {
        g.slow.opened += 1;
        if typed {
            g.slow.typed_rejected += 1;
        } else if closed {
            g.slow.server_closed += 1;
        } else {
            g.slow.unresolved += 1;
        }
    }
}

/// Grabs the raw STATS JSON from the target (best effort).
fn fetch_stats(addr: &str) -> Option<String> {
    let mut c = Client::connect(addr).ok()?;
    let resp = c.request("STATS").ok()?;
    if !resp.is_ok() {
        return None;
    }
    resp.status.strip_prefix("+OK ").map(|s| s.to_string())
}

/// Executes the plan against a live endpoint. Errors only on total
/// failure to reach the target; per-op failures land in the report.
pub fn run_live(plan: &Plan, cfg: &RunnerCfg) -> Result<RunOutcome, MqdError> {
    // Fail fast (and typed) when the endpoint is unreachable.
    let probe = TcpStream::connect(&cfg.addr).map_err(|e| MqdError::Io(e.to_string()))?;
    drop(probe);
    let stats_before = fetch_stats(&cfg.addr);

    // Materialize per-lane schedules (wire bytes rendered up front so the
    // paced path does no formatting).
    let nlanes = plan.lanes.max(1) as usize;
    let mut lanes: Vec<Vec<LaneOp>> = Vec::with_capacity(nlanes);
    lanes.resize_with(nlanes, Vec::new);
    for op in &plan.ops {
        if let Some(lane) = lanes.get_mut(op.lane as usize) {
            lane.push(LaneOp {
                at_us: op.at_us,
                bytes: op.action.wire_bytes(),
                is_query: matches!(op.action, Action::Query(_)),
            });
        }
    }

    let clock = RealClock::new();
    let agg = Mutex::new(Agg::default());
    std::thread::scope(|s| {
        for lane_ops in &lanes {
            if lane_ops.is_empty() {
                continue;
            }
            let conn = TcpStream::connect(&cfg.addr).and_then(|c| {
                c.set_read_timeout(Some(TICK))?;
                c.set_write_timeout(Some(Duration::from_secs(5)))?;
                let _ = c.set_nodelay(true);
                let w = c.try_clone()?;
                Ok((c, w))
            });
            match conn {
                Ok((read_half, write_half)) => {
                    let (tx, rx) = channel::<(u64, bool)>();
                    let clock_ref = &clock;
                    let agg_ref = &agg;
                    let patience = cfg.response_timeout_us;
                    s.spawn(move || lane_writer(clock_ref, lane_ops, write_half, tx, agg_ref));
                    s.spawn(move || lane_reader(clock_ref, read_half, rx, patience, agg_ref));
                }
                Err(_) => {
                    if let Ok(mut g) = agg.lock() {
                        g.counts.dropped += lane_ops.len() as u64;
                    }
                }
            }
        }
        for sc in &plan.slow_conns {
            let clock_ref = &clock;
            let agg_ref = &agg;
            let addr = cfg.addr.as_str();
            let end_us = plan.duration_us;
            s.spawn(move || run_slow_conn(clock_ref, sc, addr, end_us, agg_ref));
        }
    });
    let wall_us = clock.now_us().max(1);
    let stats_after = fetch_stats(&cfg.addr);

    let agg = agg.into_inner().unwrap_or_default();
    Ok(RunOutcome {
        mode: "live",
        all_hist: agg.all_hist,
        query_hist: agg.query_hist,
        counts: agg.counts,
        slow: agg.slow,
        wall_us,
        stats_before,
        stats_after,
    })
}
