//! Deterministic in-process service model: the `--sim` executor.
//!
//! Replays a [`Plan`] against a k-worker queueing model in virtual time —
//! no sockets, no wall clock, no nondeterminism — so the *entire* report
//! is a pure function of the plan: same seed, byte-identical artifact.
//! That is the determinism half of the harness contract (live runs pin
//! the schedule via the plan digest; sim runs pin everything), and it is
//! what the ddmin shrinker replays thousands of times while minimizing a
//! failing schedule.
//!
//! The model is deliberately simple but honest about queueing: ops wait
//! for the earliest-free worker, waiting beyond the admission budget is a
//! typed overload (matching the server's bounded accept queue), and slow
//! connections park a worker until the modeled idle deadline — or forever
//! when the model is told the server has none, which is exactly how the
//! slowloris SLO catches a starvation regression.

use mqd_rng::{RngExt, SeedableRng, StdRng};

use crate::hist::Hist;
use crate::plan::{Action, Plan};
use crate::report::{Counts, RunOutcome, SlowOutcome};

/// Service-model knobs.
#[derive(Clone, Debug)]
pub struct SimParams {
    /// Modeled worker pool size.
    pub workers: u16,
    /// Mean service time of a query, µs.
    pub service_us_query: u64,
    /// Mean service time of an ingest op, µs.
    pub service_us_ingest: u64,
    /// Max queueing delay before the model answers `-OVERLOADED`
    /// (the bounded accept queue, expressed in time).
    pub queue_budget_us: u64,
    /// Modeled idle deadline for parked connections; `None` models a
    /// server with no idle timeout (slow connections starve workers).
    pub idle_timeout_us: Option<u64>,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            workers: 4,
            service_us_query: 1_500,
            service_us_ingest: 400,
            queue_budget_us: 250_000,
            idle_timeout_us: Some(2_000_000),
        }
    }
}

impl SimParams {
    /// Parameters provisioned like a live deployment for this plan: one
    /// worker per paced lane and per slow connection plus spare (the same
    /// sizing guidance the CI load job applies to `--threads`), so the
    /// model tests admission control rather than a deliberately starved
    /// pool. Use `SimParams::default()` to study saturation instead.
    pub fn for_plan(plan: &crate::plan::Plan) -> Self {
        let workers = (plan.lanes as usize + plan.slow_conns.len() + 2).max(4);
        SimParams {
            workers: workers.min(u16::MAX as usize) as u16,
            ..SimParams::default()
        }
    }
}

/// Runs the plan through the model. Deterministic: the only randomness is
/// a service-time jitter stream seeded from the plan's own fingerprint.
pub fn run_sim(plan: &Plan, params: &SimParams) -> RunOutcome {
    let mut rng = StdRng::seed_from_u64(plan.seed ^ plan.digest());
    let k = params.workers.max(1) as usize;
    let mut free_at = vec![0u64; k];
    let mut counts = Counts::default();
    let mut slow = SlowOutcome::default();
    let mut all_hist = Hist::new();
    let mut query_hist = Hist::new();
    let mut last_done = 0u64;

    // Merge ops and slow-connection openings into one virtual timeline.
    enum Ev<'a> {
        Op(&'a Action, u64),
        Slow(u64),
    }
    let mut events: Vec<Ev> = plan
        .ops
        .iter()
        .map(|o| Ev::Op(&o.action, o.at_us))
        .chain(plan.slow_conns.iter().map(|c| Ev::Slow(c.open_at_us)))
        .collect();
    events.sort_by_key(|e| match e {
        Ev::Op(_, t) | Ev::Slow(t) => *t,
    });

    for ev in events {
        // Earliest-free worker takes the next event.
        let (widx, &wfree) = free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .unwrap_or((0, &0));
        match ev {
            Ev::Slow(open_at) => {
                slow.opened += 1;
                let start = open_at.max(wfree);
                match params.idle_timeout_us {
                    Some(idle) => {
                        // The modeled server enforces its idle deadline:
                        // the worker frees up, the client gets a typed
                        // rejection.
                        if let Some(f) = free_at.get_mut(widx) {
                            *f = start + idle;
                        }
                        slow.typed_rejected += 1;
                    }
                    None => {
                        // No idle deadline: this worker is gone for the
                        // whole run. The SLO calls this out.
                        if let Some(f) = free_at.get_mut(widx) {
                            *f = u64::MAX / 2;
                        }
                        slow.unresolved += 1;
                    }
                }
            }
            Ev::Op(action, at) => {
                let start = at.max(wfree);
                let wait = start - at;
                if wait > params.queue_budget_us {
                    // Admission control: typed overload, answered fast,
                    // no worker consumed.
                    counts.overloads += 1;
                    continue;
                }
                let mean = match action {
                    Action::Query(_) => params.service_us_query,
                    Action::Ingest(_) | Action::IngestBatch(_) => params.service_us_ingest,
                    Action::Ping => 50,
                };
                let jitter = rng.random_range(0..mean.max(4) / 2);
                let done = start + mean + jitter;
                if let Some(f) = free_at.get_mut(widx) {
                    *f = done;
                }
                let latency = done - at;
                all_hist.record(latency);
                if matches!(action, Action::Query(_)) {
                    query_hist.record(latency);
                }
                counts.ok += 1;
                last_done = last_done.max(done);
            }
        }
    }

    RunOutcome {
        mode: "sim",
        all_hist,
        query_hist,
        counts,
        slow,
        wall_us: plan.duration_us.max(last_done),
        stats_before: None,
        stats_after: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::render_report;
    use crate::scenario::{build, ScenarioCfg};

    fn cfg() -> ScenarioCfg {
        ScenarioCfg {
            rate: 300.0,
            duration_ms: 2_000,
            ..ScenarioCfg::default()
        }
    }

    /// The satellite determinism contract: same seed ⇒ byte-identical
    /// schedule AND byte-identical report.
    #[test]
    fn same_seed_gives_byte_identical_report() {
        for name in ["steady", "flashcrowd", "zipf-users"] {
            let p1 = build(name, &cfg()).unwrap();
            let p2 = build(name, &cfg()).unwrap();
            assert_eq!(p1.encode(), p2.encode(), "{name}: schedule must repeat");
            let r1 = render_report(&p1, &run_sim(&p1, &SimParams::default()));
            let r2 = render_report(&p2, &run_sim(&p2, &SimParams::default()));
            assert_eq!(r1, r2, "{name}: report must be byte-identical");
        }
    }

    #[test]
    fn different_seed_changes_the_report() {
        let p1 = build("steady", &cfg()).unwrap();
        let p2 = build("steady", &ScenarioCfg { seed: 1, ..cfg() }).unwrap();
        let r1 = render_report(&p1, &run_sim(&p1, &SimParams::default()));
        let r2 = render_report(&p2, &run_sim(&p2, &SimParams::default()));
        assert_ne!(r1, r2);
    }

    #[test]
    fn overload_appears_when_rate_exceeds_capacity() {
        // 4 workers at ~1.5 ms per query serve ~2600 ops/s; offering 20k/s
        // must trip the admission budget.
        let p = build(
            "steady",
            &ScenarioCfg {
                rate: 20_000.0,
                duration_ms: 1_000,
                ..ScenarioCfg::default()
            },
        )
        .unwrap();
        let out = run_sim(&p, &SimParams::default());
        assert!(out.counts.overloads > 0, "saturation must overload");
        // And the served latencies carry real queueing delay: p99 well
        // above the bare service time.
        assert!(out.all_hist.value_at_percentile(99.0) > 10_000);
    }

    #[test]
    fn slowloris_with_idle_timeout_passes_without_starves() {
        // Provision the pool like the CI load job provisions `--threads`:
        // enough workers that the slow fleet cannot consume every lane.
        let p = build("slowloris", &cfg()).unwrap();
        let out = run_sim(&p, &SimParams::for_plan(&p));
        assert_eq!(out.slow.opened, 16);
        assert_eq!(out.slow.typed_rejected, 16);
        assert_eq!(out.slow.unresolved, 0);
        assert!(crate::report::evaluate_slo("slowloris", &out).is_empty());
    }

    #[test]
    fn slowloris_without_idle_timeout_fails_the_slo() {
        let p = build("slowloris", &cfg()).unwrap();
        let out = run_sim(
            &p,
            &SimParams {
                idle_timeout_us: None,
                ..SimParams::for_plan(&p)
            },
        );
        assert!(out.slow.unresolved > 0);
        let v = crate::report::evaluate_slo("slowloris", &out);
        assert!(v.iter().any(|m| m.contains("parked")), "{v:?}");
    }

    #[test]
    fn open_loop_latency_includes_queueing_under_diurnal_peak() {
        // The mean offered rate (~1970/s at amplitude 0.7) sits under the
        // 4-worker capacity (~2500/s) but the tide's peak (2720/s) exceeds
        // it, so queueing delay accumulates only around the peak. An
        // open-loop recorder must surface that as a fat tail over a thin
        // median — the exact signal a closed-loop harness hides by
        // slowing its own clients.
        let p = build(
            "diurnal",
            &ScenarioCfg {
                rate: 1_600.0,
                duration_ms: 4_000,
                ..ScenarioCfg::default()
            },
        )
        .unwrap();
        let out = run_sim(&p, &SimParams::default());
        let p50 = out.all_hist.value_at_percentile(50.0);
        let p999 = out.all_hist.value_at_percentile(99.9);
        assert!(
            p999 > p50 * 4,
            "peak-hour queueing must fatten the tail (p50={p50} p999={p999})"
        );
        assert!(
            p999 > 10_000,
            "tail must carry real queueing delay, not bare service time (p999={p999})"
        );
    }
}
