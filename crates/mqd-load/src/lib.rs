//! `mqd-load`: the open-loop production load harness (DESIGN.md §17).
//!
//! The closed-loop benches (`mqd-bench`) measure a server that is allowed
//! to pace its own clients: a slow response delays the next request, so
//! queueing delay disappears from the numbers — coordinated omission.
//! This crate generates load the way production traffic arrives: a
//! deterministic schedule of send deadlines ([`plan`]) built by named
//! scenario composers ([`scenario`]), fired at the deadline whether or
//! not earlier responses came back ([`pacer`]), with latency measured
//! from the *scheduled* send time ([`runner`]). Every choice derives from
//! one seed; reports ([`report`]) are byte-stable evidence artifacts; a
//! deterministic service-model executor ([`sim`]) makes whole reports
//! reproducible bit-for-bit and powers ddmin shrinking of failing
//! schedules ([`shrink`]).
//!
//! The latency recorder ([`hist`]) is shared with `mqd-bench`, so closed-
//! and open-loop percentile math can never drift apart.

#![warn(missing_docs)]

pub mod clock;
pub mod hist;
pub mod pacer;
pub mod plan;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod shrink;
pub mod sim;

pub use clock::{Clock, RealClock, VirtualClock};
pub use hist::Hist;
pub use plan::{Action, Op, Plan, SlowConn};
pub use report::{evaluate_slo, render_report, Counts, RunOutcome, SlowOutcome};
pub use runner::{run_live, RunnerCfg};
pub use scenario::{build, ScenarioCfg, CATALOG};
pub use shrink::shrink_plan;
pub use sim::{run_sim, SimParams};
