//! Time source abstraction for the open-loop scheduler.
//!
//! The pacer fires requests at precomputed deadlines. Behind a [`Clock`]
//! it runs identically against wall time ([`RealClock`], live runs) and
//! simulated time ([`VirtualClock`], unit tests and `--sim` runs): the
//! virtual clock's `sleep_until_us` simply advances "now" to the deadline,
//! so a test can prove the schedule is honored at exact microsecond
//! deadlines without waiting out the run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Monotonic microsecond time source with deadline sleeps.
pub trait Clock: Send + Sync {
    /// Microseconds elapsed since the clock's epoch (its construction).
    fn now_us(&self) -> u64;
    /// Blocks (or advances virtual time) until `now_us() >= t`.
    fn sleep_until_us(&self, t: u64);
}

/// Wall-clock time, epoch = construction.
pub struct RealClock {
    start: Instant,
}

impl RealClock {
    /// Starts the epoch now.
    pub fn new() -> Self {
        RealClock {
            start: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        RealClock::new()
    }
}

impl Clock for RealClock {
    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn sleep_until_us(&self, t: u64) {
        loop {
            let now = self.now_us();
            if now >= t {
                return;
            }
            // One bounded sleep per loop turn; re-check for oversleep
            // tolerance on coarse-timer hosts.
            std::thread::sleep(Duration::from_micros(t - now));
        }
    }
}

/// Simulated time: `sleep_until_us` jumps "now" forward, never blocks.
/// Shared across threads; `now` only moves forward (fetch_max).
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    /// Starts at t = 0.
    pub fn new() -> Self {
        VirtualClock {
            now: AtomicU64::new(0),
        }
    }

    /// Advances "now" to `t` if that is forward progress (test hook for
    /// modeling work that takes time).
    pub fn advance_to(&self, t: u64) {
        self.now.fetch_max(t, Ordering::SeqCst);
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock::new()
    }
}

impl Clock for VirtualClock {
    fn now_us(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn sleep_until_us(&self, t: u64) {
        self.now.fetch_max(t, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_on_sleep() {
        let c = VirtualClock::new();
        assert_eq!(c.now_us(), 0);
        c.sleep_until_us(1_000);
        assert_eq!(c.now_us(), 1_000);
        // Sleeping until the past is a no-op, not a rewind.
        c.sleep_until_us(10);
        assert_eq!(c.now_us(), 1_000);
    }

    #[test]
    fn real_clock_reaches_deadlines() {
        let c = RealClock::new();
        c.sleep_until_us(2_000);
        assert!(c.now_us() >= 2_000);
    }
}
