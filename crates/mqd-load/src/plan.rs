//! The deterministic request schedule.
//!
//! A [`Plan`] is the complete, materialized client behavior of one load
//! run: every request, its wire bytes, its send deadline, and which
//! connection lane carries it — plus the slow-connection fleet for the
//! `slowloris` scenario. Plans are pure functions of (scenario, seed,
//! knobs): the live runner and the `--sim` executor consume the *same*
//! plan, and [`Plan::digest`] fingerprints it so a report can prove which
//! schedule produced its numbers. A failing SLO therefore shrinks to a
//! replayable `(scenario, seed)` pair, and from there to a minimal op
//! list via the ddmin pass in [`crate::shrink`].

use mqd_core::record::{encode_records, Record};
use mqd_server::format_query;
use mqd_store::QuerySpec;

/// One client action the harness can schedule.
#[derive(Clone, PartialEq, Debug)]
pub enum Action {
    /// `PING` liveness probe.
    Ping,
    /// One `QUERY` in the canonical wire form.
    Query(QuerySpec),
    /// One `INGEST` row.
    Ingest(Record),
    /// One MQDL-framed `INGESTB` batch.
    IngestBatch(Vec<Record>),
}

/// A scheduled action: fire at `at_us` (microseconds from run start) on
/// connection lane `lane`, regardless of whether earlier responses have
/// arrived — that independence is what makes the loop open.
#[derive(Clone, PartialEq, Debug)]
pub struct Op {
    /// Send deadline, microseconds from run start.
    pub at_us: u64,
    /// Connection lane carrying this op (ops on a lane are pipelined FIFO).
    pub lane: u16,
    /// What to send.
    pub action: Action,
}

/// One misbehaving connection for the admission-control scenarios: opens
/// at `open_at_us`, dribbles `dribble` one byte every `interval_us` (empty
/// for a half-open connection that sends nothing), then holds the socket
/// for `hold_us` before giving up.
#[derive(Clone, PartialEq, Debug)]
pub struct SlowConn {
    /// When to open the connection, microseconds from run start.
    pub open_at_us: u64,
    /// Bytes to dribble one at a time; empty = half-open (send nothing).
    pub dribble: Vec<u8>,
    /// Gap between dribbled bytes.
    pub interval_us: u64,
    /// How long to keep the socket open after the dribble.
    pub hold_us: u64,
}

/// A complete deterministic load schedule.
#[derive(Clone, PartialEq, Debug)]
pub struct Plan {
    /// Scenario name (`steady`, `flashcrowd`, ...).
    pub scenario: String,
    /// The single seed every choice in this plan derives from.
    pub seed: u64,
    /// Nominal run length, microseconds.
    pub duration_us: u64,
    /// Mean offered rate over the run, requests/second.
    pub offered_rate: f64,
    /// Number of paced connection lanes.
    pub lanes: u16,
    /// The schedule, sorted by `at_us`.
    pub ops: Vec<Op>,
    /// Slow-connection fleet (empty for well-behaved scenarios).
    pub slow_conns: Vec<SlowConn>,
}

/// 64-bit FNV-1a, the workspace's standard content fingerprint.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

impl Action {
    /// The exact bytes the runner writes on the socket for this action
    /// (request line, newline, and — for `INGESTB` — the framed body).
    pub fn wire_bytes(&self) -> Vec<u8> {
        match self {
            Action::Ping => b"PING\n".to_vec(),
            Action::Query(spec) => {
                let mut v = format_query(spec).into_bytes();
                v.push(b'\n');
                v
            }
            Action::Ingest(r) => {
                let labels: Vec<String> = r.labels.iter().map(|l| l.to_string()).collect();
                format!("INGEST {} {} {}\n", r.id, r.value, labels.join(",")).into_bytes()
            }
            Action::IngestBatch(rows) => {
                let body = encode_records(rows);
                let mut v = format!("INGESTB {}\n", body.len()).into_bytes();
                v.extend_from_slice(&body);
                v
            }
        }
    }

    /// Whether the action is an ingest-side write (for mix accounting).
    pub fn is_ingest(&self) -> bool {
        matches!(self, Action::Ingest(_) | Action::IngestBatch(_))
    }

    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Action::Ping => buf.push(0),
            Action::Query(spec) => {
                buf.push(1);
                buf.extend_from_slice(format_query(spec).as_bytes());
            }
            Action::Ingest(r) => {
                buf.push(2);
                put_u64(buf, r.id);
                put_i64(buf, r.value);
                for &l in &r.labels {
                    buf.extend_from_slice(&l.to_le_bytes());
                }
            }
            Action::IngestBatch(rows) => {
                buf.push(3);
                buf.extend_from_slice(&encode_records(rows));
            }
        }
    }
}

impl Plan {
    /// Canonical byte encoding of the whole schedule: what the digest and
    /// the byte-identity determinism test are computed over.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.ops.len() * 24);
        buf.extend_from_slice(self.scenario.as_bytes());
        buf.push(0);
        put_u64(&mut buf, self.seed);
        put_u64(&mut buf, self.duration_us);
        put_u64(&mut buf, self.offered_rate.to_bits());
        buf.extend_from_slice(&self.lanes.to_le_bytes());
        put_u64(&mut buf, self.ops.len() as u64);
        for op in &self.ops {
            put_u64(&mut buf, op.at_us);
            buf.extend_from_slice(&op.lane.to_le_bytes());
            op.action.encode_into(&mut buf);
        }
        put_u64(&mut buf, self.slow_conns.len() as u64);
        for sc in &self.slow_conns {
            put_u64(&mut buf, sc.open_at_us);
            put_u64(&mut buf, sc.dribble.len() as u64);
            buf.extend_from_slice(&sc.dribble);
            put_u64(&mut buf, sc.interval_us);
            put_u64(&mut buf, sc.hold_us);
        }
        buf
    }

    /// FNV-1a fingerprint of [`Plan::encode`]; stamped into every report.
    pub fn digest(&self) -> u64 {
        fnv1a64(&self.encode())
    }

    /// Number of query ops.
    pub fn query_ops(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o.action, Action::Query(_)))
            .count()
    }

    /// Number of ingest ops (single rows and batches).
    pub fn ingest_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.action.is_ingest()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqd_store::Algorithm;

    fn spec() -> QuerySpec {
        QuerySpec {
            labels: vec![0, 2],
            lambda: 50,
            proportional: false,
            algorithm: Algorithm::Scan,
            from: i64::MIN,
            to: i64::MAX,
        }
    }

    fn plan() -> Plan {
        Plan {
            scenario: "steady".into(),
            seed: 42,
            duration_us: 1_000_000,
            offered_rate: 100.0,
            lanes: 2,
            ops: vec![
                Op {
                    at_us: 0,
                    lane: 0,
                    action: Action::Query(spec()),
                },
                Op {
                    at_us: 10_000,
                    lane: 1,
                    action: Action::Ingest(Record {
                        id: 7,
                        value: 123,
                        labels: vec![0],
                    }),
                },
            ],
            slow_conns: vec![],
        }
    }

    #[test]
    fn wire_bytes_match_protocol_forms() {
        assert_eq!(Action::Ping.wire_bytes(), b"PING\n");
        assert_eq!(Action::Query(spec()).wire_bytes(), b"QUERY 0,2 50 scan\n");
        let r = Record {
            id: 7,
            value: 123,
            labels: vec![0, 3],
        };
        assert_eq!(Action::Ingest(r).wire_bytes(), b"INGEST 7 123 0,3\n");
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let p = plan();
        let d1 = p.digest();
        let d2 = plan().digest();
        assert_eq!(d1, d2, "same plan must fingerprint identically");
        let mut q = plan();
        q.ops[0].at_us = 1;
        assert_ne!(d1, q.digest(), "moving a deadline must change the digest");
        let mut q = plan();
        q.seed = 43;
        assert_ne!(d1, q.digest(), "seed is part of the fingerprint");
    }

    #[test]
    fn op_mix_accounting() {
        let p = plan();
        assert_eq!(p.query_ops(), 1);
        assert_eq!(p.ingest_ops(), 1);
    }
}
