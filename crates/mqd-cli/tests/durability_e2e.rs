//! Kill-and-restore acceptance: SIGKILL the real `mqdiv serve --data-dir`
//! process at seed-determined points mid-ingest, restart from the same
//! data dir, and require byte-identical responses — for every QUERY
//! algorithm (plus PROP) and the STATS core — against a reference server
//! that ingested the same recovered prefix uninterrupted. A second pass
//! kills the server mid-SUBSCRIBE and proves the resumed named session
//! reassembles the exact emission stream with zero duplicates.
//!
//! The base seed matrix extends via `MQD_CHAOS_SEED` (the CI durability
//! job's lever). `--no-fsync` is sound here: acked frames are written
//! with plain `write_all` syscalls, so they survive process death — only
//! power loss needs the fsync, and SIGKILL is not a power cut.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use mqd_server::protocol::TERMINATOR;

/// Deterministic per-seed parameters without an RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn chaos_seeds() -> Vec<u64> {
    let mut seeds = vec![1, 7];
    if let Ok(s) = std::env::var("MQD_CHAOS_SEED") {
        if let Ok(extra) = s.parse() {
            if !seeds.contains(&extra) {
                seeds.push(extra);
            }
        }
    }
    seeds
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mqdiv-durable-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Spawns `mqdiv serve --data-dir <dir> --no-fsync` and returns the child
/// plus the announced ephemeral address.
fn spawn_serve(dir: &Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mqdiv"))
        .args(["serve", "--addr", "127.0.0.1:0", "--no-fsync"])
        .args(["--data-dir", dir.to_str().expect("utf8 path")])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn mqdiv serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read announce line");
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announce line: {line:?}"))
        .trim()
        .to_string();
    (child, addr)
}

/// Minimal framed-protocol client over a raw socket (raw so the
/// subscription test can stop mid-stream and kill the server).
struct Conn {
    r: BufReader<TcpStream>,
    w: TcpStream,
}

impl Conn {
    fn connect(addr: &str) -> Conn {
        let s = TcpStream::connect(addr).expect("connect");
        Conn {
            r: BufReader::new(s.try_clone().expect("clone stream")),
            w: s,
        }
    }

    fn send(&mut self, line: &str) {
        self.w
            .write_all(format!("{line}\n").as_bytes())
            .expect("send request");
    }

    fn read_line(&mut self) -> String {
        let mut l = String::new();
        assert!(
            self.r.read_line(&mut l).expect("read line") > 0,
            "peer closed"
        );
        l.trim_end_matches('\n').to_string()
    }

    /// Full framed response: status line plus payload lines, terminator
    /// stripped.
    fn request(&mut self, line: &str) -> Vec<String> {
        self.send(line);
        let mut lines = Vec::new();
        loop {
            let l = self.read_line();
            if l == TERMINATOR {
                return lines;
            }
            lines.push(l);
        }
    }
}

/// Seeded monotone ingest rows as INGEST request lines.
fn ingest_lines(seed: u64, n: usize) -> Vec<String> {
    let mut s = seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1);
    let mut value = 0i64;
    (0..n)
        .map(|i| {
            value += 1 + (splitmix64(&mut s) % 50) as i64;
            let k = 1 + (splitmix64(&mut s) % 3) as usize;
            let labels: Vec<String> = (0..k)
                .map(|_| (splitmix64(&mut s) % 5).to_string())
                .collect();
            format!("INGEST {} {} {}", i + 1, value, labels.join(","))
        })
        .collect()
}

fn stats_core(stats_line: &str) -> &str {
    let cut = stats_line
        .find(r#","cache""#)
        .unwrap_or_else(|| panic!("unexpected STATS shape: {stats_line}"));
    &stats_line[..cut]
}

fn rows_of(stats_line: &str) -> usize {
    let tail = stats_line
        .split(r#""rows":"#)
        .nth(1)
        .unwrap_or_else(|| panic!("no rows field: {stats_line}"));
    tail.split(',')
        .next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("bad rows field: {stats_line}"))
}

fn drain(addr: &str, child: &mut Child) {
    let mut c = Conn::connect(addr);
    let resp = c.request("DRAIN");
    assert!(resp[0].starts_with("+OK"), "{resp:?}");
    child.wait().expect("reap drained server");
}

#[test]
fn kill_and_restore_answers_byte_identically() {
    let queries = [
        "QUERY 0,1,2,3,4 300 opt",
        "QUERY 0,1,2,3,4 300 greedysc",
        "QUERY 0,1,2,3,4 300 scan",
        "QUERY 0,1,2,3,4 300 scanplus",
        "QUERY 0,1,2,3,4 300 greedysc PROP",
    ];
    for seed in chaos_seeds() {
        let mut s = seed;
        let acked_n = 80 + (splitmix64(&mut s) % 80) as usize;
        let burst_n = 40 + (splitmix64(&mut s) % 60) as usize;
        let rows = ingest_lines(seed, acked_n + burst_n);

        let dir = tmpdir(&format!("kill-{seed}"));
        let (mut victim, addr) = spawn_serve(&dir);
        let mut c = Conn::connect(&addr);
        for line in &rows[..acked_n] {
            let resp = c.request(line);
            assert!(resp[0].starts_with("+OK"), "seed {seed}: {resp:?}");
        }
        // Pipeline the unacked burst and kill mid-flight: the server may
        // have applied any prefix of it, none of it acknowledged.
        let mut burst = String::new();
        for line in &rows[acked_n..] {
            burst.push_str(line);
            burst.push('\n');
        }
        c.w.write_all(burst.as_bytes()).expect("pipeline burst");
        std::thread::sleep(std::time::Duration::from_millis(splitmix64(&mut s) % 40));
        victim.kill().expect("SIGKILL victim");
        victim.wait().expect("reap victim");

        // Restart from the data dir: recovered rows = every acked row plus
        // some unacked prefix, never more, never reordered.
        let (mut restored, addr_b) = spawn_serve(&dir);
        let mut b = Conn::connect(&addr_b);
        let stats_b = b.request("STATS");
        let recovered = rows_of(&stats_b[0]);
        assert!(
            (acked_n..=acked_n + burst_n).contains(&recovered),
            "seed {seed}: recovered {recovered} outside [{acked_n}, {}]",
            acked_n + burst_n
        );

        // Reference: a never-killed server fed exactly the recovered prefix.
        let ref_dir = tmpdir(&format!("ref-{seed}"));
        let (mut reference, addr_c) = spawn_serve(&ref_dir);
        let mut r = Conn::connect(&addr_c);
        for line in &rows[..recovered] {
            let resp = r.request(line);
            assert!(resp[0].starts_with("+OK"), "seed {seed}: {resp:?}");
        }
        let stats_r = r.request("STATS");
        assert_eq!(
            stats_core(&stats_b[0]),
            stats_core(&stats_r[0]),
            "seed {seed}: STATS core must match the uninterrupted run"
        );
        for q in queries {
            assert_eq!(
                b.request(q),
                r.request(q),
                "seed {seed}: {q} diverged after restore"
            );
        }

        drain(&addr_b, &mut restored);
        drain(&addr_c, &mut reference);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&ref_dir);
    }
}

#[test]
fn killed_subscriber_resumes_byte_identically() {
    const ROWS: usize = 600;
    const SUB: &str = "SUBSCRIBE 0,1,2,3,4 10 120 scan";
    const CUT: usize = 300;
    let rows = ingest_lines(42, ROWS);

    // Reference stream: one uninterrupted anonymous run.
    let ref_dir = tmpdir("sub-ref");
    let (mut reference, addr_r) = spawn_serve(&ref_dir);
    let mut r = Conn::connect(&addr_r);
    for line in &rows {
        assert!(r.request(line)[0].starts_with("+OK"));
    }
    let full = r.request(SUB);
    assert!(full[0].starts_with("+OK"), "{full:?}");
    let full_emits: Vec<&String> = full.iter().filter(|l| l.starts_with("EMIT ")).collect();
    let done = full.last().expect("DONE line");
    assert!(done.starts_with("DONE "), "{done}");
    assert!(
        full_emits.len() > CUT + 20,
        "profile must emit well past the cut: {}",
        full_emits.len()
    );

    // Victim: same ingest, named subscription, killed after CUT emissions.
    let dir = tmpdir("sub-kill");
    let (mut victim, addr_a) = spawn_serve(&dir);
    let mut a = Conn::connect(&addr_a);
    for line in &rows {
        assert!(a.request(line)[0].starts_with("+OK"));
    }
    let mut sub = Conn::connect(&addr_a);
    sub.send(&format!("{SUB} NAME feed-1"));
    let status = sub.read_line();
    assert!(status.starts_with("+OK"), "{status}");
    let mut first: Vec<String> = Vec::new();
    while first.len() < CUT {
        let l = sub.read_line();
        assert!(
            !l.starts_with("DONE "),
            "stream finished before the cut — raise ROWS or lower CUT"
        );
        if l.starts_with("EMIT ") {
            first.push(l);
        }
    }
    victim.kill().expect("SIGKILL victim");
    victim.wait().expect("reap victim");
    drop(sub);

    // Restart and resume: the reassembled stream must be byte-identical
    // to the uninterrupted run — every emission exactly once.
    let (mut restored, addr_b) = spawn_serve(&dir);
    let mut b = Conn::connect(&addr_b);
    let resumed = b.request(&format!("{SUB} NAME feed-1 AFTER {CUT}"));
    assert!(resumed[0].starts_with("+OK"), "{resumed:?}");
    let rest: Vec<&String> = resumed.iter().filter(|l| l.starts_with("EMIT ")).collect();
    let reassembled: Vec<&String> = first.iter().chain(rest.iter().copied()).collect();
    assert_eq!(
        reassembled, full_emits,
        "resumed stream must reassemble the uninterrupted emission sequence"
    );
    assert_eq!(
        resumed.last(),
        Some(done),
        "DONE totals must be skip-independent"
    );
    // Completion released the session: its checkpoint file is gone.
    assert!(!dir.join("subs").join("feed-1").exists());

    drain(&addr_r, &mut reference);
    drain(&addr_b, &mut restored);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ref_dir);
}
