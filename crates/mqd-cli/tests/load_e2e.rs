//! Load-harness acceptance: the `mqdiv load` scenario fleet against real
//! `mqdiv serve` and `mqdiv route` processes over TCP.
//!
//! Covers the two SLO claims that need a live socket to mean anything:
//! a paced open-loop run produces a passing evidence artifact against
//! both serving targets, and the slowloris fleet is answered with typed
//! `-ERR Timeout` rejections (idle-timeout armed) instead of worker
//! starvation — with the server still serving and panic-free afterwards.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

/// Spawns one `mqdiv` serving process with an ephemeral `--addr` and
/// returns the child plus the announced address.
fn spawn_mqdiv(args: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mqdiv"))
        .args(args)
        .args(["--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn mqdiv");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read announce line");
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announce line: {line:?}"))
        .trim()
        .to_string();
    (child, addr)
}

/// Runs `mqdiv load --check` against `addr`, writing the report to `out`.
fn run_load(scenario: &str, addr: &str, rate: &str, duration_ms: &str, out: &std::path::Path) {
    let status = Command::new(env!("CARGO_BIN_EXE_mqdiv"))
        .args([
            "load",
            "--scenario",
            scenario,
            "--addr",
            addr,
            "--rate",
            rate,
            "--duration-ms",
            duration_ms,
            "--check",
            "--out",
        ])
        .arg(out)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .status()
        .expect("run mqdiv load");
    assert!(status.success(), "{scenario}: mqdiv load --check failed");
}

fn drain(addr: &str) {
    let mut s = TcpStream::connect(addr).expect("connect for DRAIN");
    s.write_all(b"DRAIN\n").expect("send DRAIN");
    let mut resp = String::new();
    let _ = BufReader::new(s).read_line(&mut resp);
    assert!(resp.starts_with("+OK"), "DRAIN answered {resp:?}");
}

fn request(addr: &str, line: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(line.as_bytes()).expect("send");
    s.write_all(b"\n").expect("send newline");
    let mut resp = String::new();
    let _ = BufReader::new(s).read_line(&mut resp);
    resp
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("mqd_load_e2e");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

#[test]
fn steady_open_loop_run_passes_against_a_live_server() {
    let (mut server, addr) = spawn_mqdiv(&["serve", "--threads", "8"]);
    let out = scratch("BENCH_load_steady.json");
    run_load("steady", &addr, "150.0", "1500", &out);
    let report = std::fs::read_to_string(&out).expect("report written");
    assert!(report.contains("\"mode\":\"live\""), "{report}");
    assert!(report.contains("\"slo\":{\"pass\":true"), "{report}");
    assert!(report.contains("\"p999\""), "{report}");
    // The STATS delta proves the ops actually reached this server.
    assert!(report.contains("\"stats_delta\":{"), "{report}");
    drain(&addr);
    assert!(server.wait().expect("server exit").success());
}

#[test]
fn slowloris_fleet_is_typed_timeout_not_starvation() {
    // Provision workers for every lane + slow conn (the sizing rule the
    // CI job uses) and arm a 500 ms idle budget.
    let (mut server, addr) = spawn_mqdiv(&["serve", "--threads", "24", "--idle-timeout-ms", "500"]);
    let out = scratch("BENCH_load_slowloris.json");
    run_load("slowloris", &addr, "100.0", "2000", &out);
    let report = std::fs::read_to_string(&out).expect("report written");
    assert!(report.contains("\"slo\":{\"pass\":true"), "{report}");
    assert!(report.contains("\"unresolved\":0"), "{report}");
    // At least part of the fleet saw an explicit typed rejection.
    let count = |key: &str| {
        report
            .split(&format!("\"{key}\":"))
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or_else(|| panic!("{key} in report: {report}"))
    };
    let (opened, typed, closed) = (
        count("opened"),
        count("typed_rejected"),
        count("server_closed"),
    );
    assert!(opened > 0, "fleet never connected: {report}");
    assert!(
        typed > 0,
        "expected typed -ERR Timeout rejections: {report}"
    );
    assert_eq!(typed + closed, opened, "whole fleet resolved: {report}");
    // The server survived the whole fleet: still serving, counted the
    // timeouts, and panicked zero times (a panic would show as errors).
    let stats = request(&addr, "STATS");
    assert!(stats.starts_with("+OK"), "{stats}");
    let timeouts = stats
        .split("\"timeouts\":")
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
        .and_then(|s| s.trim().parse::<u64>().ok())
        .expect("timeouts key in STATS");
    assert!(timeouts > 0, "server must count idle timeouts: {stats}");
    drain(&addr);
    assert!(server.wait().expect("server exit").success());
}

#[test]
fn flashcrowd_runs_against_a_sharded_router() {
    let (mut b0, a0) = spawn_mqdiv(&["serve", "--shard-id", "0", "--shard-count", "2"]);
    let (mut b1, a1) = spawn_mqdiv(&["serve", "--shard-id", "1", "--shard-count", "2"]);
    let backends = format!("{a0},{a1}");
    let (mut router, addr) = spawn_mqdiv(&[
        "route",
        "--backends",
        &backends,
        "--shards",
        "2",
        "--threads",
        "8",
        "--idle-timeout-ms",
        "1000",
    ]);
    let out = scratch("BENCH_load_flashcrowd.json");
    run_load("flashcrowd", &addr, "80.0", "1500", &out);
    let report = std::fs::read_to_string(&out).expect("report written");
    assert!(report.contains("\"slo\":{\"pass\":true"), "{report}");
    // Router STATS carries per-backend liveness; the delta must see both
    // shards alive after the crowd.
    assert!(report.contains("\"backends_alive\":2"), "{report}");
    drain(&addr); // router forwards DRAIN to its backends
    assert!(router.wait().expect("router exit").success());
    assert!(b0.wait().expect("b0 exit").success());
    assert!(b1.wait().expect("b1 exit").success());
}
