//! Cluster acceptance: real `mqdiv serve` shard backends behind a real
//! `mqdiv route` process. The router-fronted cluster must answer every
//! QUERY algorithm (plus PROP), ingest acks, and the STATS core
//! byte-identically to one standalone node fed the same rows — and when
//! the primary replica of a shard is SIGKILLed, a named SUBSCRIBE resumed
//! through the router must reassemble the exact emission stream of an
//! uninterrupted single-node run: zero duplicates, zero missing.
//!
//! Everything is seed-deterministic; no RNG crate, no sleeps on the
//! happy path. Backends run in-memory (`--data-dir` stays off): replicas
//! receive every fanned-out row over the wire, so durability is the
//! durability e2e's concern, not this one's.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

use mqd_server::protocol::TERMINATOR;

/// Deterministic per-seed parameters without an RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Spawns one `mqdiv` serving process (`serve` or `route`) with the given
/// arguments plus an ephemeral `--addr`, and returns the child with the
/// announced address.
fn spawn_mqdiv(args: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mqdiv"))
        .args(args)
        .args(["--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn mqdiv");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read announce line");
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announce line: {line:?}"))
        .trim()
        .to_string();
    (child, addr)
}

fn spawn_shard(shard_id: u32, shard_count: u32) -> (Child, String) {
    let id = shard_id.to_string();
    let count = shard_count.to_string();
    spawn_mqdiv(&["serve", "--shard-id", &id, "--shard-count", &count])
}

/// A shard backend with a scratch data dir (`NAME`d subscriptions need a
/// durable server for their checkpoints).
fn spawn_durable_shard(
    shard_id: u32,
    shard_count: u32,
    tag: &str,
) -> (Child, String, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("mqdiv-cluster-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let id = shard_id.to_string();
    let count = shard_count.to_string();
    let (child, addr) = spawn_mqdiv(&[
        "serve",
        "--shard-id",
        &id,
        "--shard-count",
        &count,
        "--no-fsync",
        "--data-dir",
        dir.to_str().expect("utf8 path"),
    ]);
    (child, addr, dir)
}

fn spawn_route(backends: &[&str], shards: u32) -> (Child, String) {
    let list = backends.join(",");
    let shards = shards.to_string();
    spawn_mqdiv(&["route", "--backends", &list, "--shards", &shards])
}

/// Minimal framed-protocol client over a raw socket (raw so the failover
/// test can abandon a half-read subscription stream).
struct Conn {
    r: BufReader<TcpStream>,
    w: TcpStream,
}

impl Conn {
    fn connect(addr: &str) -> Conn {
        let s = TcpStream::connect(addr).expect("connect");
        Conn {
            r: BufReader::new(s.try_clone().expect("clone stream")),
            w: s,
        }
    }

    fn send(&mut self, line: &str) {
        self.w
            .write_all(format!("{line}\n").as_bytes())
            .expect("send request");
    }

    fn read_line(&mut self) -> String {
        let mut l = String::new();
        assert!(
            self.r.read_line(&mut l).expect("read line") > 0,
            "peer closed"
        );
        l.trim_end_matches('\n').to_string()
    }

    /// Full framed response: status line plus payload lines, terminator
    /// stripped.
    fn request(&mut self, line: &str) -> Vec<String> {
        self.send(line);
        self.read_frame()
    }

    fn read_frame(&mut self) -> Vec<String> {
        let mut lines = Vec::new();
        loop {
            let l = self.read_line();
            if l == TERMINATOR {
                return lines;
            }
            lines.push(l);
        }
    }

    /// Pipelines many one-line requests and collects each response's
    /// status line. Request and response fit comfortably inside the
    /// kernel socket buffers, so the bulk write cannot deadlock against
    /// the response stream.
    fn pipeline(&mut self, lines: &[String]) -> Vec<String> {
        let mut buf = String::new();
        for l in lines {
            buf.push_str(l);
            buf.push('\n');
        }
        self.w.write_all(buf.as_bytes()).expect("pipeline requests");
        lines
            .iter()
            .map(|_| {
                let mut frame = self.read_frame();
                assert!(!frame.is_empty(), "empty response frame");
                frame.remove(0)
            })
            .collect()
    }
}

/// Seeded monotone ingest rows as INGEST request lines. Labels land in
/// 0..5, so under two shards the even labels (0, 2, 4) belong to shard 0
/// and the odd ones (1, 3) to shard 1; most rows are single-shard, some
/// span both.
fn ingest_lines(seed: u64, n: usize) -> Vec<String> {
    let mut s = seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1);
    let mut value = 0i64;
    (0..n)
        .map(|i| {
            value += 1 + (splitmix64(&mut s) % 50) as i64;
            let k = 1 + (splitmix64(&mut s) % 3) as usize;
            let labels: Vec<String> = (0..k)
                .map(|_| (splitmix64(&mut s) % 5).to_string())
                .collect();
            format!("INGEST {} {} {}", i + 1, value, labels.join(","))
        })
        .collect()
}

fn field_u64(json: &str, key: &str) -> u64 {
    let tail = json
        .split(&format!(r#""{key}":"#))
        .nth(1)
        .unwrap_or_else(|| panic!("no {key} field: {json}"));
    let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits
        .parse()
        .unwrap_or_else(|_| panic!("bad {key} field: {json}"))
}

fn drain(addr: &str) {
    let mut c = Conn::connect(addr);
    let resp = c.request("DRAIN");
    assert!(resp[0].starts_with("+OK"), "{resp:?}");
}

#[test]
fn router_fronted_cluster_answers_byte_identically() {
    let (mut b0, addr0) = spawn_shard(0, 2);
    let (mut b1, addr1) = spawn_shard(1, 2);
    let (mut router, addr_r) = spawn_route(&[&addr0, &addr1], 2);
    let (mut single, addr_s) = spawn_mqdiv(&["serve"]);

    let rows = ingest_lines(11, 160);
    let mut through = Conn::connect(&addr_r);
    let mut direct = Conn::connect(&addr_s);
    let cluster_acks = through.pipeline(&rows);
    let single_acks = direct.pipeline(&rows);
    for (i, (c, s)) in cluster_acks.iter().zip(&single_acks).enumerate() {
        assert!(c.starts_with("+OK"), "{}: {c}", rows[i]);
        assert_eq!(c, s, "ingest acks must match byte-for-byte: {}", rows[i]);
    }

    // Every algorithm, PROP, single-label routing, and a cross-shard label
    // subset — all byte-identical to the standalone node.
    let queries = [
        "QUERY 0,1,2,3,4 300 opt",
        "QUERY 0,1,2,3,4 300 greedysc",
        "QUERY 0,1,2,3,4 300 scan",
        "QUERY 0,1,2,3,4 300 scanplus",
        "QUERY 0,1,2,3,4 300 greedysc PROP",
        "QUERY 3 300 scan",
        "QUERY 0,2,4 300 scan",
        "QUERY 1,2 300 opt",
    ];
    for q in queries {
        let cluster = through.request(q);
        let node = direct.request(q);
        // Status shapes differ by design — the router stamps vector
        // watermarks (`"generations":[..]`), the single node stamps cache
        // metadata — but the result count and every payload row must be
        // byte-identical.
        assert!(cluster[0].starts_with("+OK"), "{q}: {cluster:?}");
        assert_eq!(
            field_u64(&cluster[0], "count"),
            field_u64(&node[0], "count"),
            "{q}: result count diverged"
        );
        assert_eq!(
            &cluster[1..],
            &node[1..],
            "{q} diverged between the cluster and the single node"
        );
    }

    // STATS shapes differ (the router adds cluster and served sections)
    // but the core ledger fields must agree.
    let cluster_stats = through.request("STATS");
    let single_stats = direct.request("STATS");
    for key in ["rows", "labels", "generation"] {
        assert_eq!(
            field_u64(&cluster_stats[0], key),
            field_u64(&single_stats[0], key),
            "STATS {key} diverged"
        );
    }

    // DRAIN through the router cascades: backends exit too.
    drain(&addr_r);
    drain(&addr_s);
    router.wait().expect("reap router");
    b0.wait().expect("reap shard 0");
    b1.wait().expect("reap shard 1");
    single.wait().expect("reap single node");
}

#[test]
fn killed_primary_fails_over_and_resumes_the_subscription() {
    const ROWS: usize = 600;
    const SUB: &str = "SUBSCRIBE 0,2,4 10 120 scan";
    const CUT: usize = 300;
    let rows = ingest_lines(42, ROWS);

    // Reference stream: one uninterrupted standalone run.
    let (mut single, addr_s) = spawn_mqdiv(&["serve"]);
    let mut r = Conn::connect(&addr_s);
    for ack in r.pipeline(&rows) {
        assert!(ack.starts_with("+OK"), "{ack}");
    }
    let full = r.request(SUB);
    assert!(full[0].starts_with("+OK"), "{full:?}");
    let full_emits: Vec<&String> = full.iter().filter(|l| l.starts_with("EMIT ")).collect();
    let done = full.last().expect("DONE line");
    assert!(done.starts_with("DONE "), "{done}");
    assert!(
        full_emits.len() > CUT + 20,
        "profile must emit well past the cut: {}",
        full_emits.len()
    );

    // Cluster: two shards, each with two replicas (backend j serves shard
    // j % 2, so backends 0 and 2 both hold shard 0).
    let (mut b0, addr0, dir0) = spawn_durable_shard(0, 2, "b0");
    let (mut b1, addr1, dir1) = spawn_durable_shard(1, 2, "b1");
    let (mut b2, addr2, dir2) = spawn_durable_shard(0, 2, "b2");
    let (mut b3, addr3, dir3) = spawn_durable_shard(1, 2, "b3");
    let (mut router, addr_r) = spawn_route(&[&addr0, &addr1, &addr2, &addr3], 2);
    let mut c = Conn::connect(&addr_r);
    for ack in c.pipeline(&rows) {
        assert!(ack.starts_with("+OK"), "{ack}");
    }

    // Phase A: a named subscription through the router (labels 0,2,4 all
    // live on shard 0, served by its primary, backend 0). Read the first
    // CUT emissions, then abandon the connection mid-stream.
    let mut sub = Conn::connect(&addr_r);
    sub.send(&format!("{SUB} NAME feed-1"));
    let status = sub.read_line();
    assert!(status.starts_with("+OK"), "{status}");
    let mut first: Vec<String> = Vec::new();
    while first.len() < CUT {
        let l = sub.read_line();
        assert!(
            !l.starts_with("DONE "),
            "stream finished before the cut — raise ROWS or lower CUT"
        );
        if l.starts_with("EMIT ") {
            first.push(l);
        }
    }
    drop(sub);

    // SIGKILL the primary replica of the owning shard. The replica
    // (backend 2) holds the same fanned-out rows, so the emission
    // sequence is a pure function of what it already has.
    b0.kill().expect("SIGKILL shard 0 primary");
    b0.wait().expect("reap shard 0 primary");

    // Phase B: resume through the router. It must discover the dead
    // primary, fail over to the replica, and serve the remainder.
    let mut back = Conn::connect(&addr_r);
    let resumed = back.request(&format!("{SUB} NAME feed-1 AFTER {CUT}"));
    assert!(resumed[0].starts_with("+OK"), "{resumed:?}");
    let rest: Vec<&String> = resumed.iter().filter(|l| l.starts_with("EMIT ")).collect();
    let reassembled: Vec<&String> = first.iter().chain(rest.iter().copied()).collect();
    assert_eq!(
        reassembled, full_emits,
        "resumed stream must reassemble the uninterrupted single-node \
         emission sequence — zero duplicates, zero missing"
    );
    assert_eq!(
        resumed.last(),
        Some(done),
        "DONE totals must be skip-independent"
    );

    // The router's STATS now reports exactly one dead backend.
    let stats = back.request("STATS");
    assert_eq!(
        stats[0].matches(r#""alive":false"#).count(),
        1,
        "exactly one backend should read dead: {}",
        stats[0]
    );
    assert_eq!(
        stats[0].matches(r#""alive":true"#).count(),
        3,
        "the other three should read alive: {}",
        stats[0]
    );

    drain(&addr_r);
    drain(&addr_s);
    router.wait().expect("reap router");
    b1.wait().expect("reap shard 1 primary");
    b2.wait().expect("reap shard 0 replica");
    b3.wait().expect("reap shard 1 replica");
    single.wait().expect("reap single node");
    for dir in [dir0, dir1, dir2, dir3] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
