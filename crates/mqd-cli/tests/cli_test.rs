//! End-to-end tests of the `mqdiv` binary: spawn the real executable and
//! drive the full gen → match → diversify → stream → pack → unpack surface.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn mqdiv() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mqdiv"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mqdiv_cli_tests");
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn gen_diversify_stream_pipeline() {
    let posts = tmp("pipeline_posts.tsv");
    let digest = tmp("pipeline_digest.tsv");

    let out = mqdiv()
        .args(["gen", "--labels", "2", "--rate", "20", "--minutes", "5"])
        .args(["--seed", "9", "--out", posts.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = mqdiv()
        .args(["diversify", "--input", posts.to_str().unwrap()])
        .args(["--lambda", "30000", "--algorithm", "greedy"])
        .args(["--out", digest.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("kept"), "summary missing: {stderr}");

    let n_posts = fs::read_to_string(&posts).unwrap().lines().count();
    let n_digest = fs::read_to_string(&digest).unwrap().lines().count();
    assert!(n_digest > 0 && n_digest < n_posts);

    let out = mqdiv()
        .args(["stream", "--input", posts.to_str().unwrap()])
        .args(["--lambda", "30000", "--tau", "5000", "--engine", "scan+"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let emitted = String::from_utf8_lossy(&out.stdout);
    for line in emitted.lines() {
        let delay: i64 = line.split('\t').nth(4).unwrap().parse().unwrap();
        assert!(delay <= 5000, "delay budget violated: {line}");
    }
}

#[test]
fn pack_unpack_round_trip() {
    let posts = tmp("pack_posts.tsv");
    let packed = tmp("pack_posts.mqdl");
    let unpacked = tmp("pack_posts_rt.tsv");

    mqdiv()
        .args(["gen", "--labels", "3", "--rate", "10", "--minutes", "3"])
        .args(["--out", posts.to_str().unwrap()])
        .status()
        .unwrap();
    assert!(mqdiv()
        .args(["pack", "--input", posts.to_str().unwrap()])
        .args(["--out", packed.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(mqdiv()
        .args(["unpack", "--input", packed.to_str().unwrap()])
        .args(["--out", unpacked.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert_eq!(
        fs::read_to_string(&posts).unwrap(),
        fs::read_to_string(&unpacked).unwrap()
    );
    assert!(
        fs::metadata(&packed).unwrap().len() < fs::metadata(&posts).unwrap().len(),
        "binary log should be smaller"
    );
}

#[test]
fn match_command_extracts_labels() {
    let texts = tmp("match_texts.tsv");
    fs::write(
        &texts,
        "0\t100\tobama speaks to the senate\n1\t200\tnothing to see here\n2\t300\tgolf masters update\n",
    )
    .unwrap();
    let out = mqdiv()
        .args(["match", "--input", texts.to_str().unwrap()])
        .args(["--query", "obama,senate", "--query", "golf"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let rows = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = rows.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].starts_with("0\t100\t0"));
    assert!(lines[1].starts_with("2\t300\t1"));
}

#[test]
fn errors_are_reported_with_nonzero_exit() {
    let out = mqdiv().args(["diversify"]).output().unwrap(); // missing --lambda
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--lambda"));

    let out = mqdiv().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));

    let out = mqdiv()
        .args(["unpack", "--input", "/nonexistent/file.mqdl"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn help_lists_subcommands() {
    let out = mqdiv().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for sub in ["gen", "match", "diversify", "stream", "pack", "unpack"] {
        assert!(text.contains(sub), "help missing {sub}");
    }
}

#[test]
fn ingest_query_store_workflow() {
    let store = tmp("store_dir");
    let _ = fs::remove_dir_all(&store);
    let posts_a = tmp("store_a.tsv");
    let posts_b = tmp("store_b.tsv");
    fs::write(&posts_a, "0\t100\t0\n1\t200\t0,1\n").unwrap();
    fs::write(&posts_b, "2\t5000\t1\n3\t5100\t0\n").unwrap();

    for p in [&posts_a, &posts_b] {
        assert!(mqdiv()
            .args(["ingest", "--store", store.to_str().unwrap()])
            .args(["--input", p.to_str().unwrap()])
            .status()
            .unwrap()
            .success());
    }

    // Range query touches only the second segment.
    let out = mqdiv()
        .args(["query", "--store", store.to_str().unwrap()])
        .args(["--from", "4000", "--to", "6000"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.lines().count(), 2);
    assert!(text.contains("2\t5000"));

    // Full scan with on-the-fly diversification compresses the burst.
    let out = mqdiv()
        .args(["query", "--store", store.to_str().unwrap()])
        .args(["--lambda", "10000"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.lines().count() < 4, "diversified scan: {text}");
    let _ = fs::remove_dir_all(&store);
}
