//! `mqdiv lint` — run the workspace's own static-analysis pass
//! (`mqd-lint`) from the CLI.
//!
//! The linter enforces the determinism/overflow/panic/blocking invariants
//! the serving guarantees depend on, plus the cross-file workspace rules
//! (lock-order cycles, blocking under a live guard, unclamped wire
//! lengths); the rule catalog and the incidents behind each rule are in
//! DESIGN.md §13. `--deny` (the CI gate) exits nonzero on any finding;
//! `--json` emits the byte-stable versioned report object for artifact
//! upload; `--rules a,b` restricts the pass.
//!
//! Ordering contract for `--deny --json`: the full JSON report is written
//! and flushed to `out` *before* the deny error returns — a CI consumer
//! that sees the nonzero exit can always parse the report it captured.

use std::io::Write;
use std::path::PathBuf;

use mqd_lint::{render_human, render_json, walk, LintConfig};

/// Options for `mqdiv lint`.
pub struct LintOpts {
    /// Exit nonzero when there is any finding (the CI gate).
    pub deny: bool,
    /// Emit the JSON findings array instead of human-readable lines.
    pub json: bool,
    /// Comma-separated rule subset from `--rules`; `None` runs everything.
    pub rules: Option<Vec<String>>,
    /// Workspace root override; `None` discovers it from the current
    /// directory (tests point this at synthetic trees).
    pub root: Option<PathBuf>,
}

/// Runs the lint pass. Findings go to `out`; the summary goes to `log`
/// when findings are rendered as JSON (so the artifact stays parseable).
pub fn run(mut out: impl Write, mut log: impl Write, opts: &LintOpts) -> Result<(), String> {
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("current dir: {e}"))?;
            walk::find_root(&cwd)
                .ok_or("no workspace root (Cargo.toml + crates/) above the current directory")?
        }
    };
    let cfg = match &opts.rules {
        None => LintConfig::all(),
        Some(names) => {
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            LintConfig::subset(&refs)?
        }
    };
    let (findings, files_scanned) = mqd_lint::lint_workspace(&root, &cfg)
        .map_err(|e| format!("scan {}: {e}", root.display()))?;

    if opts.json {
        // Write AND flush the complete report before the deny check below
        // can error out: a nonzero exit must never truncate the JSON a CI
        // pipeline is capturing.
        write!(out, "{}", render_json(&findings, files_scanned)).map_err(|e| e.to_string())?;
        out.flush().map_err(|e| e.to_string())?;
        writeln!(
            log,
            "{} finding(s) in {} file(s) scanned",
            findings.len(),
            files_scanned
        )
        .map_err(|e| e.to_string())?;
    } else {
        write!(out, "{}", render_human(&findings, files_scanned)).map_err(|e| e.to_string())?;
        out.flush().map_err(|e| e.to_string())?;
    }

    if opts.deny && !findings.is_empty() {
        return Err(format!(
            "lint: {} finding(s) under --deny (fix the site or annotate it with \
             `// lint:allow(<rule>): <reason>`)",
            findings.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::Path;

    /// Builds a throwaway one-crate workspace containing `files` and
    /// returns its root.
    fn synth_workspace(tag: &str, files: &[(&str, &str)]) -> PathBuf {
        let root = std::env::temp_dir().join(format!("mqd-lint-cli-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates")).unwrap();
        fs::write(root.join("Cargo.toml"), "[workspace]\n").unwrap();
        for (rel, src) in files {
            let path = root.join(rel);
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(path, src).unwrap();
        }
        root
    }

    const BAD: &str = "fn f(rx: &Receiver<u8>) { let _ = rx.recv(); }\n";

    fn opts(root: &Path, deny: bool, json: bool, rules: Option<&str>) -> LintOpts {
        LintOpts {
            deny,
            json,
            rules: rules.map(|r| r.split(',').map(str::to_string).collect()),
            root: Some(root.to_path_buf()),
        }
    }

    #[test]
    fn clean_tree_passes_deny() {
        let root = synth_workspace(
            "clean",
            &[("crates/mqd-server/src/ok.rs", "pub fn f() -> u8 { 1 }\n")],
        );
        let mut out = Vec::new();
        run(&mut out, io::sink(), &opts(&root, true, false, None)).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("0 findings in 1 file scanned"), "{text}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn deny_fails_on_findings_but_plain_run_reports_them() {
        let root = synth_workspace("deny", &[("crates/mqd-server/src/server.rs", BAD)]);
        let mut out = Vec::new();
        run(&mut out, io::sink(), &opts(&root, false, false, None)).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("[blocking-call]"), "{text}");

        let err = run(io::sink(), io::sink(), &opts(&root, true, false, None)).unwrap_err();
        assert!(err.contains("1 finding(s) under --deny"), "{err}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn json_output_is_machine_parseable() {
        let root = synth_workspace("json", &[("crates/mqd-server/src/server.rs", BAD)]);
        let mut out = Vec::new();
        run(&mut out, io::sink(), &opts(&root, false, true, None)).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("{\"schema_version\":2,"), "{text}");
        assert!(
            text.contains(r#""file":"crates/mqd-server/src/server.rs""#),
            "{text}"
        );
        assert!(text.contains(r#""rule":"blocking-call""#), "{text}");
        assert!(text.contains(r#""col":"#), "{text}");
        let _ = fs::remove_dir_all(&root);
    }

    /// The `--deny --json` contract: even when run() errors, the sink
    /// already holds the complete, parseable report — balanced braces,
    /// version field, trailing newline.
    #[test]
    fn deny_json_writes_full_report_before_failing() {
        let root = synth_workspace("denyjson", &[("crates/mqd-server/src/server.rs", BAD)]);
        let mut out = Vec::new();
        let err = run(&mut out, io::sink(), &opts(&root, true, true, None)).unwrap_err();
        assert!(err.contains("under --deny"), "{err}");
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("{\"schema_version\":2,"), "{text}");
        assert!(text.ends_with("]}\n"), "report truncated: {text:?}");
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes, "unbalanced JSON: {text}");
        assert!(text.contains(r#""rule":"blocking-call""#), "{text}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn rule_subset_restricts_the_pass() {
        let root = synth_workspace("subset", &[("crates/mqd-server/src/server.rs", BAD)]);
        // blocking-call disabled -> the recv() finding disappears.
        run(
            io::sink(),
            io::sink(),
            &opts(&root, true, false, Some("panic-path,wire-drift")),
        )
        .unwrap();
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn unknown_rule_name_is_an_error_listing_valid_ids() {
        let root = synth_workspace("unknown", &[]);
        let err = run(
            io::sink(),
            io::sink(),
            &opts(&root, false, false, Some("no-such-rule")),
        )
        .unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
        assert!(err.contains("nondet-iter"), "{err}");
        let _ = fs::remove_dir_all(&root);
    }

    use std::io;
}
