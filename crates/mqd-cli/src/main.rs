//! `mqdiv` — diversify microblog post streams from the command line.
//!
//! ```text
//! mqdiv gen        [--text] [--labels N] [--rate R] [--overlap O] [--minutes M] [--seed S] [--out FILE]
//! mqdiv match      --input FILE --query kw1,kw2 [--query ...] [--dedup] [--sentiment] [--out FILE]
//! mqdiv diversify  --input FILE --lambda MS [--algorithm scan|scan+|greedy|opt] [--proportional] [--out FILE]
//! mqdiv stream     --input FILE --lambda MS --tau MS [--engine scan|scan+|greedy|greedy+|instant] [--out FILE]
//!                  [--shards N] [--chaos-seed S] [--checkpoint FILE] [--checkpoint-every N]
//!                  [--resume FILE] [--fault-report FILE]   (supervised fault-tolerant mode)
//! mqdiv pack       --input FILE.tsv --out FILE.mqdl   (TSV -> binary log)
//! mqdiv unpack     --input FILE.mqdl --out FILE.tsv   (binary log -> TSV)
//! mqdiv ingest     --store DIR --input FILE.tsv         (append a segment)
//! mqdiv query      --store DIR --from MS --to MS [--lambda MS] [--out FILE]
//! mqdiv oracle     [--seeds N] [--first-seed S] [--profile NAME] [--report-dir DIR]
//! mqdiv serve      [--addr HOST:PORT] [--max-queue N] [--data-dir DIR]
//!                  [--no-fsync] [--retain SPAN]         (:0 picks an ephemeral port)
//!                  [--shard-id I --shard-count N]       (serve as shard I of an N-shard cluster)
//!                  [--idle-timeout-ms N]                (typed-timeout stalled connections)
//! mqdiv route      --backends HOST:PORT[,HOST:PORT...] --shards N
//!                  [--addr HOST:PORT] [--max-queue N] [--idle-timeout-ms N]
//! mqdiv client     --addr HOST:PORT [--input SCRIPT] [--check]
//! mqdiv load       --scenario NAME (--addr HOST:PORT | --sim) [--seed S] [--rate R]
//!                  [--duration-ms N] [--lanes N] [--out FILE] [--check]
//! mqdiv lint       [--deny] [--json] [--rules a,b] [--out FILE]   (workspace static analysis)
//! ```
//!
//! Every subcommand also accepts `--threads N`, setting the worker count
//! for the parallel solver paths (default: the `MQD_THREADS` environment
//! variable, then the machine's available parallelism).

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};

use std::path::PathBuf;

use mqd_cli::commands::{
    self, DiversifyOpts, GenOpts, MatchOpts, OracleOpts, StreamOpts, SupervisedStreamOpts,
};

struct Flags {
    map: Vec<(String, String)>,
    bools: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut map = Vec::new();
        let mut bools = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if !a.starts_with("--") {
                return Err(format!("unexpected argument '{a}'"));
            }
            let key = a.trim_start_matches("--").to_string();
            if matches!(it.peek(), Some(v) if !v.starts_with("--")) {
                if let Some(v) = it.next() {
                    map.push((key, v.clone()));
                }
            } else {
                bools.push(key);
            }
        }
        Ok(Flags { map, bools })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.map
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_all(&self, key: &str) -> Vec<String> {
        self.map
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .collect()
    }

    fn has(&self, key: &str) -> bool {
        self.bools.iter().any(|k| k == key)
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
        }
    }

    fn require_num<T: std::str::FromStr>(&self, key: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        let v = self.get(key).ok_or(format!("--{key} is required"))?;
        v.parse().map_err(|e| format!("--{key}: {e}"))
    }
}

fn open_input(flags: &Flags) -> Result<Box<dyn BufRead>, String> {
    match flags.get("input") {
        Some(path) => Ok(Box::new(BufReader::new(
            File::open(path).map_err(|e| format!("--input {path}: {e}"))?,
        ))),
        None => Ok(Box::new(BufReader::new(io::stdin()))),
    }
}

fn open_output(flags: &Flags) -> Result<Box<dyn Write>, String> {
    match flags.get("out") {
        Some(path) => Ok(Box::new(BufWriter::new(
            File::create(path).map_err(|e| format!("--out {path}: {e}"))?,
        ))),
        None => Ok(Box::new(BufWriter::new(io::stdout()))),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return Err("usage: mqdiv <gen|match|diversify|stream|pack|unpack|ingest|query|oracle|serve|route|client|load|lint> [flags]; see --help".into());
    };
    if cmd == "--help" || cmd == "help" {
        println!(
            "mqdiv — Multi-Query Diversification (EDBT 2014 reproduction)\n\
             \n\
             subcommands:\n\
             \x20 gen        generate a synthetic stream (TSV)\n\
             \x20 match      match raw text posts to queries -> labeled TSV\n\
             \x20 diversify  offline MQDP on a labeled TSV\n\
             \x20 stream     streaming MQDP on a labeled TSV\n\
             \x20 pack       convert labeled TSV to the compact binary log\n\
             \x20 unpack     convert a binary log back to TSV\n\
             \x20 ingest     append a labeled TSV into a segmented store\n\
             \x20 query      range-scan a store (optionally diversified)\n\
             \x20 oracle     differential/metamorphic correctness sweep over all solvers\n\
             \x20 serve      run the TCP query server (--data-dir makes it durable,\n\
             \x20            --shard-id/--shard-count pin it as one cluster shard)\n\
             \x20 route      front a sharded cluster: one endpoint over N shard backends\n\
             \x20 client     forward a request script to a running server or router\n\
             \x20 load       open-loop load harness: drive a scenario at a live endpoint\n\
             \x20            (or --sim) and write a BENCH_load_<scenario>.json artifact\n\
             \x20 lint       static-analysis pass over the workspace's own sources\n\
             \n\
             see the crate docs / README for the full flag reference"
        );
        return Ok(());
    }
    let flags = Flags::parse(args.get(1..).unwrap_or(&[]))?;
    if flags.get("threads").is_some() {
        let n: usize = flags.require_num("threads")?;
        if n == 0 {
            return Err("--threads must be at least 1".into());
        }
        mqd_par::set_threads(Some(n));
    }
    let mut log = io::stderr();

    match cmd.as_str() {
        "gen" => {
            let opts = GenOpts {
                text: flags.has("text"),
                labels: flags.parse_num("labels", 2usize)?,
                rate: flags.parse_num("rate", 60.0f64)?,
                overlap: flags.parse_num("overlap", 1.15f64)?,
                minutes: flags.parse_num("minutes", 10i64)?,
                seed: flags.parse_num("seed", 42u64)?,
            };
            commands::generate(open_output(&flags)?, &mut log, &opts)
        }
        "match" => {
            let opts = MatchOpts {
                queries: flags.get_all("query"),
                dedup: flags.has("dedup"),
                sentiment: flags.has("sentiment"),
            };
            commands::match_posts(open_input(&flags)?, open_output(&flags)?, &mut log, &opts)
        }
        "diversify" => {
            let opts = DiversifyOpts {
                lambda: flags.require_num("lambda")?,
                algorithm: flags.get("algorithm").unwrap_or("greedy").to_string(),
                proportional: flags.has("proportional"),
            };
            commands::diversify(open_input(&flags)?, open_output(&flags)?, &mut log, &opts)
        }
        "stream" => {
            // Any supervision flag switches to the fault-tolerant sharded
            // runner (shard restarts, chaos injection, checkpoint/resume).
            let supervised = [
                "shards",
                "chaos-seed",
                "checkpoint",
                "resume",
                "fault-report",
            ]
            .iter()
            .any(|k| flags.get(k).is_some());
            if supervised {
                let opts = SupervisedStreamOpts {
                    lambda: flags.require_num("lambda")?,
                    tau: flags.parse_num("tau", 0i64)?,
                    engine: flags.get("engine").unwrap_or("scan+").to_string(),
                    shards: flags.parse_num("shards", 4usize)?,
                    chaos_seed: match flags.get("chaos-seed") {
                        Some(_) => Some(flags.require_num("chaos-seed")?),
                        None => None,
                    },
                    checkpoint: flags.get("checkpoint").map(PathBuf::from),
                    checkpoint_every: flags.parse_num("checkpoint-every", 512u64)?,
                    resume: flags.get("resume").map(PathBuf::from),
                    fault_report: flags.get("fault-report").map(PathBuf::from),
                };
                commands::stream_supervised(
                    open_input(&flags)?,
                    open_output(&flags)?,
                    &mut log,
                    &opts,
                )
            } else {
                let opts = StreamOpts {
                    lambda: flags.require_num("lambda")?,
                    tau: flags.parse_num("tau", 0i64)?,
                    engine: flags.get("engine").unwrap_or("scan+").to_string(),
                };
                commands::stream(open_input(&flags)?, open_output(&flags)?, &mut log, &opts)
            }
        }
        "pack" => {
            let rows =
                mqd_cli::tsv::read_labeled(open_input(&flags)?).map_err(|e| e.to_string())?;
            mqd_cli::binlog::write_posts(open_output(&flags)?, &rows).map_err(|e| e.to_string())?;
            eprintln!("packed {} posts", rows.len());
            Ok(())
        }
        "unpack" => {
            let rows =
                mqd_cli::binlog::read_posts(open_input(&flags)?).map_err(|e| e.to_string())?;
            mqd_cli::tsv::write_labeled(open_output(&flags)?, &rows).map_err(|e| e.to_string())?;
            eprintln!("unpacked {} posts", rows.len());
            Ok(())
        }
        "ingest" => {
            let dir = flags.get("store").ok_or("--store is required")?;
            let rows =
                mqd_cli::tsv::read_labeled(open_input(&flags)?).map_err(|e| e.to_string())?;
            let mut store = mqd_cli::store::PostStore::open(dir).map_err(|e| e.to_string())?;
            if !store.quarantined().is_empty() {
                eprintln!(
                    "warning: {} corrupt segment(s) quarantined",
                    store.quarantined().len()
                );
            }
            match store.append(&rows).map_err(|e| e.to_string())? {
                Some(info) => eprintln!(
                    "ingested {} posts into segment #{} (values {}..={})",
                    info.rows, info.seq, info.min_value, info.max_value
                ),
                None => eprintln!("nothing to ingest"),
            }
            Ok(())
        }
        "query" => {
            let dir = flags.get("store").ok_or("--store is required")?;
            let from: i64 = flags.parse_num("from", i64::MIN)?;
            let to: i64 = flags.parse_num("to", i64::MAX)?;
            let store = mqd_cli::store::PostStore::open(dir).map_err(|e| e.to_string())?;
            let rows = store.scan(from, to).map_err(|e| e.to_string())?;
            // Optional on-the-fly diversification of the scan result.
            let rows = match flags.get("lambda") {
                None => rows,
                Some(_) => {
                    let lambda: i64 = flags.require_num("lambda")?;
                    let inst = mqd_cli::tsv::to_instance(&rows, None).map_err(|e| e.to_string())?;
                    let lam = mqd_core::FixedLambda(lambda);
                    let sol = mqd_core::algorithms::solve_greedy_sc(&inst, &lam);
                    sol.selected
                        .iter()
                        .map(|&i| mqd_cli::tsv::LabeledRow {
                            id: inst.post(i).id().0,
                            value: inst.value(i),
                            labels: inst.labels(i).iter().map(|l| l.0).collect(),
                        })
                        .collect()
                }
            };
            let n = rows.len();
            mqd_cli::tsv::write_labeled(open_output(&flags)?, &rows).map_err(|e| e.to_string())?;
            eprintln!("{n} posts");
            Ok(())
        }
        "oracle" => {
            let opts = OracleOpts {
                seeds: flags.parse_num("seeds", 50u64)?,
                first_seed: flags.parse_num("first-seed", 0u64)?,
                profile: flags.get("profile").map(String::from),
                report_dir: PathBuf::from(flags.get("report-dir").unwrap_or("reports/oracle")),
            };
            commands::oracle(&mut log, &opts)
        }
        "serve" => {
            let retain = match flags.get("retain") {
                Some(_) => Some(flags.require_num::<i64>("retain")?),
                None => None,
            };
            let shard = match (flags.get("shard-id"), flags.get("shard-count")) {
                (None, None) => None,
                (Some(_), Some(_)) => Some(mqd_core::wire::ShardIdentity {
                    shard_id: flags.require_num("shard-id")?,
                    shard_count: flags.require_num("shard-count")?,
                }),
                _ => return Err("--shard-id and --shard-count go together".into()),
            };
            let opts = mqd_cli::serve::ServeOpts {
                addr: flags.get("addr").unwrap_or("127.0.0.1:7744").to_string(),
                max_queue: flags.parse_num("max-queue", 64usize)?,
                data_dir: flags.get("data-dir").map(PathBuf::from),
                fsync: !flags.has("no-fsync"),
                retain,
                shard,
                idle_timeout_ms: match flags.get("idle-timeout-ms") {
                    Some(_) => Some(flags.require_num("idle-timeout-ms")?),
                    None => None,
                },
            };
            mqd_cli::serve::serve(io::stdout(), &mut log, &opts)
        }
        "route" => {
            let mut backends = Vec::new();
            for chunk in flags.get_all("backends") {
                backends.extend(
                    chunk
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from),
                );
            }
            if backends.is_empty() {
                return Err("--backends is required (comma-separated or repeated)".into());
            }
            let opts = mqd_cli::serve::RouteOpts {
                addr: flags.get("addr").unwrap_or("127.0.0.1:7745").to_string(),
                backends,
                shards: flags.require_num("shards")?,
                max_queue: flags.parse_num("max-queue", 64usize)?,
                idle_timeout_ms: match flags.get("idle-timeout-ms") {
                    Some(_) => Some(flags.require_num("idle-timeout-ms")?),
                    None => None,
                },
            };
            mqd_cli::serve::route(io::stdout(), &mut log, &opts)
        }
        "load" => {
            let defaults = mqd_cli::load::LoadOpts::default();
            let opts = mqd_cli::load::LoadOpts {
                scenario: flags
                    .get("scenario")
                    .ok_or("--scenario is required")?
                    .to_string(),
                addr: flags.get("addr").map(String::from),
                sim: flags.has("sim"),
                seed: flags.parse_num("seed", defaults.seed)?,
                rate: flags.parse_num("rate", defaults.rate)?,
                duration_ms: flags.parse_num("duration-ms", defaults.duration_ms)?,
                lanes: flags.parse_num("lanes", defaults.lanes)?,
                out: flags.get("out").map(PathBuf::from),
                check: flags.has("check"),
            };
            mqd_cli::load::load(&mut log, &opts).map(|_| ())
        }
        "client" => {
            let opts = mqd_cli::serve::ClientOpts {
                addr: flags.get("addr").ok_or("--addr is required")?.to_string(),
                check: flags.has("check"),
            };
            mqd_cli::serve::client_script(
                open_input(&flags)?,
                open_output(&flags)?,
                &mut log,
                &opts,
            )
        }
        "lint" => {
            let opts = mqd_cli::lint::LintOpts {
                deny: flags.has("deny"),
                json: flags.has("json"),
                rules: flags
                    .get("rules")
                    .map(|r| r.split(',').map(str::to_string).collect()),
                root: None,
            };
            mqd_cli::lint::run(open_output(&flags)?, &mut log, &opts)
        }
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
