//! The `mqdiv` subcommand implementations, written against generic readers
//! and writers so they are unit-testable without touching the filesystem.

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

use mqd_core::algorithms::{
    solve_greedy_sc, solve_opt, solve_scan, solve_scan_plus, LabelOrder, OptConfig,
};
use mqd_core::{coverage, metrics, FixedLambda, Solution, VariableLambda};
use mqd_datagen::{
    generate_labeled_posts, generate_tweets, LabeledStreamConfig, TweetStreamConfig, MINUTE_MS,
};
use mqd_text::{KeywordMatcher, NearDuplicateFilter, SentimentScorer};

use crate::tsv::{self, LabeledRow, TextRow};

/// Offline diversification options.
#[derive(Clone, Debug)]
pub struct DiversifyOpts {
    /// Coverage threshold (dimension units).
    pub lambda: i64,
    /// `scan`, `scan+`, `greedy`, or `opt`.
    pub algorithm: String,
    /// Use the Eq. 2 proportional lambda with `lambda` as lambda0.
    pub proportional: bool,
}

/// `mqdiv diversify`: read labeled rows, emit the selected subset plus a
/// summary on stderr-style `log` writer.
pub fn diversify(
    input: impl BufRead,
    out: impl Write,
    log: &mut impl Write,
    opts: &DiversifyOpts,
) -> Result<(), String> {
    let rows = tsv::read_labeled(input).map_err(|e| e.to_string())?;
    let inst = tsv::to_instance(&rows, None).map_err(|e| e.to_string())?;

    let solution: Solution = if opts.proportional {
        let lam = VariableLambda::compute(&inst, opts.lambda);
        match opts.algorithm.as_str() {
            "scan" => solve_scan(&inst, &lam),
            "scan+" => solve_scan_plus(&inst, &lam, LabelOrder::Input),
            "greedy" => solve_greedy_sc(&inst, &lam),
            "opt" => return Err("OPT supports a fixed lambda only (see DESIGN.md)".into()),
            other => return Err(format!("unknown algorithm '{other}'")),
        }
    } else {
        let lam = FixedLambda(opts.lambda);
        match opts.algorithm.as_str() {
            "scan" => solve_scan(&inst, &lam),
            "scan+" => solve_scan_plus(&inst, &lam, LabelOrder::Input),
            "greedy" => solve_greedy_sc(&inst, &lam),
            "opt" => {
                solve_opt(&inst, opts.lambda, &OptConfig::default()).map_err(|e| e.to_string())?
            }
            other => return Err(format!("unknown algorithm '{other}'")),
        }
    };

    // Verification is cheap relative to I/O; always do it.
    if !opts.proportional {
        let lam = FixedLambda(opts.lambda);
        if !coverage::is_cover(&inst, &lam, &solution.selected) {
            return Err("internal error: produced a non-cover".into());
        }
    }

    let selected_rows: Vec<LabeledRow> = solution
        .selected
        .iter()
        .map(|&i| LabeledRow {
            id: inst.post(i).id().0,
            value: inst.value(i),
            labels: inst.labels(i).iter().map(|l| l.0).collect(),
        })
        .collect();
    tsv::write_labeled(out, &selected_rows).map_err(|e| e.to_string())?;

    let rep = metrics::representation_error(&inst, &solution.selected);
    writeln!(
        log,
        "{}: kept {} of {} posts (compression {:.3}); representation mean {:.1} max {}",
        solution.algorithm,
        solution.size(),
        inst.len(),
        metrics::compression_ratio(&inst, &solution.selected),
        rep.mean,
        rep.max,
    )
    .map_err(|e| e.to_string())?;
    Ok(())
}

/// Streaming options.
#[derive(Clone, Debug)]
pub struct StreamOpts {
    /// Coverage threshold (ms).
    pub lambda: i64,
    /// Delay budget (ms).
    pub tau: i64,
    /// `scan`, `scan+`, `greedy`, `greedy+`, `instant`, or `adaptive`
    /// (online Eq. 2 with `lambda` as lambda0).
    pub engine: String,
}

/// `mqdiv stream`: replay labeled rows through a streaming engine; emits
/// `id \t value \t labels \t emit_time \t delay_ms` rows.
pub fn stream(
    input: impl BufRead,
    mut out: impl Write,
    log: &mut impl Write,
    opts: &StreamOpts,
) -> Result<(), String> {
    use mqd_stream::{run_stream, InstantScan, StreamEngine, StreamGreedy, StreamScan};
    let rows = tsv::read_labeled(input).map_err(|e| e.to_string())?;
    tsv::validate_stream(&rows).map_err(|e| e.to_string())?;
    let inst = tsv::to_instance(&rows, None).map_err(|e| e.to_string())?;
    let lam = FixedLambda(opts.lambda);
    let l = inst.num_labels();
    let n = inst.len();
    let mut engine: Box<dyn StreamEngine> = match opts.engine.as_str() {
        "scan" => Box::new(StreamScan::new(l, n)),
        "scan+" => Box::new(StreamScan::new_plus(l, n)),
        "greedy" => Box::new(StreamGreedy::new(l, n)),
        "greedy+" => Box::new(StreamGreedy::new_plus(l, n)),
        "instant" => Box::new(InstantScan::new(l)),
        "adaptive" => Box::new(mqd_stream::AdaptiveEngine::new(l, opts.lambda.max(1))),
        other => return Err(format!("unknown engine '{other}'")),
    };
    let instantaneous = matches!(opts.engine.as_str(), "instant" | "adaptive");
    let tau = if instantaneous { 0 } else { opts.tau };
    let res = run_stream(&inst, &lam, tau, engine.as_mut());
    // The adaptive engine's guarantee is at Eq. 2's analytic cap, not at
    // lambda itself.
    let verify_lambda = if opts.engine == "adaptive" {
        FixedLambda(mqd_stream::AdaptiveEngine::cover_lambda(opts.lambda.max(1)))
    } else {
        lam
    };
    if !res.is_cover(&inst, &verify_lambda) {
        return Err("internal error: emitted sub-stream is not a cover".into());
    }
    for e in &res.emissions {
        let labels: Vec<String> = inst
            .labels(e.post)
            .iter()
            .map(|l| l.0.to_string())
            .collect();
        writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}",
            inst.post(e.post).id().0,
            inst.value(e.post),
            labels.join(","),
            e.emit_time,
            e.delay(&inst)
        )
        .map_err(|e| e.to_string())?;
    }
    writeln!(
        log,
        "{}: emitted {} of {} posts, max delay {} ms (tau {} ms)",
        res.algorithm,
        res.size(),
        inst.len(),
        res.max_delay,
        tau
    )
    .map_err(|e| e.to_string())?;
    Ok(())
}

/// Supervised (fault-tolerant) streaming options.
#[derive(Clone, Debug, Default)]
pub struct SupervisedStreamOpts {
    /// Coverage threshold (ms).
    pub lambda: i64,
    /// Delay budget (ms).
    pub tau: i64,
    /// `scan`, `scan+`, `greedy`, or `greedy+` (the supervisable engines).
    pub engine: String,
    /// Requested shard count (clamped to the label count).
    pub shards: usize,
    /// Deterministic fault-injection seed; `None` runs fault-free.
    pub chaos_seed: Option<u64>,
    /// Rolling checkpoint destination (atomically replaced).
    pub checkpoint: Option<PathBuf>,
    /// Arrivals between checkpoint writes.
    pub checkpoint_every: u64,
    /// Checkpoint to resume from instead of starting fresh.
    pub resume: Option<PathBuf>,
    /// Where to write the machine-readable fault report (JSON).
    pub fault_report: Option<PathBuf>,
}

fn shard_engine_kind(engine: &str) -> Result<mqd_stream::ShardEngineKind, String> {
    use mqd_stream::ShardEngineKind;
    match engine {
        "scan" => Ok(ShardEngineKind::Scan),
        "scan+" => Ok(ShardEngineKind::ScanPlus),
        "greedy" => Ok(ShardEngineKind::Greedy),
        "greedy+" => Ok(ShardEngineKind::GreedyPlus),
        other => Err(format!(
            "engine '{other}' cannot run supervised (use scan, scan+, greedy, or greedy+)"
        )),
    }
}

/// Replaces `path` with `bytes` via a temp file + rename, so a crash while
/// checkpointing never leaves a torn checkpoint behind.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes).map_err(|e| format!("{}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(())
}

/// `mqdiv stream` with supervision: shard panics are restarted from the
/// last snapshot, injected faults come from a seeded plan, overload flips
/// shards into the Instant scheme, and the run can checkpoint to (and
/// resume from) disk. Output rows are
/// `id \t value \t labels \t emit_time \t delay_ms \t degraded`.
pub fn stream_supervised(
    input: impl BufRead,
    mut out: impl Write,
    log: &mut impl Write,
    opts: &SupervisedStreamOpts,
) -> Result<(), String> {
    use mqd_stream::{
        encode_checkpoint, resume_supervised, run_supervised_stream, FaultPlan, SupervisedRun,
        SupervisorConfig,
    };
    let rows = tsv::read_labeled(input).map_err(|e| e.to_string())?;
    tsv::validate_stream(&rows).map_err(|e| e.to_string())?;
    let inst = tsv::to_instance(&rows, None).map_err(|e| e.to_string())?;
    let lam = FixedLambda(opts.lambda);
    let kind = shard_engine_kind(&opts.engine)?;
    let plan = match opts.chaos_seed {
        Some(seed) => FaultPlan::for_instance(&inst, opts.shards, seed, opts.tau),
        None => FaultPlan::none(),
    };
    let base = SupervisorConfig::default();
    let cfg = SupervisorConfig {
        // The default budget guards against crash loops; injected chaos
        // panics are planned work, so they get their own allowance on top.
        max_restarts: base.max_restarts + plan.max_panics_per_shard(),
        ..base
    };

    let res = if opts.resume.is_some() || opts.checkpoint.is_some() {
        // Checkpointing needs the resumable sequential run; its output is
        // byte-identical to the threaded runner's for any fault plan.
        let mut run = match &opts.resume {
            Some(path) => {
                let bytes =
                    std::fs::read(path).map_err(|e| format!("--resume {}: {e}", path.display()))?;
                resume_supervised(
                    &inst,
                    opts.lambda,
                    opts.tau,
                    opts.shards,
                    kind,
                    &plan,
                    cfg,
                    &bytes,
                )
                .map_err(|e| e.to_string())?
            }
            None => SupervisedRun::new(&inst, opts.lambda, opts.tau, opts.shards, kind, &plan, cfg),
        };
        if run.position() > 0 {
            writeln!(
                log,
                "resumed at arrival {} of {}",
                run.position(),
                inst.len()
            )
            .map_err(|e| e.to_string())?;
        }
        let every = opts.checkpoint_every.max(1);
        let mut delivered = 0u64;
        while run.step().map_err(|e| e.to_string())? {
            delivered += 1;
            if let Some(path) = &opts.checkpoint {
                if delivered.is_multiple_of(every) || run.done() {
                    write_atomic(path, &encode_checkpoint(&mut run))?;
                }
            }
        }
        run.finish().map_err(|e| e.to_string())?
    } else {
        run_supervised_stream(&inst, opts.lambda, opts.tau, opts.shards, kind, &plan, cfg)
            .map_err(|e| e.to_string())?
    };

    if !res.result.is_cover(&inst, &lam) {
        return Err("internal error: emitted sub-stream is not a cover".into());
    }
    if res.report.tau_violations_unflagged > 0 {
        return Err("internal error: a non-degraded emission exceeded tau".into());
    }
    for e in &res.emissions {
        let labels: Vec<String> = inst
            .labels(e.post)
            .iter()
            .map(|l| l.0.to_string())
            .collect();
        writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}",
            inst.post(e.post).id().0,
            inst.value(e.post),
            labels.join(","),
            e.emit_time,
            e.delay(&inst),
            u8::from(e.degraded),
        )
        .map_err(|e| e.to_string())?;
    }
    if let Some(path) = &opts.fault_report {
        std::fs::write(path, res.report.to_json())
            .map_err(|e| format!("--fault-report {}: {e}", path.display()))?;
    }
    writeln!(
        log,
        "{}: emitted {} of {} posts, max delay {} ms (tau {} ms); \
         {} fault(s) injected, {} restart(s), {} degraded emission(s)",
        res.result.algorithm,
        res.result.size(),
        inst.len(),
        res.result.max_delay,
        opts.tau,
        res.report.faults.len(),
        res.report.restarts.len(),
        res.report.counters.degraded_emissions,
    )
    .map_err(|e| e.to_string())?;
    Ok(())
}

/// Matching options.
#[derive(Clone, Debug)]
pub struct MatchOpts {
    /// One comma-separated keyword list per query.
    pub queries: Vec<String>,
    /// Drop SimHash near-duplicates first (threshold 3 bits).
    pub dedup: bool,
    /// Use sentiment polarity (fixed-point) as the output value instead of
    /// the timestamp.
    pub sentiment: bool,
}

/// `mqdiv match`: raw text rows → labeled rows via keyword matching, with
/// optional SimHash dedup and sentiment dimension.
pub fn match_posts(
    input: impl BufRead,
    out: impl Write,
    log: &mut impl Write,
    opts: &MatchOpts,
) -> Result<(), String> {
    if opts.queries.is_empty() {
        return Err("need at least one --query".into());
    }
    let queries: Vec<Vec<String>> = opts
        .queries
        .iter()
        .map(|q| q.split(',').map(|s| s.trim().to_lowercase()).collect())
        .collect();
    let matcher = KeywordMatcher::new(&queries);
    let scorer = SentimentScorer::new();
    let rows = tsv::read_text(input).map_err(|e| e.to_string())?;
    let total = rows.len();
    let mut dedup = NearDuplicateFilter::new(3);
    let mut matched = Vec::new();
    let mut dropped_dups = 0usize;
    for r in &rows {
        if opts.dedup && !dedup.insert_text(&r.text) {
            dropped_dups += 1;
            continue;
        }
        let labels = matcher.match_labels(&r.text);
        if labels.is_empty() {
            continue;
        }
        let value = if opts.sentiment {
            scorer.score_fixed(&r.text)
        } else {
            r.time
        };
        matched.push(LabeledRow {
            id: r.id,
            value,
            labels,
        });
    }
    let kept = matched.len();
    tsv::write_labeled(out, &matched).map_err(|e| e.to_string())?;
    writeln!(
        log,
        "matched {kept} of {total} posts ({dropped_dups} near-duplicates dropped)"
    )
    .map_err(|e| e.to_string())?;
    Ok(())
}

/// Generation options.
#[derive(Clone, Debug)]
pub struct GenOpts {
    /// Generate raw text instead of labeled rows.
    pub text: bool,
    /// Number of labels (labeled mode).
    pub labels: usize,
    /// Matching posts per label per minute (labeled) or tweets per minute
    /// (text).
    pub rate: f64,
    /// Mean labels per post.
    pub overlap: f64,
    /// Stream duration in minutes.
    pub minutes: i64,
    /// RNG seed.
    pub seed: u64,
}

/// `mqdiv gen`: write a synthetic stream.
pub fn generate(out: impl Write, log: &mut impl Write, opts: &GenOpts) -> Result<(), String> {
    if opts.text {
        let tweets = generate_tweets(&TweetStreamConfig {
            tweets_per_minute: opts.rate,
            duration_ms: opts.minutes * MINUTE_MS,
            seed: opts.seed,
            ..Default::default()
        });
        let rows: Vec<TextRow> = tweets
            .iter()
            .enumerate()
            .map(|(i, t)| TextRow {
                id: i as u64,
                time: t.timestamp_ms,
                text: t.text.clone(),
            })
            .collect();
        tsv::write_text(out, &rows).map_err(|e| e.to_string())?;
        writeln!(log, "generated {} text posts", rows.len()).map_err(|e| e.to_string())?;
    } else {
        let posts = generate_labeled_posts(&LabeledStreamConfig {
            num_labels: opts.labels,
            per_label_per_minute: opts.rate,
            overlap: opts.overlap,
            duration_ms: opts.minutes * MINUTE_MS,
            seed: opts.seed,
            ..Default::default()
        });
        let rows: Vec<LabeledRow> = posts
            .iter()
            .map(|p| LabeledRow {
                id: p.id().0,
                value: p.value(),
                labels: p.labels().iter().map(|l| l.0).collect(),
            })
            .collect();
        tsv::write_labeled(out, &rows).map_err(|e| e.to_string())?;
        writeln!(log, "generated {} labeled posts", rows.len()).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// `mqdiv oracle` options.
#[derive(Clone, Debug)]
pub struct OracleOpts {
    /// Seeds per profile.
    pub seeds: u64,
    /// First seed of the sweep (re-run a single reported seed with
    /// `--first-seed N --seeds 1`).
    pub first_seed: u64,
    /// Restrict to one profile by name; `None` sweeps all of them.
    pub profile: Option<String>,
    /// Where shrunk reproducers are written on failure.
    pub report_dir: PathBuf,
}

/// `mqdiv oracle`: run the differential/metamorphic correctness sweep.
/// Returns `Err` when any invariant fails, so the process exits nonzero.
pub fn oracle(log: &mut impl Write, opts: &OracleOpts) -> Result<(), String> {
    let profile = match opts.profile.as_deref() {
        None => None,
        Some(name) => Some(mqd_oracle::Profile::from_name(name).ok_or_else(|| {
            format!(
                "--profile {name}: unknown (expected one of: {})",
                mqd_oracle::Profile::all()
                    .iter()
                    .map(|p| p.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?),
    };
    let cfg = mqd_oracle::OracleConfig {
        seeds: opts.seeds,
        first_seed: opts.first_seed,
        profile,
        report_dir: opts.report_dir.clone(),
        write_reports: true,
    };
    let summary = mqd_oracle::run_oracle(&cfg, log);
    writeln!(
        log,
        "oracle: {} cases, {} checks, {} failure(s)",
        summary.cases,
        summary.checks,
        summary.failures.len()
    )
    .map_err(|e| e.to_string())?;
    if summary.ok() {
        Ok(())
    } else {
        Err(format!(
            "{} invariant failure(s); shrunk repros under {}",
            summary.failures.len(),
            opts.report_dir.display()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_labeled(minutes: i64) -> Vec<u8> {
        let mut out = Vec::new();
        let mut log = Vec::new();
        generate(
            &mut out,
            &mut log,
            &GenOpts {
                text: false,
                labels: 2,
                rate: 10.0,
                overlap: 1.2,
                minutes,
                seed: 5,
            },
        )
        .unwrap();
        out
    }

    #[test]
    fn gen_then_diversify_round_trip() {
        let data = gen_labeled(5);
        for alg in ["scan", "scan+", "greedy"] {
            let mut out = Vec::new();
            let mut log = Vec::new();
            diversify(
                data.as_slice(),
                &mut out,
                &mut log,
                &DiversifyOpts {
                    lambda: 30_000,
                    algorithm: alg.into(),
                    proportional: false,
                },
            )
            .unwrap();
            let selected = tsv::read_labeled(out.as_slice()).unwrap();
            let input = tsv::read_labeled(data.as_slice()).unwrap();
            assert!(!selected.is_empty());
            assert!(selected.len() < input.len());
            let log_s = String::from_utf8(log).unwrap();
            assert!(log_s.contains("kept"), "{log_s}");
        }
    }

    #[test]
    fn diversify_rejects_unknown_algorithm() {
        let data = gen_labeled(1);
        let err = diversify(
            data.as_slice(),
            &mut Vec::new(),
            &mut Vec::new(),
            &DiversifyOpts {
                lambda: 1000,
                algorithm: "magic".into(),
                proportional: false,
            },
        )
        .unwrap_err();
        assert!(err.contains("unknown algorithm"));
    }

    #[test]
    fn proportional_rejects_opt() {
        let data = gen_labeled(1);
        let err = diversify(
            data.as_slice(),
            &mut Vec::new(),
            &mut Vec::new(),
            &DiversifyOpts {
                lambda: 1000,
                algorithm: "opt".into(),
                proportional: true,
            },
        )
        .unwrap_err();
        assert!(err.contains("fixed lambda"));
    }

    #[test]
    fn stream_emits_with_delays() {
        let data = gen_labeled(5);
        for engine in ["scan", "scan+", "greedy", "greedy+", "instant", "adaptive"] {
            let mut out = Vec::new();
            let mut log = Vec::new();
            stream(
                data.as_slice(),
                &mut out,
                &mut log,
                &StreamOpts {
                    lambda: 30_000,
                    tau: 10_000,
                    engine: engine.into(),
                },
            )
            .unwrap();
            let text = String::from_utf8(out).unwrap();
            for line in text.lines() {
                let fields: Vec<&str> = line.split('\t').collect();
                assert_eq!(fields.len(), 5, "{engine}: {line}");
                let delay: i64 = fields[4].parse().unwrap();
                assert!(delay <= 10_000);
            }
        }
    }

    #[test]
    fn stream_rejects_contract_violations() {
        let unsorted = b"0\t100\t0\n1\t50\t1\n";
        let err = stream(
            &unsorted[..],
            &mut Vec::new(),
            &mut Vec::new(),
            &StreamOpts {
                lambda: 10,
                tau: 5,
                engine: "scan".into(),
            },
        )
        .unwrap_err();
        assert!(err.contains("time-sorted"), "{err}");

        let unlabeled = b"0\t100\t0\n1\t200\t\n";
        let err = stream(
            &unlabeled[..],
            &mut Vec::new(),
            &mut Vec::new(),
            &StreamOpts {
                lambda: 10,
                tau: 5,
                engine: "scan".into(),
            },
        )
        .unwrap_err();
        assert!(err.contains("empty label set"), "{err}");
    }

    fn supervised_opts(engine: &str) -> SupervisedStreamOpts {
        SupervisedStreamOpts {
            lambda: 30_000,
            tau: 10_000,
            engine: engine.into(),
            shards: 2,
            checkpoint_every: 64,
            ..Default::default()
        }
    }

    #[test]
    fn stream_supervised_under_chaos_flags_all_late_emissions() {
        let data = gen_labeled(5);
        let dir = std::env::temp_dir().join(format!("mqdiv_sup_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let report_path = dir.join("report.json");
        let mut opts = supervised_opts("scan+");
        opts.chaos_seed = Some(7);
        opts.fault_report = Some(report_path.clone());
        let mut out = Vec::new();
        let mut log = Vec::new();
        stream_supervised(data.as_slice(), &mut out, &mut log, &opts).unwrap();
        // Unflagged rows must honor tau; a report must have been written.
        let text = String::from_utf8(out).unwrap();
        assert!(!text.is_empty());
        for line in text.lines() {
            let fields: Vec<&str> = line.split('\t').collect();
            assert_eq!(fields.len(), 6, "{line}");
            let delay: i64 = fields[4].parse().unwrap();
            let degraded: u8 = fields[5].parse().unwrap();
            if degraded == 0 {
                assert!(delay <= opts.tau, "{line}");
            }
        }
        let report = std::fs::read_to_string(&report_path).unwrap();
        assert!(report.contains("\"seed\":7"), "{report}");
        assert!(
            report.contains("\"tau_violations_unflagged\":0"),
            "{report}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_supervised_checkpoint_resume_matches_straight_run() {
        let data = gen_labeled(5);
        let dir = std::env::temp_dir().join(format!("mqdiv_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("state.mqdc");

        // Straight threaded run (no checkpointing) as the reference.
        let mut reference = Vec::new();
        stream_supervised(
            data.as_slice(),
            &mut reference,
            &mut Vec::new(),
            &supervised_opts("greedy+"),
        )
        .unwrap();

        // Run once writing rolling checkpoints, then "crash-recover": resume
        // from the final checkpoint (the whole stream already delivered) and
        // again from a mid-stream one.
        let mut opts = supervised_opts("greedy+");
        opts.checkpoint = Some(ckpt.clone());
        opts.checkpoint_every = 50;
        let mut first = Vec::new();
        stream_supervised(data.as_slice(), &mut first, &mut Vec::new(), &opts).unwrap();
        assert_eq!(first, reference, "checkpointing must not change output");
        assert!(ckpt.exists());

        let mut resumed = Vec::new();
        let mut log = Vec::new();
        let mut ropts = supervised_opts("greedy+");
        ropts.resume = Some(ckpt.clone());
        stream_supervised(data.as_slice(), &mut resumed, &mut log, &ropts).unwrap();
        // The resumed run replays nothing but still flushes the same cover.
        assert_eq!(resumed, reference);
        assert!(String::from_utf8(log).unwrap().contains("resumed at"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_supervised_rejects_unsupervisable_engines() {
        let data = gen_labeled(1);
        for engine in ["instant", "adaptive", "magic"] {
            let err = stream_supervised(
                data.as_slice(),
                &mut Vec::new(),
                &mut Vec::new(),
                &supervised_opts(engine),
            )
            .unwrap_err();
            assert!(err.contains("supervised"), "{err}");
        }
    }

    #[test]
    fn match_text_to_labels_with_sentiment() {
        let input = b"0\t100\tobama wins a great victory\n1\t200\tlunch was nice\n2\t300\tsenate failure scandal\n";
        let mut out = Vec::new();
        let mut log = Vec::new();
        match_posts(
            &input[..],
            &mut out,
            &mut log,
            &MatchOpts {
                queries: vec!["obama,senate".into()],
                dedup: false,
                sentiment: true,
            },
        )
        .unwrap();
        let rows = tsv::read_labeled(out.as_slice()).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].value > 0, "victory should score positive");
        assert!(rows[1].value < 0, "fails should score negative");
    }

    #[test]
    fn match_requires_queries() {
        let err = match_posts(
            &b""[..],
            &mut Vec::new(),
            &mut Vec::new(),
            &MatchOpts {
                queries: vec![],
                dedup: false,
                sentiment: false,
            },
        )
        .unwrap_err();
        assert!(err.contains("--query"));
    }

    #[test]
    fn gen_text_mode() {
        let mut out = Vec::new();
        let mut log = Vec::new();
        generate(
            &mut out,
            &mut log,
            &GenOpts {
                text: true,
                labels: 0,
                rate: 30.0,
                overlap: 1.0,
                minutes: 2,
                seed: 1,
            },
        )
        .unwrap();
        let rows = tsv::read_text(out.as_slice()).unwrap();
        assert!(!rows.is_empty());
    }
}
