//! Library backing the `mqdiv` command-line tool: TSV formats and the
//! subcommand implementations (`gen`, `match`, `diversify`, `stream`).
//! Everything operates on generic readers/writers so the behaviour is
//! covered by unit tests; `main.rs` only parses flags and wires files.

#![warn(missing_docs)]

pub mod binlog;
pub mod commands;
pub mod lint;
pub mod load;
pub mod serve;
pub mod store;
pub mod tsv;
