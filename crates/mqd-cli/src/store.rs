//! A segmented on-disk post store: the persistence layer under a real
//! deployment of the Figure 1 pipeline.
//!
//! A store is a directory of immutable segment files, each a checksummed
//! binary log (`seg-<first>-<last>-<seq>.mqdl`, named by its dimension-value
//! range and a monotone sequence number). Appends create new segments;
//! range scans touch only overlapping segments; corrupt or truncated
//! segments (e.g. a crash mid-write) are quarantined at open instead of
//! poisoning reads. Old segments can be dropped by range — the same
//! retention model as the in-memory [`mqd_text::RtIndex`].

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::binlog;
use crate::tsv::LabeledRow;

/// Metadata of one live segment.
#[derive(Clone, Debug)]
pub struct SegmentInfo {
    /// File path.
    pub path: PathBuf,
    /// Smallest dimension value in the segment.
    pub min_value: i64,
    /// Largest dimension value in the segment.
    pub max_value: i64,
    /// Number of rows.
    pub rows: usize,
    /// Monotone creation sequence number.
    pub seq: u64,
}

/// A directory-backed segmented store.
#[derive(Debug)]
pub struct PostStore {
    dir: PathBuf,
    segments: Vec<SegmentInfo>,
    /// Files that failed validation at open (kept on disk for forensics).
    quarantined: Vec<PathBuf>,
    next_seq: u64,
}

impl PostStore {
    /// Opens (or creates) a store directory, validating every segment.
    /// Unreadable/corrupt segments are quarantined, not deleted.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut segments = Vec::new();
        let mut quarantined = Vec::new();
        let mut next_seq = 0u64;
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("mqdl") {
                continue;
            }
            match Self::load_segment(&path) {
                Some(info) => {
                    next_seq = next_seq.max(info.seq + 1);
                    segments.push(info);
                }
                None => quarantined.push(path),
            }
        }
        segments.sort_by_key(|s| s.seq);
        Ok(PostStore {
            dir,
            segments,
            quarantined,
            next_seq,
        })
    }

    fn load_segment(path: &Path) -> Option<SegmentInfo> {
        let seq = Self::parse_seq(path)?;
        let data = fs::read(path).ok()?;
        let rows = binlog::decode(&data).ok()?;
        if rows.is_empty() {
            return None;
        }
        let min_value = rows.iter().map(|r| r.value).min()?;
        let max_value = rows.iter().map(|r| r.value).max()?;
        Some(SegmentInfo {
            path: path.to_path_buf(),
            min_value,
            max_value,
            rows: rows.len(),
            seq,
        })
    }

    fn parse_seq(path: &Path) -> Option<u64> {
        // seg-<min>-<max>-<seq>.mqdl ; min/max may be negative.
        let stem = path.file_stem()?.to_str()?;
        stem.strip_prefix("seg-")?.rsplit('-').next()?.parse().ok()
    }

    /// Appends a batch as one new immutable segment. Empty batches are a
    /// no-op. The write goes to a temp file first and is renamed into
    /// place, so readers never observe half a segment under POSIX rename
    /// semantics.
    pub fn append(&mut self, rows: &[LabeledRow]) -> io::Result<Option<SegmentInfo>> {
        if rows.is_empty() {
            return Ok(None);
        }
        // Non-empty is guaranteed by the early return above; fold instead
        // of unwrapping so a refactor can never turn this into a panic.
        let (min_value, max_value) = rows.iter().fold((i64::MAX, i64::MIN), |(lo, hi), r| {
            (lo.min(r.value), hi.max(r.value))
        });
        let seq = self.next_seq;
        self.next_seq += 1;
        let name = format!("seg-{min_value}-{max_value}-{seq}.mqdl");
        let tmp = self.dir.join(format!(".tmp-{seq}"));
        let final_path = self.dir.join(name);
        fs::write(&tmp, binlog::encode(rows))?;
        fs::rename(&tmp, &final_path)?;
        let info = SegmentInfo {
            path: final_path,
            min_value,
            max_value,
            rows: rows.len(),
            seq,
        };
        self.segments.push(info.clone());
        Ok(Some(info))
    }

    /// Live segments, in creation order.
    pub fn segments(&self) -> &[SegmentInfo] {
        &self.segments
    }

    /// Segments that failed validation at open.
    pub fn quarantined(&self) -> &[PathBuf] {
        &self.quarantined
    }

    /// Total rows across live segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.rows).sum()
    }

    /// Whether the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All rows with `value` in `[from, to]`, reading only overlapping
    /// segments; results sorted by `(value, id)`.
    pub fn scan(&self, from: i64, to: i64) -> io::Result<Vec<LabeledRow>> {
        let mut out = Vec::new();
        for seg in &self.segments {
            if seg.max_value < from || seg.min_value > to {
                continue;
            }
            let data = fs::read(&seg.path)?;
            // Segments were validated at open, but the file may have been
            // corrupted since; surface the typed error through io::Error.
            let rows =
                binlog::decode(&data).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            out.extend(rows.into_iter().filter(|r| (from..=to).contains(&r.value)));
        }
        out.sort_by_key(|r| (r.value, r.id));
        Ok(out)
    }

    /// Deletes every segment wholly older than `cutoff`; returns dropped
    /// row count (retention, like `RtIndex::evict_before`).
    pub fn drop_before(&mut self, cutoff: i64) -> io::Result<usize> {
        let mut dropped = 0;
        let mut kept = Vec::new();
        for seg in self.segments.drain(..) {
            if seg.max_value < cutoff {
                fs::remove_file(&seg.path)?;
                dropped += seg.rows;
            } else {
                kept.push(seg);
            }
        }
        self.segments = kept;
        Ok(dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("mqdiv_store_tests")
            .join(format!("{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rows(range: std::ops::Range<i64>) -> Vec<LabeledRow> {
        range
            .map(|v| LabeledRow {
                id: v as u64,
                value: v * 10,
                labels: vec![(v % 3) as u16],
            })
            .collect()
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = temp_store("round_trip");
        let mut store = PostStore::open(&dir).unwrap();
        assert!(store.is_empty());
        store.append(&rows(0..10)).unwrap();
        store.append(&rows(10..25)).unwrap();
        assert_eq!(store.len(), 25);
        assert_eq!(store.segments().len(), 2);

        let all = store.scan(i64::MIN, i64::MAX).unwrap();
        assert_eq!(all.len(), 25);
        let mid = store.scan(50, 120).unwrap();
        assert_eq!(mid.len(), 8); // values 50,60,...,120
        assert!(mid.windows(2).all(|w| w[0].value <= w[1].value));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_recovers_segments() {
        let dir = temp_store("reopen");
        {
            let mut store = PostStore::open(&dir).unwrap();
            store.append(&rows(0..5)).unwrap();
            store.append(&rows(5..9)).unwrap();
        }
        let store = PostStore::open(&dir).unwrap();
        assert_eq!(store.len(), 9);
        assert_eq!(store.segments().len(), 2);
        assert!(store.quarantined().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sequence_numbers_continue_after_reopen() {
        let dir = temp_store("seq");
        {
            let mut store = PostStore::open(&dir).unwrap();
            store.append(&rows(0..3)).unwrap();
        }
        let mut store = PostStore::open(&dir).unwrap();
        let info = store.append(&rows(3..6)).unwrap().unwrap();
        assert_eq!(info.seq, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_segment_is_quarantined_not_fatal() {
        let dir = temp_store("corrupt");
        {
            let mut store = PostStore::open(&dir).unwrap();
            store.append(&rows(0..5)).unwrap();
            store.append(&rows(5..9)).unwrap();
        }
        // Flip a byte in one segment.
        let victim = fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let mut data = fs::read(&victim).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xff;
        fs::write(&victim, data).unwrap();

        let store = PostStore::open(&dir).unwrap();
        assert_eq!(store.quarantined().len(), 1);
        assert_eq!(store.segments().len(), 1);
        assert!(store.scan(i64::MIN, i64::MAX).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_write_is_quarantined() {
        let dir = temp_store("truncated");
        {
            let mut store = PostStore::open(&dir).unwrap();
            store.append(&rows(0..20)).unwrap();
        }
        let seg = fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let data = fs::read(&seg).unwrap();
        fs::write(&seg, &data[..data.len() / 2]).unwrap(); // simulate crash
        let store = PostStore::open(&dir).unwrap();
        assert_eq!(store.quarantined().len(), 1);
        assert!(store.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_drops_old_segments() {
        let dir = temp_store("retention");
        let mut store = PostStore::open(&dir).unwrap();
        store.append(&rows(0..10)).unwrap(); // values 0..90
        store.append(&rows(10..20)).unwrap(); // values 100..190
        let dropped = store.drop_before(95).unwrap();
        assert_eq!(dropped, 10);
        assert_eq!(store.segments().len(), 1);
        assert_eq!(store.scan(i64::MIN, i64::MAX).unwrap().len(), 10);
        // The file is really gone from disk.
        let reopened = PostStore::open(&dir).unwrap();
        assert_eq!(reopened.len(), 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_append_is_noop() {
        let dir = temp_store("empty");
        let mut store = PostStore::open(&dir).unwrap();
        assert!(store.append(&[]).unwrap().is_none());
        assert!(store.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn negative_values_in_segment_names() {
        let dir = temp_store("negative");
        let mut store = PostStore::open(&dir).unwrap();
        let negative: Vec<LabeledRow> = (-5..0)
            .map(|v| LabeledRow {
                id: (v + 5) as u64,
                value: v,
                labels: vec![0],
            })
            .collect();
        store.append(&negative).unwrap();
        drop(store);
        let store = PostStore::open(&dir).unwrap();
        assert_eq!(store.len(), 5);
        assert_eq!(store.scan(-5, -1).unwrap().len(), 5);
        let _ = fs::remove_dir_all(&dir);
    }
}
