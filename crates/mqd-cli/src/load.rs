//! `mqdiv load`: the open-loop load harness front-end (DESIGN.md §17).
//!
//! Builds the deterministic scenario plan ([`mqd_load::scenario`]), runs
//! it either against a live endpoint (`--addr`, the wire protocol over
//! TCP) or through the deterministic service model (`--sim`), and writes
//! the `BENCH_load_<scenario>.json` evidence artifact. When a `--sim`
//! run's SLO fails, the schedule is ddmin-shrunk to a minimal replayable
//! reproducer before reporting, so a red CI job hands back a seed and a
//! handful of ops instead of an overnight soak.

use std::io::Write;

use mqd_load::{
    build, evaluate_slo, render_report, run_live, run_sim, shrink_plan, RunnerCfg, ScenarioCfg,
    SimParams, CATALOG,
};

/// Options for `mqdiv load`.
pub struct LoadOpts {
    /// Scenario name from [`mqd_load::CATALOG`].
    pub scenario: String,
    /// Live target (`host:port`). Mutually exclusive with `sim`.
    pub addr: Option<String>,
    /// Run the deterministic service model instead of a live endpoint.
    pub sim: bool,
    /// The one seed every client action derives from.
    pub seed: u64,
    /// Mean offered rate, requests/second.
    pub rate: f64,
    /// Run length in milliseconds.
    pub duration_ms: u64,
    /// Paced connection lanes.
    pub lanes: u16,
    /// Report path; `None` writes `BENCH_load_<scenario>.json` in the
    /// working directory.
    pub out: Option<std::path::PathBuf>,
    /// Exit with an error when the SLO fails (for CI).
    pub check: bool,
}

impl Default for LoadOpts {
    fn default() -> Self {
        let cfg = ScenarioCfg::default();
        LoadOpts {
            scenario: "steady".into(),
            addr: None,
            sim: false,
            seed: cfg.seed,
            rate: cfg.rate,
            duration_ms: cfg.duration_ms,
            lanes: cfg.lanes,
            out: None,
            check: false,
        }
    }
}

/// Runs one scenario and writes its evidence artifact. Returns the SLO
/// violations (empty = pass) so callers can script on the verdict.
pub fn load(log: &mut impl Write, opts: &LoadOpts) -> Result<Vec<String>, String> {
    let cfg = ScenarioCfg {
        seed: opts.seed,
        rate: opts.rate,
        duration_ms: opts.duration_ms,
        lanes: opts.lanes,
        ..ScenarioCfg::default()
    };
    let plan = build(&opts.scenario, &cfg).map_err(|e| {
        let names: Vec<&str> = CATALOG.iter().map(|(n, _)| *n).collect();
        format!("{e} (scenarios: {})", names.join(", "))
    })?;
    writeln!(
        log,
        "scenario {}: {} op(s) ({} query, {} ingest), {} slow conn(s), digest {:016x}",
        plan.scenario,
        plan.ops.len(),
        plan.query_ops(),
        plan.ingest_ops(),
        plan.slow_conns.len(),
        plan.digest()
    )
    .map_err(|e| e.to_string())?;

    let outcome = match (&opts.addr, opts.sim) {
        (Some(addr), false) => {
            run_live(&plan, &RunnerCfg::new(addr.clone())).map_err(|e| e.to_string())?
        }
        (None, true) => run_sim(&plan, &SimParams::for_plan(&plan)),
        (Some(_), true) => return Err("--addr and --sim are mutually exclusive".into()),
        (None, false) => return Err("pick a target: --addr HOST:PORT or --sim".into()),
    };

    let violations = evaluate_slo(&plan.scenario, &outcome);
    if !violations.is_empty() && opts.sim {
        // Deterministic executor: shrink the failing schedule to a minimal
        // replayable reproducer (same strategy as the PR 3 oracle).
        let params = SimParams::for_plan(&plan);
        let small = shrink_plan(&plan, |p| {
            !evaluate_slo(&p.scenario, &run_sim(p, &params)).is_empty()
        });
        writeln!(
            log,
            "SLO failed; ddmin shrank {} op(s) / {} slow conn(s) to {} / {} (seed {})",
            plan.ops.len(),
            plan.slow_conns.len(),
            small.ops.len(),
            small.slow_conns.len(),
            plan.seed
        )
        .map_err(|e| e.to_string())?;
    }

    let report = render_report(&plan, &outcome);
    let path = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_load_{}.json", plan.scenario).into());
    std::fs::write(&path, &report).map_err(|e| format!("write {}: {e}", path.display()))?;
    writeln!(
        log,
        "{}: {} ok / {} overloaded / {} timeout / {} error / {} dropped -> {}",
        if violations.is_empty() {
            "SLO pass"
        } else {
            "SLO FAIL"
        },
        outcome.counts.ok,
        outcome.counts.overloads,
        outcome.counts.timeouts,
        outcome.counts.errors,
        outcome.counts.dropped,
        path.display()
    )
    .map_err(|e| e.to_string())?;
    for v in &violations {
        writeln!(log, "  violation: {v}").map_err(|e| e.to_string())?;
    }
    if opts.check && !violations.is_empty() {
        return Err(format!(
            "SLO failed for {} ({} violation(s); see {})",
            plan.scenario,
            violations.len(),
            path.display()
        ));
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_opts(scenario: &str, out: std::path::PathBuf) -> LoadOpts {
        LoadOpts {
            scenario: scenario.into(),
            sim: true,
            rate: 200.0,
            duration_ms: 1_000,
            out: Some(out),
            check: true,
            ..LoadOpts::default()
        }
    }

    #[test]
    fn sim_run_writes_a_byte_stable_artifact() {
        let dir = std::env::temp_dir().join("mqd_load_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_load_steady.json");
        let mut log = Vec::new();
        load(&mut log, &sim_opts("steady", path.clone())).unwrap();
        let a = std::fs::read_to_string(&path).unwrap();
        load(&mut log, &sim_opts("steady", path.clone())).unwrap();
        let b = std::fs::read_to_string(&path).unwrap();
        assert_eq!(a, b, "same seed must reproduce identical reports");
        assert!(a.contains("\"p999\""), "{a}");
        assert!(a.contains("\"mode\":\"sim\""), "{a}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn slowloris_sim_passes_its_slo() {
        let dir = std::env::temp_dir().join("mqd_load_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_load_slowloris.json");
        let mut log = Vec::new();
        let v = load(&mut log, &sim_opts("slowloris", path.clone())).unwrap();
        assert!(v.is_empty(), "{v:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_scenario_lists_the_catalog() {
        let mut log = Vec::new();
        let err = load(
            &mut log,
            &LoadOpts {
                scenario: "nope".into(),
                sim: true,
                ..LoadOpts::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("steady"), "{err}");
        assert!(err.contains("slowloris"), "{err}");
    }

    #[test]
    fn target_flags_are_validated() {
        let mut log = Vec::new();
        let err = load(&mut log, &LoadOpts::default()).unwrap_err();
        assert!(err.contains("--addr"), "{err}");
    }
}
