//! `mqdiv serve`, `mqdiv route`, and `mqdiv client`: wire the TCP serving
//! layer ([`mqd_server`]) and the cluster router ([`mqd_router`]) into the
//! command-line tool.
//!
//! `serve` binds, prints `listening on <addr>` (the one stdout line, so
//! scripts can grab an ephemeral port), and blocks until a client sends
//! `DRAIN`; `--shard-id I --shard-count N` pins it as shard `I` of an
//! `N`-shard cluster. `route` binds the router frontend over `--backends`
//! with the same announcement line. `client` forwards a request script —
//! one request per line, blank lines and `#` comments skipped, `INGESTB
//! <n>` followed by `n` raw body bytes — and echoes each framed response
//! verbatim.

use std::io::{BufRead, Write};

use mqd_core::wire::ShardIdentity;
use mqd_router::{Router, RouterConfig};
use mqd_server::{Client, Server, ServerConfig};

/// Options for `mqdiv serve`.
pub struct ServeOpts {
    /// Listen address, e.g. `127.0.0.1:7744` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Admission-control bound: connections queued beyond the worker pool.
    pub max_queue: usize,
    /// Data directory for WAL + sealed segments (`--data-dir`); `None`
    /// serves memory-only.
    pub data_dir: Option<std::path::PathBuf>,
    /// `--no-fsync` clears this: skip fsync on the durability points.
    pub fsync: bool,
    /// `--retain <span>`: GC sealed windows older than this value span.
    pub retain: Option<i64>,
    /// `--shard-id I --shard-count N`: serve as shard `I` of an `N`-shard
    /// cluster — reject rows owning none of the shard's labels and pin
    /// router `HELLO` handshakes to this map. `None` serves standalone.
    pub shard: Option<ShardIdentity>,
    /// `--idle-timeout-ms N`: close connections whose request line or body
    /// stalls longer than this with a typed `-ERR Timeout`, reclaiming the
    /// worker (slowloris defense). `None` waits forever.
    pub idle_timeout_ms: Option<u64>,
}

/// Binds the server, announces the bound address on `out`, and serves
/// until drained.
pub fn serve(mut out: impl Write, log: &mut impl Write, opts: &ServeOpts) -> Result<(), String> {
    let cfg = ServerConfig {
        addr: opts.addr.clone(),
        threads: 0, // resolved from --threads / MQD_THREADS via mqd-par
        max_queue: opts.max_queue,
        data_dir: opts.data_dir.clone(),
        fsync: opts.fsync,
        retain: opts.retain,
        shard: opts.shard,
        idle_timeout: opts.idle_timeout_ms.map(std::time::Duration::from_millis),
    };
    let server = Server::bind(&cfg).map_err(|e| format!("bind {}: {e}", opts.addr))?;
    writeln!(out, "listening on {}", server.local_addr()).map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    writeln!(
        log,
        "serving with {} worker thread(s), queue bound {}",
        mqd_par::configured_threads(),
        opts.max_queue
    )
    .map_err(|e| e.to_string())?;
    if let Some(shard) = &opts.shard {
        writeln!(log, "shard {}/{}", shard.shard_id, shard.shard_count)
            .map_err(|e| e.to_string())?;
    }
    if let Some(dir) = &opts.data_dir {
        writeln!(
            log,
            "durable store at {} (fsync {}, retain {})",
            dir.display(),
            if opts.fsync { "on" } else { "off" },
            opts.retain.map_or("off".to_string(), |r| r.to_string()),
        )
        .map_err(|e| e.to_string())?;
    }
    server.run().map_err(|e| e.to_string())
}

/// Options for `mqdiv route`.
pub struct RouteOpts {
    /// Frontend listen address (`:0` picks an ephemeral port).
    pub addr: String,
    /// Ordered backend addresses (repeatable `--backends a --backends b`,
    /// or comma-separated); backend `j` serves shard `j mod --shards`.
    pub backends: Vec<String>,
    /// Number of label shards.
    pub shards: u32,
    /// Admission-control bound, as on `serve`.
    pub max_queue: usize,
    /// `--idle-timeout-ms N`, as on `serve`: typed-timeout stalled
    /// frontend connections instead of parking workers.
    pub idle_timeout_ms: Option<u64>,
}

/// Binds the router, announces the frontend address on `out` (same
/// `listening on <addr>` line as `serve`), and routes until drained.
pub fn route(mut out: impl Write, log: &mut impl Write, opts: &RouteOpts) -> Result<(), String> {
    let cfg = RouterConfig {
        addr: opts.addr.clone(),
        backends: opts.backends.clone(),
        shards: opts.shards,
        threads: 0,
        max_queue: opts.max_queue,
        idle_timeout: opts.idle_timeout_ms.map(std::time::Duration::from_millis),
    };
    let router = Router::bind(&cfg).map_err(|e| format!("bind {}: {e}", opts.addr))?;
    writeln!(out, "listening on {}", router.local_addr()).map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    writeln!(
        log,
        "routing {} shard(s) over {} backend(s): {}",
        opts.shards,
        opts.backends.len(),
        opts.backends.join(", ")
    )
    .map_err(|e| e.to_string())?;
    router.run().map_err(|e| e.to_string())
}

/// Options for `mqdiv client`.
pub struct ClientOpts {
    /// Server address to connect to.
    pub addr: String,
    /// Exit with an error if any request gets a non-`+OK` response.
    pub check: bool,
}

/// Returns the announced body size iff `line` is a well-formed `INGESTB`
/// header. Malformed headers are forwarded as-is so the server can answer
/// with its typed protocol error.
fn ingestb_size(line: &str) -> Option<usize> {
    let mut it = line.split_ascii_whitespace();
    if !it.next()?.eq_ignore_ascii_case("INGESTB") {
        return None;
    }
    let n: usize = it.next()?.parse().ok()?;
    if it.next().is_some() || n > mqd_server::protocol::MAX_BATCH_BYTES {
        return None;
    }
    Some(n)
}

/// Forwards a request script from `input` and echoes every framed response
/// (status line, payload lines, `.` terminator) to `out`.
pub fn client_script(
    mut input: impl BufRead,
    mut out: impl Write,
    log: &mut impl Write,
    opts: &ClientOpts,
) -> Result<(), String> {
    let mut client =
        Client::connect(&opts.addr).map_err(|e| format!("connect {}: {e}", opts.addr))?;
    let mut sent = 0usize;
    let mut failed = 0usize;
    let mut line = String::new();
    loop {
        line.clear();
        // lint:allow(blocking-call): reads the local script/stdin the operator controls, not a network peer
        if input.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            break;
        }
        let request = line.trim();
        if request.is_empty() || request.starts_with('#') {
            continue;
        }
        let resp = if let Some(nbytes) = ingestb_size(request) {
            let mut raw = request.as_bytes().to_vec();
            raw.push(b'\n');
            let at = raw.len();
            raw.resize(at + nbytes, 0);
            input
                // lint:allow(panic-path): at == the pre-resize length, so at <= raw.len() always
                .read_exact(&mut raw[at..])
                .map_err(|e| format!("INGESTB body ({nbytes} bytes): {e}"))?;
            client.request_raw(&raw)
        } else {
            client.request(request)
        }
        .map_err(|e| format!("request '{request}': {e}"))?;
        sent += 1;
        if !resp.is_ok() {
            failed += 1;
        }
        writeln!(out, "{}", resp.status).map_err(|e| e.to_string())?;
        for l in &resp.lines {
            writeln!(out, "{l}").map_err(|e| e.to_string())?;
        }
        writeln!(out, "{}", mqd_server::protocol::TERMINATOR).map_err(|e| e.to_string())?;
        // The server closes the connection after these; stop forwarding
        // instead of erroring on the next line of a longer script.
        let cmd = request.split_ascii_whitespace().next().unwrap_or("");
        if cmd.eq_ignore_ascii_case("QUIT") || cmd.eq_ignore_ascii_case("DRAIN") {
            break;
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    writeln!(log, "{sent} request(s), {failed} failed").map_err(|e| e.to_string())?;
    if opts.check && failed > 0 {
        return Err(format!("{failed} request(s) failed"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn spawn_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let server = Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            max_queue: 8,
            ..ServerConfig::default()
        })
        .unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, handle)
    }

    #[test]
    fn script_round_trips_and_drains() {
        let (addr, handle) = spawn_server();
        let script = "# warm-up\n\
                      PING\n\
                      INGEST 1 10 0\n\
                      INGEST 2 20 0,1\n\
                      QUERY 0,1 15 greedysc\n\
                      DRAIN\n";
        let mut out = Vec::new();
        let mut log = Vec::new();
        client_script(
            Cursor::new(script),
            &mut out,
            &mut log,
            &ClientOpts {
                addr: addr.to_string(),
                check: true,
            },
        )
        .unwrap();
        handle.join().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains(r#"+OK {"pong":true}"#), "{text}");
        assert!(text.contains("2\t20\t0,1"), "{text}");
        assert!(text.contains(r#"+OK {"draining":true}"#), "{text}");
        assert_eq!(String::from_utf8(log).unwrap(), "5 request(s), 0 failed\n");
    }

    #[test]
    fn check_mode_fails_on_typed_errors() {
        let (addr, handle) = spawn_server();
        let script = "FROB\nQUIT\n";
        let mut out = Vec::new();
        let mut log = Vec::new();
        let err = client_script(
            Cursor::new(script),
            &mut out,
            &mut log,
            &ClientOpts {
                addr: addr.to_string(),
                check: true,
            },
        )
        .unwrap_err();
        assert_eq!(err, "1 request(s) failed");
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("-ERR Protocol"), "{text}");
        // Drain separately so the server thread exits.
        let mut drain = Client::connect(addr).unwrap();
        drain.request("DRAIN").unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn ingestb_bodies_pass_through_uninterpreted() {
        let (addr, handle) = spawn_server();
        let rows = vec![
            mqd_core::record::Record {
                id: 7,
                value: 5,
                labels: vec![0],
            },
            mqd_core::record::Record {
                id: 8,
                value: 6,
                labels: vec![1],
            },
        ];
        let body = mqd_core::record::encode_records(&rows);
        let mut script = format!("INGESTB {}\n", body.len()).into_bytes();
        script.extend_from_slice(&body);
        script.extend_from_slice(b"STATS\nDRAIN\n");
        let mut out = Vec::new();
        let mut log = Vec::new();
        client_script(
            Cursor::new(script),
            &mut out,
            &mut log,
            &ClientOpts {
                addr: addr.to_string(),
                check: true,
            },
        )
        .unwrap();
        handle.join().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains(r#""ingested":2"#), "{text}");
        assert!(text.contains(r#""rows":2"#), "{text}");
    }

    /// A `Write` the test can read back while `route` still owns it — the
    /// announce line carries the router's ephemeral port.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn route_fronts_a_sharded_cluster_for_client_scripts() {
        let spawn_shard = |shard_id: u32| {
            let server = Server::bind(&ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 2,
                max_queue: 8,
                shard: Some(ShardIdentity {
                    shard_id,
                    shard_count: 2,
                }),
                ..ServerConfig::default()
            })
            .unwrap();
            let addr = server.local_addr();
            let handle = std::thread::spawn(move || server.run().unwrap());
            (addr, handle)
        };
        let (b0, h0) = spawn_shard(0);
        let (b1, h1) = spawn_shard(1);

        let announce = SharedBuf::default();
        let opts = RouteOpts {
            addr: "127.0.0.1:0".into(),
            backends: vec![b0.to_string(), b1.to_string()],
            shards: 2,
            max_queue: 8,
            idle_timeout_ms: None,
        };
        let hr = {
            let mut out = announce.clone();
            std::thread::spawn(move || route(&mut out, &mut Vec::new(), &opts).unwrap())
        };
        let addr = loop {
            let snapshot = String::from_utf8(announce.0.lock().unwrap().clone()).unwrap();
            if let Some(rest) = snapshot.strip_prefix("listening on ") {
                break rest.trim().to_string();
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };

        let script = "INGEST 1 10 0\n\
                      INGEST 2 20 1\n\
                      INGEST 3 30 0,1\n\
                      QUERY 0,1 15 greedysc\n\
                      DRAIN\n";
        let mut out = Vec::new();
        let mut log = Vec::new();
        client_script(
            Cursor::new(script),
            &mut out,
            &mut log,
            &ClientOpts { addr, check: true },
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains(r#""ingested":1,"generation":3"#), "{text}");
        assert!(text.contains("3\t30\t0,1"), "{text}");
        assert!(text.contains(r#""generations":["#), "{text}");

        // The router's DRAIN forwarded DRAIN to both backends before
        // shutting its own acceptor down.
        hr.join().unwrap();
        h0.join().unwrap();
        h1.join().unwrap();
    }

    #[test]
    fn malformed_ingestb_header_is_forwarded_verbatim() {
        assert_eq!(ingestb_size("INGESTB 12"), Some(12));
        assert_eq!(ingestb_size("ingestb 0"), Some(0));
        assert_eq!(ingestb_size("INGESTB twelve"), None);
        assert_eq!(ingestb_size("INGESTB 1 2"), None);
        assert_eq!(ingestb_size("INGEST 1 2 0"), None);
        assert_eq!(ingestb_size(&format!("INGESTB {}", usize::MAX)), None);
    }
}
