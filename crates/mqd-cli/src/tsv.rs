//! Tab-separated input/output formats for the `mqdiv` CLI.
//!
//! Two row shapes, both line-oriented and dependency-free:
//!
//! * labeled posts: `id \t value \t label,label,...` — the algorithm-ready
//!   form (`value` is ms for the time dimension or fixed-point sentiment),
//! * text posts: `id \t timestamp_ms \t text` — raw microblog posts for
//!   the `match` command.
//!
//! Lines starting with `#` and blank lines are ignored.

use std::io::{BufRead, Write};

use mqd_core::{Instance, LabelId, MqdError, Post, PostId};

/// One labeled post row — the workspace-shared [`mqd_core::record::Record`],
/// so CLI files, store segments and server `INGEST` batches are one type
/// with one codec.
pub use mqd_core::record::Record as LabeledRow;

/// One raw text row.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TextRow {
    /// External post id.
    pub id: u64,
    /// Timestamp (ms).
    pub time: i64,
    /// Post text.
    pub text: String,
}

fn parse_err(line_no: usize, msg: impl std::fmt::Display) -> MqdError {
    MqdError::Parse {
        line: line_no,
        msg: msg.to_string(),
    }
}

/// Parses labeled rows from a reader. Malformed rows are typed
/// [`MqdError::Parse`] errors carrying the 1-based line number. Row parsing
/// delegates to the shared [`mqd_core::record::parse_tsv_line`].
pub fn read_labeled(r: impl BufRead) -> Result<Vec<LabeledRow>, MqdError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line.map_err(MqdError::from)?;
        if let Some(row) = mqd_core::record::parse_tsv_line(&line, i + 1)? {
            out.push(row);
        }
    }
    Ok(out)
}

/// Writes labeled rows.
pub fn write_labeled(mut w: impl Write, rows: &[LabeledRow]) -> std::io::Result<()> {
    for r in rows {
        writeln!(w, "{}", mqd_core::record::format_tsv(r))?;
    }
    Ok(())
}

/// Parses text rows from a reader.
pub fn read_text(r: impl BufRead) -> Result<Vec<TextRow>, MqdError> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line.map_err(MqdError::from)?;
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let id: u64 = parts
            .next()
            .ok_or_else(|| parse_err(i + 1, "missing id"))?
            .parse()
            .map_err(|e| parse_err(i + 1, format!("bad id: {e}")))?;
        let time: i64 = parts
            .next()
            .ok_or_else(|| parse_err(i + 1, "missing timestamp"))?
            .parse()
            .map_err(|e| parse_err(i + 1, format!("bad timestamp: {e}")))?;
        let text = parts
            .next()
            .ok_or_else(|| parse_err(i + 1, "missing text"))?
            .to_string();
        out.push(TextRow { id, time, text });
    }
    Ok(out)
}

/// Writes text rows.
pub fn write_text(mut w: impl Write, rows: &[TextRow]) -> std::io::Result<()> {
    for r in rows {
        writeln!(
            w,
            "{}\t{}\t{}",
            r.id,
            r.time,
            r.text.replace(['\t', '\n'], " ")
        )?;
    }
    Ok(())
}

/// Converts labeled rows into an [`Instance`]. The label space is the
/// maximum label id + 1 unless `num_labels` forces a wider one.
pub fn to_instance(rows: &[LabeledRow], num_labels: Option<usize>) -> Result<Instance, MqdError> {
    let max_label = rows
        .iter()
        .flat_map(|r| r.labels.iter().copied())
        .max()
        .map_or(0, |m| m as usize + 1);
    let n = num_labels.unwrap_or(max_label).max(max_label).max(1);
    let posts: Vec<Post> = rows
        .iter()
        .map(|r| {
            Post::new(
                PostId(r.id),
                r.value,
                r.labels.iter().map(|&l| LabelId(l)).collect(),
            )
        })
        .collect();
    Instance::from_posts(posts, n)
}

/// Enforces the streaming input contract on parsed rows: timestamps must
/// be non-decreasing (arrival order) and every post must carry at least one
/// label (a post matching no query has no place in the pipeline).
///
/// Offline commands tolerate both — `to_instance` re-sorts and unlabeled
/// posts are simply never selected — but a streaming deployment must reject
/// such input up front rather than silently reorder or drop it. Row numbers
/// are 1-based positions in the parsed stream.
pub fn validate_stream(rows: &[LabeledRow]) -> Result<(), MqdError> {
    let mut prev: Option<i64> = None;
    for (i, r) in rows.iter().enumerate() {
        if r.labels.is_empty() {
            return Err(MqdError::EmptyLabelSet { row: i + 1 });
        }
        if let Some(p) = prev {
            if r.value < p {
                return Err(MqdError::NonMonotoneTimestamp {
                    row: i + 1,
                    prev: p,
                    got: r.value,
                });
            }
        }
        prev = Some(r.value);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_round_trip() {
        let rows = vec![
            LabeledRow {
                id: 1,
                value: 100,
                labels: vec![0, 2],
            },
            LabeledRow {
                id: 2,
                value: -5,
                labels: vec![1],
            },
        ];
        let mut buf = Vec::new();
        write_labeled(&mut buf, &rows).unwrap();
        let parsed = read_labeled(buf.as_slice()).unwrap();
        assert_eq!(parsed, rows);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let input = b"# header\n\n1\t10\t0\n";
        let rows = read_labeled(&input[..]).unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn malformed_rows_report_line_numbers() {
        match read_labeled(&b"# skip\n1\t10\n"[..]).unwrap_err() {
            MqdError::Parse { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("missing labels"), "{msg}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        let err = |input: &[u8]| read_labeled(input).unwrap_err().to_string();
        assert!(err(b"x\t10\t0\n").contains("bad id"));
        assert!(err(b"1\ty\t0\n").contains("bad value"));
        assert!(err(b"1\t2\tz\n").contains("bad label"));
        assert!(err(b"1\t2\t0\textra\n").contains("too many fields"));
    }

    #[test]
    fn stream_validation_catches_contract_violations() {
        let ok = vec![
            LabeledRow {
                id: 0,
                value: 10,
                labels: vec![0],
            },
            LabeledRow {
                id: 1,
                value: 10,
                labels: vec![1],
            },
        ];
        validate_stream(&ok).unwrap();

        let mut unlabeled = ok.clone();
        unlabeled[1].labels.clear();
        assert_eq!(
            validate_stream(&unlabeled).unwrap_err(),
            MqdError::EmptyLabelSet { row: 2 }
        );

        let mut backwards = ok;
        backwards[1].value = 5;
        assert_eq!(
            validate_stream(&backwards).unwrap_err(),
            MqdError::NonMonotoneTimestamp {
                row: 2,
                prev: 10,
                got: 5
            }
        );
    }

    #[test]
    fn text_round_trip_preserves_tabs_as_spaces() {
        let rows = vec![TextRow {
            id: 3,
            time: 42,
            text: "hello\tworld".into(),
        }];
        let mut buf = Vec::new();
        write_text(&mut buf, &rows).unwrap();
        let parsed = read_text(buf.as_slice()).unwrap();
        assert_eq!(parsed[0].text, "hello world");
        // text may contain further tabs on read (splitn keeps them)
        let raw = b"1\t5\ta\tb\tc\n";
        let parsed = read_text(&raw[..]).unwrap();
        assert_eq!(parsed[0].text, "a\tb\tc");
    }

    #[test]
    fn to_instance_infers_label_space() {
        let rows = vec![LabeledRow {
            id: 0,
            value: 1,
            labels: vec![4],
        }];
        let inst = to_instance(&rows, None).unwrap();
        assert_eq!(inst.num_labels(), 5);
        let wider = to_instance(&rows, Some(10)).unwrap();
        assert_eq!(wider.num_labels(), 10);
    }
}
