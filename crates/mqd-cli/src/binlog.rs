//! Compact binary log for labeled post streams.
//!
//! TSV is convenient but bulky for day-scale streams (millions of rows);
//! this append-friendly binary format stores a labeled post in a few bytes:
//!
//! ```text
//! header : b"MQDL" + version(u8)
//! record : varint(id delta) + zigzag-varint(value delta)
//!          + varint(label count) + varint(label)*
//! footer : b"END!" + u64 FNV-1a checksum of everything before it
//! ```
//!
//! Ids and dimension values are delta-encoded against the previous record
//! (streams are time-sorted, so deltas are small), and the checksum turns
//! truncation or bit rot into a typed [`MqdError::Corrupt`] — carrying the
//! byte offset where decoding stopped — instead of silent garbage. The
//! varint/zigzag/framing primitives live in [`mqd_core::wire`], shared with
//! the streaming checkpoint codec.

use std::io::{Read, Write};

use mqd_core::wire::{check_framed, put_varint, seal_framed, unzigzag, zigzag, Cursor};
use mqd_core::MqdError;

use crate::tsv::LabeledRow;

const MAGIC: &[u8; 4] = b"MQDL";
const FOOTER: &[u8; 4] = b"END!";
const VERSION: u8 = 1;

/// Serializes rows into the binary log format.
pub fn encode(rows: &[LabeledRow]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + rows.len() * 8);
    buf.extend_from_slice(MAGIC);
    buf.push(VERSION);
    put_varint(&mut buf, rows.len() as u64);
    let mut prev_id = 0u64;
    let mut prev_value = 0i64;
    for r in rows {
        put_varint(&mut buf, zigzag(r.id.wrapping_sub(prev_id) as i64));
        put_varint(&mut buf, zigzag(r.value.wrapping_sub(prev_value)));
        put_varint(&mut buf, r.labels.len() as u64);
        for &l in &r.labels {
            put_varint(&mut buf, l as u64);
        }
        prev_id = r.id;
        prev_value = r.value;
    }
    seal_framed(&mut buf, FOOTER);
    buf
}

/// Deserializes a binary log, verifying magic, version and checksum. Every
/// failure is an [`MqdError::Corrupt`] naming the byte offset (offset 0 for
/// whole-file checks such as the checksum).
pub fn decode(data: &[u8]) -> Result<Vec<LabeledRow>, MqdError> {
    let body = check_framed(data, FOOTER, MAGIC.len() + 1)?;

    let mut buf = Cursor::new(body);
    let magic: [u8; 4] = buf.get_array()?;
    if &magic != MAGIC {
        return Err(MqdError::Corrupt {
            offset: 0,
            reason: "bad magic (not an mqdiv binary log)".into(),
        });
    }
    let version = buf.get_u8()?;
    if version != VERSION {
        return Err(MqdError::Corrupt {
            offset: MAGIC.len(),
            reason: format!("unsupported version {version}"),
        });
    }
    let count = buf.get_varint()? as usize;
    let mut rows = Vec::with_capacity(count.min(1 << 20));
    let mut prev_id = 0u64;
    let mut prev_value = 0i64;
    for _ in 0..count {
        let id = prev_id.wrapping_add(unzigzag(buf.get_varint()?) as u64);
        let value = prev_value.wrapping_add(buf.get_varint_i64()?);
        let n_labels = buf.get_varint()? as usize;
        if n_labels > u16::MAX as usize {
            return Err(buf.corrupt("label count out of range"));
        }
        let mut labels = Vec::with_capacity(n_labels);
        for _ in 0..n_labels {
            let l = buf.get_varint()?;
            if l > u16::MAX as u64 {
                return Err(buf.corrupt("label id out of range"));
            }
            labels.push(l as u16);
        }
        rows.push(LabeledRow { id, value, labels });
        prev_id = id;
        prev_value = value;
    }
    if buf.has_remaining() {
        return Err(buf.corrupt("trailing bytes after last record"));
    }
    Ok(rows)
}

/// Writes rows to a writer in binary-log format.
pub fn write_posts(mut w: impl Write, rows: &[LabeledRow]) -> std::io::Result<()> {
    w.write_all(&encode(rows))
}

/// Reads a whole binary log from a reader.
pub fn read_posts(mut r: impl Read) -> Result<Vec<LabeledRow>, MqdError> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    decode(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<LabeledRow> {
        vec![
            LabeledRow {
                id: 10,
                value: 1_000,
                labels: vec![0, 3],
            },
            LabeledRow {
                id: 11,
                value: 1_050,
                labels: vec![1],
            },
            LabeledRow {
                id: 15,
                value: 980, // values may go backwards (sentiment dimension)
                labels: vec![],
            },
        ]
    }

    #[test]
    fn round_trip() {
        let rows = sample();
        let data = encode(&rows);
        assert_eq!(decode(&data).unwrap(), rows);
    }

    #[test]
    fn round_trip_extremes() {
        let rows = vec![
            LabeledRow {
                id: u64::MAX,
                value: i64::MIN,
                labels: vec![u16::MAX],
            },
            LabeledRow {
                id: 0,
                value: i64::MAX,
                labels: vec![0],
            },
        ];
        let data = encode(&rows);
        assert_eq!(decode(&data).unwrap(), rows);
    }

    #[test]
    fn empty_log() {
        let data = encode(&[]);
        assert!(decode(&data).unwrap().is_empty());
    }

    #[test]
    fn corruption_is_a_typed_error() {
        let rows = sample();
        let mut data = encode(&rows);
        let mid = data.len() / 2;
        data[mid] ^= 0xff;
        match decode(&data).unwrap_err() {
            MqdError::Corrupt { reason, .. } => {
                assert!(
                    reason.contains("checksum") || reason.contains("varint"),
                    "unexpected reason: {reason}"
                );
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncation_reports_offset() {
        let data = encode(&sample());
        match decode(&data[..data.len() - 3]).unwrap_err() {
            MqdError::Corrupt { offset, reason } => {
                assert!(
                    reason.contains("end marker") || reason.contains("short"),
                    "{reason}"
                );
                assert!(offset <= data.len());
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut data = encode(&sample());
        data[0] = b'X';
        // checksum covers magic, so a blind flip reports a checksum
        // failure; re-seal the frame over the bad magic to reach the
        // magic check itself.
        let err = decode(&data).unwrap_err();
        assert!(err.to_string().contains("checksum"));
        let mut body = data[..data.len() - FOOTER.len() - 8].to_vec();
        seal_framed(&mut body, FOOTER);
        let err = decode(&body).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn binary_is_smaller_than_tsv() {
        use crate::tsv::write_labeled;
        let rows: Vec<LabeledRow> = (0..2_000)
            .map(|i| LabeledRow {
                id: i,
                value: 1_370_000_000_000 + i as i64 * 137,
                labels: vec![(i % 5) as u16],
            })
            .collect();
        let bin = encode(&rows);
        let mut tsv = Vec::new();
        write_labeled(&mut tsv, &rows).unwrap();
        assert!(
            bin.len() * 2 < tsv.len(),
            "binary {} vs tsv {}",
            bin.len(),
            tsv.len()
        );
    }
}
