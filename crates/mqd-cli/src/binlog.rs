//! Compact binary log for labeled post streams.
//!
//! TSV is convenient but bulky for day-scale streams (millions of rows);
//! this append-friendly binary format stores a labeled post in a few bytes:
//!
//! ```text
//! header : b"MQDL" + version(u8)
//! record : varint(id delta) + zigzag-varint(value delta)
//!          + varint(label count) + varint(label)*
//! footer : b"END!" + u64 FNV-1a checksum of everything before it
//! ```
//!
//! Ids and dimension values are delta-encoded against the previous record
//! (streams are time-sorted, so deltas are small), and the checksum turns
//! truncation or bit rot into a typed error instead of silent garbage.
//! Encoding targets a plain `Vec<u8>`; decoding reads through a bounds-
//! checked cursor — no external buffer crate needed.

use std::io::{Read, Write};

use crate::tsv::LabeledRow;

const MAGIC: &[u8; 4] = b"MQDL";
const FOOTER: &[u8; 4] = b"END!";
const VERSION: u8 = 1;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Bounds-checked forward reader over a byte slice.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn has_remaining(&self) -> bool {
        self.pos < self.data.len()
    }

    fn get_u8(&mut self) -> Result<u8, String> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or_else(|| String::from("unexpected end of log"))?;
        self.pos += 1;
        Ok(b)
    }

    fn get_array<const N: usize>(&mut self) -> Result<[u8; N], String> {
        let end = self.pos + N;
        if end > self.data.len() {
            return Err("unexpected end of log".into());
        }
        let out: [u8; N] = self.data[self.pos..end].try_into().expect("N bytes");
        self.pos = end;
        Ok(out)
    }
}

fn get_varint(buf: &mut Cursor<'_>) -> Result<u64, String> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err("truncated varint".into());
        }
        let byte = buf.get_u8()?;
        if shift >= 64 {
            return Err("varint overflow".into());
        }
        out |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Serializes rows into the binary log format.
pub fn encode(rows: &[LabeledRow]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + rows.len() * 8);
    buf.extend_from_slice(MAGIC);
    buf.push(VERSION);
    put_varint(&mut buf, rows.len() as u64);
    let mut prev_id = 0u64;
    let mut prev_value = 0i64;
    for r in rows {
        put_varint(&mut buf, zigzag(r.id.wrapping_sub(prev_id) as i64));
        put_varint(&mut buf, zigzag(r.value.wrapping_sub(prev_value)));
        put_varint(&mut buf, r.labels.len() as u64);
        for &l in &r.labels {
            put_varint(&mut buf, l as u64);
        }
        prev_id = r.id;
        prev_value = r.value;
    }
    let checksum = fnv1a(&buf);
    buf.extend_from_slice(FOOTER);
    buf.extend_from_slice(&checksum.to_be_bytes());
    buf
}

/// Deserializes a binary log, verifying magic, version and checksum.
pub fn decode(data: &[u8]) -> Result<Vec<LabeledRow>, String> {
    if data.len() < MAGIC.len() + 1 + FOOTER.len() + 8 {
        return Err("file too short for a binary log".into());
    }
    let (body, tail) = data.split_at(data.len() - FOOTER.len() - 8);
    if &tail[..4] != FOOTER {
        return Err("missing end marker (truncated file?)".into());
    }
    let stored = u64::from_be_bytes(tail[4..].try_into().expect("8 bytes"));
    if fnv1a(body) != stored {
        return Err("checksum mismatch (corrupted file)".into());
    }

    let mut buf = Cursor::new(body);
    let magic: [u8; 4] = buf.get_array()?;
    if &magic != MAGIC {
        return Err("bad magic (not an mqdiv binary log)".into());
    }
    let version = buf.get_u8()?;
    if version != VERSION {
        return Err(format!("unsupported version {version}"));
    }
    let count = get_varint(&mut buf)? as usize;
    let mut rows = Vec::with_capacity(count.min(1 << 20));
    let mut prev_id = 0u64;
    let mut prev_value = 0i64;
    for _ in 0..count {
        let id = prev_id.wrapping_add(unzigzag(get_varint(&mut buf)?) as u64);
        let value = prev_value.wrapping_add(unzigzag(get_varint(&mut buf)?));
        let n_labels = get_varint(&mut buf)? as usize;
        if n_labels > u16::MAX as usize {
            return Err("label count out of range".into());
        }
        let mut labels = Vec::with_capacity(n_labels);
        for _ in 0..n_labels {
            let l = get_varint(&mut buf)?;
            if l > u16::MAX as u64 {
                return Err("label id out of range".into());
            }
            labels.push(l as u16);
        }
        rows.push(LabeledRow { id, value, labels });
        prev_id = id;
        prev_value = value;
    }
    if buf.has_remaining() {
        return Err("trailing bytes after last record".into());
    }
    Ok(rows)
}

/// Writes rows to a writer in binary-log format.
pub fn write_posts(mut w: impl Write, rows: &[LabeledRow]) -> std::io::Result<()> {
    w.write_all(&encode(rows))
}

/// Reads a whole binary log from a reader.
pub fn read_posts(mut r: impl Read) -> Result<Vec<LabeledRow>, String> {
    let mut data = Vec::new();
    r.read_to_end(&mut data).map_err(|e| e.to_string())?;
    decode(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<LabeledRow> {
        vec![
            LabeledRow {
                id: 10,
                value: 1_000,
                labels: vec![0, 3],
            },
            LabeledRow {
                id: 11,
                value: 1_050,
                labels: vec![1],
            },
            LabeledRow {
                id: 15,
                value: 980, // values may go backwards (sentiment dimension)
                labels: vec![],
            },
        ]
    }

    #[test]
    fn round_trip() {
        let rows = sample();
        let data = encode(&rows);
        assert_eq!(decode(&data).unwrap(), rows);
    }

    #[test]
    fn round_trip_extremes() {
        let rows = vec![
            LabeledRow {
                id: u64::MAX,
                value: i64::MIN,
                labels: vec![u16::MAX],
            },
            LabeledRow {
                id: 0,
                value: i64::MAX,
                labels: vec![0],
            },
        ];
        let data = encode(&rows);
        assert_eq!(decode(&data).unwrap(), rows);
    }

    #[test]
    fn empty_log() {
        let data = encode(&[]);
        assert!(decode(&data).unwrap().is_empty());
    }

    #[test]
    fn corruption_detected() {
        let rows = sample();
        let mut data = encode(&rows);
        let mid = data.len() / 2;
        data[mid] ^= 0xff;
        let err = decode(&data).unwrap_err();
        assert!(
            err.contains("checksum") || err.contains("varint") || err.contains("magic"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn truncation_detected() {
        let data = encode(&sample());
        let err = decode(&data[..data.len() - 3]).unwrap_err();
        assert!(err.contains("end marker") || err.contains("short"), "{err}");
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut data = encode(&sample());
        data[0] = b'X';
        // checksum covers magic, so this reports a checksum failure first —
        // rebuild a log with a valid checksum over bad magic to hit the
        // magic check.
        let err = decode(&data).unwrap_err();
        assert!(err.contains("checksum"));
    }

    #[test]
    fn binary_is_smaller_than_tsv() {
        use crate::tsv::write_labeled;
        let rows: Vec<LabeledRow> = (0..2_000)
            .map(|i| LabeledRow {
                id: i,
                value: 1_370_000_000_000 + i as i64 * 137,
                labels: vec![(i % 5) as u16],
            })
            .collect();
        let bin = encode(&rows);
        let mut tsv = Vec::new();
        write_labeled(&mut tsv, &rows).unwrap();
        assert!(
            bin.len() * 2 < tsv.len(),
            "binary {} vs tsv {}",
            bin.len(),
            tsv.len()
        );
    }

    #[test]
    fn varint_and_zigzag_round_trip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 123456789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            put_varint(&mut buf, v);
        }
        let mut b = Cursor::new(&buf);
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            assert_eq!(get_varint(&mut b).unwrap(), v);
        }
    }
}
