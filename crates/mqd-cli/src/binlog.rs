//! Compact binary log for labeled post streams.
//!
//! TSV is convenient but bulky for day-scale streams (millions of rows);
//! this append-friendly binary format stores a labeled post in a few bytes:
//!
//! ```text
//! header : b"MQDL" + version(u8)
//! record : varint(id delta) + zigzag-varint(value delta)
//!          + varint(label count) + varint(label)*
//! footer : b"END!" + u64 FNV-1a checksum of everything before it
//! ```
//!
//! Ids and dimension values are delta-encoded against the previous record
//! (streams are time-sorted, so deltas are small), and the checksum turns
//! truncation or bit rot into a typed [`MqdError::Corrupt`] — carrying the
//! byte offset where decoding stopped — instead of silent garbage. The
//! codec itself lives in [`mqd_core::record`], shared with the store and
//! the server's `INGESTB` wire batches, so the formats cannot drift; this
//! module keeps the CLI-facing names.

use std::io::{Read, Write};

use mqd_core::record;
use mqd_core::MqdError;

use crate::tsv::LabeledRow;

/// Serializes rows into the binary log format.
pub fn encode(rows: &[LabeledRow]) -> Vec<u8> {
    record::encode_records(rows)
}

/// Deserializes a binary log, verifying magic, version and checksum. Every
/// failure is an [`MqdError::Corrupt`] naming the byte offset (offset 0 for
/// whole-file checks such as the checksum).
pub fn decode(data: &[u8]) -> Result<Vec<LabeledRow>, MqdError> {
    record::decode_records(data)
}

/// Writes rows to a writer in binary-log format.
pub fn write_posts(w: impl Write, rows: &[LabeledRow]) -> std::io::Result<()> {
    record::write_records(w, rows)
}

/// Reads a whole binary log from a reader.
pub fn read_posts(r: impl Read) -> Result<Vec<LabeledRow>, MqdError> {
    record::read_records(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqd_core::wire::seal_framed;

    const FOOTER: &[u8; 4] = mqd_core::wire::FRAME_FOOTER;

    fn sample() -> Vec<LabeledRow> {
        vec![
            LabeledRow {
                id: 10,
                value: 1_000,
                labels: vec![0, 3],
            },
            LabeledRow {
                id: 11,
                value: 1_050,
                labels: vec![1],
            },
            LabeledRow {
                id: 15,
                value: 980, // values may go backwards (sentiment dimension)
                labels: vec![],
            },
        ]
    }

    #[test]
    fn round_trip() {
        let rows = sample();
        let data = encode(&rows);
        assert_eq!(decode(&data).unwrap(), rows);
    }

    #[test]
    fn round_trip_extremes() {
        let rows = vec![
            LabeledRow {
                id: u64::MAX,
                value: i64::MIN,
                labels: vec![u16::MAX],
            },
            LabeledRow {
                id: 0,
                value: i64::MAX,
                labels: vec![0],
            },
        ];
        let data = encode(&rows);
        assert_eq!(decode(&data).unwrap(), rows);
    }

    #[test]
    fn empty_log() {
        let data = encode(&[]);
        assert!(decode(&data).unwrap().is_empty());
    }

    #[test]
    fn corruption_is_a_typed_error() {
        let rows = sample();
        let mut data = encode(&rows);
        let mid = data.len() / 2;
        data[mid] ^= 0xff;
        match decode(&data).unwrap_err() {
            MqdError::Corrupt { reason, .. } => {
                assert!(
                    reason.contains("checksum") || reason.contains("varint"),
                    "unexpected reason: {reason}"
                );
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncation_reports_offset() {
        let data = encode(&sample());
        match decode(&data[..data.len() - 3]).unwrap_err() {
            MqdError::Corrupt { offset, reason } => {
                assert!(
                    reason.contains("end marker") || reason.contains("short"),
                    "{reason}"
                );
                assert!(offset <= data.len());
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut data = encode(&sample());
        data[0] = b'X';
        // checksum covers magic, so a blind flip reports a checksum
        // failure; re-seal the frame over the bad magic to reach the
        // magic check itself.
        let err = decode(&data).unwrap_err();
        assert!(err.to_string().contains("checksum"));
        let mut body = data[..data.len() - FOOTER.len() - 8].to_vec();
        seal_framed(&mut body, FOOTER);
        let err = decode(&body).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn cli_binlog_is_byte_identical_to_core_codec() {
        // The guarantee this module exists for: a CLI binlog and a server
        // INGESTB batch of the same rows are the same bytes, decodable by
        // either side.
        let rows = sample();
        let cli = encode(&rows);
        assert_eq!(cli, record::encode_records(&rows));
        assert_eq!(record::decode_records(&cli).unwrap(), rows);
    }

    #[test]
    fn binary_is_smaller_than_tsv() {
        use crate::tsv::write_labeled;
        let rows: Vec<LabeledRow> = (0..2_000)
            .map(|i| LabeledRow {
                id: i,
                value: 1_370_000_000_000 + i as i64 * 137,
                labels: vec![(i % 5) as u16],
            })
            .collect();
        let bin = encode(&rows);
        let mut tsv = Vec::new();
        write_labeled(&mut tsv, &rows).unwrap();
        assert!(
            bin.len() * 2 < tsv.len(),
            "binary {} vs tsv {}",
            bin.len(),
            tsv.len()
        );
    }
}
