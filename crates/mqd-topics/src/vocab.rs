//! String-interning vocabulary shared by the LDA trainer and corpus
//! generators.

use std::collections::HashMap;

/// A bidirectional word ↔ dense-id mapping.
#[derive(Default, Debug, Clone)]
pub struct Vocabulary {
    word_to_id: HashMap<String, u32>,
    words: Vec<String>,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `word`, returning its id (existing or fresh).
    pub fn intern(&mut self, word: &str) -> u32 {
        if let Some(&id) = self.word_to_id.get(word) {
            return id;
        }
        let id = self.words.len() as u32;
        self.word_to_id.insert(word.to_string(), id);
        self.words.push(word.to_string());
        id
    }

    /// The id of `word`, if interned.
    pub fn get(&self, word: &str) -> Option<u32> {
        self.word_to_id.get(word).copied()
    }

    /// The word with id `id`.
    pub fn word(&self, id: u32) -> &str {
        &self.words[id as usize]
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Tokenizes and interns a whole text, returning the token id sequence.
    pub fn intern_text(&mut self, text: &str) -> Vec<u32> {
        mqd_text::tokenize(text)
            .iter()
            .map(|t| self.intern(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("obama");
        let b = v.intern("economy");
        assert_eq!(v.intern("obama"), a);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
        assert_eq!(v.word(a), "obama");
        assert_eq!(v.get("economy"), Some(b));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn intern_text_round_trips() {
        let mut v = Vocabulary::new();
        let ids = v.intern_text("Obama visits Obama");
        assert_eq!(ids.len(), 3);
        assert_eq!(ids[0], ids[2]);
        assert_eq!(v.word(ids[1]), "visits");
    }
}
