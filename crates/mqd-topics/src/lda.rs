//! Latent Dirichlet Allocation via collapsed Gibbs sampling.
//!
//! The paper extracts 300 topics from a news corpus with Mallet's LDA and
//! uses each topic's top-40 keywords as a query (Section 7.1). This module
//! is the Mallet substitute: a standard collapsed Gibbs sampler
//! (Griffiths & Steyvers) over interned token sequences.

use mqd_rng::rngs::StdRng;
use mqd_rng::{RngExt, SeedableRng};

/// LDA hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct LdaConfig {
    /// Number of topics `K`.
    pub num_topics: usize,
    /// Symmetric document–topic prior.
    pub alpha: f64,
    /// Symmetric topic–word prior.
    pub beta: f64,
    /// Gibbs sweeps over the corpus.
    pub iterations: usize,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
}

impl Default for LdaConfig {
    fn default() -> Self {
        LdaConfig {
            num_topics: 20,
            alpha: 0.1,
            beta: 0.01,
            iterations: 50,
            seed: 42,
        }
    }
}

/// A trained LDA model: counts sufficient to read off `phi` and `theta`.
#[derive(Debug)]
pub struct LdaModel {
    config: LdaConfig,
    vocab_size: usize,
    /// `n_kw[k * V + w]`: tokens of word `w` assigned to topic `k`.
    n_kw: Vec<u32>,
    /// `n_k[k]`: tokens assigned to topic `k`.
    n_k: Vec<u32>,
    /// `n_dk[d * K + k]`: tokens of doc `d` assigned to topic `k`.
    n_dk: Vec<u32>,
    /// Document lengths.
    doc_len: Vec<u32>,
}

impl LdaModel {
    /// Trains on `docs` (interned token sequences over a vocabulary of
    /// `vocab_size` words). Empty documents are allowed.
    ///
    /// ```
    /// use mqd_topics::{LdaModel, LdaConfig};
    /// // Two crisp word clusters: words 0-2 vs words 3-5.
    /// let docs: Vec<Vec<u32>> = (0..20)
    ///     .map(|i| {
    ///         let base = if i % 2 == 0 { 0 } else { 3 };
    ///         (0..30).map(|j| base + j % 3).collect()
    ///     })
    ///     .collect();
    /// let model = LdaModel::train(&docs, 6, LdaConfig {
    ///     num_topics: 2, iterations: 40, ..Default::default()
    /// });
    /// let top0: Vec<u32> = model.top_words(0, 3).iter().map(|&(w, _)| w).collect();
    /// assert!(top0.iter().all(|&w| w < 3) || top0.iter().all(|&w| w >= 3));
    /// ```
    pub fn train(docs: &[Vec<u32>], vocab_size: usize, config: LdaConfig) -> Self {
        assert!(config.num_topics > 0, "need at least one topic");
        let k = config.num_topics;
        let v = vocab_size.max(1);
        let mut rng = StdRng::seed_from_u64(config.seed);

        let mut n_kw = vec![0u32; k * v];
        let mut n_k = vec![0u32; k];
        let mut n_dk = vec![0u32; docs.len() * k];
        let mut z: Vec<Vec<u32>> = Vec::with_capacity(docs.len());

        for (d, doc) in docs.iter().enumerate() {
            let mut zd = Vec::with_capacity(doc.len());
            for &w in doc {
                let t = rng.random_range(0..k) as u32;
                zd.push(t);
                n_kw[t as usize * v + w as usize] += 1;
                n_k[t as usize] += 1;
                n_dk[d * k + t as usize] += 1;
            }
            z.push(zd);
        }

        let alpha = config.alpha;
        let beta = config.beta;
        let v_beta = v as f64 * beta;
        let mut weights = vec![0f64; k];

        for _ in 0..config.iterations {
            for (d, doc) in docs.iter().enumerate() {
                for (i, &w) in doc.iter().enumerate() {
                    let old = z[d][i] as usize;
                    n_kw[old * v + w as usize] -= 1;
                    n_k[old] -= 1;
                    n_dk[d * k + old] -= 1;

                    let mut total = 0f64;
                    for (t, wt) in weights.iter_mut().enumerate() {
                        let p = (n_dk[d * k + t] as f64 + alpha)
                            * (n_kw[t * v + w as usize] as f64 + beta)
                            / (n_k[t] as f64 + v_beta);
                        total += p;
                        *wt = total;
                    }
                    let r = rng.random::<f64>() * total;
                    let new = weights.partition_point(|&cum| cum < r).min(k - 1);

                    z[d][i] = new as u32;
                    n_kw[new * v + w as usize] += 1;
                    n_k[new] += 1;
                    n_dk[d * k + new] += 1;
                }
            }
        }

        LdaModel {
            config,
            vocab_size: v,
            n_kw,
            n_k,
            n_dk,
            doc_len: docs.iter().map(|d| d.len() as u32).collect(),
        }
    }

    /// Number of topics.
    pub fn num_topics(&self) -> usize {
        self.config.num_topics
    }

    /// Vocabulary size the model was trained with.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// `phi_k(w)`: probability of word `w` under topic `k`.
    pub fn phi(&self, k: usize, w: u32) -> f64 {
        (self.n_kw[k * self.vocab_size + w as usize] as f64 + self.config.beta)
            / (self.n_k[k] as f64 + self.vocab_size as f64 * self.config.beta)
    }

    /// `theta_d(k)`: probability of topic `k` in document `d`.
    pub fn theta(&self, d: usize, k: usize) -> f64 {
        let kk = self.config.num_topics;
        (self.n_dk[d * kk + k] as f64 + self.config.alpha)
            / (self.doc_len[d] as f64 + kk as f64 * self.config.alpha)
    }

    /// The `n` highest-probability words of topic `k` as `(word_id, phi)`,
    /// descending.
    pub fn top_words(&self, k: usize, n: usize) -> Vec<(u32, f64)> {
        let mut ws: Vec<(u32, f64)> = (0..self.vocab_size as u32)
            .map(|w| (w, self.phi(k, w)))
            .collect();
        ws.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ws.truncate(n);
        ws
    }

    /// The dominant topic of document `d`.
    pub fn dominant_topic(&self, d: usize) -> usize {
        (0..self.config.num_topics)
            .max_by(|&a, &b| self.theta(d, a).total_cmp(&self.theta(d, b)))
            .unwrap_or(0)
    }

    /// Per-word perplexity of the model on `docs` (typically the training
    /// corpus — the Mallet-style diagnostic): `exp(-sum log p(w|d) / N)`
    /// with `p(w|d) = sum_k theta_d(k) phi_k(w)`. Lower is better; a
    /// uniform model scores `vocab_size`.
    pub fn perplexity(&self, docs: &[Vec<u32>]) -> f64 {
        let mut log_lik = 0f64;
        let mut tokens = 0usize;
        for (d, doc) in docs.iter().enumerate() {
            for &w in doc {
                let p: f64 = (0..self.config.num_topics)
                    .map(|k| self.theta(d, k) * self.phi(k, w))
                    .sum();
                log_lik += p.max(f64::MIN_POSITIVE).ln();
                tokens += 1;
            }
        }
        if tokens == 0 {
            return 1.0;
        }
        (-log_lik / tokens as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two crisply separated word clusters must end up in different topics.
    fn synthetic_corpus() -> (Vec<Vec<u32>>, usize) {
        // words 0..5 = "sports", 5..10 = "politics"
        let mut docs = Vec::new();
        for i in 0..30 {
            let base = if i % 2 == 0 { 0u32 } else { 5u32 };
            let doc: Vec<u32> = (0..40).map(|j| base + (j % 5) as u32).collect();
            docs.push(doc);
        }
        (docs, 10)
    }

    #[test]
    fn recovers_two_clusters() {
        let (docs, v) = synthetic_corpus();
        let model = LdaModel::train(
            &docs,
            v,
            LdaConfig {
                num_topics: 2,
                iterations: 60,
                ..LdaConfig::default()
            },
        );
        // Each topic's top-5 words must be one pure cluster.
        let top0: Vec<u32> = model.top_words(0, 5).iter().map(|&(w, _)| w).collect();
        let top1: Vec<u32> = model.top_words(1, 5).iter().map(|&(w, _)| w).collect();
        let cluster = |ws: &[u32]| ws.iter().all(|&w| w < 5) || ws.iter().all(|&w| w >= 5);
        assert!(cluster(&top0), "topic 0 mixed: {top0:?}");
        assert!(cluster(&top1), "topic 1 mixed: {top1:?}");
        // And the two topics cover different clusters.
        assert_ne!(top0[0] < 5, top1[0] < 5);
    }

    #[test]
    fn phi_and_theta_are_distributions() {
        let (docs, v) = synthetic_corpus();
        let model = LdaModel::train(
            &docs,
            v,
            LdaConfig {
                num_topics: 3,
                iterations: 10,
                ..LdaConfig::default()
            },
        );
        for k in 0..3 {
            let s: f64 = (0..v as u32).map(|w| model.phi(k, w)).sum();
            assert!((s - 1.0).abs() < 1e-9, "phi_{k} sums to {s}");
        }
        for d in 0..docs.len() {
            let s: f64 = (0..3).map(|k| model.theta(d, k)).sum();
            assert!((s - 1.0).abs() < 1e-9, "theta_{d} sums to {s}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (docs, v) = synthetic_corpus();
        let cfg = LdaConfig {
            num_topics: 2,
            iterations: 15,
            seed: 7,
            ..LdaConfig::default()
        };
        let a = LdaModel::train(&docs, v, cfg);
        let b = LdaModel::train(&docs, v, cfg);
        assert_eq!(a.n_kw, b.n_kw);
        assert_eq!(a.n_dk, b.n_dk);
    }

    #[test]
    fn dominant_topic_tracks_document_cluster() {
        let (docs, v) = synthetic_corpus();
        let model = LdaModel::train(
            &docs,
            v,
            LdaConfig {
                num_topics: 2,
                iterations: 60,
                ..LdaConfig::default()
            },
        );
        let t_even = model.dominant_topic(0);
        let t_odd = model.dominant_topic(1);
        assert_ne!(t_even, t_odd);
        assert_eq!(model.dominant_topic(2), t_even);
        assert_eq!(model.dominant_topic(3), t_odd);
    }

    #[test]
    fn perplexity_improves_with_training() {
        let (docs, v) = synthetic_corpus();
        let untrained = LdaModel::train(
            &docs,
            v,
            LdaConfig {
                num_topics: 2,
                iterations: 0,
                ..LdaConfig::default()
            },
        );
        let trained = LdaModel::train(
            &docs,
            v,
            LdaConfig {
                num_topics: 2,
                iterations: 60,
                ..LdaConfig::default()
            },
        );
        let pu = untrained.perplexity(&docs);
        let pt = trained.perplexity(&docs);
        assert!(pt < pu, "trained {pt} should beat untrained {pu}");
        // Two pure 5-word clusters: the ideal per-word perplexity is ~5.
        assert!(pt < 7.0, "trained perplexity {pt} too high");
        assert!(pt >= 1.0);
    }

    #[test]
    fn perplexity_of_empty_corpus_is_one() {
        let model = LdaModel::train(&[vec![0, 1]], 2, LdaConfig::default());
        assert_eq!(model.perplexity(&[]), 1.0);
    }

    #[test]
    fn handles_empty_docs() {
        let docs = vec![vec![], vec![0, 1], vec![]];
        let model = LdaModel::train(&docs, 2, LdaConfig::default());
        assert_eq!(model.num_topics(), 20);
        let s: f64 = (0..20).map(|k| model.theta(0, k)).sum();
        assert!((s - 1.0).abs() < 1e-9);
    }
}
