//! Topic modelling substrate: collapsed-Gibbs LDA plus topic → query
//! extraction, replacing the Mallet pipeline of Section 7.1 (news articles
//! → 300 topics → top-40 keywords per topic → queries).

#![warn(missing_docs)]

pub mod lda;
pub mod topics;
pub mod vocab;

pub use lda::{LdaConfig, LdaModel};
pub use topics::{extract_topics, filter_ambiguous, Topic};
pub use vocab::Vocabulary;
