//! Turning a trained LDA model into queries: each topic becomes a keyword
//! list (its top-k words with weights), exactly how Section 7.1 turns
//! Mallet topics into the label sets of the experiments.

use crate::lda::LdaModel;
use crate::vocab::Vocabulary;

/// A query topic: ranked keywords with their phi weights.
#[derive(Clone, Debug)]
pub struct Topic {
    /// Topic index in the source model.
    pub id: usize,
    /// `(keyword, weight)` pairs, descending by weight.
    pub keywords: Vec<(String, f64)>,
}

impl Topic {
    /// The keyword strings only, in rank order (what the matcher consumes).
    pub fn keyword_strings(&self) -> Vec<String> {
        self.keywords.iter().map(|(w, _)| w.clone()).collect()
    }

    /// Share of the topic's probability mass carried by the kept keywords —
    /// a crude coherence/quality signal used to discard ambiguous topics
    /// (the paper's researchers discarded 85 of 300 topics by hand).
    pub fn kept_mass(&self) -> f64 {
        self.keywords.iter().map(|&(_, w)| w).sum()
    }
}

/// Extracts every topic's top-`keywords_per_topic` keywords
/// (the paper keeps the top 40).
pub fn extract_topics(
    model: &LdaModel,
    vocab: &Vocabulary,
    keywords_per_topic: usize,
) -> Vec<Topic> {
    (0..model.num_topics())
        .map(|k| Topic {
            id: k,
            keywords: model
                .top_words(k, keywords_per_topic)
                .into_iter()
                .map(|(w, p)| (vocab.word(w).to_string(), p))
                .collect(),
        })
        .collect()
}

/// Drops topics whose kept probability mass falls below `min_mass`,
/// mimicking the manual "too ambiguous" filtering of Section 7.1.
pub fn filter_ambiguous(topics: Vec<Topic>, min_mass: f64) -> Vec<Topic> {
    topics
        .into_iter()
        .filter(|t| t.kept_mass() >= min_mass)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lda::{LdaConfig, LdaModel};

    fn model_and_vocab() -> (LdaModel, Vocabulary) {
        let mut vocab = Vocabulary::new();
        let sports = ["golf", "masters", "tiger", "woods", "championship"];
        let politics = ["obama", "senate", "congress", "election", "vote"];
        let mut docs = Vec::new();
        for i in 0..30 {
            let pool = if i % 2 == 0 { &sports } else { &politics };
            let doc: Vec<u32> = (0..40).map(|j| vocab.intern(pool[j % 5])).collect();
            docs.push(doc);
        }
        let v = vocab.len();
        (
            LdaModel::train(
                &docs,
                v,
                LdaConfig {
                    num_topics: 2,
                    iterations: 60,
                    ..LdaConfig::default()
                },
            ),
            vocab,
        )
    }

    #[test]
    fn topics_carry_readable_keywords() {
        let (model, vocab) = model_and_vocab();
        let topics = extract_topics(&model, &vocab, 5);
        assert_eq!(topics.len(), 2);
        let all: Vec<&str> = topics[0].keywords.iter().map(|(w, _)| w.as_str()).collect();
        // One coherent cluster per topic.
        let sporty = all.contains(&"golf");
        for (w, weight) in &topics[0].keywords {
            assert!(*weight > 0.0);
            let is_sport =
                ["golf", "masters", "tiger", "woods", "championship"].contains(&w.as_str());
            assert_eq!(is_sport, sporty, "mixed topic: {all:?}");
        }
    }

    #[test]
    fn keywords_sorted_by_weight() {
        let (model, vocab) = model_and_vocab();
        for t in extract_topics(&model, &vocab, 8) {
            for pair in t.keywords.windows(2) {
                assert!(pair[0].1 >= pair[1].1);
            }
        }
    }

    #[test]
    fn ambiguity_filter_uses_mass() {
        let topics = vec![
            Topic {
                id: 0,
                keywords: vec![("a".into(), 0.5), ("b".into(), 0.4)],
            },
            Topic {
                id: 1,
                keywords: vec![("c".into(), 0.01)],
            },
        ];
        let kept = filter_ambiguous(topics, 0.5);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].id, 0);
    }
}
