//! Tokenizer shared by the inverted index, SimHash, sentiment scoring and
//! the LDA pipeline: lowercase, split on non-alphanumeric characters, drop
//! stopwords and single-character tokens.

/// English stopword list (compact; enough to keep topic keywords clean).
pub const STOPWORDS: &[&str] = &[
    "a", "about", "after", "all", "also", "am", "an", "and", "any", "are", "as", "at", "be",
    "because", "been", "before", "being", "between", "both", "but", "by", "can", "could", "did",
    "do", "does", "doing", "down", "during", "each", "few", "for", "from", "further", "had", "has",
    "have", "having", "he", "her", "here", "hers", "him", "his", "how", "i", "if", "in", "into",
    "is", "it", "its", "just", "me", "more", "most", "my", "no", "nor", "not", "now", "of", "off",
    "on", "once", "only", "or", "other", "our", "out", "over", "own", "rt", "same", "she",
    "should", "so", "some", "such", "than", "that", "the", "their", "them", "then", "there",
    "these", "they", "this", "those", "through", "to", "too", "under", "until", "up", "very",
    "was", "we", "were", "what", "when", "where", "which", "while", "who", "whom", "why", "will",
    "with", "would", "you", "your",
];

/// Whether `word` (already lowercase) is a stopword.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// Tokenizes `text` into lowercase alphanumeric terms, dropping stopwords
/// and single characters. `#hashtags` and `@mentions` keep their word part.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            push_token(&mut tokens, std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        push_token(&mut tokens, current);
    }
    tokens
}

fn push_token(tokens: &mut Vec<String>, token: String) {
    if token.chars().count() >= 2 && !is_stopword(&token) {
        tokens.push(token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopword_list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS, "STOPWORDS must stay sorted");
    }

    #[test]
    fn basic_tokenization() {
        assert_eq!(
            tokenize("Obama visits the White House!"),
            vec!["obama", "visits", "white", "house"]
        );
    }

    #[test]
    fn hashtags_mentions_punctuation() {
        assert_eq!(
            tokenize("RT @user: #NASDAQ up 2% — $GOOG rallies..."),
            vec!["user", "nasdaq", "goog", "rallies"]
        );
    }

    #[test]
    fn short_tokens_and_stopwords_dropped() {
        assert_eq!(tokenize("I am a 5 x"), Vec::<String>::new());
        assert!(tokenize("it is").is_empty());
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("Économie ÉCONOMIE"), vec!["économie", "économie"]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("...!!!").is_empty());
    }
}
