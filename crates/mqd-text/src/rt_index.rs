//! Time-partitioned real-time index — the EarlyBird / TI / LSII stand-in
//! (the paper's related-work real-time indexes; Figure 1 queries "an
//! inverted index of microblogging posts" for the static MQDP option).
//!
//! Documents carry timestamps and are indexed into fixed-span time
//! segments, each with its own term postings. Temporal range queries touch
//! only the overlapping segments, and old segments can be evicted — the
//! structure real-time search systems use to keep ingestion append-only.

use std::collections::{BTreeMap, HashMap};

use crate::tokenize::tokenize;

#[derive(Default, Debug)]
struct Segment {
    postings: HashMap<String, Vec<u32>>,
    docs: usize,
}

/// A time-partitioned inverted index with OR-keyword temporal search.
#[derive(Debug)]
pub struct RtIndex {
    segment_span: i64,
    segments: BTreeMap<i64, Segment>,
    doc_times: Vec<i64>,
}

impl RtIndex {
    /// Creates an index with the given segment span (e.g. 10 minutes in
    /// ms). Must be positive.
    pub fn new(segment_span: i64) -> Self {
        assert!(segment_span > 0, "segment span must be positive");
        RtIndex {
            segment_span,
            segments: BTreeMap::new(),
            doc_times: Vec::new(),
        }
    }

    fn segment_key(&self, time: i64) -> i64 {
        time.div_euclid(self.segment_span)
    }

    /// Indexes a document; returns its dense id. Timestamps may arrive in
    /// any order (late posts land in their own segment).
    pub fn add_document(&mut self, text: &str, time: i64) -> u32 {
        let id = self.doc_times.len() as u32;
        self.doc_times.push(time);
        let seg = self.segments.entry(self.segment_key(time)).or_default();
        seg.docs += 1;
        let mut terms = tokenize(text);
        terms.sort_unstable();
        terms.dedup();
        for t in terms {
            seg.postings.entry(t).or_default().push(id);
        }
        id
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.doc_times.len()
    }

    /// Whether the index holds no documents.
    pub fn is_empty(&self) -> bool {
        self.doc_times.is_empty()
    }

    /// Number of live segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The timestamp of a document.
    pub fn doc_time(&self, id: u32) -> i64 {
        self.doc_times[id as usize]
    }

    /// Documents inside `[from, to]` (inclusive) matching **any** keyword,
    /// sorted by doc id. Only segments overlapping the range are touched.
    pub fn search(&self, keywords: &[String], from: i64, to: i64) -> Vec<u32> {
        if from > to {
            return Vec::new();
        }
        let lo = self.segment_key(from);
        let hi = self.segment_key(to);
        let mut out: Vec<u32> = Vec::new();
        for (_, seg) in self.segments.range(lo..=hi) {
            for kw in keywords {
                if let Some(ids) = seg.postings.get(kw) {
                    out.extend(
                        ids.iter()
                            .copied()
                            .filter(|&id| (from..=to).contains(&self.doc_times[id as usize])),
                    );
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Evicts every segment strictly older than `cutoff`; returns how many
    /// documents were dropped. Doc ids remain valid for the survivors.
    pub fn evict_before(&mut self, cutoff: i64) -> usize {
        let cut_key = self.segment_key(cutoff);
        let keys: Vec<i64> = self.segments.range(..cut_key).map(|(&k, _)| k).collect();
        let mut dropped = 0;
        for k in keys {
            if let Some(seg) = self.segments.remove(&k) {
                dropped += seg.docs;
            }
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kws(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    fn sample() -> RtIndex {
        let mut idx = RtIndex::new(100);
        idx.add_document("obama speaks on the economy", 10); // 0
        idx.add_document("senate votes tonight", 150); // 1
        idx.add_document("obama meets the senate", 250); // 2
        idx.add_document("golf masters coverage", 260); // 3
        idx
    }

    #[test]
    fn range_search_matches_any_keyword() {
        let idx = sample();
        assert_eq!(idx.search(&kws(&["obama"]), 0, 300), vec![0, 2]);
        assert_eq!(
            idx.search(&kws(&["obama", "senate"]), 0, 300),
            vec![0, 1, 2]
        );
        assert_eq!(idx.search(&kws(&["obama"]), 100, 300), vec![2]);
        assert!(idx.search(&kws(&["obama"]), 300, 400).is_empty());
        assert!(idx.search(&kws(&["missing"]), 0, 300).is_empty());
    }

    #[test]
    fn inclusive_boundaries_and_inverted_range() {
        let idx = sample();
        assert_eq!(idx.search(&kws(&["obama"]), 10, 10), vec![0]);
        assert!(idx.search(&kws(&["obama"]), 20, 10).is_empty());
    }

    #[test]
    fn segments_partition_by_time() {
        let idx = sample();
        assert_eq!(idx.num_segments(), 3); // keys 0, 1, 2
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.doc_time(3), 260);
    }

    #[test]
    fn eviction_drops_old_segments_only() {
        let mut idx = sample();
        let dropped = idx.evict_before(200);
        assert_eq!(dropped, 2); // docs at t=10 and t=150
        assert_eq!(idx.num_segments(), 1);
        assert!(idx.search(&kws(&["obama"]), 0, 300) == vec![2]);
    }

    #[test]
    fn late_arrivals_are_searchable() {
        let mut idx = RtIndex::new(100);
        idx.add_document("late breaking story", 500);
        idx.add_document("earlier story arrives late", 50);
        assert_eq!(idx.search(&kws(&["story"]), 0, 600), vec![0, 1]);
        assert_eq!(idx.search(&kws(&["story"]), 0, 100), vec![1]);
    }

    #[test]
    fn negative_timestamps_supported() {
        let mut idx = RtIndex::new(100);
        idx.add_document("before the epoch", -150);
        assert_eq!(idx.search(&kws(&["epoch"]), -200, 0), vec![0]);
    }
}
