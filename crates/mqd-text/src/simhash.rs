//! SimHash near-duplicate detection (Manku et al., WWW 2007 — reference
//! [17] of the paper). The paper eliminates near-duplicate posts *before*
//! diversification because microblog texts are too short for distance-based
//! similarity; this module provides that preprocessing stage.
//!
//! A 64-bit fingerprint is built from token hashes; two texts are near
//! duplicates when the Hamming distance of their fingerprints is at most
//! `k`. [`NearDuplicateFilter`] indexes fingerprints by four 16-bit blocks,
//! so candidate lookups only compare fingerprints sharing at least one
//! block — exact for `k <= 3` by the pigeonhole principle.

use std::collections::HashMap;

use crate::tokenize::tokenize;

/// 64-bit FNV-1a, the token hash feeding the fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Computes the 64-bit SimHash fingerprint of `text` (token features,
/// unit weights). Empty/stopword-only texts hash to 0.
///
/// ```
/// use mqd_text::{simhash, hamming};
/// let a = simhash("breaking news about the senate budget vote");
/// let b = simhash("breaking news about the senate budget votes today");
/// let c = simhash("tiger woods wins the golf masters");
/// assert!(hamming(a, b) < hamming(a, c));
/// ```
pub fn simhash(text: &str) -> u64 {
    let tokens = tokenize(text);
    if tokens.is_empty() {
        return 0;
    }
    let mut acc = [0i32; 64];
    for t in &tokens {
        let h = fnv1a(t.as_bytes());
        for (bit, slot) in acc.iter_mut().enumerate() {
            if h & (1u64 << bit) != 0 {
                *slot += 1;
            } else {
                *slot -= 1;
            }
        }
    }
    let mut out = 0u64;
    for (bit, &v) in acc.iter().enumerate() {
        if v > 0 {
            out |= 1u64 << bit;
        }
    }
    out
}

/// Hamming distance between two fingerprints.
#[inline]
pub fn hamming(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

/// Streaming near-duplicate filter: keeps every *first* occurrence, drops
/// texts whose fingerprint is within `k` bits of a kept one.
#[derive(Debug)]
pub struct NearDuplicateFilter {
    k: u32,
    /// Kept fingerprints, by 16-bit block value, for each of the 4 blocks.
    blocks: [HashMap<u16, Vec<u64>>; 4],
    kept: usize,
}

impl NearDuplicateFilter {
    /// Creates a filter with Hamming threshold `k` (`k <= 3` keeps block
    /// candidate lookup exact; larger `k` is allowed but may miss pairs
    /// differing in all four blocks).
    pub fn new(k: u32) -> Self {
        NearDuplicateFilter {
            k,
            blocks: Default::default(),
            kept: 0,
        }
    }

    /// Number of fingerprints kept so far.
    pub fn kept(&self) -> usize {
        self.kept
    }

    fn block_values(fp: u64) -> [u16; 4] {
        [
            (fp & 0xffff) as u16,
            ((fp >> 16) & 0xffff) as u16,
            ((fp >> 32) & 0xffff) as u16,
            ((fp >> 48) & 0xffff) as u16,
        ]
    }

    /// Checks `fp` against kept fingerprints; if novel, keeps it and returns
    /// `true`, otherwise returns `false` (a near duplicate).
    pub fn insert_fingerprint(&mut self, fp: u64) -> bool {
        let vals = Self::block_values(fp);
        for (b, &v) in vals.iter().enumerate() {
            if let Some(cands) = self.blocks[b].get(&v) {
                if cands.iter().any(|&c| hamming(c, fp) <= self.k) {
                    return false;
                }
            }
        }
        for (b, &v) in vals.iter().enumerate() {
            self.blocks[b].entry(v).or_default().push(fp);
        }
        self.kept += 1;
        true
    }

    /// Convenience: fingerprint + insert.
    pub fn insert_text(&mut self, text: &str) -> bool {
        self.insert_fingerprint(simhash(text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_collide() {
        let a = simhash("Breaking news about the senate vote tonight");
        let b = simhash("Breaking news about the senate vote tonight");
        assert_eq!(a, b);
        assert_eq!(hamming(a, b), 0);
    }

    #[test]
    fn near_duplicates_are_close_unrelated_are_far() {
        let a = simhash("breaking news senate budget vote tonight results expected soon");
        let b = simhash("breaking news senate budget vote tonight results expected shortly");
        let c = simhash("golf tournament tiger woods wins masters championship augusta round");
        assert!(
            hamming(a, b) < hamming(a, c),
            "near dup {} vs unrelated {}",
            hamming(a, b),
            hamming(a, c)
        );
    }

    #[test]
    fn filter_drops_retweets() {
        let mut f = NearDuplicateFilter::new(3);
        assert!(f.insert_text("Obama announces new economic plan for the middle class"));
        assert!(!f.insert_text("RT Obama announces new economic plan for the middle class"));
        assert!(f.insert_text("Tiger Woods takes the lead at the Masters in Augusta"));
        assert_eq!(f.kept(), 2);
    }

    #[test]
    fn exact_fingerprint_dedup_at_k_zero() {
        let mut f = NearDuplicateFilter::new(0);
        assert!(f.insert_fingerprint(0xDEADBEEF));
        assert!(!f.insert_fingerprint(0xDEADBEEF));
        assert!(f.insert_fingerprint(0xDEADBEEE)); // 1 bit away, kept at k=0
    }

    #[test]
    fn block_candidates_found_for_small_k() {
        // Flip 3 bits spread over different blocks: still detected at k=3
        // because one block stays identical.
        let base: u64 = 0x0123_4567_89AB_CDEF;
        let variant = base ^ (1 << 0) ^ (1 << 20) ^ (1 << 40);
        let mut f = NearDuplicateFilter::new(3);
        assert!(f.insert_fingerprint(base));
        assert!(!f.insert_fingerprint(variant));
    }

    #[test]
    fn empty_text_hashes_to_zero() {
        assert_eq!(simhash(""), 0);
        assert_eq!(simhash("the of and"), 0);
    }
}
