//! In-memory inverted index and streaming keyword matcher — the "tweets
//! inverted index" and "posts/label matching" modules of the paper's Figure
//! 1 system architecture (the paper used Apache Lucene; indexing itself is
//! out of the paper's scope, so a compact exact-term index suffices).

use std::collections::HashMap;

use crate::tokenize::tokenize;

/// Append-only inverted index over documents. Document ids are assigned
/// densely in insertion order.
#[derive(Default, Debug)]
pub struct InvertedIndex {
    postings: HashMap<String, Vec<u32>>,
    num_docs: u32,
}

impl InvertedIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes `text`; returns the new document id.
    pub fn add_document(&mut self, text: &str) -> u32 {
        let id = self.num_docs;
        self.num_docs += 1;
        let mut terms = tokenize(text);
        terms.sort_unstable();
        terms.dedup();
        for term in terms {
            self.postings.entry(term).or_default().push(id);
        }
        id
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.num_docs as usize
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.num_docs == 0
    }

    /// Number of distinct terms.
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// The posting list of a term (sorted doc ids), empty if unseen.
    pub fn postings(&self, term: &str) -> &[u32] {
        self.postings.get(term).map_or(&[], |v| v.as_slice())
    }

    /// Documents matching **any** of the query's keywords (the paper's
    /// matching rule: a post matches a topic if it contains at least one of
    /// the topic's keywords). Returns sorted, de-duplicated doc ids.
    pub fn match_any(&self, keywords: &[String]) -> Vec<u32> {
        let mut out: Vec<u32> = keywords
            .iter()
            .flat_map(|k| self.postings(k).iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Streaming matcher: maps each incoming post to the set of queries (label
/// ids) whose keyword lists it hits. This is the "matching module working
/// directly on the stream" of Figure 1.
#[derive(Debug)]
pub struct KeywordMatcher {
    keyword_to_labels: HashMap<String, Vec<u16>>,
    num_labels: usize,
}

impl KeywordMatcher {
    /// Builds a matcher from one keyword list per query; query `i` becomes
    /// label id `i`.
    pub fn new(queries: &[Vec<String>]) -> Self {
        let mut keyword_to_labels: HashMap<String, Vec<u16>> = HashMap::new();
        for (label, kws) in queries.iter().enumerate() {
            for kw in kws {
                let entry = keyword_to_labels.entry(kw.to_lowercase()).or_default();
                if entry.last() != Some(&(label as u16)) {
                    entry.push(label as u16);
                }
            }
        }
        KeywordMatcher {
            keyword_to_labels,
            num_labels: queries.len(),
        }
    }

    /// Number of queries.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Label ids whose queries match `text` (sorted, de-duplicated; empty if
    /// the post is irrelevant to every query).
    pub fn match_labels(&self, text: &str) -> Vec<u16> {
        let mut labels: Vec<u16> = tokenize(text)
            .iter()
            .filter_map(|t| self.keyword_to_labels.get(t))
            .flat_map(|ls| ls.iter().copied())
            .collect();
        labels.sort_unstable();
        labels.dedup();
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn index_and_match_any() {
        let mut idx = InvertedIndex::new();
        let d0 = idx.add_document("Obama speaks about the economy");
        let d1 = idx.add_document("The senate votes on the budget");
        let d2 = idx.add_document("Obama and the senate clash");
        assert_eq!((d0, d1, d2), (0, 1, 2));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.match_any(&q(&["obama"])), vec![0, 2]);
        assert_eq!(idx.match_any(&q(&["senate", "economy"])), vec![0, 1, 2]);
        assert!(idx.match_any(&q(&["unknown"])).is_empty());
    }

    #[test]
    fn duplicate_terms_in_doc_counted_once() {
        let mut idx = InvertedIndex::new();
        idx.add_document("golf golf golf");
        assert_eq!(idx.postings("golf"), &[0]);
    }

    #[test]
    fn matcher_maps_posts_to_labels() {
        let m = KeywordMatcher::new(&[
            q(&["obama", "president"]),
            q(&["economy", "budget"]),
            q(&["golf"]),
        ]);
        assert_eq!(m.num_labels(), 3);
        assert_eq!(m.match_labels("Obama on the economy"), vec![0, 1]);
        assert_eq!(m.match_labels("nothing relevant here"), Vec::<u16>::new());
        assert_eq!(m.match_labels("GOLF golf"), vec![2]);
    }

    #[test]
    fn matcher_keywords_shared_between_queries() {
        let m = KeywordMatcher::new(&[q(&["market"]), q(&["market", "stocks"])]);
        assert_eq!(m.match_labels("the market rallies"), vec![0, 1]);
    }

    #[test]
    fn empty_index_and_matcher() {
        let idx = InvertedIndex::new();
        assert!(idx.is_empty());
        assert!(idx.match_any(&q(&["x"])).is_empty());
        let m = KeywordMatcher::new(&[]);
        assert!(m.match_labels("anything").is_empty());
    }
}
