//! Lexicon-based sentiment polarity scoring.
//!
//! Sections 1, 2 and 6 of the paper use *sentiment* as an alternative
//! diversity dimension: each post gets a polarity value and coverage is
//! computed on the polarity axis instead of the timeline. This module
//! provides a compact valence lexicon with negation handling, producing a
//! score in `[-1.0, 1.0]`, plus the fixed-point conversion used by
//! `mqd_core` instances.

use std::collections::HashMap;

use crate::tokenize::tokenize;
use mqd_core::SENTIMENT_SCALE;

/// Words flipping the valence of the following token.
const NEGATORS: &[&str] = &["never", "cannot", "cant", "dont", "wont", "isnt", "didnt"];

/// (word, valence) pairs; valence in [-3, 3] following common lexica.
const LEXICON: &[(&str, i8)] = &[
    ("abandon", -2),
    ("abuse", -3),
    ("amazing", 3),
    ("angry", -2),
    ("attack", -2),
    ("awesome", 3),
    ("awful", -3),
    ("bad", -2),
    ("beautiful", 3),
    ("best", 3),
    ("blame", -2),
    ("boom", 2),
    ("boost", 2),
    ("breakthrough", 3),
    ("brilliant", 3),
    ("broken", -2),
    ("celebrate", 3),
    ("chaos", -2),
    ("cheer", 2),
    ("collapse", -3),
    ("crash", -3),
    ("crisis", -3),
    ("cut", -1),
    ("damage", -2),
    ("danger", -2),
    ("dead", -3),
    ("deal", 1),
    ("death", -3),
    ("decline", -2),
    ("defeat", -2),
    ("delight", 3),
    ("disaster", -3),
    ("doubt", -1),
    ("drop", -1),
    ("enjoy", 2),
    ("excellent", 3),
    ("excited", 2),
    ("fail", -2),
    ("failure", -2),
    ("fall", -1),
    ("fantastic", 3),
    ("fear", -2),
    ("fine", 1),
    ("fraud", -3),
    ("gain", 2),
    ("glad", 2),
    ("good", 2),
    ("great", 3),
    ("grow", 2),
    ("growth", 2),
    ("happy", 3),
    ("hate", -3),
    ("hero", 2),
    ("hope", 2),
    ("hurt", -2),
    ("improve", 2),
    ("inspire", 2),
    ("joy", 3),
    ("kill", -3),
    ("lose", -2),
    ("loss", -2),
    ("love", 3),
    ("lucky", 2),
    ("miss", -1),
    ("murder", -3),
    ("nice", 2),
    ("panic", -3),
    ("peace", 2),
    ("perfect", 3),
    ("plunge", -3),
    ("poor", -2),
    ("praise", 2),
    ("problem", -2),
    ("profit", 2),
    ("progress", 2),
    ("promise", 1),
    ("protest", -1),
    ("proud", 2),
    ("rally", 2),
    ("rebound", 2),
    ("record", 1),
    ("recover", 2),
    ("rise", 1),
    ("risk", -1),
    ("sad", -2),
    ("scandal", -3),
    ("scare", -2),
    ("slump", -2),
    ("smile", 2),
    ("strong", 2),
    ("stunning", 3),
    ("succeed", 3),
    ("success", 3),
    ("support", 2),
    ("surge", 2),
    ("terrible", -3),
    ("threat", -2),
    ("tragedy", -3),
    ("trouble", -2),
    ("victory", 3),
    ("violence", -3),
    ("war", -2),
    ("weak", -1),
    ("welcome", 2),
    ("win", 3),
    ("wonderful", 3),
    ("worry", -2),
    ("worst", -3),
    ("wrong", -2),
];

/// A sentiment scorer over the built-in lexicon (optionally extended).
#[derive(Debug)]
pub struct SentimentScorer {
    valence: HashMap<&'static str, i8>,
}

impl Default for SentimentScorer {
    fn default() -> Self {
        Self::new()
    }
}

impl SentimentScorer {
    /// A scorer over the built-in lexicon.
    pub fn new() -> Self {
        SentimentScorer {
            valence: LEXICON.iter().copied().collect(),
        }
    }

    /// Polarity of `text` in `[-1.0, 1.0]`: the valence sum (negation-aware)
    /// normalized by `3 * matched_words`; 0.0 for neutral or no matches.
    pub fn score(&self, text: &str) -> f64 {
        let tokens = tokenize(text);
        let mut sum = 0i32;
        let mut matched = 0u32;
        let mut negate = false;
        for t in &tokens {
            if NEGATORS.contains(&t.as_str()) {
                negate = true;
                continue;
            }
            if let Some(&v) = self.valence.get(t.as_str()) {
                let v = if negate { -v } else { v };
                sum += v as i32;
                matched += 1;
            }
            negate = false;
        }
        if matched == 0 {
            0.0
        } else {
            (sum as f64 / (3.0 * matched as f64)).clamp(-1.0, 1.0)
        }
    }

    /// Polarity as a fixed-point diversity-dimension value
    /// (`score * SENTIMENT_SCALE`).
    pub fn score_fixed(&self, text: &str) -> i64 {
        (self.score(text) * SENTIMENT_SCALE as f64).round() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_negative_neutral() {
        let s = SentimentScorer::new();
        assert!(s.score("great win for the team, amazing victory") > 0.5);
        assert!(s.score("terrible crash, awful tragedy") < -0.5);
        assert_eq!(s.score("the committee met on tuesday"), 0.0);
    }

    #[test]
    fn negation_flips_valence() {
        let s = SentimentScorer::new();
        let plain = s.score("win");
        let negated = s.score("dont win");
        assert!(plain > 0.0);
        assert!(negated < 0.0);
        assert!((plain + negated).abs() < 1e-12);
    }

    #[test]
    fn score_bounded() {
        let s = SentimentScorer::new();
        for text in ["love love love love", "hate hate murder tragedy worst"] {
            let v = s.score(text);
            assert!((-1.0..=1.0).contains(&v), "{text} -> {v}");
        }
    }

    #[test]
    fn fixed_point_conversion() {
        let s = SentimentScorer::new();
        let f = s.score_fixed("win"); // valence 3/3 = 1.0
        assert_eq!(f, SENTIMENT_SCALE);
        assert_eq!(s.score_fixed("neutral words only"), 0);
    }

    #[test]
    fn mixed_sentiment_averages() {
        let s = SentimentScorer::new();
        let v = s.score("great loss"); // +3 and -2 over 2 words
        assert!((v - (1.0 / 6.0)).abs() < 1e-9, "got {v}");
    }
}
