//! Text substrate for the MQDP pipeline (Figure 1 of the paper): tokenizer,
//! in-memory inverted index and streaming keyword matcher, SimHash
//! near-duplicate elimination, and lexicon-based sentiment scoring (the
//! alternative diversity dimension of Sections 2 and 6).

#![warn(missing_docs)]

pub mod index;
pub mod rt_index;
pub mod sentiment;
pub mod simhash;
pub mod tokenize;

pub use index::{InvertedIndex, KeywordMatcher};
pub use rt_index::RtIndex;
pub use sentiment::SentimentScorer;
pub use simhash::{hamming, simhash, NearDuplicateFilter};
pub use tokenize::{is_stopword, tokenize, STOPWORDS};
