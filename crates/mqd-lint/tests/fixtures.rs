//! Fixture-based self-tests: every rule must fire on its known-bad
//! fixture and stay silent on the known-good one.
//!
//! Fixtures live in `crates/mqd-lint/fixtures/` as real `.rs` files (so
//! they stay readable and greppable) but are linted under *virtual*
//! workspace-relative paths — both because the walker excludes the
//! fixtures directory from real scans, and because path-scoped rules
//! need the file to appear inside their critical module.

use std::path::Path;

use mqd_lint::{lint_source, Finding, LintConfig};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Lints a fixture under a virtual path with ALL rules enabled — bad
/// fixtures must trip exactly their own rule, proving the rules do not
/// bleed into each other.
fn lint_fixture(name: &str, virtual_path: &str) -> Vec<Finding> {
    lint_source(virtual_path, &fixture(name), &LintConfig::all())
}

/// Lints two fixtures together under virtual paths — the cross-file rules
/// only mean anything over a multi-file workspace.
fn lint_fixture_pair(a: (&str, &str), b: (&str, &str)) -> Vec<Finding> {
    let (src_a, src_b) = (fixture(a.0), fixture(b.0));
    mqd_lint::lint_files(
        &[(a.1, src_a.as_str()), (b.1, src_b.as_str())],
        &LintConfig::all(),
    )
}

fn lines_of(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn nondet_bad_fires() {
    let out = lint_fixture("nondet_bad.rs", "crates/mqd-store/src/store.rs");
    assert_eq!(lines_of(&out, "nondet-iter"), [8, 15, 20], "{out:?}");
    assert_eq!(out.len(), 3, "no other rule may fire: {out:?}");
}

#[test]
fn nondet_good_is_clean() {
    let out = lint_fixture("nondet_good.rs", "crates/mqd-store/src/store.rs");
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn opt_regression_fixture_always_fires() {
    // The PR 4 OPT tie-break bug, reduced: iterating the DP layer's
    // pattern->slot HashMap to pick a parent. If this fixture ever lints
    // clean, nondet-iter has regressed below the bug that motivated it.
    let out = lint_fixture("opt_regression.rs", "crates/mqd-core/src/algorithms/opt.rs");
    let nondet = lines_of(&out, "nondet-iter");
    assert_eq!(nondet.len(), 1, "{out:?}");
    let f = out.iter().find(|f| f.rule == "nondet-iter").unwrap();
    assert!(
        f.snippet.contains("self.index.iter()"),
        "must anchor on the map iteration: {f:?}"
    );
}

#[test]
fn panic_bad_fires() {
    let out = lint_fixture("panic_bad.rs", "crates/mqd-server/src/server.rs");
    assert_eq!(
        lines_of(&out, "panic-path"),
        [5, 6, 7, 8, 10, 19],
        "{out:?}"
    );
    assert_eq!(out.len(), 6, "no other rule may fire: {out:?}");
}

#[test]
fn panic_good_is_clean() {
    let out = lint_fixture("panic_good.rs", "crates/mqd-server/src/server.rs");
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn overflow_bad_fires() {
    let out = lint_fixture("overflow_bad.rs", "crates/mqd-stream/src/engine.rs");
    assert_eq!(lines_of(&out, "overflow-arith"), [11, 16, 20], "{out:?}");
    assert_eq!(out.len(), 3, "no other rule may fire: {out:?}");
}

#[test]
fn overflow_good_is_clean() {
    let out = lint_fixture("overflow_good.rs", "crates/mqd-stream/src/engine.rs");
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn blocking_bad_fires() {
    let out = lint_fixture("blocking_bad.rs", "crates/mqd-server/src/server.rs");
    assert_eq!(lines_of(&out, "blocking-call"), [7, 14, 20], "{out:?}");
    assert_eq!(out.len(), 3, "no other rule may fire: {out:?}");
}

#[test]
fn blocking_good_is_clean() {
    let out = lint_fixture("blocking_good.rs", "crates/mqd-server/src/server.rs");
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn wire_bad_fires() {
    let out = lint_fixture("wire_bad.rs", "crates/mqd-stream/src/checkpoint.rs");
    assert_eq!(lines_of(&out, "wire-drift"), [6, 7, 8, 12], "{out:?}");
    assert_eq!(out.len(), 4, "no other rule may fire: {out:?}");
}

#[test]
fn wire_good_is_clean() {
    let out = lint_fixture("wire_good.rs", "crates/mqd-stream/src/checkpoint.rs");
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn durability_bad_fires() {
    let out = lint_fixture("durability_bad.rs", "crates/mqd-wal/src/segment.rs");
    assert_eq!(
        lines_of(&out, "durability-path"),
        [7, 8, 13, 14, 19, 21],
        "{out:?}"
    );
    assert_eq!(out.len(), 6, "no other rule may fire: {out:?}");
}

#[test]
fn durability_good_is_clean() {
    let out = lint_fixture("durability_good.rs", "crates/mqd-wal/src/segment.rs");
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn durability_rule_is_scoped_to_mqd_wal() {
    // The same raw mutations are fine elsewhere — e.g. the CLI writing a
    // report file — and inside fsio.rs itself, which implements the pairing.
    for path in ["crates/mqd-cli/src/report.rs", "crates/mqd-wal/src/fsio.rs"] {
        let out = lint_fixture("durability_bad.rs", path);
        assert!(
            lines_of(&out, "durability-path").is_empty(),
            "{path}: {out:?}"
        );
    }
}

#[test]
fn lock_order_bad_pair_fires_across_files() {
    let out = lint_fixture_pair(
        ("lock_order_bad_a.rs", "crates/mqd-server/src/publish.rs"),
        ("lock_order_bad_b.rs", "crates/mqd-server/src/reconcile.rs"),
    );
    assert_eq!(out.len(), 1, "one deduped cycle, nothing else: {out:?}");
    let f = &out[0];
    assert_eq!(f.rule, "lock-order");
    assert_eq!(f.file, "crates/mqd-server/src/publish.rs");
    assert_eq!(f.line, 8, "anchored on the first participating edge");
    assert!(f.message.contains("the ABBA class"), "{}", f.message);
    assert!(
        f.message.contains("via `record_entry`"),
        "must name the callee the acquisition hides behind: {}",
        f.message
    );
    assert!(
        f.message.contains("crates/mqd-server/src/reconcile.rs:13"),
        "must print the reverse path's site in the other file: {}",
        f.message
    );
}

#[test]
fn lock_order_halves_are_clean_alone() {
    // The whole point of the workspace pass: neither file is wrong by
    // itself, so a per-file scan of either half must stay silent.
    for (name, path) in [
        ("lock_order_bad_a.rs", "crates/mqd-server/src/publish.rs"),
        ("lock_order_bad_b.rs", "crates/mqd-server/src/reconcile.rs"),
    ] {
        let out = lint_fixture(name, path);
        assert!(out.is_empty(), "{name} alone must be clean: {out:?}");
    }
}

#[test]
fn lock_order_good_is_clean() {
    let out = lint_fixture("lock_order_good.rs", "crates/mqd-server/src/publish.rs");
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn guard_blocking_bad_fires() {
    let out = lint_fixture("guard_blocking_bad.rs", "crates/mqd-server/src/server.rs");
    assert_eq!(lines_of(&out, "guard-held-blocking"), [8, 14], "{out:?}");
    assert_eq!(out.len(), 2, "no other rule may fire: {out:?}");
    assert!(
        out[0]
            .message
            .contains("`sync_all (fsync)` while the guard on `segment` (acquired line 6)"),
        "direct finding names the op, the lock and the acquisition: {}",
        out[0].message
    );
    assert!(
        out[1].message.contains("call to `persist_segment`")
            && out[1].message.contains("one frame down"),
        "propagated finding names the callee that blocks: {}",
        out[1].message
    );
}

#[test]
fn guard_blocking_good_is_clean() {
    let out = lint_fixture("guard_blocking_good.rs", "crates/mqd-server/src/server.rs");
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn unchecked_len_bad_fires() {
    let out = lint_fixture("unchecked_len_bad.rs", "crates/mqd-server/src/conn.rs");
    assert_eq!(lines_of(&out, "unchecked-len"), [6, 16, 25], "{out:?}");
    assert_eq!(out.len(), 3, "no other rule may fire: {out:?}");
    assert!(
        out[0]
            .message
            .contains("wire-decoded length `count` (decoded at line 5)"),
        "must trace the taint back to the decode: {}",
        out[0].message
    );
    for (f, sink) in out
        .iter()
        .zip(["Vec::with_capacity", ".reserve", "vec![_; n]"])
    {
        assert!(f.message.contains(sink), "wrong sink label: {}", f.message);
    }
}

#[test]
fn unchecked_len_good_is_clean() {
    let out = lint_fixture("unchecked_len_good.rs", "crates/mqd-server/src/conn.rs");
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn unchecked_len_exempts_wire_rs() {
    // wire.rs implements plausible_len itself — the same raw allocations
    // there are the sanctioned primitives, not missed clamps.
    let out = lint_fixture("unchecked_len_bad.rs", "crates/mqd-core/src/wire.rs");
    assert!(
        lines_of(&out, "unchecked-len").is_empty(),
        "wire.rs is the rule's one exemption: {out:?}"
    );
}

#[test]
fn suppression_semantics() {
    let out = lint_fixture("suppression.rs", "crates/mqd-server/src/server.rs");
    // Reasoned suppressions (trailing or line-above) silence their site;
    // a reasonless one still suppresses but is itself a finding; an
    // unknown rule id is a finding AND fails to suppress.
    assert_eq!(lines_of(&out, "bad-suppression"), [15, 20], "{out:?}");
    assert_eq!(lines_of(&out, "blocking-call"), [21], "{out:?}");
    assert_eq!(out.len(), 3, "{out:?}");
}

#[test]
fn repair_hot_loop_is_clean() {
    // Not a fixture: the *real* incremental-repair module, linted under
    // its own workspace path with every rule armed. `CoverRepair::observe`
    // runs on the ingest path for every cached Scan entry, so a panic or
    // an unbounded block in here is an outage, not a bug — the full
    // workspace gate would catch it too, but this test names the contract
    // so a regression fails with "the repair hot loop" in the test name
    // rather than inside a 40-file sweep.
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("mqd-stream")
        .join("src")
        .join("repair.rs");
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let out = lint_source("crates/mqd-stream/src/repair.rs", &src, &LintConfig::all());
    assert!(
        lines_of(&out, "panic-path").is_empty(),
        "repair hot loop must be panic-free: {out:?}"
    );
    assert!(
        lines_of(&out, "blocking-call").is_empty(),
        "repair hot loop must never block: {out:?}"
    );
    assert!(out.is_empty(), "repair module must lint clean: {out:?}");
}

#[test]
fn fixtures_are_excluded_from_real_scans() {
    let root =
        mqd_lint::walk::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let files = mqd_lint::walk::rust_sources(&root).expect("walk");
    assert!(
        !files
            .iter()
            .any(|f| f.starts_with("crates/mqd-lint/fixtures/")),
        "known-bad fixtures must never reach the workspace gate"
    );
}
