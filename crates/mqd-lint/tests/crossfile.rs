//! Seeded "teeth" tests for the workspace pass: each cross-file bug class
//! that motivated pass 2, reduced to a minimal inline workspace. The
//! seeded bug MUST be caught and the repaired variant MUST lint clean —
//! if either direction regresses, the analysis has lost its teeth, not
//! just a fixture.

use mqd_lint::{lint_files, LintConfig};

fn cfg(rules: &[&str]) -> LintConfig {
    LintConfig::subset(rules).unwrap()
}

#[test]
fn seeded_abba_cycle_across_two_files_is_caught() {
    // Thread 1: publish locks `index`, then (one call down, in the OTHER
    // file) record locks `ledger`. Thread 2: audit locks `ledger` then
    // `index`. Classic ABBA, invisible to any per-file scan.
    let a = "\
pub fn publish(s: &S) {
    let Ok(idx) = s.index.lock() else { return };
    record(s, &idx);
}
";
    let b = "\
pub fn record(s: &S, idx: &G) {
    let Ok(led) = s.ledger.lock() else { return };
    led.push(idx.head());
}
pub fn audit(s: &S) {
    let Ok(led) = s.ledger.lock() else { return };
    let Ok(idx) = s.index.lock() else { return };
    check(&led, &idx);
}
";
    let out = lint_files(
        &[("crates/x/src/a.rs", a), ("crates/x/src/b.rs", b)],
        &cfg(&["lock-order"]),
    );
    assert_eq!(out.len(), 1, "{out:?}");
    let f = &out[0];
    assert_eq!(f.file, "crates/x/src/a.rs");
    assert!(
        f.message.contains("`index` then `ledger`") && f.message.contains("`ledger` then `index`"),
        "both interleavings must be printed: {}",
        f.message
    );

    // Each half alone is order-consistent — the cycle exists only in the
    // union, so the workspace pass must see both files to fire.
    for (path, src) in [("crates/x/src/a.rs", a), ("crates/x/src/b.rs", b)] {
        let solo = lint_files(&[(path, src)], &cfg(&["lock-order"]));
        assert!(solo.is_empty(), "{path} alone must be clean: {solo:?}");
    }

    // The repair: audit takes the locks in the published order.
    let b_fixed = b.replace(
        "    let Ok(led) = s.ledger.lock() else { return };\n    let Ok(idx) = s.index.lock() else { return };",
        "    let Ok(idx) = s.index.lock() else { return };\n    let Ok(led) = s.ledger.lock() else { return };",
    );
    let fixed = lint_files(
        &[("crates/x/src/a.rs", a), ("crates/x/src/b.rs", &b_fixed)],
        &cfg(&["lock-order"]),
    );
    assert!(
        fixed.is_empty(),
        "consistent order must be clean: {fixed:?}"
    );
}

#[test]
fn seeded_fsync_under_guard_is_caught_direct_and_one_call_deep() {
    let src = "\
pub fn append(s: &S, rows: &[Row]) {
    let Ok(mut seg) = s.segment.lock() else { return };
    seg.stage(rows);
    let _ = seg.file.sync_all();
}
pub fn append_deep(s: &S, rows: &[Row]) {
    let Ok(mut seg) = s.segment.lock() else { return };
    seg.stage(rows);
    flush(&mut seg);
}
pub fn flush(seg: &mut G) {
    let _ = seg.file.sync_all();
}
";
    let out = lint_files(
        &[("crates/x/src/store.rs", src)],
        &cfg(&["guard-held-blocking"]),
    );
    let lines: Vec<u32> = out.iter().map(|f| f.line).collect();
    assert_eq!(lines, [4, 9], "{out:?}");
    assert!(
        out.iter().all(|f| f.message.contains("acquired line")),
        "every finding must point back at the acquisition: {out:?}"
    );

    // The repair: drop the guard before the flush (both shapes).
    let fixed = "\
pub fn append(s: &S, rows: &[Row]) {
    let Ok(mut seg) = s.segment.lock() else { return };
    let file = seg.stage(rows);
    drop(seg);
    let _ = file.sync_all();
}
pub fn append_deep(s: &S, rows: &[Row]) {
    let Ok(mut seg) = s.segment.lock() else { return };
    let file = seg.stage(rows);
    drop(seg);
    flush(&file);
}
pub fn flush(file: &File) {
    let _ = file.sync_all();
}
";
    let clean = lint_files(
        &[("crates/x/src/store.rs", fixed)],
        &cfg(&["guard-held-blocking"]),
    );
    assert!(
        clean.is_empty(),
        "dropped-guard fsync must be clean: {clean:?}"
    );
}

#[test]
fn blocking_two_frames_down_is_outside_the_documented_depth() {
    // The rule's contract is direct-or-one-call-deep (BLOCKING_CALL_DEPTH).
    // Two frames down is explicitly out of scope — this pins the bound so
    // a depth change is a deliberate contract change, not drift.
    let src = "\
pub fn a(s: &S) {
    let Ok(g) = s.m.lock() else { return };
    b(&g);
}
pub fn b(g: &G) {
    c(g);
}
pub fn c(g: &G) {
    let _ = g.file.sync_all();
}
";
    let out = lint_files(
        &[("crates/x/src/a.rs", src)],
        &cfg(&["guard-held-blocking"]),
    );
    assert!(out.is_empty(), "{out:?}");
}

#[test]
fn lock_propagation_stops_at_documented_depth() {
    // Acquisitions propagate up to LOCK_CALL_DEPTH (= 3) frames below the
    // guarded call. Three frames down: caught. Four: out of contract.
    let head = "\
pub fn a(s: &S) {
    let Ok(g) = s.alpha.lock() else { return };
    b1(s);
}
pub fn rev(s: &S) {
    let Ok(h) = s.beta.lock() else { return };
    let Ok(g) = s.alpha.lock() else { return };
}
";
    let three_deep = format!(
        "{head}pub fn b1(s: &S) {{ b2(s); }}\npub fn b2(s: &S) {{ b3(s); }}\n\
         pub fn b3(s: &S) {{ let Ok(h) = s.beta.lock() else {{ return }}; }}\n"
    );
    let out = lint_files(
        &[("crates/x/src/a.rs", three_deep.as_str())],
        &cfg(&["lock-order"]),
    );
    assert_eq!(out.len(), 1, "beta three frames down must be seen: {out:?}");

    let four_deep = format!(
        "{head}pub fn b1(s: &S) {{ b2(s); }}\npub fn b2(s: &S) {{ b3(s); }}\n\
         pub fn b3(s: &S) {{ b4(s); }}\n\
         pub fn b4(s: &S) {{ let Ok(h) = s.beta.lock() else {{ return }}; }}\n"
    );
    let out = lint_files(
        &[("crates/x/src/a.rs", four_deep.as_str())],
        &cfg(&["lock-order"]),
    );
    assert!(out.is_empty(), "four frames is past the bound: {out:?}");
}

#[test]
fn seeded_exabyte_length_claim_is_caught_and_clamp_clears_it() {
    // A 10-byte hostile frame claims 2^60 rows; with_capacity on the raw
    // claim OOMs before any validation runs.
    let bad = "\
pub fn decode(buf: &mut Cursor) -> Result<Vec<Row>, MqdError> {
    let count = buf.get_varint()?;
    let mut rows = Vec::with_capacity(count as usize);
    for _ in 0..count {
        rows.push(decode_row(buf)?);
    }
    Ok(rows)
}
";
    let out = lint_files(&[("crates/x/src/decode.rs", bad)], &cfg(&["unchecked-len"]));
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].line, 3);
    assert!(
        out[0].message.contains("exabyte"),
        "must explain the OOM consequence: {}",
        out[0].message
    );

    // The repair: clamp through plausible_len before allocating.
    let good = bad.replace(
        "    let count = buf.get_varint()?;",
        "    let count = buf.get_varint()?;\n    let count = buf.plausible_len(count, 3, \"row\")?;",
    );
    let clean = lint_files(
        &[("crates/x/src/decode.rs", good.as_str())],
        &cfg(&["unchecked-len"]),
    );
    assert!(clean.is_empty(), "clamped length must be clean: {clean:?}");
}
