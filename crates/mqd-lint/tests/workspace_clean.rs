//! The linter's own CI tooth: the real workspace must lint clean.
//!
//! Every finding is either fixed at the site or carries a reasoned
//! `// lint:allow(<rule>): <reason>` annotation; this test is what keeps
//! that invariant from rotting between `mqdiv lint --deny` runs.

use mqd_lint::engine::LintConfig;
use mqd_lint::walk::find_root;

#[test]
fn workspace_lints_clean_under_all_rules() {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_root(manifest).expect("workspace root above the mqd-lint manifest");
    let (findings, scanned) =
        mqd_lint::lint_workspace(&root, &LintConfig::all()).expect("scan the workspace");
    assert!(
        scanned > 100,
        "suspiciously small scan ({scanned} files) — did find_root land on the wrong directory?"
    );
    assert!(
        findings.is_empty(),
        "workspace must lint clean; fix each site or annotate it with \
         `// lint:allow(<rule>): <reason>`:\n{}",
        findings
            .iter()
            .map(|f| format!("  {}:{} [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
