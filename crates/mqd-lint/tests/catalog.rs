//! The rule-catalog self-test: every rule in the catalog must ship at
//! least one known-good and one known-bad fixture, and each bad fixture
//! must fire on exactly the lines annotated with `//~ <rule-id>` markers
//! in its source. Adding a rule without fixtures, or letting a fixture's
//! firing lines drift from its annotations, fails here by rule name
//! instead of deep inside a sweep.

use std::path::Path;

use mqd_lint::{lint_files, Finding, LintConfig};

/// One fixture group: `(fixture file, virtual workspace path)` pairs
/// linted *together*, so cross-file rules (whose bad case spans two
/// fixtures by design) are exercised over their whole workspace.
type Group = &'static [(&'static str, &'static str)];

/// `(rule id, bad fixture group, good fixture group)`.
const CATALOG: &[(&str, Group, Group)] = &[
    (
        "nondet-iter",
        &[("nondet_bad.rs", "crates/mqd-store/src/store.rs")],
        &[("nondet_good.rs", "crates/mqd-store/src/store.rs")],
    ),
    (
        "panic-path",
        &[("panic_bad.rs", "crates/mqd-server/src/server.rs")],
        &[("panic_good.rs", "crates/mqd-server/src/server.rs")],
    ),
    (
        "overflow-arith",
        &[("overflow_bad.rs", "crates/mqd-stream/src/engine.rs")],
        &[("overflow_good.rs", "crates/mqd-stream/src/engine.rs")],
    ),
    (
        "blocking-call",
        &[("blocking_bad.rs", "crates/mqd-server/src/server.rs")],
        &[("blocking_good.rs", "crates/mqd-server/src/server.rs")],
    ),
    (
        "wire-drift",
        &[("wire_bad.rs", "crates/mqd-stream/src/checkpoint.rs")],
        &[("wire_good.rs", "crates/mqd-stream/src/checkpoint.rs")],
    ),
    (
        "durability-path",
        &[("durability_bad.rs", "crates/mqd-wal/src/segment.rs")],
        &[("durability_good.rs", "crates/mqd-wal/src/segment.rs")],
    ),
    (
        "lock-order",
        &[
            ("lock_order_bad_a.rs", "crates/mqd-server/src/publish.rs"),
            ("lock_order_bad_b.rs", "crates/mqd-server/src/reconcile.rs"),
        ],
        &[("lock_order_good.rs", "crates/mqd-server/src/publish.rs")],
    ),
    (
        "guard-held-blocking",
        &[("guard_blocking_bad.rs", "crates/mqd-server/src/server.rs")],
        &[("guard_blocking_good.rs", "crates/mqd-server/src/server.rs")],
    ),
    (
        "unchecked-len",
        &[("unchecked_len_bad.rs", "crates/mqd-server/src/conn.rs")],
        &[("unchecked_len_good.rs", "crates/mqd-server/src/conn.rs")],
    ),
];

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// 1-based lines of `src` carrying a `//~ <rule>` end-of-line marker.
fn marker_lines(src: &str, rule: &str) -> Vec<u32> {
    let tag = format!("//~ {rule}");
    src.lines()
        .enumerate()
        .filter(|(_, l)| l.trim_end().ends_with(tag.as_str()))
        .map(|(i, _)| i as u32 + 1)
        .collect()
}

fn lint_group(group: &[(&str, &str)]) -> Vec<Finding> {
    let sources: Vec<String> = group.iter().map(|(name, _)| fixture(name)).collect();
    let pairs: Vec<(&str, &str)> = group
        .iter()
        .zip(&sources)
        .map(|((_, vpath), src)| (*vpath, src.as_str()))
        .collect();
    lint_files(&pairs, &LintConfig::all())
}

#[test]
fn catalog_covers_every_rule() {
    let ids: Vec<&str> = mqd_lint::rule_catalog().iter().map(|(id, _)| *id).collect();
    let covered: Vec<&str> = CATALOG.iter().map(|(id, _, _)| *id).collect();
    assert_eq!(
        ids, covered,
        "this table must track the rule catalog exactly (same order): \
         a new rule ships with fixtures or fails here"
    );
}

#[test]
fn bad_fixtures_fire_exactly_on_annotated_lines() {
    for (rule, bad, _) in CATALOG {
        let mut expected: Vec<(String, u32)> = Vec::new();
        for (name, vpath) in *bad {
            for line in marker_lines(&fixture(name), rule) {
                expected.push((vpath.to_string(), line));
            }
        }
        assert!(
            !expected.is_empty(),
            "{rule}: bad fixture group carries no `//~ {rule}` markers"
        );
        let out = lint_group(bad);
        let got: Vec<(String, u32)> = out
            .iter()
            .filter(|f| f.rule == *rule)
            .map(|f| (f.file.clone(), f.line))
            .collect();
        assert_eq!(
            got, expected,
            "{rule}: firing sites drifted from the //~ annotations: {out:?}"
        );
    }
}

#[test]
fn good_fixtures_are_silent_for_their_rule() {
    for (rule, _, good) in CATALOG {
        assert!(!good.is_empty(), "{rule}: no known-good fixture");
        let out = lint_group(good);
        assert!(
            !out.iter().any(|f| f.rule == *rule),
            "{rule}: known-good fixture fired: {out:?}"
        );
    }
}
