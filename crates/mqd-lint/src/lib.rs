//! `mqd-lint` — a zero-dependency static-analysis pass over the
//! workspace's own Rust sources.
//!
//! Three of the four shipped PRs fixed the same bug classes by hand:
//! i64 overflow in coverage math (PR 3), HashMap-iteration-order
//! nondeterminism in the OPT DP, and a blocking-I/O pool deadlock (both
//! PR 4). The serving north-star — byte-identical answers from
//! `mqd-server`, enforced by the oracle's `server-agreement` check —
//! depends on exactly these invariants, so they are enforced by a tool
//! instead of reviewer memory. The five rules and the incidents behind
//! them are cataloged in DESIGN.md §13.
//!
//! The pass is a lightweight tokenizer (comments/strings/attributes
//! aware — deliberately not a parser) plus token-pattern rules scoped by
//! workspace path. Findings carry `file:line`, rule id and snippet;
//! per-site suppression is `// lint:allow(<rule>): <reason>` with the
//! reason mandatory. Run it as `mqdiv lint [--deny] [--json] [--rules]`.
//!
//! ```
//! use mqd_lint::{lint_source, LintConfig};
//! let findings = lint_source(
//!     "crates/mqd-store/src/store.rs",
//!     "fn f(m: &std::collections::HashMap<u16, u32>) { for k in m.keys() { drop(k); } }",
//!     &LintConfig::all(),
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "nondet-iter");
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

pub use engine::{lint_source, LintConfig};
pub use report::{render_human, render_json, Finding};

use std::io;
use std::path::Path;

/// Lints every Rust source under `root` with the given config. Returns
/// the findings (sorted by file, line, rule) and the number of files
/// scanned.
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> io::Result<(Vec<Finding>, usize)> {
    let files = walk::rust_sources(root)?;
    let mut findings = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        findings.extend(lint_source(rel, &src, cfg));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok((findings, files.len()))
}

/// The rule catalog as `(id, summary)` pairs, for CLI listings.
pub fn rule_catalog() -> Vec<(&'static str, &'static str)> {
    rules::ALL.iter().map(|r| (r.id, r.summary)).collect()
}
