//! `mqd-lint` — a zero-dependency static-analysis pass over the
//! workspace's own Rust sources.
//!
//! Three of the four early PRs fixed the same bug classes by hand:
//! i64 overflow in coverage math (PR 3), HashMap-iteration-order
//! nondeterminism in the OPT DP, and a blocking-I/O pool deadlock (both
//! PR 4). The serving north-star — byte-identical answers from
//! `mqd-server`, enforced by the oracle's `server-agreement` check —
//! depends on exactly these invariants, so they are enforced by a tool
//! instead of reviewer memory. The rules and the incidents behind them
//! are cataloged in DESIGN.md §13.
//!
//! The engine is two-pass. Pass 1 is per file: a lightweight tokenizer
//! (comments/strings/attributes aware — deliberately not a parser), the
//! token-pattern file rules, plus a brace-matched item tree and
//! per-function facts (lock-guard liveness, blocking operations,
//! outgoing calls). Pass 2 runs the workspace rules — `lock-order`,
//! `guard-held-blocking`, `unchecked-len` — over the cross-file call
//! graph those facts form. Findings carry `file:line:col`, rule id and
//! snippet; per-site suppression is `// lint:allow(<rule>): <reason>`
//! with the reason mandatory. Run it as
//! `mqdiv lint [--deny] [--json] [--rules]`.
//!
//! ```
//! use mqd_lint::{lint_source, LintConfig};
//! let findings = lint_source(
//!     "crates/mqd-store/src/store.rs",
//!     "fn f(m: &std::collections::HashMap<u16, u32>) { for k in m.keys() { drop(k); } }",
//!     &LintConfig::all(),
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "nondet-iter");
//! ```
//!
//! The cross-file rules need more than one file to mean anything:
//!
//! ```
//! use mqd_lint::{lint_files, LintConfig};
//! let a = "pub fn publish(s: &S) { let g = s.index.lock().unwrap(); record(s); }";
//! let b = "pub fn record(s: &S) { let g = s.ledger.lock().unwrap(); \
//!          let h = s.index.lock().unwrap(); }";
//! let findings = lint_files(
//!     &[("crates/x/src/a.rs", a), ("crates/x/src/b.rs", b)],
//!     &LintConfig::subset(&["lock-order"]).unwrap(),
//! );
//! assert_eq!(findings.len(), 1, "{findings:?}");
//! assert_eq!(findings[0].rule, "lock-order");
//! ```

#![warn(missing_docs)]

pub mod callgraph;
pub mod engine;
pub mod facts;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod walk;

pub use engine::{lint_files, lint_source, LintConfig};
pub use report::{render_human, render_json, Finding, SCHEMA_VERSION};

use std::io;
use std::path::Path;

/// Lints every Rust source under `root` with the given config — both
/// passes: per-file rules and the cross-file workspace rules. Returns the
/// findings (sorted by file, line, col, rule) and the number of files
/// scanned.
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> io::Result<(Vec<Finding>, usize)> {
    let files = walk::rust_sources(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        sources.push(std::fs::read_to_string(root.join(rel))?);
    }
    let pairs: Vec<(&str, &str)> = files
        .iter()
        .map(String::as_str)
        .zip(sources.iter().map(String::as_str))
        .collect();
    Ok((lint_files(&pairs, cfg), files.len()))
}

/// The rule catalog as `(id, summary)` pairs, for CLI listings.
pub fn rule_catalog() -> Vec<(&'static str, &'static str)> {
    rules::ALL.iter().map(|r| (r.id, r.summary)).collect()
}
