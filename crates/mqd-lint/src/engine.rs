//! The lint pipeline. Per file: tokenize, compute test scopes, collect
//! typed identifier facts, run the file rules. Across files: build the
//! two-pass workspace context (item tree → function facts → call graph)
//! and run the workspace rules. Then apply `lint:allow` suppressions and
//! emit `bad-suppression` findings for annotations that are missing their
//! mandatory reason.

use std::collections::HashSet;

use crate::callgraph::WorkspaceCtx;
use crate::lexer::{tokenize, Tok, TokKind};
use crate::report::Finding;
use crate::rules;

/// Rule id of the meta-rule guarding the suppression mechanism itself: a
/// `lint:allow` with no reason or an unknown rule id. Cannot be suppressed.
pub const BAD_SUPPRESSION: &str = "bad-suppression";

/// Which rules run. Build with [`LintConfig::all`] or [`LintConfig::subset`].
#[derive(Clone, Debug)]
pub struct LintConfig {
    enabled: Vec<&'static str>,
}

impl LintConfig {
    /// Every rule enabled — the CI gate configuration.
    pub fn all() -> Self {
        LintConfig {
            enabled: rules::ALL.iter().map(|r| r.id).collect(),
        }
    }

    /// Only the named rules. Unknown names are an error listing the valid
    /// ids, so a typo in `--rules` can never silently lint nothing.
    pub fn subset(names: &[&str]) -> Result<Self, String> {
        let mut enabled = Vec::new();
        for n in names {
            match rules::ALL.iter().find(|r| r.id == *n) {
                Some(r) => enabled.push(r.id),
                None => {
                    return Err(format!(
                        "unknown rule '{n}' (valid: {})",
                        rules::ALL
                            .iter()
                            .map(|r| r.id)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                }
            }
        }
        Ok(LintConfig { enabled })
    }

    fn on(&self, id: &str) -> bool {
        self.enabled.contains(&id)
    }

    /// Whether the full rule set is active.
    pub fn is_full(&self) -> bool {
        self.enabled.len() == rules::ALL.len()
    }
}

/// One parsed `// lint:allow(rule-a,rule-b): reason` annotation.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// Line the comment sits on.
    pub line: u32,
    /// Rule ids named in the parentheses.
    pub rules: Vec<String>,
    /// Justification text after the colon (trimmed; may be empty — which
    /// is itself a finding).
    pub reason: String,
}

impl Suppression {
    /// A suppression covers findings of one of its rules on its own line
    /// (trailing comment) or the line directly below (comment above the
    /// offending statement).
    fn covers(&self, line: u32, rule: &str) -> bool {
        (line == self.line || line == self.line + 1) && self.rules.iter().any(|r| r == rule)
    }
}

/// Everything a rule may look at for one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel: &'a str,
    /// Source split into lines (for snippets).
    pub lines: Vec<&'a str>,
    /// Code tokens: comments stripped, order preserved.
    pub code: Vec<Tok>,
    /// `in_test[i]` — whether `code[i]` sits in test-only code: under
    /// `#[cfg(test)]` / `#[test]`, or in a `tests/`, `examples/` or
    /// `benches/` directory.
    pub in_test: Vec<bool>,
    /// Identifiers whose declared type or initializer names `HashMap` or
    /// `HashSet` anywhere in this file (field, binding or parameter).
    pub hash_idents: HashSet<String>,
    /// Identifiers bound with `i128` in their type or initializer —
    /// arithmetic on these is already overflow-safe.
    pub i128_idents: HashSet<String>,
    /// Parsed `lint:allow` annotations.
    pub suppressions: Vec<Suppression>,
}

impl<'a> FileCtx<'a> {
    /// The trimmed source line, for finding snippets.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// Column of the first code token on `line` — the anchor for rules
    /// that reason line-wise rather than token-wise.
    pub fn line_col(&self, line: u32) -> u32 {
        self.code
            .iter()
            .find(|t| t.line == line)
            .map(|t| t.col)
            .unwrap_or(1)
    }

    /// Shorthand for building a [`Finding`] anchored at `line` (column of
    /// the line's first code token).
    pub fn finding(&self, line: u32, rule: &'static str, message: String) -> Finding {
        Finding {
            file: self.rel.to_string(),
            line,
            col: self.line_col(line),
            rule,
            message,
            snippet: self.snippet(line),
        }
    }
}

/// Lints one file's source. `rel` is the workspace-relative path (forward
/// slashes) — several rules are scoped by path, so virtual paths let the
/// fixture tests exercise path-gated rules on synthetic files. Workspace
/// rules run too, over a one-file "workspace".
pub fn lint_source(rel: &str, src: &str, cfg: &LintConfig) -> Vec<Finding> {
    lint_files(&[(rel, src)], cfg)
}

/// Lints a set of files as one workspace: file rules per file, then the
/// workspace rules over the cross-file context, then suppressions. This is
/// the engine's real entry point — `lint_source` and `lint_workspace` both
/// come here.
pub fn lint_files(files: &[(&str, &str)], cfg: &LintConfig) -> Vec<Finding> {
    let toks: Vec<Vec<Tok>> = files.iter().map(|(_, src)| tokenize(src)).collect();
    let ctxs: Vec<FileCtx> = files
        .iter()
        .zip(&toks)
        .map(|((rel, src), t)| build_file_ctx(rel, src, t))
        .collect();

    let mut raw = Vec::new();
    for ctx in &ctxs {
        for rule in rules::ALL {
            if let (true, rules::Check::File(check)) = (cfg.on(rule.id), &rule.check) {
                check(ctx, &mut raw);
            }
        }
    }

    let run_workspace = rules::ALL
        .iter()
        .any(|r| cfg.on(r.id) && matches!(r.check, rules::Check::Workspace(_)));
    let ctxs = if run_workspace {
        let ws = WorkspaceCtx::build(ctxs);
        for rule in rules::ALL {
            if let (true, rules::Check::Workspace(check)) = (cfg.on(rule.id), &rule.check) {
                check(&ws, &mut raw);
            }
        }
        ws.files
    } else {
        ctxs
    };

    let mut out = Vec::new();
    for f in raw {
        let suppressed = ctxs
            .iter()
            .find(|c| c.rel == f.file)
            .is_some_and(|c| c.suppressions.iter().any(|s| s.covers(f.line, f.rule)));
        if !suppressed {
            out.push(f);
        }
    }

    // The suppression mechanism polices itself: a reason is mandatory and
    // the rule id must exist (otherwise the annotation silences nothing
    // and rots). These findings cannot be suppressed.
    for ctx in &ctxs {
        for s in &ctx.suppressions {
            if s.reason.is_empty() {
                out.push(ctx.finding(
                    s.line,
                    BAD_SUPPRESSION,
                    format!(
                        "lint:allow({}) has no reason — write `// lint:allow({}): <why this site is safe>`",
                        s.rules.join(","),
                        s.rules.join(",")
                    ),
                ));
            }
            for r in &s.rules {
                if !rules::ALL.iter().any(|rule| rule.id == r.as_str()) {
                    out.push(ctx.finding(
                        s.line,
                        BAD_SUPPRESSION,
                        format!(
                            "lint:allow names unknown rule '{r}' (valid: {})",
                            rules::ALL
                                .iter()
                                .map(|rule| rule.id)
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    ));
                }
            }
        }
    }

    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    out
}

pub(crate) fn build_file_ctx<'a>(rel: &'a str, src: &'a str, toks: &[Tok]) -> FileCtx<'a> {
    let code: Vec<Tok> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .cloned()
        .collect();
    let in_test = test_flags(rel, &code);
    let (hash_idents, i128_idents) = typed_idents(&code);
    let suppressions = parse_suppressions(toks);
    FileCtx {
        rel,
        lines: src.lines().collect(),
        code,
        in_test,
        hash_idents,
        i128_idents,
        suppressions,
    }
}

/// Whether every token of this file counts as test code by location alone.
fn path_is_test(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    parts
        .iter()
        .take(parts.len().saturating_sub(1))
        .any(|p| matches!(*p, "tests" | "benches" | "examples" | "fixtures"))
}

/// Computes the per-token test flag by tracking `#[cfg(test)]` / `#[test]`
/// attributes and the brace depth of the item they decorate.
fn test_flags(rel: &str, code: &[Tok]) -> Vec<bool> {
    if path_is_test(rel) {
        return vec![true; code.len()];
    }
    let mut flags = vec![false; code.len()];
    let mut depth = 0usize;
    // Depth of `(`/`[` nesting, so the `;` inside `[u8; 4]` or a signature
    // never clears a pending attribute.
    let mut inner = 0usize;
    let mut pending_test = false;
    let mut file_test = false;
    // Brace depths at which a test region was opened.
    let mut regions: Vec<usize> = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        let t = &code[i];
        if t.is_punct('#') {
            // `#[...]` outer or `#![...]` inner attribute.
            let mut j = i + 1;
            let inner_attr = code.get(j).is_some_and(|t| t.is_punct('!'));
            if inner_attr {
                j += 1;
            }
            if code.get(j).is_some_and(|t| t.is_punct('[')) {
                let (is_test, end) = scan_attribute(code, j);
                if is_test {
                    if inner_attr && depth == 0 {
                        file_test = true; // #![cfg(test)] at file scope
                    } else {
                        pending_test = true;
                    }
                }
                flags[i..=end.min(code.len() - 1)]
                    .iter_mut()
                    .for_each(|f| *f = file_test || !regions.is_empty());
                i = end + 1;
                continue;
            }
        }
        flags[i] = file_test || !regions.is_empty() || pending_test;
        if t.kind == TokKind::Punct {
            match t.text.as_bytes().first() {
                Some(b'{') => {
                    depth += 1;
                    if pending_test {
                        regions.push(depth);
                        pending_test = false;
                    }
                }
                Some(b'}') => {
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                Some(b'(') | Some(b'[') => inner += 1,
                Some(b')') | Some(b']') => inner = inner.saturating_sub(1),
                Some(b';') if inner == 0 => pending_test = false,
                _ => {}
            }
        }
        i += 1;
    }
    flags
}

/// Parses the attribute starting at `code[open]` (the `[`). Returns
/// whether it marks test-only code and the index of the closing `]`.
/// "Marks test" = mentions the `test` ident without a `not(...)` — so
/// `#[test]`, `#[cfg(test)]` and `#[cfg(any(test, ...))]` count while
/// `#[cfg(not(test))]` does not.
fn scan_attribute(code: &[Tok], open: usize) -> (bool, usize) {
    let mut depth = 0usize;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut j = open;
    while j < code.len() {
        let t = &code[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_ident("test") {
            saw_test = true;
        } else if t.is_ident("not") {
            saw_not = true;
        }
        j += 1;
    }
    (saw_test && !saw_not, j.min(code.len().saturating_sub(1)))
}

/// Collects identifiers declared with `HashMap`/`HashSet` or `i128`
/// anywhere in their type ascription or `let` initializer. Token-level
/// type inference: good enough to anchor the nondet-iter and
/// overflow-arith rules without a real parser.
fn typed_idents(code: &[Tok]) -> (HashSet<String>, HashSet<String>) {
    let mut hash = HashSet::new();
    let mut i128s = HashSet::new();
    for i in 0..code.len() {
        // `name : Type` (field, param or annotated let) — scan the type.
        if code[i].kind == TokKind::Ident
            && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && !code.get(i.wrapping_sub(1)).is_some_and(|t| t.is_punct(':'))
        {
            let mut j = i + 2;
            let mut angle = 0i32;
            while j < code.len() && j < i + 40 {
                let t = &code[j];
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    angle -= 1;
                    if angle < 0 {
                        break;
                    }
                } else if angle == 0
                    && (t.is_punct(',')
                        || t.is_punct(';')
                        || t.is_punct('=')
                        || t.is_punct('{')
                        || t.is_punct('}')
                        || t.is_punct(')'))
                {
                    break;
                } else if t.is_ident("HashMap") || t.is_ident("HashSet") {
                    hash.insert(code[i].text.clone());
                } else if t.is_ident("i128") {
                    i128s.insert(code[i].text.clone());
                }
                j += 1;
            }
        }
        // `let [mut] name = <init>;` — scan the initializer.
        if code[i].is_ident("let") {
            let mut k = i + 1;
            if code.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            let Some(name) = code.get(k).filter(|t| t.kind == TokKind::Ident) else {
                continue;
            };
            // Find the `=` of this let (skip a type ascription).
            let mut j = k + 1;
            let mut angle = 0i32;
            let mut eq = None;
            while j < code.len() && j < k + 40 {
                let t = &code[j];
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') {
                    angle -= 1;
                } else if t.is_punct(';') && angle <= 0 {
                    break;
                } else if t.is_punct('=') && angle <= 0 {
                    // `==`, `>=` etc. never follow a type; plain `=` does.
                    if !code.get(j + 1).is_some_and(|n| n.is_punct('=')) {
                        eq = Some(j);
                        break;
                    }
                }
                j += 1;
            }
            let Some(eq) = eq else { continue };
            let mut depth = 0i32;
            let mut j = eq + 1;
            while j < code.len() {
                let t = &code[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if t.is_punct(';') && depth == 0 {
                    break;
                } else if t.is_ident("HashMap") || t.is_ident("HashSet") {
                    hash.insert(name.text.clone());
                } else if t.is_ident("i128") {
                    i128s.insert(name.text.clone());
                }
                j += 1;
            }
        }
    }
    (hash, i128s)
}

/// Extracts `lint:allow(rule-a,rule-b): reason` annotations from comments.
/// Doc comments (`///`, `//!`, `/**`, `/*!`) are prose attached to an item
/// — mentioning the syntax there must neither suppress anything nor trip
/// `bad-suppression`, so they are skipped.
fn parse_suppressions(toks: &[Tok]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in toks {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        if t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = t.text.find("lint:allow(") else {
            continue;
        };
        let rest = &t.text[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let after = &rest[close + 1..];
        let reason = after
            .strip_prefix(':')
            .map(|r| r.trim_end_matches("*/").trim().to_string())
            .unwrap_or_default();
        out.push(Suppression {
            line: t.line,
            rules,
            reason,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_scope_tracking() {
        let src = "\
fn prod() { body(); }
#[cfg(test)]
mod tests {
    fn helper() { x(); }
}
fn prod2() { y(); }
";
        let toks = tokenize(src);
        let ctx = build_file_ctx("crates/x/src/lib.rs", src, &toks);
        let flag_of = |name: &str| {
            let i = ctx.code.iter().position(|t| t.is_ident(name)).unwrap();
            ctx.in_test[i]
        };
        assert!(!flag_of("body"));
        assert!(flag_of("helper"));
        assert!(flag_of("x"));
        assert!(!flag_of("y"));
    }

    #[test]
    fn cfg_not_test_is_production() {
        let src = "#[cfg(not(test))]\nfn release_only() { z(); }\n";
        let toks = tokenize(src);
        let ctx = build_file_ctx("crates/x/src/lib.rs", src, &toks);
        let i = ctx.code.iter().position(|t| t.is_ident("z")).unwrap();
        assert!(!ctx.in_test[i]);
    }

    #[test]
    fn cfg_test_use_does_not_leak() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn prod() { q(); }\n";
        let toks = tokenize(src);
        let ctx = build_file_ctx("crates/x/src/lib.rs", src, &toks);
        let i = ctx.code.iter().position(|t| t.is_ident("q")).unwrap();
        assert!(!ctx.in_test[i]);
    }

    #[test]
    fn tests_directory_is_all_test() {
        let src = "fn anything() { a.unwrap(); }\n";
        let toks = tokenize(src);
        let ctx = build_file_ctx("crates/x/tests/it.rs", src, &toks);
        assert!(ctx.in_test.iter().all(|&f| f));
    }

    #[test]
    fn typed_ident_collection() {
        let src = "\
struct S { index: HashMap<Vec<u32>, usize>, names: Vec<String> }
fn f(seen: &mut HashSet<u32>) {
    let m = std::collections::HashMap::new();
    let lam = lp.lambda(inst, z, a) as i128;
    let ivals: Vec<(i128, i128)> = Vec::new();
    let plain = 3;
}
";
        let toks = tokenize(src);
        let ctx = build_file_ctx("crates/x/src/lib.rs", src, &toks);
        assert!(ctx.hash_idents.contains("index"));
        assert!(ctx.hash_idents.contains("seen"));
        assert!(ctx.hash_idents.contains("m"));
        assert!(!ctx.hash_idents.contains("names"));
        assert!(!ctx.hash_idents.contains("plain"));
        assert!(ctx.i128_idents.contains("lam"));
        assert!(ctx.i128_idents.contains("ivals"));
        assert!(!ctx.i128_idents.contains("plain"));
    }

    #[test]
    fn suppression_parsing() {
        let src = "\
let a = 1; // lint:allow(panic-path): buffer is non-empty by construction
// lint:allow(nondet-iter,blocking-call): keyed access only
// lint:allow(panic-path)
";
        let toks = tokenize(src);
        let sups = parse_suppressions(&toks);
        assert_eq!(sups.len(), 3);
        assert_eq!(sups[0].rules, ["panic-path"]);
        assert!(sups[0].reason.starts_with("buffer is non-empty"));
        assert_eq!(sups[1].rules, ["nondet-iter", "blocking-call"]);
        assert!(sups[2].reason.is_empty());
    }

    #[test]
    fn doc_comments_are_not_suppressions() {
        let src = "\
/// Write `// lint:allow(panic-path): <why>` to suppress.
//! The syntax is lint:allow(nondet-iter): reason.
fn f() {}
";
        let toks = tokenize(src);
        assert!(parse_suppressions(&toks).is_empty());
    }

    #[test]
    fn missing_reason_is_a_finding() {
        let src = "fn f() {} // lint:allow(panic-path)\n";
        let out = lint_source("crates/x/src/lib.rs", src, &LintConfig::all());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, BAD_SUPPRESSION);
    }

    #[test]
    fn unknown_rule_in_allow_is_a_finding() {
        let src = "fn f() {} // lint:allow(no-such-rule): because\n";
        let out = lint_source("crates/x/src/lib.rs", src, &LintConfig::all());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, BAD_SUPPRESSION);
        assert!(out[0].message.contains("no-such-rule"));
    }

    #[test]
    fn subset_rejects_unknown_rule_names() {
        assert!(LintConfig::subset(&["panic-path"]).is_ok());
        let err = LintConfig::subset(&["panics"]).unwrap_err();
        assert!(err.contains("unknown rule 'panics'"));
    }
}
