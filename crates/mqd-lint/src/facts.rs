//! Intraprocedural facts for the workspace pass: per function, which lock
//! guards are created (and where they die), which blocking operations run,
//! and which calls go out — each annotated with the set of guards live at
//! that point. The cross-file rules (`lock-order`, `guard-held-blocking`)
//! are then pure graph walks over these facts.
//!
//! Guard model, in token terms:
//! - `let [mut] g = <expr>;` where `<expr>` acquires (argless `.lock()`,
//!   `.read()`, `.write()`, or the workspace's `lock_or_poisoned` /
//!   `read_or_poisoned` / `write_or_poisoned` helpers) binds guard `g`,
//!   live until its enclosing brace scope closes or an explicit `drop(g)`.
//! - An acquisition with no `let` (a temporary, e.g.
//!   `m.lock().unwrap().push(x)`) is live to the end of its statement.
//! - The *lock name* is the last path segment of the receiver
//!   (`state.cache.lock()` → `cache`) or of the helper's first argument
//!   (`lock_or_poisoned(&state.subs, "subs")` → `subs`). Names are global:
//!   two files locking `cache` refer to the same lock as far as the order
//!   graph is concerned — a deliberate over-approximation that trades rare
//!   false aliasing for zero type-resolution machinery.
//! - `stdout`/`stderr`/`stdin` receivers are exempt: `io::stdout().lock()`
//!   is a reentrant stream handle, not an app mutex.

use crate::engine::FileCtx;
use crate::lexer::TokKind;
use crate::parse::FnItem;

/// A source position (1-based line and column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Site {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One guard live at some point: which lock it holds and where it was
/// acquired.
#[derive(Clone, Debug)]
pub struct HeldGuard {
    /// Lock name (last path segment of the receiver).
    pub lock: String,
    /// Where the guard was acquired.
    pub site: Site,
}

/// One lock acquisition, with the guards already live when it happened —
/// each pair (held, acquired) is an edge in the global lock-order graph.
#[derive(Clone, Debug)]
pub struct Acquire {
    /// Lock being acquired.
    pub lock: String,
    /// Acquisition site.
    pub site: Site,
    /// Guards live at the moment of acquisition.
    pub held: Vec<HeldGuard>,
}

/// One blocking operation (unbounded recv/join, line-buffered socket read,
/// or fsync) and the guards live across it.
#[derive(Clone, Debug)]
pub struct Blocking {
    /// Human label: `recv()`, `join()`, `read_line`, `sync_all (fsync)`...
    pub what: &'static str,
    /// Where the blocking operation runs.
    pub site: Site,
    /// Guards live across the block.
    pub held: Vec<HeldGuard>,
}

/// One outgoing call, by bare callee name, with the guards live at the
/// call site. All calls are recorded (not just guarded ones): lock
/// acquisitions propagate through unguarded intermediate frames too.
#[derive(Clone, Debug)]
pub struct Call {
    /// Bare callee name.
    pub callee: String,
    /// Call site.
    pub site: Site,
    /// Guards live at the call.
    pub held: Vec<HeldGuard>,
}

/// Everything the workspace rules need to know about one function.
#[derive(Clone, Debug)]
pub struct FnFacts {
    /// Bare function name.
    pub name: String,
    /// Index of the defining file in `WorkspaceCtx::files`.
    pub file: usize,
    /// Site of the `fn` keyword.
    pub site: Site,
    /// Every lock acquisition, in token order.
    pub acquires: Vec<Acquire>,
    /// Every direct blocking operation, in token order.
    pub blocking: Vec<Blocking>,
    /// Every outgoing call, in token order.
    pub calls: Vec<Call>,
}

/// Acquisition method names (argless method form).
const ACQ_METHODS: &[&str] = &["lock", "read", "write"];
/// The workspace's poison-tolerant acquisition helpers (free-fn form).
const ACQ_HELPERS: &[&str] = &["lock_or_poisoned", "read_or_poisoned", "write_or_poisoned"];
/// Std stream handles whose `.lock()` is not an app mutex.
const STREAM_RECEIVERS: &[&str] = &["stdout", "stderr", "stdin"];
/// Identifiers that never name an outgoing workspace call.
const NON_CALLS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "drop", "Some", "Ok", "Err",
];

/// Extracts facts for every non-test function of one file. `file` is the
/// file's index in the workspace context.
pub fn extract(ctx: &FileCtx, items: &[FnItem], file: usize) -> Vec<FnFacts> {
    let mut out = Vec::new();
    for (k, item) in items.iter().enumerate() {
        if ctx.in_test.get(item.body_open).copied().unwrap_or(false) {
            continue; // test-only fn — workspace rules skip test code
        }
        // Token ranges of fns nested inside this one, to skip.
        let nested: Vec<(usize, usize)> = items
            .iter()
            .enumerate()
            .filter(|(j, other)| *j != k && item.contains(other))
            .map(|(_, other)| (other.body_open, other.body_close))
            .collect();
        out.push(walk_body(ctx, item, &nested, file));
    }
    out
}

/// A guard currently live during the body walk.
struct Guard {
    /// Binding name, or `None` for a statement temporary.
    name: Option<String>,
    lock: String,
    /// Brace depth (relative to the body) the binding lives at.
    depth: u32,
    site: Site,
}

fn snapshot(live: &[Guard]) -> Vec<HeldGuard> {
    live.iter()
        .map(|g| HeldGuard {
            lock: g.lock.clone(),
            site: g.site,
        })
        .collect()
}

fn walk_body(ctx: &FileCtx, item: &FnItem, nested: &[(usize, usize)], file: usize) -> FnFacts {
    let code = &ctx.code;
    let mut facts = FnFacts {
        name: item.name.clone(),
        file,
        site: Site {
            line: item.line,
            col: item.col,
        },
        acquires: Vec::new(),
        blocking: Vec::new(),
        calls: Vec::new(),
    };
    let mut live: Vec<Guard> = Vec::new();
    let mut depth = 0u32;
    let mut i = item.body_open;
    while i <= item.body_close && i < code.len() {
        if let Some(&(_, close)) = nested.iter().find(|&&(open, _)| open == i) {
            i = close + 1; // nested fn body: its own FnFacts covers it
            continue;
        }
        let t = &code[i];
        let site = Site {
            line: t.line,
            col: t.col,
        };
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            live.retain(|g| g.depth < depth);
            depth = depth.saturating_sub(1);
        } else if t.is_punct(';') {
            // Statement temporaries die at their statement's semicolon.
            live.retain(|g| !(g.name.is_none() && g.depth == depth));
        } else if t.is_ident("drop")
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
            && code.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            if let Some(name) = code.get(i + 2).filter(|n| n.kind == TokKind::Ident) {
                live.retain(|g| g.name.as_deref() != Some(name.text.as_str()));
            }
        } else if let Some(lock) = acquisition(code, i) {
            facts.acquires.push(Acquire {
                lock: lock.clone(),
                site,
                held: snapshot(&live),
            });
            match let_binding(code, item.body_open, i, depth) {
                Some((name, bind_depth)) => live.push(Guard {
                    name: Some(name),
                    lock,
                    depth: bind_depth,
                    site,
                }),
                None => live.push(Guard {
                    name: None,
                    lock,
                    depth,
                    site,
                }),
            }
        } else if let Some(what) = blocking_op(code, i) {
            facts.blocking.push(Blocking {
                what,
                site,
                held: snapshot(&live),
            });
        } else if t.kind == TokKind::Ident
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !NON_CALLS.iter().any(|n| t.is_ident(n))
            && !ACQ_METHODS.iter().any(|n| t.is_ident(n))
            && !ACQ_HELPERS.iter().any(|n| t.is_ident(n))
            && !i
                .checked_sub(1)
                .and_then(|p| code.get(p))
                .is_some_and(|p| p.is_ident("fn"))
        {
            facts.calls.push(Call {
                callee: t.text.clone(),
                site,
                held: snapshot(&live),
            });
        }
        i += 1;
    }
    facts
}

/// If `code[i]` is an acquisition, returns the lock name.
fn acquisition(code: &[crate::lexer::Tok], i: usize) -> Option<String> {
    let t = &code[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    // Method form: `<recv>.lock()` / argless `.read()` / argless `.write()`.
    if ACQ_METHODS.iter().any(|m| t.is_ident(m))
        && i >= 2
        && code[i - 1].is_punct('.')
        && code.get(i + 1).is_some_and(|n| n.is_punct('('))
        && code.get(i + 2).is_some_and(|n| n.is_punct(')'))
    {
        let recv = receiver_name(code, i - 2)?;
        if STREAM_RECEIVERS.iter().any(|s| recv == *s) {
            return None;
        }
        return Some(recv);
    }
    // Helper form: `lock_or_poisoned(&state.cache, "cache")` — the lock is
    // the last path segment of the first argument.
    if ACQ_HELPERS.iter().any(|h| t.is_ident(h)) && code.get(i + 1).is_some_and(|n| n.is_punct('('))
    {
        let mut j = i + 2;
        let mut depth = 0i32;
        let mut last_ident: Option<String> = None;
        while let Some(a) = code.get(j) {
            if a.is_punct('(') || a.is_punct('[') {
                depth += 1;
            } else if a.is_punct(')') || a.is_punct(']') {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if a.is_punct(',') && depth == 0 {
                break;
            } else if a.kind == TokKind::Ident {
                last_ident = Some(a.text.clone());
            }
            j += 1;
        }
        return last_ident;
    }
    None
}

/// The last path segment of the receiver ending at `code[end]`:
/// `state.cache` → `cache`; `stdout()` → `stdout` (so the stream exemption
/// can see through the call parens).
fn receiver_name(code: &[crate::lexer::Tok], end: usize) -> Option<String> {
    let t = code.get(end)?;
    if t.kind == TokKind::Ident {
        return Some(t.text.clone());
    }
    if t.is_punct(')') {
        // Walk back over the balanced parens, then take the ident before.
        let mut depth = 0i32;
        let mut j = end;
        loop {
            let c = code.get(j)?;
            if c.is_punct(')') {
                depth += 1;
            } else if c.is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j = j.checked_sub(1)?;
        }
        let before = code.get(j.checked_sub(1)?)?;
        if before.kind == TokKind::Ident {
            return Some(before.text.clone());
        }
    }
    None
}

/// If the acquisition at `code[i]` sits in a `let` statement, returns the
/// bound name and the brace depth the binding lives at (`if let`/`while let`
/// bindings live in the block the condition opens, one level deeper).
fn let_binding(
    code: &[crate::lexer::Tok],
    floor: usize,
    i: usize,
    depth: u32,
) -> Option<(String, u32)> {
    // Scan back to the start of this statement.
    let mut j = i;
    let let_idx = loop {
        if j == floor {
            return None;
        }
        j -= 1;
        let t = &code[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        }
        if t.is_ident("let") {
            break j;
        }
    };
    let conditional = let_idx
        .checked_sub(1)
        .and_then(|p| code.get(p))
        .is_some_and(|p| p.is_ident("if") || p.is_ident("while"));
    // Pattern idents between `let` and `=`; the binding is the last one
    // that is not a pattern keyword or constructor.
    let mut name: Option<String> = None;
    let mut j = let_idx + 1;
    while j < i {
        let t = &code[j];
        if t.is_punct('=') {
            break;
        }
        if t.kind == TokKind::Ident
            && !t.is_ident("mut")
            && !t.is_ident("ref")
            && !t.is_ident("Ok")
            && !t.is_ident("Some")
            && !t.is_ident("Err")
        {
            name = Some(t.text.clone());
        }
        j += 1;
    }
    name.map(|n| (n, if conditional { depth + 1 } else { depth }))
}

/// If `code[i]` is a blocking operation, returns its label. The set is the
/// same bug class `blocking-call` polices per-file — unbounded channel
/// recv, thread join, line-buffered socket reads — plus fsync, which is
/// bounded but milliseconds-slow: exactly what must not run under a guard.
fn blocking_op(code: &[crate::lexer::Tok], i: usize) -> Option<&'static str> {
    let t = &code[i];
    if t.kind != TokKind::Ident || i == 0 || !code[i - 1].is_punct('.') {
        return None;
    }
    let open = code.get(i + 1).is_some_and(|n| n.is_punct('('));
    if !open {
        return None;
    }
    let argless = code.get(i + 2).is_some_and(|n| n.is_punct(')'));
    match t.text.as_str() {
        "recv" if argless => Some("recv()"),
        "join" if argless => Some("join()"),
        "read_line" => Some("read_line"),
        "sync_all" if argless => Some("sync_all (fsync)"),
        "sync_data" if argless => Some("sync_data (fsync)"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::build_file_ctx;
    use crate::parse;

    fn facts_of(src: &str) -> Vec<FnFacts> {
        let toks = crate::lexer::tokenize(src);
        let ctx = build_file_ctx("crates/x/src/lib.rs", src, &toks);
        let items = parse::functions(&ctx.code);
        extract(&ctx, &items, 0)
    }

    #[test]
    fn guard_binding_and_scope_end() {
        let src = "\
fn f(state: &State) {
    let cache = state.cache.lock().unwrap();
    {
        let subs = state.subs.lock().unwrap();
        use_both(&cache, &subs);
    }
    after(&cache);
}
";
        let f = &facts_of(src)[0];
        assert_eq!(f.acquires.len(), 2);
        assert_eq!(f.acquires[0].lock, "cache");
        assert!(f.acquires[0].held.is_empty());
        assert_eq!(f.acquires[1].lock, "subs");
        assert_eq!(f.acquires[1].held.len(), 1);
        assert_eq!(f.acquires[1].held[0].lock, "cache");
        // `after` runs with only `cache` held — `subs` died at its brace.
        let after = f.calls.iter().find(|c| c.callee == "after").unwrap();
        assert_eq!(after.held.len(), 1);
        assert_eq!(after.held[0].lock, "cache");
    }

    #[test]
    fn helper_form_and_explicit_drop() {
        let src = "\
fn f(state: &State) {
    let store = read_or_poisoned(&state.store);
    let cache = lock_or_poisoned(&state.cache, \"cache\");
    drop(store);
    tail(&cache);
}
";
        let f = &facts_of(src)[0];
        assert_eq!(f.acquires[0].lock, "store");
        assert_eq!(f.acquires[1].lock, "cache");
        assert_eq!(f.acquires[1].held[0].lock, "store");
        let tail = f.calls.iter().find(|c| c.callee == "tail").unwrap();
        assert_eq!(tail.held.len(), 1, "store was dropped explicitly");
        assert_eq!(tail.held[0].lock, "cache");
    }

    #[test]
    fn statement_temporary_dies_at_semicolon() {
        let src = "\
fn f(m: &Mutex<Vec<u32>>) {
    m.lock().unwrap().push(1);
    tail();
}
";
        let f = &facts_of(src)[0];
        assert_eq!(f.acquires.len(), 1);
        let tail = f.calls.iter().find(|c| c.callee == "tail").unwrap();
        assert!(tail.held.is_empty());
    }

    #[test]
    fn blocking_under_guard_is_seen() {
        let src = "\
fn worker(rx: &Mutex<Receiver<u8>>) {
    let guard = rx.lock().unwrap();
    let item = guard.recv();
}
";
        let f = &facts_of(src)[0];
        assert_eq!(f.blocking.len(), 1);
        assert_eq!(f.blocking[0].what, "recv()");
        assert_eq!(f.blocking[0].held.len(), 1);
        assert_eq!(f.blocking[0].held[0].lock, "rx");
    }

    #[test]
    fn recv_timeout_and_argful_read_are_not_acquisitions_or_blocking() {
        let src = "\
fn f(rx: &Receiver<u8>, file: &mut File, buf: &mut [u8]) {
    let x = rx.recv_timeout(d);
    let n = file.read(buf);
}
";
        let f = &facts_of(src)[0];
        assert!(f.blocking.is_empty());
        assert!(f.acquires.is_empty(), "argful read() is io, not RwLock");
    }

    #[test]
    fn stdout_lock_is_exempt() {
        let src = "fn f() { let out = std::io::stdout().lock(); }\n";
        let f = &facts_of(src)[0];
        assert!(f.acquires.is_empty());
    }

    #[test]
    fn if_let_guard_dies_with_its_block() {
        let src = "\
fn f(m: &Mutex<u32>) {
    if let Ok(g) = m.lock() {
        inside(&g);
    }
    outside();
}
";
        let f = &facts_of(src)[0];
        let inside = f.calls.iter().find(|c| c.callee == "inside").unwrap();
        assert_eq!(inside.held.len(), 1);
        let outside = f.calls.iter().find(|c| c.callee == "outside").unwrap();
        assert!(outside.held.is_empty());
    }

    #[test]
    fn test_functions_are_excluded() {
        let src = "\
#[test]
fn t() { let g = m.lock().unwrap(); }
fn prod() { work(); }
";
        let fs = facts_of(src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].name, "prod");
    }
}
