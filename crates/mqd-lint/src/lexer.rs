//! A lightweight Rust tokenizer — just enough lexical structure for the
//! lint rules: comments and string/char literals are recognized (so rule
//! patterns never fire inside them), identifiers and punctuation come out
//! as individual tokens, and every token carries its 1-based source line
//! and column.
//!
//! This is deliberately **not** a parser. The rules in [`crate::rules`]
//! match short token sequences (`. unwrap ( )`, `const MAGIC =`, ...),
//! which is exactly the granularity a tokenizer provides; building a full
//! grammar would buy nothing for these checks and cost a dependency or a
//! thousand lines of tree plumbing. The workspace pass in [`crate::parse`]
//! adds the one structural fact token patterns cannot express — brace-matched
//! function bodies — without changing that bargain.

/// Lexical class of a [`Tok`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `for`, `HashMap`).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal (`42`, `0x7f`, `1_000i64`, `2.5`).
    Num,
    /// String literal: `"..."`, `r"..."`, `r#"..."#`.
    Str,
    /// Byte-string literal: `b"..."`, `br#"..."#`. `text` keeps the raw
    /// source form including the prefix and quotes.
    ByteStr,
    /// Char or byte literal: `'x'`, `b'\n'`.
    Char,
    /// A single punctuation character (`.`, `(`, `+`, ...). Multi-char
    /// operators appear as consecutive `Punct` tokens.
    Punct,
    /// `// ...` comment (doc comments included); `text` keeps the slashes.
    LineComment,
    /// `/* ... */` comment (nesting handled); may span lines.
    BlockComment,
}

/// One token: kind, verbatim source text, and the 1-based line and column
/// it starts on.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// Verbatim source text of the token.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
    /// 1-based column (in chars) of the token's first character.
    pub col: u32,
}

impl Tok {
    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// Tokenizes Rust source. Unterminated literals or comments are tolerated
/// (the remainder becomes one token): a linter must keep going on files the
/// compiler would reject.
pub fn tokenize(src: &str) -> Vec<Tok> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            src,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking newlines and columns.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Vec<Tok> {
        let _ = self.src; // lifetime anchor; tokens own their text
        let mut out = Vec::new();
        while let Some(c) = self.peek(0) {
            let line = self.line;
            let col = self.col;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => out.push(self.line_comment(line, col)),
                '/' if self.peek(1) == Some('*') => out.push(self.block_comment(line, col)),
                '"' => out.push(self.string(line, col, String::new(), TokKind::Str)),
                'r' if matches!(self.peek(1), Some('"') | Some('#')) && self.raw_ahead(1) => {
                    self.bump();
                    out.push(self.raw_string(line, col, "r".into(), TokKind::Str));
                }
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    out.push(self.string(line, col, "b".into(), TokKind::ByteStr));
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.bump();
                    out.push(self.char_lit(line, col, "b'".into()));
                }
                'b' if self.peek(1) == Some('r') && self.raw_ahead(2) => {
                    self.bump();
                    self.bump();
                    out.push(self.raw_string(line, col, "br".into(), TokKind::ByteStr));
                }
                '\'' => out.push(self.quote(line, col)),
                c if c.is_ascii_digit() => out.push(self.number(line, col)),
                c if c.is_alphabetic() || c == '_' => out.push(self.ident(line, col)),
                _ => {
                    self.bump();
                    out.push(Tok {
                        kind: TokKind::Punct,
                        text: c.to_string(),
                        line,
                        col,
                    });
                }
            }
        }
        out
    }

    /// Whether `r`/`br` at the current position starts a raw string: the
    /// prefix is followed by zero or more `#` and then a quote.
    fn raw_ahead(&self, from: usize) -> bool {
        let mut i = from;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self, line: u32, col: u32) -> Tok {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        Tok {
            kind: TokKind::LineComment,
            text,
            line,
            col,
        }
    }

    fn block_comment(&mut self, line: u32, col: u32) -> Tok {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.bump() {
            text.push(c);
            let n = text.len();
            if n >= 2 && text.ends_with("/*") {
                depth += 1;
            } else if n >= 2 && text.ends_with("*/") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        Tok {
            kind: TokKind::BlockComment,
            text,
            line,
            col,
        }
    }

    /// Regular (escaped) string; `prefix` is `""` or `"b"`. Consumes the
    /// opening quote itself.
    fn string(&mut self, line: u32, col: u32, prefix: String, kind: TokKind) -> Tok {
        let mut text = prefix;
        text.push('"');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '"' {
                break;
            }
        }
        Tok {
            kind,
            text,
            line,
            col,
        }
    }

    /// Raw string starting at the `#`-or-quote position; `prefix` is the
    /// already-consumed `r`/`br`.
    fn raw_string(&mut self, line: u32, col: u32, prefix: String, kind: TokKind) -> Tok {
        let mut text = prefix;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        text.push('"');
        self.bump(); // opening quote
        let closer: String = std::iter::once('"')
            .chain("#".repeat(hashes).chars())
            .collect();
        while let Some(c) = self.bump() {
            text.push(c);
            if text.ends_with(&closer) {
                break;
            }
        }
        Tok {
            kind,
            text,
            line,
            col,
        }
    }

    /// `'` at the current position: lifetime or char literal.
    fn quote(&mut self, line: u32, col: u32) -> Tok {
        // Lifetime: 'ident not followed by a closing quote ('a, 'static).
        if let Some(c1) = self.peek(1) {
            if (c1.is_alphabetic() || c1 == '_') && self.peek(2) != Some('\'') {
                self.bump(); // '
                let mut text = String::from("'");
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                return Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                    col,
                };
            }
        }
        self.bump(); // opening '
        self.char_lit(line, col, "'".into())
    }

    /// Char literal body after the opening quote(s) in `text`.
    fn char_lit(&mut self, line: u32, col: u32, mut text: String) -> Tok {
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '\'' {
                break;
            }
        }
        Tok {
            kind: TokKind::Char,
            text,
            line,
            col,
        }
    }

    fn number(&mut self, line: u32, col: u32) -> Tok {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.'
                && self.peek(1) != Some('.')
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                // Float dot — but never eat the `..` of a range.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Tok {
            kind: TokKind::Num,
            text,
            line,
            col,
        }
    }

    fn ident(&mut self, line: u32, col: u32) -> Tok {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        Tok {
            kind: TokKind::Ident,
            text,
            line,
            col,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("let x = m.iter();");
        let texts: Vec<&str> = t.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "m", ".", "iter", "(", ")", ";"]);
    }

    #[test]
    fn comments_are_tokens_not_code() {
        let t = kinds("a // m.iter()\nb /* x.unwrap() */ c");
        let code: Vec<&str> = t
            .iter()
            .filter(|(k, _)| !matches!(k, TokKind::LineComment | TokKind::BlockComment))
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(code, ["a", "b", "c"]);
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokKind::LineComment && s.contains("m.iter()")));
    }

    #[test]
    fn nested_block_comment() {
        let t = kinds("/* outer /* inner */ still */ x");
        assert_eq!(t.len(), 2);
        assert_eq!(t[1].1, "x");
    }

    #[test]
    fn strings_swallow_their_content() {
        let t = kinds(r#"let s = "no .unwrap() here"; t"#);
        assert!(t.iter().all(|(_, s)| s != "unwrap"));
        assert!(t.iter().any(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn raw_and_byte_strings() {
        let t = kinds(r##"let a = r#"raw "x" body"#; let b = b"MQDC"; let c = br"rb";"##);
        let strs: Vec<_> = t.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        let bytes: Vec<_> = t.iter().filter(|(k, _)| *k == TokKind::ByteStr).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(bytes.len(), 2);
        assert_eq!(bytes[0].1, "b\"MQDC\"");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = t.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        let chars = t.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let t = kinds("for i in 0..10 {}");
        let texts: Vec<&str> = t.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(texts, ["for", "i", "in", "0", ".", ".", "10", "{", "}"]);
    }

    #[test]
    fn float_and_suffixed_numbers() {
        let t = kinds("let x = 2.5 + 1_000i64;");
        let nums: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(nums, ["2.5", "1_000i64"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let t = tokenize("a\nb\n\nc /* x\ny */ d");
        let find = |s: &str| t.iter().find(|tok| tok.text == s).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 2);
        assert_eq!(find("c"), 4);
        assert_eq!(find("d"), 5);
    }

    #[test]
    fn columns_track_token_starts() {
        let t = tokenize("let x = m.iter();\n    y.recv()");
        let find = |s: &str| {
            let tok = t.iter().find(|tok| tok.text == s).unwrap();
            (tok.line, tok.col)
        };
        assert_eq!(find("let"), (1, 1));
        assert_eq!(find("x"), (1, 5));
        assert_eq!(find("iter"), (1, 11));
        assert_eq!(find("y"), (2, 5));
        assert_eq!(find("recv"), (2, 7));
    }

    #[test]
    fn columns_reset_after_multiline_tokens() {
        let t = tokenize("/* a\nb */ x");
        let x = t.iter().find(|tok| tok.text == "x").unwrap();
        assert_eq!((x.line, x.col), (2, 6));
    }

    #[test]
    fn byte_char_literal() {
        let t = kinds("if buf.last() == Some(&b'\\n') { }");
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokKind::Char && s.starts_with("b'")));
    }
}
