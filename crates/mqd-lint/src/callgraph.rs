//! Pass 2 plumbing: the workspace context the cross-file rules run over —
//! every file's `FileCtx`, the item tree, per-function facts, and a
//! name-keyed function index with depth-limited propagation walks.
//!
//! Call resolution is by bare name: `store.flush()` resolves to every
//! workspace `fn flush`. That over-approximates (two unrelated `flush`es
//! alias) but never misses, which is the right polarity for a deny-gate
//! linter — false positives get a reviewed `lint:allow`, false negatives
//! get an outage. Depth limits keep the over-approximation bounded:
//! acquisitions propagate through at most [`LOCK_CALL_DEPTH`] call frames,
//! blocking operations through [`BLOCKING_CALL_DEPTH`].

use std::collections::BTreeMap;

use crate::engine::FileCtx;
use crate::facts::{self, Acquire, FnFacts};
use crate::parse::{self, FnItem};
use crate::report::Finding;

/// How many call frames a lock acquisition propagates through when a call
/// is made while a guard is live (`f` holds A and calls `g`, `g` calls
/// `h`, `h` locks B ⇒ edge A→B at depth 2).
pub const LOCK_CALL_DEPTH: usize = 3;

/// How many call frames a blocking operation propagates through — "directly
/// or one call deep", per the rule contract.
pub const BLOCKING_CALL_DEPTH: usize = 1;

/// Everything a workspace rule may look at.
pub struct WorkspaceCtx<'a> {
    /// Per-file contexts, in input order.
    pub files: Vec<FileCtx<'a>>,
    /// Item tree per file (parallel to `files`).
    pub items: Vec<Vec<FnItem>>,
    /// Facts for every non-test function, files in order, token order
    /// within a file.
    pub fns: Vec<FnFacts>,
    /// Bare name → indices into `fns`. BTreeMap so every walk over the
    /// index is deterministic.
    index: BTreeMap<String, Vec<usize>>,
}

impl<'a> WorkspaceCtx<'a> {
    /// Builds the two-pass context: item trees, then facts, then the index.
    pub fn build(files: Vec<FileCtx<'a>>) -> Self {
        let items: Vec<Vec<FnItem>> = files.iter().map(|f| parse::functions(&f.code)).collect();
        let mut fns = Vec::new();
        for (fi, (file, its)) in files.iter().zip(&items).enumerate() {
            fns.extend(facts::extract(file, its, fi));
        }
        let mut index: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            index.entry(f.name.clone()).or_default().push(i);
        }
        WorkspaceCtx {
            files,
            items,
            fns,
            index,
        }
    }

    /// Function indices a bare callee name resolves to (empty for calls
    /// into std or out of the scanned set).
    pub fn resolve(&self, name: &str) -> &[usize] {
        self.index.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Workspace-relative path of file `fi`.
    pub fn rel(&self, fi: usize) -> &str {
        self.files[fi].rel
    }

    /// Builds a [`Finding`] anchored in file `fi`.
    pub fn finding(
        &self,
        fi: usize,
        line: u32,
        col: u32,
        rule: &'static str,
        message: String,
    ) -> Finding {
        let f = &self.files[fi];
        Finding {
            file: f.rel.to_string(),
            line,
            col,
            rule,
            message,
            snippet: f.snippet(line),
        }
    }

    /// Every acquisition reachable from calling `callee`, walking the call
    /// graph at most `depth` frames deep. Returns `(fn_index, acquire)`
    /// pairs in deterministic order; cycles in the call graph are cut by
    /// the visited set.
    pub fn reachable_acquires(&self, callee: &str, depth: usize) -> Vec<(usize, &Acquire)> {
        let mut out = Vec::new();
        let mut visited: Vec<usize> = Vec::new();
        let mut frontier: Vec<usize> = self.resolve(callee).to_vec();
        for _ in 0..depth {
            let mut next = Vec::new();
            for fi in frontier {
                if visited.contains(&fi) {
                    continue;
                }
                visited.push(fi);
                let f = &self.fns[fi];
                for a in &f.acquires {
                    out.push((fi, a));
                }
                for c in &f.calls {
                    for &t in self.resolve(&c.callee) {
                        if !visited.contains(&t) {
                            next.push(t);
                        }
                    }
                }
            }
            frontier = next;
        }
        out
    }

    /// The first direct blocking operation reachable from calling `callee`
    /// within [`BLOCKING_CALL_DEPTH`] frames, if any.
    pub fn reachable_blocking(&self, callee: &str) -> Option<(usize, &facts::Blocking)> {
        let mut frontier: Vec<usize> = self.resolve(callee).to_vec();
        let mut visited: Vec<usize> = Vec::new();
        for _ in 0..BLOCKING_CALL_DEPTH {
            let mut next = Vec::new();
            for fi in frontier {
                if visited.contains(&fi) {
                    continue;
                }
                visited.push(fi);
                if let Some(b) = self.fns[fi].blocking.first() {
                    return Some((fi, b));
                }
                for c in &self.fns[fi].calls {
                    next.extend(self.resolve(&c.callee).iter().copied());
                }
            }
            frontier = next;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::build_file_ctx;
    use crate::lexer::tokenize;

    fn ws(srcs: &[(&'static str, &'static str)]) -> WorkspaceCtx<'static> {
        let files = srcs
            .iter()
            .map(|(rel, src)| {
                let toks = tokenize(src);
                build_file_ctx(rel, src, &toks)
            })
            .collect();
        WorkspaceCtx::build(files)
    }

    #[test]
    fn index_resolves_across_files() {
        let w = ws(&[
            ("crates/a/src/lib.rs", "fn alpha() { beta(); }"),
            ("crates/b/src/lib.rs", "fn beta() { work(); }"),
        ]);
        assert_eq!(w.resolve("beta").len(), 1);
        assert_eq!(w.fns[w.resolve("beta")[0]].file, 1);
        assert!(w.resolve("gamma").is_empty());
    }

    #[test]
    fn acquisitions_propagate_with_depth_limit() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "\
fn l1() { l2(); }
fn l2() { l3(); }
fn l3() { l4(); }
fn l4() { let g = m4.lock().unwrap(); }
",
        )]);
        // Depth counts frames visited starting at the callee: depth 3 from
        // a call to l2 visits l2, l3, l4 — reaches l4's lock.
        let hit = w.reachable_acquires("l2", 3);
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].1.lock, "m4");
        // Depth 2 stops at l3, which acquires nothing; so does the full
        // default depth starting one frame further out at l1.
        assert!(w.reachable_acquires("l2", 2).is_empty());
        assert!(w.reachable_acquires("l1", LOCK_CALL_DEPTH).is_empty());
    }

    #[test]
    fn call_cycles_terminate() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn ping() { pong(); } fn pong() { ping(); let g = m.lock().unwrap(); }",
        )]);
        let hit = w.reachable_acquires("ping", 5);
        assert_eq!(hit.len(), 1);
    }

    #[test]
    fn blocking_is_one_call_deep_only() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "\
fn near() { far(); }
fn far() { file.sync_all(); }
",
        )]);
        assert!(w.reachable_blocking("far").is_some());
        // `near` itself doesn't block; its callee does, but that is depth 2
        // from a *call to near* — outside the contract.
        assert!(w.reachable_blocking("near").is_none());
    }
}
