//! Pass 1 of the workspace engine: a lightweight item tree over the token
//! stream. The only structure the cross-file rules need that token patterns
//! cannot express is *extent* — which tokens belong to which function — so
//! this module finds `fn` items and brace-matches their bodies. `impl` and
//! `mod` blocks need no explicit representation: their contents are just
//! more `fn` items at a deeper brace depth, and the function name alone is
//! the call-graph key (see `callgraph` for why that approximation is the
//! right trade).

use crate::lexer::{Tok, TokKind};

/// One `fn` item: its name and the index range of its body tokens.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's bare name (`ingest_rows`, not `Server::ingest_rows`).
    pub name: String,
    /// Index of the body's opening `{` in the code token slice.
    pub body_open: usize,
    /// Index of the matching closing `}` (or the last token if unclosed).
    pub body_close: usize,
    /// Line of the `fn` keyword, for diagnostics.
    pub line: u32,
    /// Column of the `fn` keyword.
    pub col: u32,
}

/// Finds every `fn` item with a body in `code` (comment-free token slice).
/// Trait-method declarations (`fn f(..);`) have no body and are skipped.
/// Nested functions are returned as their own items; callers that walk a
/// body should skip the ranges of nested items to avoid double-attributing
/// their events (see [`FnItem::nested_in`]).
pub fn functions(code: &[Tok]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if code[i].is_ident("fn") && code.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            if let Some((open, close)) = body_span(code, i + 2) {
                out.push(FnItem {
                    name: code[i + 1].text.clone(),
                    body_open: open,
                    body_close: close,
                    line: code[i].line,
                    col: code[i].col,
                });
            }
        }
        i += 1;
    }
    out
}

impl FnItem {
    /// Whether `other`'s body lies strictly inside this item's body — i.e.
    /// `other` is a nested `fn` whose tokens must not count as ours.
    pub fn contains(&self, other: &FnItem) -> bool {
        self.body_open < other.body_open && other.body_close <= self.body_close
    }
}

/// Scans a signature starting just after `fn name`, returning the body's
/// `{`..`}` token-index span, or `None` for a bodiless declaration. The
/// signature itself never contains braces (generics use angle brackets,
/// return types are paths), so the first `{` outside parens/brackets opens
/// the body and the first such `;` means there is none.
fn body_span(code: &[Tok], from: usize) -> Option<(usize, usize)> {
    let mut j = from;
    let mut inner = 0i32; // () and [] nesting inside the signature
    let open = loop {
        let t = code.get(j)?;
        if t.is_punct('(') || t.is_punct('[') {
            inner += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            inner -= 1;
        } else if inner == 0 && t.is_punct('{') {
            break j;
        } else if inner == 0 && t.is_punct(';') {
            return None;
        }
        j += 1;
    };
    // Brace-match the body; tolerate truncation by closing at the end.
    let mut depth = 0i32;
    let mut j = open;
    while let Some(t) = code.get(j) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some((open, j));
            }
        }
        j += 1;
    }
    Some((open, code.len().saturating_sub(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn code(src: &str) -> Vec<Tok> {
        tokenize(src)
            .into_iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect()
    }

    #[test]
    fn finds_free_impl_and_mod_functions() {
        let src = "\
fn free() { a(); }
impl Server {
    pub fn method(&self) -> u32 { self.n }
}
mod inner {
    fn nested_in_mod() {}
}
";
        let c = code(src);
        let fns = functions(&c);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["free", "method", "nested_in_mod"]);
    }

    #[test]
    fn body_spans_are_brace_matched() {
        let src = "fn f() { if x { y(); } z(); } fn g() {}";
        let c = code(src);
        let fns = functions(&c);
        assert_eq!(fns.len(), 2);
        let f = &fns[0];
        assert!(c[f.body_open].is_punct('{'));
        assert!(c[f.body_close].is_punct('}'));
        // g's body starts after f's ends.
        assert!(fns[1].body_open > f.body_close);
    }

    #[test]
    fn trait_declarations_have_no_body() {
        let src = "trait T { fn decl(&self) -> u32; fn with_default(&self) { x(); } }";
        let fns = functions(&code(src));
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["with_default"]);
    }

    #[test]
    fn signature_brackets_do_not_confuse_the_scan() {
        let src = "fn f(xs: [u8; 4], g: impl Fn(u32) -> u32) -> Vec<u8> { body(); }";
        let fns = functions(&code(src));
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "f");
    }

    #[test]
    fn nested_fn_containment() {
        let src = "fn outer() { fn inner() { q(); } inner(); }";
        let fns = functions(&code(src));
        assert_eq!(fns.len(), 2);
        let outer = fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.contains(inner));
        assert!(!inner.contains(outer));
    }
}
