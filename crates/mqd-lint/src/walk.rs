//! Workspace file discovery: every `.rs` file under the root, in sorted
//! (therefore deterministic) order, skipping build output, VCS metadata
//! and the linter's own known-bad fixtures.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into, wherever they appear.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];

/// Returns workspace-relative paths (forward slashes) of every Rust source
/// under `root`, sorted. The mqd-lint fixtures are excluded — they are
/// known-bad snippets that exist to fail.
pub fn rust_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if SKIP_DIRS.iter().any(|s| *s == name) {
                    continue;
                }
                if rel_of(root, &path).is_some_and(|r| r == "crates/mqd-lint/fixtures") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                if let Some(rel) = rel_of(root, &path) {
                    out.push(rel);
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Forward-slash relative path of `path` under `root`.
fn rel_of(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    Some(parts.join("/"))
}

/// Locates the workspace root: walks up from `start` looking for the
/// directory that contains both `Cargo.toml` and `crates/`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_own_workspace_and_excludes_fixtures() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let files = rust_sources(&root).expect("walk");
        assert!(files.iter().any(|f| f == "crates/mqd-lint/src/walk.rs"));
        assert!(files.iter().any(|f| f == "crates/mqd-core/src/coverage.rs"));
        assert!(!files
            .iter()
            .any(|f| f.starts_with("crates/mqd-lint/fixtures/")));
        assert!(!files.iter().any(|f| f.contains("target/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk order must be deterministic");
    }
}
