//! Findings and their two renderings: human-readable lines for terminals
//! and a stable JSON array for CI artifacts. No serde — the shape is five
//! flat fields, written with a hand-rolled escaper so key order (and
//! therefore the bytes) can never drift with a library upgrade.

use std::fmt::Write as _;

/// One lint finding, anchored to a file and line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes on every platform).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule id (`nondet-iter`, `panic-path`, ...).
    pub rule: &'static str,
    /// What is wrong and why it matters.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Renders findings as `file:line: [rule] message` blocks with the
/// offending line indented underneath — the format grep and editors
/// understand.
pub fn render_human(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        if !f.snippet.is_empty() {
            let _ = writeln!(out, "    {}", f.snippet);
        }
    }
    let _ = writeln!(
        out,
        "{} finding{} in {} file{} scanned",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" },
        files_scanned,
        if files_scanned == 1 { "" } else { "s" },
    );
    out
}

/// Renders findings as a JSON array, one object per finding, keys always
/// in the order `file, line, rule, message, snippet`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        let _ = write!(out, "\"file\":{},", json_str(&f.file));
        let _ = write!(out, "\"line\":{},", f.line);
        let _ = write!(out, "\"rule\":{},", json_str(f.rule));
        let _ = write!(out, "\"message\":{},", json_str(&f.message));
        let _ = write!(out, "\"snippet\":{}", json_str(&f.snippet));
        out.push('}');
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f() -> Finding {
        Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: "panic-path",
            message: "`.unwrap()` on a hot path".into(),
            snippet: "let v = m.get(&k).unwrap();".into(),
        }
    }

    #[test]
    fn human_format_is_grepable() {
        let s = render_human(&[f()], 3);
        assert!(s.starts_with("crates/x/src/lib.rs:7: [panic-path] "));
        assert!(s.contains("1 finding in 3 files scanned"));
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut bad = f();
        bad.message = "quote \" backslash \\ tab\t".into();
        let s = render_json(&[bad]);
        assert!(s.contains(r#""rule":"panic-path""#));
        assert!(s.contains(r#"quote \" backslash \\ tab\t"#));
        // Key order is part of the byte-stable contract.
        let file_at = s.find("\"file\"").unwrap();
        let line_at = s.find("\"line\"").unwrap();
        let rule_at = s.find("\"rule\"").unwrap();
        assert!(file_at < line_at && line_at < rule_at);
    }

    #[test]
    fn empty_json_is_an_empty_array() {
        assert_eq!(render_json(&[]), "[]\n");
    }
}
