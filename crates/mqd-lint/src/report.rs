//! Findings and their two renderings: human-readable lines for terminals
//! and a stable JSON report for CI artifacts. No serde — the shape is a
//! handful of flat fields, written with a hand-rolled escaper so key order
//! (and therefore the bytes) can never drift with a library upgrade.

use std::fmt::Write as _;

/// Version of the JSON report shape. Bump when a key is added, removed or
/// reordered so downstream consumers can dispatch instead of guessing.
/// History: v1 was a bare findings array with no columns; v2 wraps it in
/// an object, adds `schema_version`/`files_scanned` and per-finding `col`.
pub const SCHEMA_VERSION: u32 = 2;

/// One lint finding, anchored to a file, line and column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes on every platform).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (chars) of the offending token.
    pub col: u32,
    /// Rule id (`nondet-iter`, `panic-path`, ...).
    pub rule: &'static str,
    /// What is wrong and why it matters.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Renders findings as `file:line:col: [rule] message` blocks with the
/// offending line indented underneath — the format grep and editors
/// understand.
pub fn render_human(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(
            out,
            "{}:{}:{}: [{}] {}",
            f.file, f.line, f.col, f.rule, f.message
        );
        if !f.snippet.is_empty() {
            let _ = writeln!(out, "    {}", f.snippet);
        }
    }
    let _ = writeln!(
        out,
        "{} finding{} in {} file{} scanned",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" },
        files_scanned,
        if files_scanned == 1 { "" } else { "s" },
    );
    out
}

/// Renders the JSON report: a single object with `schema_version`,
/// `files_scanned` and a `findings` array, one object per finding, keys
/// always in the order `file, line, col, rule, message, snippet`.
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"schema_version\":{SCHEMA_VERSION},");
    let _ = write!(out, "\"files_scanned\":{files_scanned},");
    out.push_str("\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        let _ = write!(out, "\"file\":{},", json_str(&f.file));
        let _ = write!(out, "\"line\":{},", f.line);
        let _ = write!(out, "\"col\":{},", f.col);
        let _ = write!(out, "\"rule\":{},", json_str(f.rule));
        let _ = write!(out, "\"message\":{},", json_str(&f.message));
        let _ = write!(out, "\"snippet\":{}", json_str(&f.snippet));
        out.push('}');
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f() -> Finding {
        Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            col: 13,
            rule: "panic-path",
            message: "`.unwrap()` on a hot path".into(),
            snippet: "let v = m.get(&k).unwrap();".into(),
        }
    }

    #[test]
    fn human_format_is_grepable() {
        let s = render_human(&[f()], 3);
        assert!(s.starts_with("crates/x/src/lib.rs:7:13: [panic-path] "));
        assert!(s.contains("1 finding in 3 files scanned"));
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut bad = f();
        bad.message = "quote \" backslash \\ tab\t".into();
        let s = render_json(&[bad], 3);
        assert!(s.contains(r#""rule":"panic-path""#));
        assert!(s.contains(r#"quote \" backslash \\ tab\t"#));
        // Key order is part of the byte-stable contract.
        let file_at = s.find("\"file\"").unwrap();
        let line_at = s.find("\"line\"").unwrap();
        let col_at = s.find("\"col\"").unwrap();
        let rule_at = s.find("\"rule\"").unwrap();
        assert!(file_at < line_at && line_at < col_at && col_at < rule_at);
    }

    #[test]
    fn empty_json_is_a_versioned_envelope() {
        assert_eq!(
            render_json(&[], 212),
            "{\"schema_version\":2,\"files_scanned\":212,\"findings\":[]}\n"
        );
    }

    /// Golden test: the exact bytes of a one-finding report. Any change to
    /// key order, separators or escaping must be deliberate enough to edit
    /// this string and bump [`SCHEMA_VERSION`].
    #[test]
    fn json_golden_bytes() {
        let got = render_json(&[f()], 5);
        let want = concat!(
            "{\"schema_version\":2,\"files_scanned\":5,\"findings\":[\n",
            "  {\"file\":\"crates/x/src/lib.rs\",\"line\":7,\"col\":13,",
            "\"rule\":\"panic-path\",\"message\":\"`.unwrap()` on a hot path\",",
            "\"snippet\":\"let v = m.get(&k).unwrap();\"}\n",
            "]}\n"
        );
        assert_eq!(got, want);
    }
}
