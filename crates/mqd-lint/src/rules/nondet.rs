//! `nondet-iter`: iteration over `HashMap`/`HashSet` in a
//! determinism-critical module.
//!
//! The bug class: PR 4 found the OPT DP resolving equal-count tie-breaks
//! in `HashMap` iteration order, which made `mqdiv serve` return different
//! (all individually correct) covers from different processes — breaking
//! the oracle's `server-agreement` byte-identity check. Hash iteration
//! order is randomized per process by SipHash seeding, so any output that
//! depends on it is nondeterministic across runs by construction.
//!
//! Keyed access (`map.get(..)`, `map[&k]`, `entry(..)`) is fine — only
//! *iteration* is flagged: `for _ in &map`, `.iter()`, `.keys()`,
//! `.values()`, `.drain()`, `.retain()` and friends. The fix is a sorted
//! key vector, insertion-order side list (what OPT now does), or `BTreeMap`.

use crate::engine::FileCtx;
use crate::report::Finding;

pub const ID: &str = "nondet-iter";

/// Methods whose results expose hash-iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// The determinism-critical list: modules whose outputs must be
/// byte-identical across processes (serving answers, checkpoint replay,
/// solver tie-breaks, `mqd-load`'s seed-replayable plans and byte-stable
/// evidence artifacts, and the offline tools — CLI command output,
/// generated corpora, bench reports — which the oracle and CI diff
/// byte-for-byte).
fn applies(rel: &str) -> bool {
    rel.starts_with("crates/mqd-core/src/algorithms")
        || rel.starts_with("crates/mqd-store/src")
        || rel == "crates/mqd-server/src/protocol.rs"
        || rel.starts_with("crates/mqd-stream/src")
        || rel.starts_with("crates/mqd-router/src")
        || rel.starts_with("crates/mqd-load/src")
        || rel.starts_with("crates/mqd-cli/src")
        || rel.starts_with("crates/mqd-datagen/src")
        || rel.starts_with("crates/mqd-bench/src")
}

pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !applies(ctx.rel) {
        return;
    }
    for i in 0..ctx.code.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &ctx.code[i];
        // `map.iter()` and friends, where `map` was declared hash-typed.
        if t.kind == crate::lexer::TokKind::Ident && ctx.hash_idents.contains(&t.text) {
            if let Some(m) = ctx.code.get(i + 2) {
                if ctx.code[i + 1].is_punct('.')
                    && ITER_METHODS.iter().any(|im| m.is_ident(im))
                    && ctx.code.get(i + 3).is_some_and(|p| p.is_punct('('))
                {
                    out.push(ctx.finding(
                        t.line,
                        ID,
                        format!(
                            "`{}.{}()` iterates a HashMap/HashSet — order is nondeterministic \
                             across processes (the PR 4 OPT tie-break bug class); use sorted \
                             keys, an insertion-order list, or BTreeMap",
                            t.text, m.text
                        ),
                    ));
                }
            }
        }
        // `for _ in [&[mut]] map { ... }` — IntoIterator on the map itself.
        if t.is_ident("for") {
            if let Some(f) = for_header_hash_ident(ctx, i) {
                out.push(f);
            }
        }
    }
}

/// Scans a `for <pat> in <expr> {` header; flags a hash-typed identifier
/// iterated directly (not via `.method(...)` — those are caught above —
/// and not keyed via `[...]`).
fn for_header_hash_ident(ctx: &FileCtx, for_idx: usize) -> Option<Finding> {
    // Find the `in` that terminates the pattern (skip parenthesized or
    // bracketed patterns).
    let mut depth = 0i32;
    let mut j = for_idx + 1;
    let in_idx = loop {
        let t = ctx.code.get(j)?;
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_ident("in") {
            break j;
        } else if t.is_punct('{') || t.is_punct(';') {
            return None; // malformed header; bail quietly
        }
        j += 1;
    };
    // Scan the iterated expression up to the body `{`.
    let mut depth = 0i32;
    let mut j = in_idx + 1;
    while let Some(t) = ctx.code.get(j) {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('{') {
            return None;
        } else if t.kind == crate::lexer::TokKind::Ident
            && ctx.hash_idents.contains(&t.text)
            && !ctx
                .code
                .get(j + 1)
                .is_some_and(|n| n.is_punct('.') || n.is_punct('['))
        {
            return Some(ctx.finding(
                t.line,
                ID,
                format!(
                    "`for .. in {}` iterates a HashMap/HashSet — order is nondeterministic \
                     across processes (the PR 4 OPT tie-break bug class); use sorted keys, \
                     an insertion-order list, or BTreeMap",
                    t.text
                ),
            ));
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::engine::{lint_source, LintConfig};

    const PATH: &str = "crates/mqd-store/src/store.rs";

    fn lint(src: &str) -> Vec<crate::report::Finding> {
        lint_source(PATH, src, &LintConfig::subset(&[super::ID]).unwrap())
    }

    #[test]
    fn flags_iter_on_declared_map() {
        let src = "\
use std::collections::HashMap;
fn f(m: &HashMap<u16, u32>) {
    for (k, v) in m.iter() { use_it(k, v); }
}
";
        let out = lint(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
        assert!(out[0].message.contains("m.iter()"));
    }

    #[test]
    fn flags_for_over_map_reference() {
        let src = "\
fn f() {
    let mut seen: HashSet<u32> = HashSet::new();
    for v in &seen { go(v); }
}
";
        let out = lint(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn keyed_access_is_clean() {
        let src = "\
fn f(m: &HashMap<u16, u32>, keys: &[u16]) {
    for k in keys { let _ = m.get(k); }
    let direct = m[&3];
    m.entry(7).or_default();
}
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn vec_iteration_is_clean() {
        let src = "\
fn f(rows: &Vec<u32>) {
    for r in rows.iter() { go(r); }
}
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn out_of_scope_module_is_clean() {
        let src = "\
fn f(m: &HashMap<u16, u32>) {
    for (k, v) in m.iter() { use_it(k, v); }
}
";
        let out = lint_source(
            "crates/mqd-text/src/index.rs",
            src,
            &LintConfig::subset(&[super::ID]).unwrap(),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn f(m: &HashMap<u16, u32>) {
        for (k, v) in m.iter() { use_it(k, v); }
    }
}
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn router_sources_are_in_scope() {
        let src = "\
fn f(m: &HashMap<u16, u32>) {
    for (k, v) in m.iter() { use_it(k, v); }
}
";
        let out = lint_source(
            "crates/mqd-router/src/backend.rs",
            src,
            &LintConfig::subset(&[super::ID]).unwrap(),
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn load_harness_sources_are_in_scope() {
        let src = "\
fn f(m: &HashMap<u16, u32>) {
    for (k, v) in m.iter() { use_it(k, v); }
}
";
        let out = lint_source(
            "crates/mqd-load/src/scenario.rs",
            src,
            &LintConfig::subset(&[super::ID]).unwrap(),
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn cli_datagen_and_bench_sources_are_in_scope() {
        let src = "\
fn f(m: &HashMap<u16, u32>) {
    for (k, v) in m.iter() { use_it(k, v); }
}
";
        for rel in [
            "crates/mqd-cli/src/commands.rs",
            "crates/mqd-datagen/src/lib.rs",
            "crates/mqd-bench/src/main.rs",
        ] {
            let out = lint_source(rel, src, &LintConfig::subset(&[super::ID]).unwrap());
            assert_eq!(out.len(), 1, "{rel}: {out:?}");
        }
    }
}
