//! `overflow-arith`: raw `i64` arithmetic on F/λ values.
//!
//! The bug class: PR 3's oracle found `attribution` and
//! `expected_in_window` overflowing `i64` on extreme (but valid) timestamp
//! values — `t1 - t2` wraps when the operands straddle the i64 range, and
//! `2 * lambda0` wraps near the top. The sanctioned pattern is to widen to
//! `i128` first (what `mqd_core::coverage` does for every coverage
//! decision), use `saturating_*`/`checked_*`, or move to `f64` where the
//! math is statistical anyway.
//!
//! Heuristic: a `+`/`-`/`*` binary operator on a line that touches an F/λ
//! expression — a `.value(..)`/`.lambda(..)` call or an identifier named
//! `lambda`/`lambda0`/`lam`/`tau`/`emit_time` — with no widening or
//! saturating marker on that line, and (for bare identifiers) no `i128`
//! binding for them in this file. `mqd_core::coverage` itself is exempt:
//! it IS the sanctioned i128 helper module.

use crate::engine::FileCtx;
use crate::lexer::TokKind;
use crate::report::Finding;
use crate::rules::after_value;

pub const ID: &str = "overflow-arith";

/// Identifiers that carry F (dimension-value) or λ semantics by
/// workspace-wide naming convention.
const MARKER_IDENTS: &[&str] = &["lambda", "lambda0", "lam", "tau", "emit_time"];

/// Method calls producing F/λ values.
const MARKER_CALLS: &[&str] = &["value", "lambda"];

fn applies(rel: &str) -> bool {
    // coverage.rs is the sanctioned home of the i128 comparators.
    rel != "crates/mqd-core/src/coverage.rs"
}

pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !applies(ctx.rel) {
        return;
    }
    let mut flagged_lines: Vec<u32> = Vec::new();
    for i in 0..ctx.code.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &ctx.code[i];
        if !(t.is_punct('+') || t.is_punct('-') || t.is_punct('*')) {
            continue;
        }
        if !after_value(ctx, i) {
            continue; // unary minus, deref, `&*`, pattern position, ...
        }
        // `->` return-type arrows follow `)` and would otherwise look like
        // binary minus.
        if t.is_punct('-') && ctx.code.get(i + 1).is_some_and(|n| n.is_punct('>')) {
            continue;
        }
        if flagged_lines.contains(&t.line) {
            continue;
        }
        let line_toks: Vec<&crate::lexer::Tok> =
            ctx.code.iter().filter(|c| c.line == t.line).collect();
        // Markers: does this line touch an F/λ expression at all?
        let mut marker_idents: Vec<&str> = Vec::new();
        let mut marker_call = false;
        for (k, lt) in line_toks.iter().enumerate() {
            if lt.kind == TokKind::Ident {
                if MARKER_IDENTS.iter().any(|m| lt.is_ident(m)) {
                    marker_idents.push(&lt.text);
                }
                if MARKER_CALLS.iter().any(|m| lt.is_ident(m))
                    && k > 0
                    && line_toks[k - 1].is_punct('.')
                    && line_toks.get(k + 1).is_some_and(|n| n.is_punct('('))
                {
                    marker_call = true;
                }
            }
        }
        if marker_idents.is_empty() && !marker_call {
            continue;
        }
        // Sanctioners: widening, saturating/checked/wrapping, float math.
        let sanctioned_line = line_toks.iter().any(|lt| {
            lt.is_ident("i128")
                || lt.is_ident("f64")
                || (lt.kind == TokKind::Ident
                    && (lt.text.starts_with("saturating_")
                        || lt.text.starts_with("checked_")
                        || lt.text.starts_with("wrapping_")))
        });
        if sanctioned_line {
            continue;
        }
        // Bare-ident markers whose binding is already i128 are safe.
        if !marker_call && marker_idents.iter().all(|m| ctx.i128_idents.contains(*m)) {
            continue;
        }
        flagged_lines.push(t.line);
        out.push(
            ctx.finding(
                t.line,
                ID,
                "raw i64 arithmetic on an F/lambda value can overflow on extreme timestamps \
             (the PR 3 attribution/expected_in_window bug class); widen to i128 first, or \
             use saturating_*/checked_*"
                    .into(),
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{lint_source, LintConfig};

    const PATH: &str = "crates/mqd-stream/src/engine.rs";

    fn lint(src: &str) -> Vec<crate::report::Finding> {
        lint_source(PATH, src, &LintConfig::subset(&[super::ID]).unwrap())
    }

    #[test]
    fn flags_raw_value_subtraction() {
        let src = "\
fn delay(&self, inst: &Instance) -> i64 {
    self.emit_time - inst.value(self.post)
}
";
        let out = lint(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn flags_lambda_multiplication() {
        let src = "fn f(lambda0: i64) -> i64 { 2 * lambda0 }\n";
        let out = lint(src);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn i128_widening_is_sanctioned() {
        let src = "\
fn f(time: i64, last: i64, lam: i64) -> bool {
    time as i128 - last as i128 > lam as i128
}
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn saturating_is_sanctioned() {
        let src = "fn f(t: i64, lam: i64) -> i64 { t.saturating_add(lam) }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn i128_bound_idents_are_sanctioned() {
        let src = "\
fn f(lp: &L) {
    let lam = lp.threshold() as i128;
    let t = point() as i128;
    push((t - lam, t + lam));
}
";
        // `lam` is i128-bound by its binding; `t` is not a marker ident.
        assert!(lint(src).is_empty());
    }

    #[test]
    fn arithmetic_without_f_lambda_markers_is_clean() {
        let src = "fn f(a: usize, b: usize) -> usize { a * b + 7 }\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn coverage_module_is_exempt() {
        let out = lint_source(
            "crates/mqd-core/src/coverage.rs",
            "fn f(t: i64, lam: i64) -> i64 { t + lam }\n",
            &LintConfig::subset(&[super::ID]).unwrap(),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn return_arrow_is_not_binary_minus() {
        let src = "fn lambda_of(&self) -> i64 { self.threshold }\n";
        assert!(lint(src).is_empty());
    }
}
