//! `unchecked-len`: wire-decoded lengths reaching allocations unclamped.
//!
//! The bug class: a length-prefixed frame claims `count = 2^60`, the
//! decoder calls `Vec::with_capacity(count)`, and the process dies of OOM
//! before any validation runs — one corrupt (or hostile) frame kills the
//! server. PR 8's decoder-hardening sweep fixed every such site by
//! clamping through `Cursor::plausible_len`, which bounds a claimed count
//! by `remaining / min_encoded_size`; this rule makes that sweep
//! permanent instead of remembered.
//!
//! Taint, intraprocedurally per function: identifiers bound from a wire
//! decode (`get_varint`, `get_varint_i64`, `from_le_bytes`) are length
//! sources; binding through `plausible_len` (or rebinding from anything
//! clean) clears the taint; `Vec::with_capacity`, `.reserve`, `vec![_; n]`
//! and `.read_exact` are sinks. A decode expression flowing into a sink
//! with no intermediate binding is tainted too.

use crate::callgraph::WorkspaceCtx;
use crate::engine::FileCtx;
use crate::facts::Site;
use crate::lexer::{Tok, TokKind};
use crate::parse::FnItem;
use crate::report::Finding;
use std::collections::HashMap;

pub const ID: &str = "unchecked-len";

/// Decode calls producing attacker-controlled integers.
const SOURCES: &[&str] = &["get_varint", "get_varint_i64", "from_le_bytes"];
/// The sanctioned clamp.
const SANITIZER: &str = "plausible_len";

fn applies(rel: &str) -> bool {
    // wire.rs is the sanctioned home of plausible_len itself.
    rel != "crates/mqd-core/src/wire.rs"
}

pub fn check(ws: &WorkspaceCtx, out: &mut Vec<Finding>) {
    for (fi, (file, items)) in ws.files.iter().zip(&ws.items).enumerate() {
        if !applies(file.rel) {
            continue;
        }
        for (k, item) in items.iter().enumerate() {
            if file.in_test.get(item.body_open).copied().unwrap_or(false) {
                continue;
            }
            let nested_here = items
                .iter()
                .enumerate()
                .any(|(j, other)| j != k && other.contains(item));
            if nested_here {
                continue; // the outer item's walk covers nested fns' tokens
            }
            check_fn(ws, fi, file, item, out);
        }
    }
}

fn check_fn(ws: &WorkspaceCtx, fi: usize, file: &FileCtx, item: &FnItem, out: &mut Vec<Finding>) {
    let code = &file.code;
    // Tainted ident → site of the decode that minted it.
    let mut tainted: HashMap<String, Site> = HashMap::new();
    let mut i = item.body_open;
    while i <= item.body_close && i < code.len() {
        let t = &code[i];
        // `let [mut] n = <rhs>;` — taint bookkeeping.
        if t.is_ident("let") {
            if let Some((name, rhs)) = let_parts(code, i, item.body_close) {
                let has_sanitizer = span_has(code, rhs, |x| x.is_ident(SANITIZER));
                let has_source = span_has(code, rhs, |x| {
                    x.kind == TokKind::Ident && SOURCES.contains(&x.text.as_str())
                });
                let has_tainted = span_has(code, rhs, |x| {
                    x.kind == TokKind::Ident && tainted.contains_key(&x.text)
                });
                if has_sanitizer {
                    tainted.remove(&name);
                } else if has_source || has_tainted {
                    tainted.insert(
                        name,
                        Site {
                            line: t.line,
                            col: t.col,
                        },
                    );
                } else {
                    tainted.remove(&name); // clean rebind clears
                }
            }
        }
        // Sinks.
        if let Some((args, label)) = sink_args(code, i) {
            let clean = span_has(code, args, |x| x.is_ident(SANITIZER));
            let dirty_ident = (args.0..args.1)
                .find(|&j| code[j].kind == TokKind::Ident && tainted.contains_key(&code[j].text));
            let dirty_source = span_has(code, args, |x| {
                x.kind == TokKind::Ident && SOURCES.contains(&x.text.as_str())
            });
            if !clean && (dirty_ident.is_some() || dirty_source) {
                let detail = match dirty_ident {
                    Some(j) => format!(
                        "wire-decoded length `{}` (decoded at line {})",
                        code[j].text, tainted[&code[j].text].line
                    ),
                    None => "a wire-decoded length".to_string(),
                };
                out.push(ws.finding(
                    fi,
                    t.line,
                    t.col,
                    ID,
                    format!(
                        "{detail} reaches `{label}` without passing through \
                         `plausible_len` — a corrupt or hostile frame can claim an \
                         exabyte and OOM the process before any validation (the PR 8 \
                         decoder-hardening class); clamp with Cursor::plausible_len \
                         first"
                    ),
                ));
            }
        }
        i += 1;
    }
}

/// If `code[i]` opens a sink, returns the argument token span (exclusive
/// end) and the sink label.
fn sink_args(code: &[Tok], i: usize) -> Option<((usize, usize), &'static str)> {
    let t = &code[i];
    let (open, label) = if t.is_ident("with_capacity") && code.get(i + 1)?.is_punct('(') {
        (i + 1, "Vec::with_capacity")
    } else if t.is_ident("reserve")
        && i >= 1
        && code[i - 1].is_punct('.')
        && code.get(i + 1)?.is_punct('(')
    {
        (i + 1, ".reserve")
    } else if t.is_ident("read_exact")
        && i >= 1
        && code[i - 1].is_punct('.')
        && code.get(i + 1)?.is_punct('(')
    {
        (i + 1, ".read_exact")
    } else if t.is_ident("vec") && code.get(i + 1)?.is_punct('!') && code.get(i + 2)?.is_punct('[')
    {
        // `vec![fill; n]` — only the repeat count after `;` is a sink.
        let mut j = i + 3;
        let mut depth = 0i32;
        while let Some(x) = code.get(j) {
            if x.is_punct('[') || x.is_punct('(') {
                depth += 1;
            } else if x.is_punct(')') {
                depth -= 1;
            } else if x.is_punct(']') {
                if depth == 0 {
                    return None; // no `;` — a list literal, not a repeat
                }
                depth -= 1;
            } else if x.is_punct(';') && depth == 0 {
                return Some(((j + 1, close_of(code, i + 2)?), "vec![_; n]"));
            }
            j += 1;
        }
        return None;
    } else {
        return None;
    };
    Some(((open + 1, close_of(code, open)?), label))
}

/// Index of the bracket/paren closing the one at `open`.
fn close_of(code: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = open;
    while let Some(x) = code.get(j) {
        if x.is_punct('(') || x.is_punct('[') {
            depth += 1;
        } else if x.is_punct(')') || x.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

/// Binding name and RHS token span of the `let` at `code[i]`.
fn let_parts(code: &[Tok], i: usize, limit: usize) -> Option<(String, (usize, usize))> {
    // Name: last pattern ident before `=` that isn't a keyword/constructor.
    let mut name: Option<String> = None;
    let mut j = i + 1;
    let eq = loop {
        let t = code.get(j)?;
        if j > limit || t.is_punct(';') || t.is_punct('{') {
            return None;
        }
        if t.is_punct('=') && !code.get(j + 1).is_some_and(|n| n.is_punct('=')) {
            break j;
        }
        if t.kind == TokKind::Ident
            && !t.is_ident("mut")
            && !t.is_ident("ref")
            && !t.is_ident("Ok")
            && !t.is_ident("Some")
            && !t.is_ident("Err")
        {
            name = Some(t.text.clone());
        }
        j += 1;
    };
    // RHS: to the statement's `;` (or the body end) at depth 0.
    let mut depth = 0i32;
    let mut j = eq + 1;
    while let Some(t) = code.get(j) {
        if j > limit {
            break;
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                break;
            }
        } else if t.is_punct(';') && depth == 0 {
            break;
        }
        j += 1;
    }
    Some((name?, (eq + 1, j)))
}

fn span_has(code: &[Tok], span: (usize, usize), pred: impl Fn(&Tok) -> bool) -> bool {
    (span.0..span.1.min(code.len())).any(|j| pred(&code[j]))
}
