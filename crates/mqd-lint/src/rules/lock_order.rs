//! `lock-order`: inconsistent lock-acquisition order across the workspace.
//!
//! The bug class: thread 1 locks `a` then `b`, thread 2 locks `b` then
//! `a` — each holds what the other wants and both wedge forever. The
//! order is invisible per-file once the second acquisition hides behind a
//! call (`publish` locks `index` then calls `record`, which locks
//! `ledger`), which is why the per-file rules could never catch it and
//! `mqd-server` documents its order (`store`, then `cache`, then `subs`)
//! in a comment the compiler cannot read.
//!
//! Mechanics: every acquisition made while another guard is live adds a
//! directed edge `held → acquired` to a global graph — directly, or
//! through up to [`LOCK_CALL_DEPTH`](crate::callgraph::LOCK_CALL_DEPTH)
//! call frames when the acquisition happens in a callee. Any cycle among
//! the named lock sites is a potential deadlock; the finding prints both
//! acquisition paths so the reviewer sees the two interleavings.

use crate::callgraph::{WorkspaceCtx, LOCK_CALL_DEPTH};
use crate::facts::Site;
use crate::report::Finding;

pub const ID: &str = "lock-order";

/// One lock-order edge: `from` was held when `to` was acquired.
struct Edge {
    from: String,
    to: String,
    /// File/site the ordering was created at (the acquisition, or the call
    /// that leads to it).
    file: usize,
    site: Site,
    /// `fn` the ordering happens in.
    in_fn: String,
    /// Extra context for propagated edges ("via `record`, which locks ...").
    via: String,
}

pub fn check(ws: &WorkspaceCtx, out: &mut Vec<Finding>) {
    let mut edges: Vec<Edge> = Vec::new();
    for f in &ws.fns {
        // Direct: a second acquisition while a guard is live.
        for a in &f.acquires {
            for h in &a.held {
                if h.lock != a.lock {
                    edges.push(Edge {
                        from: h.lock.clone(),
                        to: a.lock.clone(),
                        file: f.file,
                        site: a.site,
                        in_fn: f.name.clone(),
                        via: String::new(),
                    });
                }
            }
        }
        // Propagated: a call made while a guard is live, where some callee
        // (up to LOCK_CALL_DEPTH frames down) acquires.
        for c in &f.calls {
            if c.held.is_empty() {
                continue;
            }
            for (callee_fn, acq) in ws.reachable_acquires(&c.callee, LOCK_CALL_DEPTH) {
                for h in &c.held {
                    if h.lock != acq.lock {
                        edges.push(Edge {
                            from: h.lock.clone(),
                            to: acq.lock.clone(),
                            file: f.file,
                            site: c.site,
                            in_fn: f.name.clone(),
                            via: format!(
                                " via `{}`, which locks `{}` at {}:{}",
                                c.callee,
                                acq.lock,
                                ws.rel(ws.fns[callee_fn].file),
                                acq.site.line
                            ),
                        });
                    }
                }
            }
        }
    }

    // Cycle hunt: for each edge A→B, look for a path B→…→A. Each cycle is
    // reported once, keyed by its sorted lock set, anchored at the first
    // edge (file order, then token order) that participates.
    let mut seen: Vec<Vec<String>> = Vec::new();
    for (i, e) in edges.iter().enumerate() {
        let Some(back) = path(&edges, &e.to, &e.from, i) else {
            continue;
        };
        let mut key: Vec<String> = back.iter().map(|&j| edges[j].from.clone()).collect();
        key.push(e.from.clone());
        key.sort();
        key.dedup();
        if seen.contains(&key) {
            continue;
        }
        seen.push(key);
        let reverse: Vec<String> = back
            .iter()
            .map(|&j| {
                let b = &edges[j];
                format!(
                    "`{}` then `{}` at {}:{}:{} (in `{}`{})",
                    b.from,
                    b.to,
                    ws.rel(b.file),
                    b.site.line,
                    b.site.col,
                    b.in_fn,
                    b.via
                )
            })
            .collect();
        out.push(ws.finding(
            e.file,
            e.site.line,
            e.site.col,
            ID,
            format!(
                "lock-order cycle — potential deadlock: `{}` then `{}` here (in `{}`{}), \
                 but the reverse order exists: {}; two threads taking the two paths \
                 concurrently deadlock (the ABBA class)",
                e.from,
                e.to,
                e.in_fn,
                e.via,
                reverse.join("; ")
            ),
        ));
    }
}

/// BFS for an edge path `from → … → to`, excluding the triggering edge
/// itself. Returns edge indices along the path.
fn path(edges: &[Edge], from: &str, to: &str, exclude: usize) -> Option<Vec<usize>> {
    let mut frontier: Vec<(String, Vec<usize>)> = vec![(from.to_string(), Vec::new())];
    let mut visited: Vec<String> = vec![from.to_string()];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for (at, trail) in frontier {
            for (j, e) in edges.iter().enumerate() {
                if j == exclude || e.from != at {
                    continue;
                }
                let mut t = trail.clone();
                t.push(j);
                if e.to == to {
                    return Some(t);
                }
                if !visited.contains(&e.to) {
                    visited.push(e.to.clone());
                    next.push((e.to.clone(), t));
                }
            }
        }
        frontier = next;
    }
    None
}
