//! `panic-path`: code that can abort a serving hot path.
//!
//! The bug class: a panic inside `mqd-server`'s worker pool or a stream
//! shard either kills a worker (capacity silently halves until the pool is
//! gone) or poisons a shared mutex so every later request panics too. PR 2
//! and PR 4 swept these by hand; this rule keeps them out.
//!
//! Flagged in non-test code of `mqd-server`/`mqd-stream`/`mqd-store`/
//! `mqd-wal` (the durability layer serves recovery — a panic there turns a
//! survivable torn write into a server that cannot boot), `mqd-router`
//! (one routing worker serves many clients; same blast radius), and
//! `mqd-load` (a panicked lane thread silently truncates the offered
//! schedule, so the report under-counts drops — evidence corruption):
//! `.unwrap()`, `.expect(..)`, the `panic!`/`unreachable!`/`todo!`/
//! `unimplemented!` macros, range slicing (`&buf[..n]` — panics when `n`
//! exceeds the buffer) and fixed-index access (`buf[0]` — panics when
//! empty). Dense-id indexing (`rows[idx as usize]`) is deliberately NOT
//! flagged: dense local ids are the workspace's core data layout and
//! flagging every use would bury the signal (see DESIGN.md §13).
//!
//! The fix is a typed `MqdError` return; a deliberate invariant keeps the
//! call and documents itself with `// lint:allow(panic-path): <invariant>`.

use crate::engine::FileCtx;
use crate::lexer::TokKind;
use crate::report::Finding;
use crate::rules::{after_value, method_call};

pub const ID: &str = "panic-path";

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn applies(rel: &str) -> bool {
    rel.starts_with("crates/mqd-server/src")
        || rel.starts_with("crates/mqd-stream/src")
        || rel.starts_with("crates/mqd-store/src")
        || rel.starts_with("crates/mqd-wal/src")
        || rel.starts_with("crates/mqd-router/src")
        || rel.starts_with("crates/mqd-load/src")
        || rel.starts_with("crates/mqd-cli/src")
        || rel.starts_with("crates/mqd-datagen/src")
        || rel.starts_with("crates/mqd-bench/src")
}

pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !applies(ctx.rel) {
        return;
    }
    let arrays = array_lens(ctx);
    for i in 0..ctx.code.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &ctx.code[i];
        if method_call(ctx, i, "unwrap").is_some()
            && ctx.code.get(i + 3).is_some_and(|p| p.is_punct(')'))
        {
            out.push(
                ctx.finding(
                    t.line,
                    ID,
                    "`.unwrap()` on a hot path — a panic here kills a worker or poisons a \
                 shared mutex; return a typed MqdError instead"
                        .into(),
                ),
            );
        } else if method_call(ctx, i, "expect").is_some() {
            out.push(
                ctx.finding(
                    t.line,
                    ID,
                    "`.expect(..)` on a hot path — a panic here kills a worker or poisons a \
                 shared mutex; return a typed MqdError instead"
                        .into(),
                ),
            );
        } else if t.kind == TokKind::Ident
            && PANIC_MACROS.iter().any(|m| t.is_ident(m))
            && ctx.code.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(ctx.finding(
                t.line,
                ID,
                format!(
                    "`{}!` on a hot path — a panic here kills a worker or poisons a shared \
                     mutex; return a typed MqdError instead",
                    t.text
                ),
            ));
        } else if t.is_punct('[') && after_value(ctx, i) {
            if let Some(f) = risky_index(ctx, i, &arrays) {
                out.push(f);
            }
        }
    }
}

/// Identifiers bound to fixed-size array literals (`let mut sums = [0.0; 4]`)
/// or carrying an array type ascription (`sums: [f64; 4]`), mapped to their
/// length. Indexing one with a literal below its length cannot panic, so
/// [`risky_index`] exempts it.
fn array_lens(ctx: &FileCtx) -> std::collections::HashMap<String, u64> {
    let mut out = std::collections::HashMap::new();
    let code = &ctx.code;
    for i in 0..code.len() {
        // `NAME = [ <fill>; N ]` or `NAME : [ <ty>; N ]`.
        if code[i].kind != TokKind::Ident {
            continue;
        }
        let Some(sep) = code.get(i + 1) else { continue };
        if !(sep.is_punct('=') || sep.is_punct(':'))
            || !code.get(i + 2).is_some_and(|b| b.is_punct('['))
        {
            continue;
        }
        // Find the matching `]`; the pattern is `[ .. ; N ]` with N a
        // literal right before the close and the `;` at bracket depth 1.
        let open = i + 2;
        let mut depth = 0i32;
        let mut j = open;
        let close = loop {
            match code.get(j) {
                Some(t) if t.is_punct('[') => depth += 1,
                Some(t) if t.is_punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break j;
                    }
                }
                Some(_) => {}
                None => break usize::MAX,
            }
            j += 1;
        };
        if close == usize::MAX || close < open + 3 {
            continue;
        }
        let n_tok = &code[close - 1];
        if n_tok.kind != TokKind::Num || !code[close - 2].is_punct(';') {
            continue;
        }
        let digits: String = n_tok
            .text
            .chars()
            .filter(|c| *c != '_')
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if let Ok(n) = digits.parse::<u64>() {
            out.insert(code[i].text.clone(), n);
        }
    }
    out
}

/// Classifies the index expression starting at `code[open] == '['`. Range
/// slicing and fixed literal indices panic on short inputs; anything else
/// (dense-id indexing) is exempt by design.
fn risky_index(
    ctx: &FileCtx,
    open: usize,
    arrays: &std::collections::HashMap<String, u64>,
) -> Option<Finding> {
    let mut depth = 0i32;
    let mut parens = 0i32;
    let mut j = open;
    let mut content: Vec<usize> = Vec::new();
    loop {
        let t = ctx.code.get(j)?;
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_punct('(') {
            parens += 1;
        } else if t.is_punct(')') {
            parens -= 1;
        } else if depth == 1 && parens == 0 {
            // Only top-level index tokens classify the expression: a `..`
            // inside a nested call (`v[rng.random_range(0..v.len())]`) is
            // an argument to that call, not a slice of `v`.
            content.push(j);
        }
        j += 1;
    }
    let is_range = content
        .windows(2)
        .any(|w| ctx.code[w[0]].is_punct('.') && ctx.code[w[1]].is_punct('.'))
        || (content.len() == 2
            && ctx.code[content[0]].is_punct('.')
            && ctx.code[content[1]].is_punct('.'))
        || (content.len() == 1 && ctx.code[content[0]].is_punct('.'));
    if is_range {
        return Some(
            ctx.finding(
                ctx.code[open].line,
                ID,
                "range slicing panics when the bounds exceed the buffer; use `.get(..)` or \
             prove the bound and annotate"
                    .into(),
            ),
        );
    }
    if content.len() == 1 && ctx.code[content[0]].kind == TokKind::Num {
        // `sums[2]` where `sums` was declared `[_; 4]` in this file is a
        // proven in-bounds access, not a short-buffer hazard.
        if open > 0 && ctx.code[open - 1].kind == TokKind::Ident {
            let idx: String = ctx.code[content[0]]
                .text
                .chars()
                .filter(|c| *c != '_')
                .take_while(|c| c.is_ascii_digit())
                .collect();
            if let (Some(&n), Ok(i)) = (arrays.get(&ctx.code[open - 1].text), idx.parse::<u64>()) {
                if i < n {
                    return None;
                }
            }
        }
        return Some(ctx.finding(
            ctx.code[open].line,
            ID,
            format!(
                "fixed index `[{}]` panics on a short buffer; use `.first()`/`.get({})` or \
                 prove non-emptiness and annotate",
                ctx.code[content[0]].text, ctx.code[content[0]].text
            ),
        ));
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::engine::{lint_source, LintConfig};

    const PATH: &str = "crates/mqd-server/src/server.rs";

    fn lint(src: &str) -> Vec<crate::report::Finding> {
        lint_source(PATH, src, &LintConfig::subset(&[super::ID]).unwrap())
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let src = "\
fn f(m: &Mutex<u32>) {
    let a = m.lock().unwrap();
    let b = m.lock().expect(\"mutex\");
    if bad { panic!(\"boom\"); }
    match x { _ => unreachable!(\"nope\") }
}
";
        let out = lint(src);
        let rules: Vec<u32> = out.iter().map(|f| f.line).collect();
        assert_eq!(rules, [2, 3, 4, 5]);
    }

    #[test]
    fn unwrap_or_variants_are_clean() {
        let src = "\
fn f(o: Option<u32>) -> u32 {
    o.unwrap_or(0) + o.unwrap_or_else(|| 1) + o.unwrap_or_default()
}
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn range_slice_and_fixed_index_flagged_dense_id_clean() {
        let src = "\
fn f(buf: &[u8], rows: &[Row], idx: u32, want: usize) {
    let head = &buf[..want];
    let first = buf[0];
    let row = &rows[idx as usize];
    let ranged = &buf[4..want];
}
";
        let out = lint(src);
        let lines: Vec<u32> = out.iter().map(|f| f.line).collect();
        assert_eq!(lines, [2, 3, 5]);
    }

    #[test]
    fn literal_index_into_declared_array_is_in_bounds() {
        let src = "\
fn f(buf: &[u8]) -> f64 {
    let mut sums = [0.0f64; 4];
    sums[0] += 1.0;
    sums[3] += 2.0;
    sums[4] += 3.0;
    let first = buf[0];
    sums[1] + first as f64
}
";
        let out = lint(src);
        let lines: Vec<u32> = out.iter().map(|f| f.line).collect();
        // sums[4] overruns the declared [_; 4]; buf is a slice of unknown
        // length — both stay flagged, in-bounds array indexing does not.
        assert_eq!(lines, [5, 6], "{out:?}");
    }

    #[test]
    fn range_inside_nested_call_is_not_range_slicing() {
        // The `..` is an argument to random_range, not a slice of `pool`;
        // the index itself is a computed in-bounds value (dense-id class).
        let src = "\
fn pick(pool: &[u32], rng: &mut Rng) -> u32 {
    pool[rng.random_range(0..pool.len())]
}
fn still_flagged(buf: &[u8], n: usize) -> &[u8] {
    &buf[..mix(n)]
}
";
        let out = lint(src);
        let lines: Vec<u32> = out.iter().map(|f| f.line).collect();
        assert_eq!(lines, [5], "{out:?}");
    }

    #[test]
    fn array_types_and_macros_not_confused_with_indexing() {
        let src = "\
const M: [u8; 4] = *b\"ABCD\";
fn f() -> [u8; 2] {
    let v = vec![0u8; 8];
    let arr = [1, 2];
    arr
}
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn suppression_with_reason_silences() {
        let src = "\
fn f(buf: &[u8]) {
    let head = &buf[..4]; // lint:allow(panic-path): caller guarantees >= 4 bytes
}
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { build().unwrap(); }
}
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn out_of_scope_crate_is_clean() {
        let out = lint_source(
            "crates/mqd-text/src/tokenize.rs",
            "fn f(o: Option<u8>) { o.unwrap(); }",
            &LintConfig::subset(&[super::ID]).unwrap(),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn cli_datagen_and_bench_sources_are_in_scope() {
        for rel in [
            "crates/mqd-cli/src/commands.rs",
            "crates/mqd-datagen/src/lib.rs",
            "crates/mqd-bench/src/main.rs",
        ] {
            let out = lint_source(
                rel,
                "fn f(o: Option<u8>) { o.unwrap(); }",
                &LintConfig::subset(&[super::ID]).unwrap(),
            );
            assert_eq!(out.len(), 1, "{rel}: {out:?}");
        }
    }

    #[test]
    fn router_sources_are_in_scope() {
        let out = lint_source(
            "crates/mqd-router/src/merge.rs",
            "fn f(o: Option<u8>) { o.unwrap(); }",
            &LintConfig::subset(&[super::ID]).unwrap(),
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn load_harness_sources_are_in_scope() {
        let out = lint_source(
            "crates/mqd-load/src/runner.rs",
            "fn f(o: Option<u8>) { o.unwrap(); }",
            &LintConfig::subset(&[super::ID]).unwrap(),
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }
}
