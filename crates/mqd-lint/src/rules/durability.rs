//! `durability-path`: filesystem mutation outside the sanctioned module.
//!
//! The bug class: a bare `std::fs::rename` or `File::create` in the
//! persistence layer works every time on the developer's laptop and loses
//! data on the first power cut — durability needs the tempfile dance and
//! the *directory* fsync, and those live in `mqd_wal::fsio`, paired
//! correctly, once. A later edit that reaches for `fs::rename` directly
//! re-introduces the torn-write window that `fsio::write_atomic` exists to
//! close, and nothing in the type system objects.
//!
//! Flagged in non-test code of `crates/mqd-wal/src` outside `fsio.rs`:
//! `fs::rename`/`fs::write`/`fs::remove_file`/`fs::remove_dir_all`/
//! `fs::create_dir_all` calls, `File::create`/`OpenOptions::new`, and the
//! `.set_len(..)` method. Reads (`fs::read`, `fs::read_dir`) are fine —
//! the rule polices mutation, not access. The fix is calling the `fsio`
//! wrapper; a deliberate exception documents itself with
//! `// lint:allow(durability-path): <why this needs no fsync pairing>`.

use crate::engine::FileCtx;
use crate::lexer::TokKind;
use crate::report::Finding;
use crate::rules::method_call;

pub const ID: &str = "durability-path";

/// `fs::<name>(...)` mutation entry points.
const FS_MUTATIONS: &[&str] = &[
    "rename",
    "write",
    "remove_file",
    "remove_dir_all",
    "create_dir_all",
];

fn applies(rel: &str) -> bool {
    rel.starts_with("crates/mqd-wal/src") && rel != "crates/mqd-wal/src/fsio.rs"
}

/// `code[i]` is the ident `name` called as `<qualifier>::name(` — returns
/// true when the token right before the `::` is `qualifier`.
fn qualified_call(ctx: &FileCtx, i: usize, qualifier: &str) -> bool {
    i >= 2
        && ctx.code[i - 1].is_punct(':')
        && ctx.code[i - 2].is_punct(':')
        && i >= 3
        && ctx.code[i - 3].is_ident(qualifier)
        && ctx.code.get(i + 1).is_some_and(|t| t.is_punct('('))
}

pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !applies(ctx.rel) {
        return;
    }
    for i in 0..ctx.code.len() {
        if ctx.in_test[i] || ctx.code[i].kind != TokKind::Ident {
            continue;
        }
        let t = &ctx.code[i];
        if FS_MUTATIONS.iter().any(|m| t.is_ident(m)) && qualified_call(ctx, i, "fs") {
            out.push(ctx.finding(
                t.line,
                ID,
                format!(
                    "`fs::{}` outside mqd_wal::fsio — raw filesystem mutation skips the \
                     fsync pairing that makes it durable; call the fsio wrapper instead",
                    t.text
                ),
            ));
        } else if (t.is_ident("create") && qualified_call(ctx, i, "File"))
            || (t.is_ident("new") && qualified_call(ctx, i, "OpenOptions"))
        {
            out.push(
                ctx.finding(
                    t.line,
                    ID,
                    "opening files for writing outside mqd_wal::fsio — use fsio::write_atomic \
                 or fsio::open_rw so the create/truncate semantics stay crash-safe"
                        .into(),
                ),
            );
        } else if i > 0 && method_call(ctx, i - 1, "set_len").is_some() {
            out.push(
                ctx.finding(
                    t.line,
                    ID,
                    "`.set_len(..)` outside mqd_wal::fsio — a truncation without its paired \
                 sync can resurrect a dropped WAL tail after a crash; use fsio::truncate_file"
                        .into(),
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{lint_source, LintConfig};

    const PATH: &str = "crates/mqd-wal/src/wal.rs";

    fn lint(src: &str) -> Vec<crate::report::Finding> {
        lint_source(PATH, src, &LintConfig::subset(&[super::ID]).unwrap())
    }

    #[test]
    fn flags_raw_fs_mutations() {
        let src = "\
fn f(p: &Path) {
    std::fs::rename(p, p).ok();
    std::fs::write(p, b\"x\").ok();
    std::fs::remove_file(p).ok();
    let f = File::create(p);
    let o = OpenOptions::new().write(true).open(p);
    f.set_len(0).ok();
}
";
        let lines: Vec<u32> = lint(src).iter().map(|f| f.line).collect();
        assert_eq!(lines, [2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn reads_and_fsio_wrappers_are_clean() {
        let src = "\
fn f(p: &Path) -> Result<(), MqdError> {
    let bytes = std::fs::read(p)?;
    for entry in std::fs::read_dir(p)? {}
    crate::fsio::write_atomic(p, &bytes, true)?;
    crate::fsio::remove_durable(p, true)?;
    fsio::truncate_file(&file, 0, true)?;
    Ok(())
}
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn fsio_itself_is_exempt() {
        let out = lint_source(
            "crates/mqd-wal/src/fsio.rs",
            "fn f(p: &Path) { std::fs::rename(p, p).ok(); }",
            &LintConfig::subset(&[super::ID]).unwrap(),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn other_crates_are_out_of_scope() {
        let out = lint_source(
            "crates/mqd-cli/src/store.rs",
            "fn f(p: &Path) { std::fs::write(p, b\"x\").ok(); }",
            &LintConfig::subset(&[super::ID]).unwrap(),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn suppression_with_reason_silences() {
        let src = "\
fn f(p: &Path) {
    std::fs::rename(p, p).ok(); // lint:allow(durability-path): same-dir swap synced by caller
}
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t(p: &Path) { std::fs::write(p, b\"x\").unwrap(); }
}
";
        assert!(lint(src).is_empty());
    }
}
