//! The rule catalog. File rules are token-pattern checks over one file,
//! scoped by workspace path to the modules where their bug class actually
//! bites; workspace rules run over the two-pass cross-file context —
//! item tree, per-function facts, call graph (see DESIGN.md §13 for the
//! incident history behind each rule).

use crate::callgraph::WorkspaceCtx;
use crate::engine::FileCtx;
use crate::lexer::TokKind;
use crate::report::Finding;

mod blocking;
mod durability;
mod guard_blocking;
mod lock_order;
mod nondet;
mod overflow;
mod panics;
mod unchecked_len;
mod wire;

/// A rule's check: per-file token patterns, or a workspace-level analysis
/// over the call-graph context.
pub enum Check {
    /// Runs once per file.
    File(fn(&FileCtx, &mut Vec<Finding>)),
    /// Runs once over the whole scanned set.
    Workspace(fn(&WorkspaceCtx, &mut Vec<Finding>)),
}

/// One lint rule: stable id, one-line summary, and the check.
pub struct Rule {
    /// Stable rule id — what `--rules` and `lint:allow(...)` name.
    pub id: &'static str,
    /// One-line description for `--help`-style listings.
    pub summary: &'static str,
    /// The check itself.
    pub check: Check,
}

/// Every rule, in reporting order.
pub const ALL: &[Rule] = &[
    Rule {
        id: nondet::ID,
        summary: "HashMap/HashSet iteration in determinism-critical modules",
        check: Check::File(nondet::check),
    },
    Rule {
        id: panics::ID,
        summary: "unwrap/expect/panic!/risky indexing on serving hot paths",
        check: Check::File(panics::check),
    },
    Rule {
        id: overflow::ID,
        summary: "raw i64 arithmetic on F/lambda values outside the i128 helpers",
        check: Check::File(overflow::check),
    },
    Rule {
        id: blocking::ID,
        summary: "recv()/join()/read_line without timeout in worker loops",
        check: Check::File(blocking::check),
    },
    Rule {
        id: wire::ID,
        summary: "wire magic/opcodes defined outside mqd_core::{wire, record}",
        check: Check::File(wire::check),
    },
    Rule {
        id: durability::ID,
        summary: "raw filesystem mutation in mqd-wal outside the fsio module",
        check: Check::File(durability::check),
    },
    Rule {
        id: lock_order::ID,
        summary: "lock-acquisition-order cycles across the call graph (ABBA deadlocks)",
        check: Check::Workspace(lock_order::check),
    },
    Rule {
        id: guard_blocking::ID,
        summary: "blocking I/O, recv/join or fsync while a lock guard is live",
        check: Check::Workspace(guard_blocking::check),
    },
    Rule {
        id: unchecked_len::ID,
        summary: "wire-decoded lengths reaching allocations without plausible_len",
        check: Check::Workspace(unchecked_len::check),
    },
];

/// `code[i..]` starts the method call `.name(` — returns the index of the
/// opening paren.
pub(crate) fn method_call(ctx: &FileCtx, i: usize, name: &str) -> Option<usize> {
    if ctx.code[i].is_punct('.')
        && ctx.code.get(i + 1).is_some_and(|t| t.is_ident(name))
        && ctx.code.get(i + 2).is_some_and(|t| t.is_punct('('))
    {
        Some(i + 2)
    } else {
        None
    }
}

/// Whether `code[i]` sits in an expression position where a preceding
/// value exists — i.e. a following `[` is indexing and a following
/// `+`/`-`/`*` is a binary operator.
pub(crate) fn after_value(ctx: &FileCtx, i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|p| ctx.code.get(p)) else {
        return false;
    };
    matches!(prev.kind, TokKind::Ident | TokKind::Num) || prev.is_punct(')') || prev.is_punct(']')
}
