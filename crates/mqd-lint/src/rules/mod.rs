//! The rule catalog. Each rule is a token-pattern check over one file,
//! scoped by workspace path to the modules where its bug class actually
//! bites (see DESIGN.md §13 for the incident history behind each rule).

use crate::engine::FileCtx;
use crate::lexer::TokKind;
use crate::report::Finding;

mod blocking;
mod durability;
mod nondet;
mod overflow;
mod panics;
mod wire;

/// One lint rule: stable id, one-line summary, and the per-file check.
pub struct Rule {
    /// Stable rule id — what `--rules` and `lint:allow(...)` name.
    pub id: &'static str,
    /// One-line description for `--help`-style listings.
    pub summary: &'static str,
    /// The check itself; pushes findings for one file.
    pub check: fn(&FileCtx, &mut Vec<Finding>),
}

/// Every rule, in reporting order.
pub const ALL: &[Rule] = &[
    Rule {
        id: nondet::ID,
        summary: "HashMap/HashSet iteration in determinism-critical modules",
        check: nondet::check,
    },
    Rule {
        id: panics::ID,
        summary: "unwrap/expect/panic!/risky indexing on serving hot paths",
        check: panics::check,
    },
    Rule {
        id: overflow::ID,
        summary: "raw i64 arithmetic on F/lambda values outside the i128 helpers",
        check: overflow::check,
    },
    Rule {
        id: blocking::ID,
        summary: "recv()/join()/read_line without timeout in worker loops",
        check: blocking::check,
    },
    Rule {
        id: wire::ID,
        summary: "wire magic/opcodes defined outside mqd_core::{wire, record}",
        check: wire::check,
    },
    Rule {
        id: durability::ID,
        summary: "raw filesystem mutation in mqd-wal outside the fsio module",
        check: durability::check,
    },
];

/// `code[i..]` starts the method call `.name(` — returns the index of the
/// opening paren.
pub(crate) fn method_call(ctx: &FileCtx, i: usize, name: &str) -> Option<usize> {
    if ctx.code[i].is_punct('.')
        && ctx.code.get(i + 1).is_some_and(|t| t.is_ident(name))
        && ctx.code.get(i + 2).is_some_and(|t| t.is_punct('('))
    {
        Some(i + 2)
    } else {
        None
    }
}

/// Whether `code[i]` sits in an expression position where a preceding
/// value exists — i.e. a following `[` is indexing and a following
/// `+`/`-`/`*` is a binary operator.
pub(crate) fn after_value(ctx: &FileCtx, i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|p| ctx.code.get(p)) else {
        return false;
    };
    matches!(prev.kind, TokKind::Ident | TokKind::Num) || prev.is_punct(')') || prev.is_punct(']')
}
