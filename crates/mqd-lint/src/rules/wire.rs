//! `wire-drift`: wire-format magic defined outside the sanctioned home.
//!
//! The bug class: the binlog, the store's `INGESTB` batches and the
//! checkpoint format all frame their bytes with magic + checksum footers.
//! When each codec keeps its own copy of those constants, the copies
//! drift — a format bump touches one and silently corrupts the other
//! (PR 4 unified the binlog/TSV codecs into `mqd_core::record` for exactly
//! this reason). Magic bytes and opcodes live in `mqd_core::wire` and
//! `mqd_core::record`, full stop; everyone else imports or aliases them.
//!
//! Flagged outside those two files (non-test code): short printable
//! byte-string literals (`b"MQDC"`-shaped magic), and `const` items whose
//! name contains `MAGIC`/`FOOTER`/`OPCODE` initialized from a literal.
//! Aliasing the sanctioned constant (`pub use` or `const M = wire::X;`)
//! is fine — that is the point.

use crate::engine::FileCtx;
use crate::lexer::TokKind;
use crate::report::Finding;

pub const ID: &str = "wire-drift";

const NAME_MARKERS: &[&str] = &["MAGIC", "FOOTER", "OPCODE"];

fn applies(rel: &str) -> bool {
    rel != "crates/mqd-core/src/wire.rs" && rel != "crates/mqd-core/src/record.rs"
}

pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !applies(ctx.rel) {
        return;
    }
    let mut flagged_lines: Vec<u32> = Vec::new();
    for i in 0..ctx.code.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &ctx.code[i];
        if t.kind == TokKind::ByteStr && magic_shaped(&t.text) && !flagged_lines.contains(&t.line) {
            flagged_lines.push(t.line);
            out.push(ctx.finding(
                t.line,
                ID,
                format!(
                    "byte-string magic {} defined outside mqd_core::{{wire, record}} — \
                     duplicated wire constants drift; import the sanctioned constant instead",
                    t.text
                ),
            ));
        }
        if t.is_ident("const") {
            if let Some(f) = drifting_const(ctx, i) {
                if !flagged_lines.contains(&f.line) {
                    flagged_lines.push(f.line);
                    out.push(f);
                }
            }
        }
    }
}

/// A byte-string literal that looks like format magic: 2–8 plain printable
/// ASCII characters, no escapes. `b"MQDC"` qualifies; `b"0\t100\n"` (test
/// data) and long payloads do not.
fn magic_shaped(text: &str) -> bool {
    let Some(inner) = text
        .strip_prefix('b')
        .and_then(|r| r.strip_prefix('"'))
        .and_then(|r| r.strip_suffix('"'))
    else {
        return false; // raw byte strings (br"...") — not used for magic
    };
    (2..=8).contains(&inner.len())
        && inner.bytes().all(|b| b.is_ascii_graphic() || b == b' ')
        && !inner.contains('\\')
}

/// `const <NAME..MAGIC..> [: T] = <literal>` — a wire constant minted in
/// place rather than aliased from the sanctioned module.
fn drifting_const(ctx: &FileCtx, const_idx: usize) -> Option<Finding> {
    let name = ctx.code.get(const_idx + 1)?;
    if name.kind != TokKind::Ident || !NAME_MARKERS.iter().any(|m| name.text.contains(m)) {
        return None;
    }
    // Scan the initializer up to the terminating `;` (the `;` inside an
    // `[u8; 4]` type is at bracket depth 1 and does not terminate) — a
    // literal (byte string or number) is drift, a pure path expression is
    // an alias and is fine.
    let mut j = const_idx + 2;
    let mut saw_eq = false;
    let mut depth = 0i32;
    while let Some(t) = ctx.code.get(j) {
        if t.is_punct('[') || t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(']') || t.is_punct(')') {
            depth -= 1;
        } else if t.is_punct(';') && depth <= 0 {
            break;
        }
        if t.is_punct('=') {
            saw_eq = true;
        } else if saw_eq && matches!(t.kind, TokKind::ByteStr | TokKind::Str | TokKind::Num) {
            return Some(ctx.finding(
                name.line,
                ID,
                format!(
                    "wire constant `{}` minted from a literal outside \
                     mqd_core::{{wire, record}}; move it there and alias it here",
                    name.text
                ),
            ));
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::engine::{lint_source, LintConfig};

    const PATH: &str = "crates/mqd-stream/src/checkpoint.rs";

    fn lint(src: &str) -> Vec<crate::report::Finding> {
        lint_source(PATH, src, &LintConfig::subset(&[super::ID]).unwrap())
    }

    #[test]
    fn flags_minted_magic_and_footer() {
        let src = "\
pub const MAGIC: [u8; 4] = *b\"MQDC\";
const FOOTER: [u8; 4] = *b\"END!\";
";
        let out = lint(src);
        assert_eq!(out.len(), 2);
        assert!(out[0].message.contains("MQDC") || out[0].message.contains("MAGIC"));
    }

    #[test]
    fn aliasing_the_sanctioned_constant_is_clean() {
        let src = "\
pub const MAGIC: [u8; 4] = mqd_core::wire::CHECKPOINT_MAGIC;
use mqd_core::wire::FRAME_FOOTER as FOOTER;
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn sanctioned_files_are_exempt() {
        for rel in [
            "crates/mqd-core/src/wire.rs",
            "crates/mqd-core/src/record.rs",
        ] {
            let out = lint_source(
                rel,
                "const MAGIC: &[u8; 4] = b\"MQDL\";",
                &LintConfig::subset(&[super::ID]).unwrap(),
            );
            assert!(out.is_empty(), "{rel} must be exempt");
        }
    }

    #[test]
    fn long_or_escaped_byte_strings_are_not_magic() {
        let src = "\
fn f() {
    let script = b\"STATS DRAIN QUIT PING OVER\";
    let row = b\"0\\t100\\t0\\n\";
}
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn opcode_consts_from_numbers_are_flagged() {
        let src = "const OPCODE_QUERY: u8 = 0x51;\n";
        let out = lint(src);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn test_fixtures_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    const FOOTER: &[u8; 4] = b\"END!\";\n}\n";
        assert!(lint(src).is_empty());
    }
}
