//! `blocking-call`: unbounded blocking inside worker/supervisor code.
//!
//! The bug class: PR 4's worker pool deadlocked a 1-CPU host because
//! connection handling blocked inside a pool sized below the number of
//! simultaneously-blocked tasks. `recv()` with no timeout, `join()` on a
//! thread that never exits, or `read_line` on a socket with no read
//! timeout are all invisible until the one deployment where they wedge.
//!
//! Every such call in `mqd-server`/`mqd-stream`/`mqd-par`/`mqd-load` (a
//! wedged lane thread stalls the whole paced run past its deadline — the
//! harness must outlive any server misbehavior it provokes), the CLI, and
//! the offline tools (`mqd-datagen`, `mqd-bench` — a hung generator wedges
//! a CI job just as surely) must either use the `_timeout` variant or
//! carry a `// lint:allow(blocking-call): <why this blocks only boundedly>`
//! justification — the annotation IS the documentation the next reader
//! needs.

use crate::engine::FileCtx;
use crate::report::Finding;
use crate::rules::method_call;

pub const ID: &str = "blocking-call";

fn applies(rel: &str) -> bool {
    rel.starts_with("crates/mqd-server/src")
        || rel.starts_with("crates/mqd-stream/src")
        || rel.starts_with("crates/mqd-par/src")
        || rel.starts_with("crates/mqd-router/src")
        || rel.starts_with("crates/mqd-load/src")
        || rel.starts_with("crates/mqd-cli/src")
        || rel.starts_with("crates/mqd-datagen/src")
        || rel.starts_with("crates/mqd-bench/src")
}

pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !applies(ctx.rel) {
        return;
    }
    for i in 0..ctx.code.len() {
        if ctx.in_test[i] {
            continue;
        }
        let t = &ctx.code[i];
        // `.recv()` — the channel variant with no timeout. (`recv_timeout`
        // is a different identifier and never matches.)
        if method_call(ctx, i, "recv").is_some()
            && ctx.code.get(i + 3).is_some_and(|p| p.is_punct(')'))
        {
            out.push(
                ctx.finding(
                    t.line,
                    ID,
                    "`recv()` with no timeout blocks a worker forever if the sender wedges \
                 (the PR 4 pool-deadlock class); use recv_timeout, or justify the bound \
                 with lint:allow"
                        .into(),
                ),
            );
        }
        // `.join()` — thread join (argument-less; `Path::join(..)` and
        // `slice::join(sep)` take arguments and never match).
        if method_call(ctx, i, "join").is_some()
            && ctx.code.get(i + 3).is_some_and(|p| p.is_punct(')'))
        {
            out.push(
                ctx.finding(
                    t.line,
                    ID,
                    "`join()` blocks until the thread exits — unbounded if the worker loops; \
                 justify why the joined thread terminates with lint:allow"
                        .into(),
                ),
            );
        }
        // `.read_line(..)` — unbounded if the peer stalls mid-line.
        if method_call(ctx, i, "read_line").is_some() {
            out.push(
                ctx.finding(
                    t.line,
                    ID,
                    "`read_line` blocks until a newline arrives — unbounded on a socket with \
                 no read timeout; set a timeout or justify with lint:allow"
                        .into(),
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{lint_source, LintConfig};

    const PATH: &str = "crates/mqd-server/src/server.rs";

    fn lint(src: &str) -> Vec<crate::report::Finding> {
        lint_source(PATH, src, &LintConfig::subset(&[super::ID]).unwrap())
    }

    #[test]
    fn flags_bare_recv_join_read_line() {
        let src = "\
fn worker(rx: &Receiver<Conn>, h: JoinHandle<()>, r: &mut BufReader<TcpStream>) {
    let conn = rx.recv();
    h.join();
    let mut line = String::new();
    r.read_line(&mut line);
}
";
        let out = lint(src);
        let lines: Vec<u32> = out.iter().map(|f| f.line).collect();
        assert_eq!(lines, [2, 3, 5]);
    }

    #[test]
    fn timeout_variants_are_clean() {
        let src = "\
fn worker(rx: &Receiver<Conn>) {
    let conn = rx.recv_timeout(Duration::from_millis(100));
}
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn join_with_arguments_is_not_thread_join() {
        let src = "\
fn f(dir: &Path, parts: &[String]) -> PathBuf {
    let s = parts.join(\", \");
    dir.join(s)
}
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn annotated_site_is_clean() {
        let src = "\
fn worker(rx: &Receiver<Conn>) {
    // lint:allow(blocking-call): acceptor drop closes the channel; recv returns Err
    let conn = rx.recv();
}
";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn out_of_scope_crate_is_clean() {
        let out = lint_source(
            "crates/mqd-text/src/tokenize.rs",
            "fn f(rx: &Receiver<u8>) { rx.recv(); }",
            &LintConfig::subset(&[super::ID]).unwrap(),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn cli_datagen_and_bench_sources_are_in_scope() {
        for rel in [
            "crates/mqd-cli/src/commands.rs",
            "crates/mqd-datagen/src/lib.rs",
            "crates/mqd-bench/src/main.rs",
        ] {
            let out = lint_source(
                rel,
                "fn f(rx: &Receiver<u8>) { rx.recv(); }",
                &LintConfig::subset(&[super::ID]).unwrap(),
            );
            assert_eq!(out.len(), 1, "{rel}: {out:?}");
        }
    }

    #[test]
    fn router_sources_are_in_scope() {
        let out = lint_source(
            "crates/mqd-router/src/router.rs",
            "fn f(rx: &Receiver<u8>) { rx.recv(); }",
            &LintConfig::subset(&[super::ID]).unwrap(),
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn load_harness_sources_are_in_scope() {
        let out = lint_source(
            "crates/mqd-load/src/runner.rs",
            "fn f(rx: &Receiver<u8>) { rx.recv(); }",
            &LintConfig::subset(&[super::ID]).unwrap(),
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }
}
