//! `guard-held-blocking`: blocking while a lock guard is live.
//!
//! The bug class: PR 4's pool deadlock, rediscovered by hand in PR 6's
//! refresher pool — a thread parks inside `recv()`/`join()`/`read_line`
//! (or stalls milliseconds inside fsync) while holding a mutex or RwLock
//! guard, and every other thread that touches that lock convoys behind
//! it. One slow fsync under the store's write guard turns a 2ms p99 into
//! a 200ms one; one wedged `recv()` under a shared mutex wedges the pool.
//!
//! Fires when a blocking operation is reachable while a guard is live:
//! directly in the guarded region, or one call deep (a guarded call to a
//! workspace function whose body blocks) — see
//! [`BLOCKING_CALL_DEPTH`](crate::callgraph::BLOCKING_CALL_DEPTH).
//! Deliberate sites (an fsync that IS the ack barrier) carry a
//! `lint:allow(guard-held-blocking): <why>` justification.

use crate::callgraph::WorkspaceCtx;
use crate::report::Finding;

pub const ID: &str = "guard-held-blocking";

pub fn check(ws: &WorkspaceCtx, out: &mut Vec<Finding>) {
    for f in &ws.fns {
        // Direct: the blocking op runs inside the guarded region.
        for b in &f.blocking {
            let Some(h) = b.held.first() else { continue };
            let locks: Vec<String> = b.held.iter().map(|g| format!("`{}`", g.lock)).collect();
            out.push(ws.finding(
                f.file,
                b.site.line,
                b.site.col,
                ID,
                format!(
                    "`{}` while the guard on {} (acquired line {}) is live — every thread \
                     contending for the lock convoys behind this block (the PR 4 deadlock \
                     class); drop the guard first, or justify with lint:allow",
                    b.what,
                    locks.join(", "),
                    h.site.line
                ),
            ));
        }
        // One call deep: a guarded call to a workspace fn that blocks.
        for c in &f.calls {
            if c.held.is_empty() {
                continue;
            }
            let Some((callee_fn, b)) = ws.reachable_blocking(&c.callee) else {
                continue;
            };
            let h = &c.held[0];
            out.push(ws.finding(
                f.file,
                c.site.line,
                c.site.col,
                ID,
                format!(
                    "call to `{}` (which does `{}` at {}:{}) while the guard on `{}` \
                     (acquired line {}) is live — the block happens one frame down but \
                     the convoy forms here; drop the guard first, or justify with \
                     lint:allow",
                    c.callee,
                    b.what,
                    ws.rel(ws.fns[callee_fn].file),
                    b.site.line,
                    h.lock,
                    h.site.line
                ),
            ));
        }
    }
}
