// Fixture: the sanctioned shapes stay clean under panic-path — typed
// error returns, let-else, dense-id indexing, and test code.
pub fn handle(state: &Mutex<Store>, body: Option<Vec<u8>>) -> Result<(), MqdError> {
    let store = state.lock().map_err(|_| MqdError::Poisoned { what: "store" })?;
    let Some(body) = body else {
        return Err(MqdError::Protocol("missing batch body".into()));
    };
    drop((store, body));
    Ok(())
}

pub fn dense_indexing(values: &[i64], post: usize, i: u32) -> i64 {
    // Plain dense-id indexing is the workspace's core access pattern and
    // is deliberately NOT flagged.
    values[post] + values[i as usize]
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
