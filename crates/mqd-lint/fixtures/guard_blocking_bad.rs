// Known-bad: a milliseconds-slow fsync runs while the segment guard is
// live — every writer contending for the lock convoys behind the disk
// (the PR 4 deadlock class). Once inline, once one call down through
// `persist_segment`, which the per-file pass cannot see.
pub fn append_direct(s: &State, rows: &[Row]) {
    let Ok(mut seg) = s.segment.lock() else { return };
    seg.stage_rows(rows);
    let _ = seg.file.sync_all(); //~ guard-held-blocking
}

pub fn append_indirect(s: &State, rows: &[Row]) {
    let Ok(mut seg) = s.segment.lock() else { return };
    seg.stage_rows(rows);
    persist_segment(&mut seg); //~ guard-held-blocking
}

pub fn persist_segment(seg: &mut SegGuard) {
    let _ = seg.file.sync_all();
}
