// Fixture: overflow-arith must fire on raw i64 F/lambda arithmetic —
// the PR 3 attribution/expected_in_window bug class. Linted under the
// virtual path crates/mqd-stream/src/engine.rs.
pub struct Emission {
    emit_time: i64,
    post: usize,
}

impl Emission {
    pub fn delay(&self, inst: &Instance) -> i64 {
        self.emit_time - inst.value(self.post) //~ overflow-arith
    }
}

pub fn window_width(lambda0: i64) -> i64 {
    2 * lambda0 //~ overflow-arith
}

pub fn stale(time: i64, t_lc: i64, lam: i64) -> bool {
    time - t_lc > lam //~ overflow-arith
}
