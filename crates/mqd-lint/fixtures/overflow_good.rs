// Fixture: the sanctioned widenings stay clean under overflow-arith.
pub fn delay(emit_time: i64, value: i64) -> i64 {
    emit_time.saturating_sub(value)
}

pub fn stale(time: i64, t_lc: i64, lam: i64) -> bool {
    time as i128 - t_lc as i128 > lam as i128
}

pub fn interval(lp: &LambdaProfile, t: i64) -> (i128, i128) {
    let lam = lp.threshold() as i128;
    let t = t as i128;
    (t - lam, t + lam)
}

pub fn checked_width(lambda0: i64) -> Option<i64> {
    lambda0.checked_mul(2)
}
