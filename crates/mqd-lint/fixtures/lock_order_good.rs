// Known-good: every path through these functions acquires `index` before
// `ledger` — including the path where the second acquisition happens one
// call down — so the global lock-order graph stays acyclic.
pub fn publish(s: &State, post: Post) {
    let Ok(idx) = s.index.lock() else { return };
    record_entry(s, &idx, post);
}

pub fn record_entry(s: &State, idx: &IndexGuard, post: Post) {
    let Ok(mut led) = s.ledger.lock() else { return };
    led.push(entry_of(idx, post));
}

pub fn reconcile(s: &State) {
    let Ok(idx) = s.index.lock() else { return };
    let Ok(led) = s.ledger.lock() else { return };
    sync_views(&led, &idx);
}
