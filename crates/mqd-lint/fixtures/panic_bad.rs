// Fixture: panic-path must fire on unwrap/expect/panic!/risky indexing
// in serving-path production code. Linted under the virtual path
// crates/mqd-server/src/server.rs.
pub fn handle(state: &Mutex<Store>, body: Option<Vec<u8>>, chunk: &[u8], want: usize) {
    let store = state.lock().unwrap(); //~ panic-path
    let body = body.expect("batch body read by caller"); //~ panic-path
    let head = &chunk[..want]; //~ panic-path
    let first = chunk[0]; //~ panic-path
    if head.is_empty() {
        panic!("empty frame"); //~ panic-path
    }
    drop((store, body, first));
}

pub fn dispatch(op: u8) -> &'static str {
    match op {
        0 => "query",
        1 => "stats",
        _ => unreachable!("validated by caller"), //~ panic-path
    }
}
