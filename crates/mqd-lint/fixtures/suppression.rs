// Fixture: suppression semantics. A reasoned lint:allow silences its
// line (or the line below); a bare one is itself a finding; an unknown
// rule id is itself a finding. Linted under the virtual path
// crates/mqd-server/src/server.rs.
pub fn reasoned(rx: &Receiver<Conn>) {
    // lint:allow(blocking-call): acceptor drop closes the channel, so recv returns Err
    let _ = rx.recv();
}

pub fn same_line(buffer: &[u32]) -> u32 {
    buffer[0] // lint:allow(panic-path): caller guarantees non-empty buffer
}

pub fn bare(rx: &Receiver<Conn>) {
    // lint:allow(blocking-call)
    let _ = rx.recv();
}

pub fn unknown_rule(rx: &Receiver<Conn>) {
    // lint:allow(no-such-rule): confidently wrong
    let _ = rx.recv();
}
