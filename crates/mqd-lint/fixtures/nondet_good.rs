// Fixture: the sanctioned shapes — keyed access, sorted materialization,
// and BTreeMap — must stay clean under nondet-iter.
use std::collections::{BTreeMap, HashMap};

pub fn keyed_access(index: &HashMap<u32, Vec<u32>>, key: u32) -> Option<&Vec<u32>> {
    index.get(&key)
}

pub fn sorted_materialization(index: &HashMap<u32, u64>) -> Vec<(u32, u64)> {
    let mut keys: Vec<u32> = Vec::new();
    for k in 0..1000 {
        if index.contains_key(&k) {
            keys.push(k);
        }
    }
    keys.iter().map(|k| (*k, index[k])).collect()
}

pub fn btree_iteration(ordered: &BTreeMap<u32, u64>) -> u64 {
    ordered.values().sum()
}
