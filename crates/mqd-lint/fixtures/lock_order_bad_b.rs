// Known-bad, half B of the ABBA pair in lock_order_bad_a.rs:
// `record_entry` supplies the propagated `index -> ledger` edge (it runs
// under `publish`'s index guard), and `reconcile` acquires the two locks
// in the reverse order directly. The cycle is reported once, anchored on
// the first edge that participates.
pub fn record_entry(s: &State, idx: &IndexGuard, post: Post) {
    let Ok(mut led) = s.ledger.lock() else { return };
    led.push(entry_of(idx, post));
}

pub fn reconcile(s: &State) {
    let Ok(led) = s.ledger.lock() else { return };
    let Ok(idx) = s.index.lock() else { return };
    sync_views(&led, &idx);
}
