// Known-bad, half A of an ABBA pair: `publish` acquires `index` and then
// — one call down, in lock_order_bad_b.rs — `record_entry` acquires
// `ledger`, while `reconcile` over there takes the same two locks in the
// reverse order. Neither file is wrong alone; only the workspace pass
// sees the cycle.
pub fn publish(s: &State, post: Post) {
    let Ok(idx) = s.index.lock() else { return };
    record_entry(s, &idx, post); //~ lock-order
}
