// Known-good: every wire-decoded length passes through `plausible_len`
// before it sizes an allocation, so a hostile count is capped by the
// bytes actually remaining in the frame — shown both as a rebind and
// inline at the sink.
pub fn decode_batch(buf: &mut Cursor) -> Result<Vec<Row>, MqdError> {
    let count = buf.get_varint()?;
    let count = buf.plausible_len(count, 3, "record")?;
    let mut rows = Vec::with_capacity(count);
    for _ in 0..count {
        rows.push(decode_row(buf)?);
    }
    Ok(rows)
}

pub fn decode_blob(buf: &mut Cursor) -> Result<Vec<u8>, MqdError> {
    let len = buf.get_varint()?;
    let mut blob = vec![0u8; buf.plausible_len(len, 1, "byte")?];
    for b in blob.iter_mut() {
        *b = buf.get_u8()?;
    }
    Ok(blob)
}
