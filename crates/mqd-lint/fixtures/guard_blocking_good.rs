// Known-good: the segment guard is dropped before the fsync, so writers
// never convoy behind the disk — both when the flush is inline and when
// it happens one call down in `persist`.
pub fn append(s: &State, rows: &[Row]) {
    let Ok(mut seg) = s.segment.lock() else { return };
    let file = seg.stage_rows(rows);
    drop(seg);
    let _ = file.sync_all();
}

pub fn append_indirect(s: &State, rows: &[Row]) {
    let Ok(mut seg) = s.segment.lock() else { return };
    let file = seg.stage_rows(rows);
    drop(seg);
    persist(&file);
}

pub fn persist(file: &File) {
    let _ = file.sync_all();
}
