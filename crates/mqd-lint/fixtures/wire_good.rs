// Fixture: aliasing the sanctioned constants stays clean under
// wire-drift — this is the post-fix shape of checkpoint.rs.
pub const MAGIC: [u8; 4] = mqd_core::wire::CHECKPOINT_MAGIC;
const FOOTER: [u8; 4] = mqd_core::wire::FRAME_FOOTER;
const VERSION: u64 = 1;

pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(payload);
    out.extend_from_slice(&FOOTER);
    out
}
