// Regression fixture: the PR 4 OPT tie-break bug, verbatim in shape.
//
// The DP layer indexed entries by end-pattern in a HashMap and then
// iterated the map itself to enumerate parent states. HashMap iteration
// order is randomized per process, so equal-cost parents tied in
// arbitrary order and the reconstructed cover differed across runs —
// caught only because the serving layer's answer-identity check hashed
// the cover bytes. The fix (mqd-core/src/algorithms/opt.rs) carries an
// insertion-order `keys: Vec<Vec<u32>>` beside the map and iterates
// that instead. nondet-iter exists to catch this shape mechanically;
// this fixture must always produce findings.
use std::collections::HashMap;

struct Entry {
    cost: u32,
    parent: usize,
}

struct Layer {
    index: HashMap<Vec<u32>, usize>,
    entries: Vec<Entry>,
}

impl Layer {
    // BUG (the PR 4 shape): iterating `self.index` makes the argmin's
    // tie-break depend on per-process hash order.
    fn best_parent(&self) -> usize {
        let mut best_cost = u32::MAX;
        let mut best = 0usize;
        for (_pattern, &slot) in self.index.iter() {
            let e = &self.entries[slot];
            if e.cost < best_cost {
                best_cost = e.cost;
                best = e.parent;
            }
        }
        best
    }
}
