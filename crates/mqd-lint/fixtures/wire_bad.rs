// Fixture: wire-drift must fire on wire constants minted outside
// mqd_core::{wire, record}. Linted under the virtual path
// crates/mqd-stream/src/checkpoint.rs — the real pre-fix shape of that
// file, where the checkpoint format kept private copies of its magic
// and reused the binlog's footer bytes by retyping them.
pub const MAGIC: [u8; 4] = *b"MQDC"; //~ wire-drift
const FOOTER: [u8; 4] = *b"END!"; //~ wire-drift
const OPCODE_QUERY: u8 = 0x51; //~ wire-drift

pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"HDR!"); //~ wire-drift
    out.extend_from_slice(payload);
    out
}
