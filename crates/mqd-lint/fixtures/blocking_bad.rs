// Fixture: blocking-call must fire on unbounded recv/join/read_line in
// worker code — the PR 4 pool-deadlock class. Linted under the virtual
// path crates/mqd-server/src/server.rs. Deliberately guard-free: the
// lock-held variants of these calls live in guard_blocking_bad.rs.
pub fn worker_loop(rx: &Receiver<Conn>) {
    loop {
        let Ok(conn) = rx.recv() else { return }; //~ blocking-call
        serve(conn);
    }
}

pub fn shutdown(handles: Vec<JoinHandle<()>>) {
    for h in handles {
        let _ = h.join(); //~ blocking-call
    }
}

pub fn read_command(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    let _ = reader.read_line(&mut line); //~ blocking-call
    line
}
